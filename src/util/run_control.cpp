#include "util/run_control.h"

#include <limits>
#include <string>

namespace rgleak::util {

void RunControl::latch(StopReason reason) const {
  // First reason wins: only transition 0 -> reason.
  std::uint8_t expected = 0;
  reason_.compare_exchange_strong(expected, static_cast<std::uint8_t>(reason),
                                  std::memory_order_relaxed);
  state_.fetch_or(kStopBit, std::memory_order_release);
}

void RunControl::request_stop(StopReason reason) {
  if (reason == StopReason::kNone) reason = StopReason::kCancelled;
  latch(reason);
}

void RunControl::arm_deadline(Clock::time_point when) {
  deadline_ticks_.store(when.time_since_epoch().count(), std::memory_order_relaxed);
  state_.fetch_or(kDeadlineBit, std::memory_order_release);
}

void RunControl::arm_budget(double budget_s) {
  if (budget_s <= 0.0) {
    latch(StopReason::kDeadline);
    return;
  }
  arm_deadline(Clock::now() +
               std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(budget_s)));
}

void RunControl::set_parent(const RunControl* parent) {
  parent_ = parent;
  if (parent != nullptr) state_.fetch_or(kParentBit, std::memory_order_release);
}

bool RunControl::should_stop() const {
  beat();  // a poll is a progress heartbeat: wedged workers stop polling
  return stop_pending();
}

bool RunControl::stop_pending() const {
  const int s = state_.load(std::memory_order_relaxed);
  if (s == kIdle) return false;  // the one-load fast path
  if (s & kStopBit) return true;
  if ((s & kParentBit) && parent_->stop_pending()) {
    const StopReason why = parent_->reason();
    latch(why == StopReason::kNone ? StopReason::kCancelled : why);
    return true;
  }
  if (s & kDeadlineBit) {
    // Deadline armed but not yet latched: read the clock.
    const auto deadline =
        Clock::time_point(Clock::duration(deadline_ticks_.load(std::memory_order_relaxed)));
    if (Clock::now() >= deadline) {
      latch(StopReason::kDeadline);
      return true;
    }
  }
  return false;
}

StopReason RunControl::reason() const {
  return static_cast<StopReason>(reason_.load(std::memory_order_relaxed));
}

double RunControl::remaining_s() const {
  const int s = state_.load(std::memory_order_acquire);
  if (s & kStopBit) return 0.0;
  if (!(s & kDeadlineBit)) return std::numeric_limits<double>::infinity();
  const auto deadline =
      Clock::time_point(Clock::duration(deadline_ticks_.load(std::memory_order_relaxed)));
  const double left = std::chrono::duration<double>(deadline - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

DeadlineExceeded RunControl::make_error(const char* site) const {
  const StopReason why = reason();
  std::string msg(site);
  switch (why) {
    case StopReason::kDeadline:
      msg += ": deadline exceeded, run stopped cooperatively";
      break;
    case StopReason::kStalled:
      msg += ": run stalled (no progress heartbeat), stopped by watchdog";
      break;
    default:
      msg += ": run cancelled (stop requested)";
      break;
  }
  return DeadlineExceeded(msg);
}

void RunControl::poll(const char* site) const {
  if (should_stop()) throw make_error(site);
}

}  // namespace rgleak::util
