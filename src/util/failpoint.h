#pragma once
// Fault-injection points for robustness testing.
//
// Library code marks interesting failure sites with
//
//   RGLEAK_FAILPOINT("mc.trial");                       // may throw or delay
//   x = RGLEAK_FAILPOINT_DOUBLE("estimate.linear.cov", x);  // may become NaN
//
// In production nothing is armed and each site costs one relaxed atomic load
// (a single branch on a cold global; zero allocations, zero locks). Tests arm
// sites by name to make them throw, corrupt a double to NaN, or sleep — which
// lets the suite prove that worker exceptions propagate without deadlock,
// that pools stay usable after a failed job, and that partial reads never
// leak half-constructed objects. Compiling with RGLEAK_DISABLE_FAILPOINTS
// removes the sites entirely.
//
// Arming and firing are thread-safe; fired sites count their hits so tests
// can assert a site was actually exercised.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>

namespace rgleak::util {

/// What an armed failpoint does when execution reaches it.
enum class FailpointAction {
  kThrow,  ///< throw FailpointError from the site
  kNan,    ///< RGLEAK_FAILPOINT_DOUBLE sites return NaN (plain sites no-op)
  kDelay,  ///< sleep for the configured delay (races / straggler testing)
  kAlloc,  ///< throw std::bad_alloc (simulated allocation failure at arenas)
  // Crash actions for exercising the process-isolation supervisor. These
  // take the process DOWN — only arm them in a sandboxed job child (via a
  // job's "failpoint" parameter) or in a test that forks first.
  kAbort,  ///< std::abort() — die on SIGABRT
  kSegv,   ///< dereference null — die on SIGSEGV
  kExit,   ///< _exit(exit_code) — vanish without a result record
};

/// The exception an armed kThrow failpoint raises. Deliberately outside the
/// rgleak error taxonomy: it simulates an arbitrary foreign exception
/// escaping a task, which is exactly what robustness tests need.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' fired"), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class Failpoints {
 public:
  /// Fast-path gate: true when at least one site is armed anywhere in the
  /// process. The macros check this before taking the registry lock.
  static bool any_armed() { return armed_count.load(std::memory_order_relaxed) > 0; }

  /// Arm `site`. It fires on its next `count` executions (default: until
  /// disarmed); kDelay sleeps `delay_ms` per hit, kExit exits with
  /// `exit_code`. Re-arming replaces the previous configuration and resets
  /// the hit counter.
  static void arm(const std::string& site, FailpointAction action, std::size_t count = SIZE_MAX,
                  unsigned delay_ms = 0, int exit_code = 1);

  /// Arms one textual spec, the grammar shared by the CLI's `--failpoint`
  /// and a batch job's "failpoint" parameter:
  ///
  ///   SITE:ACTION[:COUNT[:DELAY_MS]]   ACTION = throw|nan|delay|alloc|
  ///                                             abort|segv
  ///   SITE:exit:CODE[:COUNT]           exit carries its exit code instead
  ///                                    of a delay
  ///
  /// Multiple specs may be joined with newlines. Throws ConfigError on an
  /// unknown action or a malformed field — a typo'd spec that silently never
  /// fires would make a robustness run vacuous.
  static void arm_specs(const std::string& specs);
  static void disarm(const std::string& site);
  static void disarm_all();

  /// Times `site` fired since it was (last) armed.
  static std::size_t hits(const std::string& site);

  /// Holds the registry mutex across a fork() so a sandboxed child (which
  /// inherits the forking thread only) can never find the registry locked by
  /// a parent thread that no longer exists in its address space. The forking
  /// thread takes the lock, forks, and both sides release their copy when
  /// the returned guard leaves scope.
  static std::unique_lock<std::mutex> hold_for_fork();

  /// Slow path behind RGLEAK_FAILPOINT; call only when any_armed().
  static void hit(const char* site);
  /// Slow path behind RGLEAK_FAILPOINT_DOUBLE: returns NaN when `site` is
  /// armed with kNan, otherwise behaves like hit() and returns `value`.
  static double corrupt(const char* site, double value);

  // Fast-path gate; an inline variable so the macro check inlines to one
  // relaxed load with no function call.
  static inline std::atomic<int> armed_count{0};
};

/// RAII arming for tests: arms in the constructor, disarms in the destructor
/// so a failing assertion cannot leave a site armed for later tests.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site, FailpointAction action = FailpointAction::kThrow,
                           std::size_t count = SIZE_MAX, unsigned delay_ms = 0)
      : site_(std::move(site)) {
    Failpoints::arm(site_, action, count, delay_ms);
  }
  ~ScopedFailpoint() { Failpoints::disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace rgleak::util

#if defined(RGLEAK_DISABLE_FAILPOINTS)
#define RGLEAK_FAILPOINT(site) \
  do {                         \
  } while (0)
#define RGLEAK_FAILPOINT_DOUBLE(site, value) (value)
#else
#define RGLEAK_FAILPOINT(site)                                                     \
  do {                                                                             \
    if (::rgleak::util::Failpoints::any_armed()) ::rgleak::util::Failpoints::hit(site); \
  } while (0)
#define RGLEAK_FAILPOINT_DOUBLE(site, value)               \
  (::rgleak::util::Failpoints::any_armed()                 \
       ? ::rgleak::util::Failpoints::corrupt(site, (value)) \
       : (value))
#endif
