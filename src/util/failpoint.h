#pragma once
// Fault-injection points for robustness testing.
//
// Library code marks interesting failure sites with
//
//   RGLEAK_FAILPOINT("mc.trial");                       // may throw or delay
//   x = RGLEAK_FAILPOINT_DOUBLE("estimate.linear.cov", x);  // may become NaN
//
// In production nothing is armed and each site costs one relaxed atomic load
// (a single branch on a cold global; zero allocations, zero locks). Tests arm
// sites by name to make them throw, corrupt a double to NaN, or sleep — which
// lets the suite prove that worker exceptions propagate without deadlock,
// that pools stay usable after a failed job, and that partial reads never
// leak half-constructed objects. Compiling with RGLEAK_DISABLE_FAILPOINTS
// removes the sites entirely.
//
// Arming and firing are thread-safe; fired sites count their hits so tests
// can assert a site was actually exercised.

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace rgleak::util {

/// What an armed failpoint does when execution reaches it.
enum class FailpointAction {
  kThrow,  ///< throw FailpointError from the site
  kNan,    ///< RGLEAK_FAILPOINT_DOUBLE sites return NaN (plain sites no-op)
  kDelay,  ///< sleep for the configured delay (races / straggler testing)
  kAlloc,  ///< throw std::bad_alloc (simulated allocation failure at arenas)
};

/// The exception an armed kThrow failpoint raises. Deliberately outside the
/// rgleak error taxonomy: it simulates an arbitrary foreign exception
/// escaping a task, which is exactly what robustness tests need.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' fired"), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class Failpoints {
 public:
  /// Fast-path gate: true when at least one site is armed anywhere in the
  /// process. The macros check this before taking the registry lock.
  static bool any_armed() { return armed_count.load(std::memory_order_relaxed) > 0; }

  /// Arm `site`. It fires on its next `count` executions (default: until
  /// disarmed); kDelay sleeps `delay_ms` per hit. Re-arming replaces the
  /// previous configuration and resets the hit counter.
  static void arm(const std::string& site, FailpointAction action, std::size_t count = SIZE_MAX,
                  unsigned delay_ms = 0);
  static void disarm(const std::string& site);
  static void disarm_all();

  /// Times `site` fired since it was (last) armed.
  static std::size_t hits(const std::string& site);

  /// Slow path behind RGLEAK_FAILPOINT; call only when any_armed().
  static void hit(const char* site);
  /// Slow path behind RGLEAK_FAILPOINT_DOUBLE: returns NaN when `site` is
  /// armed with kNan, otherwise behaves like hit() and returns `value`.
  static double corrupt(const char* site, double value);

  // Fast-path gate; an inline variable so the macro check inlines to one
  // relaxed load with no function call.
  static inline std::atomic<int> armed_count{0};
};

/// RAII arming for tests: arms in the constructor, disarms in the destructor
/// so a failing assertion cannot leave a site armed for later tests.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site, FailpointAction action = FailpointAction::kThrow,
                           std::size_t count = SIZE_MAX, unsigned delay_ms = 0)
      : site_(std::move(site)) {
    Failpoints::arm(site_, action, count, delay_ms);
  }
  ~ScopedFailpoint() { Failpoints::disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace rgleak::util

#if defined(RGLEAK_DISABLE_FAILPOINTS)
#define RGLEAK_FAILPOINT(site) \
  do {                         \
  } while (0)
#define RGLEAK_FAILPOINT_DOUBLE(site, value) (value)
#else
#define RGLEAK_FAILPOINT(site)                                                     \
  do {                                                                             \
    if (::rgleak::util::Failpoints::any_armed()) ::rgleak::util::Failpoints::hit(site); \
  } while (0)
#define RGLEAK_FAILPOINT_DOUBLE(site, value)               \
  (::rgleak::util::Failpoints::any_armed()                 \
       ? ::rgleak::util::Failpoints::corrupt(site, (value)) \
       : (value))
#endif
