#include "util/crc32.h"

#include <array>
#include <string>

namespace rgleak::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool parse_crc32_hex(std::string_view text, std::uint32_t& out) {
  if (text.size() != 8) return false;
  std::uint32_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
    else return false;
  }
  out = v;
  return true;
}

}  // namespace rgleak::util
