#pragma once
// Process-wide heap-allocation accounting for zero-allocation assertions and
// memory-budget calibration.
//
// Linking the rgleak_alloc_count library into a binary replaces the global
// operator new/delete family with counting wrappers. Tests snapshot
// allocation_count() before and after a measured region and assert on the
// delta; the MC perf tests use this to prove the steady-state trial loop
// never touches the heap, and the memory-budget tests cross-check
// MemoryBudget charges against allocated_bytes(). The counters cover every
// thread in the process, so measured regions must not run concurrently with
// other allocating work.
//
// This hook is deliberately NOT part of rgleak_util: replacing the global
// allocation functions is a process-wide decision a binary opts into by
// linking rgleak_alloc_count (tests and benches do; the CLI does not).

#include <cstddef>

namespace rgleak::util {

/// Number of global allocation calls (all operator new variants) since
/// process start, across all threads.
std::size_t allocation_count();

/// Cumulative bytes requested from operator new (all variants) since process
/// start. Bytes are counted as requested, not as rounded by the allocator;
/// frees are not subtracted (this is a throughput odometer, not a live-bytes
/// gauge — MemoryBudget tracks live reservations).
std::size_t allocated_bytes();

}  // namespace rgleak::util

namespace rgleak::testing {
// Back-compat alias for the pre-promotion tests/mc/alloc_count.h location.
using rgleak::util::allocation_count;
}  // namespace rgleak::testing
