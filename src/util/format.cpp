#include "util/format.h"

#include <charconv>
#include <cmath>
#include <system_error>

#include "util/require.h"

namespace rgleak::util {

namespace {

std::string to_chars_format(double value, std::chars_format fmt, int precision) {
  if (std::isnan(value)) return std::signbit(value) ? "-nan" : "nan";
  if (std::isinf(value)) return std::signbit(value) ? "-inf" : "inf";
  // %.*g with precision 0 behaves as precision 1 (C11 7.21.6.1); to_chars is
  // specified against printf, but clamp here so both helpers agree even if a
  // caller passes 0 to the fixed variant.
  if (precision < 1 && fmt == std::chars_format::general) precision = 1;
  if (precision < 0) precision = 0;
  char buf[512];  // worst-case %.*f of DBL_MAX: 309 digits + precision
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value, fmt, precision);
  RGLEAK_REQUIRE(ec == std::errc(), "format_double: buffer exhausted");
  return std::string(buf, end);
}

}  // namespace

std::string format_double(double value, int precision) {
  return to_chars_format(value, std::chars_format::general, precision);
}

std::string format_double_fixed(double value, int precision) {
  return to_chars_format(value, std::chars_format::fixed, precision);
}

bool parse_double(std::string_view text, double& out) {
  double v = 0.0;
  auto [p, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, std::chars_format::general);
  if (ec != std::errc() || p != text.data() + text.size()) return false;
  out = v;
  return true;
}

}  // namespace rgleak::util
