#pragma once
// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Design constraints, in order:
//
//  * hot-path cost — recording is lock-free: a Counter::add is ONE relaxed
//    fetch_add, a Histogram::observe is a handful of relaxed atomic ops on a
//    fixed array. No mutex, no allocation, no branching on configuration.
//    Call sites cache the instrument reference once (registration) and then
//    hit only the atomics, so metrics can stay armed permanently — the MC
//    trial loop budget is ≤2% overhead (enforced by bench_full_chip_mc).
//  * zero heap allocation after registration — instruments live in node-based
//    containers owned by the registry; their addresses are stable for the
//    process lifetime, so a reference captured at startup never dangles.
//  * fork friendliness — all state is plain atomics; a sandboxed job child
//    inherits the parent's registry by fork, records into its own copy, and
//    ships the DELTA back over the result pipe (snapshot/encode_delta/
//    merge_delta), so parent aggregates include child work exactly once.
//
// Snapshots serialize through util::format_double, so output is strict JSON
// regardless of LC_NUMERIC.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace rgleak::util::metrics {

/// Monotonically increasing event count. One relaxed fetch_add to record.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, active workers). set/add are
/// single relaxed atomic ops; excluded from deltas (a child's point-in-time
/// level is meaningless to fold into the parent's).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucket histogram for latency-style values (unit: whatever the
/// caller observes, by convention milliseconds for *_ms names). Bucket i
/// counts observations in [2^(i-11), 2^(i-10)); bucket 0 absorbs everything
/// below 2^-10 (≈1µs for ms values) and non-positive/non-finite input, the
/// last bucket absorbs everything above. observe() is wait-free except for
/// the max update, a bounded CAS loop.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  // [2^-10, 2^30) ms ≈ 1µs .. 12 days

  void observe(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    double seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  static int bucket_index(double v);

 private:
  friend class Registry;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Registry snapshot (plain values) — the child captures one at job start and
/// encodes the difference at job end, so a forked registry ships only the
/// work done on the child side.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::uint64_t buckets[Histogram::kBuckets]{};
  };
  std::map<std::string, Hist> histograms;
};

/// Process-wide named-instrument registry. Registration (counter/gauge/
/// histogram lookup-or-create) takes a mutex and may allocate; everything
/// returned is a stable reference — register once, record forever.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Full registry state as one strict-JSON object (see FORMATS.md,
  /// metrics-json). Locale-independent.
  std::string snapshot_json() const;

  /// Plain-value capture of counters and histograms (gauges excluded).
  Snapshot snapshot() const;

  /// Compact single-line encoding of (current state − base), suitable for
  /// embedding as one string field in a flat JSONL record. Empty string when
  /// nothing changed. Doubles travel as hex bit patterns so the merge is
  /// exact. Grammar: records joined by ';', each
  ///   c|<name>|<count>
  ///   h|<name>|<count>|<sum-bits-hex>|<max-bits-hex>|<i>:<n>,<i>:<n>,...
  std::string encode_delta(const Snapshot& base) const;

  /// Fold an encode_delta() payload into this registry (registering any
  /// instruments not yet present). Unknown record kinds are ignored so old
  /// parents tolerate newer children. Malformed records are skipped.
  void merge_delta(std::string_view text);

  /// Zero every registered instrument (tests and bench baselines). Instruments
  /// stay registered; cached references remain valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;  // guards the maps only, never the hot path
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Scoped wall-clock timer: observes elapsed milliseconds into a histogram at
/// destruction. For phase/rung timing where the instrument reference is
/// cached by the caller.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram& h) : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerMs() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    h_.observe(static_cast<double>(ns) * 1e-6);
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rgleak::util::metrics
