#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "util/error.h"

namespace rgleak::util {

namespace {

struct SiteState {
  FailpointAction action = FailpointAction::kThrow;
  std::size_t remaining = 0;  // executions left to fire on
  unsigned delay_ms = 0;
  int exit_code = 1;  // for kExit
  std::size_t hits = 0;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> r;
  return r;
}

// Decides under the lock whether `site` fires, updates counters, and returns
// the action to take outside the lock (sleeping or throwing while holding the
// registry mutex would serialize unrelated sites).
struct Decision {
  bool fire = false;
  FailpointAction action = FailpointAction::kThrow;
  unsigned delay_ms = 0;
  int exit_code = 1;
};

Decision decide(const char* site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end() || it->second.remaining == 0) return {};
  SiteState& s = it->second;
  if (s.remaining != std::numeric_limits<std::size_t>::max()) {
    --s.remaining;
    // Exhausted sites drop out of the fast-path count so production code goes
    // back to the single-load path once the injection burst is over.
    if (s.remaining == 0) Failpoints::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  ++s.hits;
  return {true, s.action, s.delay_ms, s.exit_code};
}

// Dies the way the armed crash action asks. Separate from the registry lock:
// crashing while holding it would be its own bug.
[[noreturn]] void crash(FailpointAction action, int exit_code, const char* site) {
  std::fprintf(stderr, "failpoint '%s': injected %s\n", site,
               action == FailpointAction::kAbort  ? "abort"
               : action == FailpointAction::kSegv ? "segv"
                                                  : "exit");
  std::fflush(stderr);
  if (action == FailpointAction::kAbort) std::abort();
  if (action == FailpointAction::kSegv) {
    volatile int* null = nullptr;
    *null = 42;  // real SIGSEGV, not raise(): exercises the kernel path
    std::abort();  // not reached; keeps [[noreturn]] honest
  }
  std::_Exit(exit_code);
}

}  // namespace

void Failpoints::arm(const std::string& site, FailpointAction action, std::size_t count,
                     unsigned delay_ms, int exit_code) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  SiteState& s = registry()[site];
  const bool was_live = s.remaining > 0;
  s = SiteState{action, count, delay_ms, exit_code, 0};
  if (!was_live && count > 0) armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::arm_specs(const std::string& specs) {
  std::istringstream ss(specs);
  std::string spec;
  while (std::getline(ss, spec)) {
    if (spec.empty()) continue;
    std::vector<std::string> parts;
    std::istringstream fields(spec);
    std::string field;
    while (std::getline(fields, field, ':')) parts.push_back(field);
    if (parts.size() < 2 || parts[0].empty())
      throw ConfigError("bad failpoint spec '" + spec +
                        "', expected SITE:ACTION[:COUNT[:DELAY_MS]] or SITE:exit:CODE[:COUNT]");
    const auto parse_field = [&](const std::string& tok, const char* what) -> long long {
      std::size_t used = 0;
      long long v = 0;
      try {
        v = std::stoll(tok, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != tok.size())
        throw ConfigError(std::string("failpoint spec '") + spec + "': " + what +
                          " expects an integer, got '" + tok + "'");
      return v;
    };
    std::size_t count = SIZE_MAX;
    unsigned delay_ms = 0;
    int exit_code = 1;
    FailpointAction action;
    if (parts[1] == "exit") {
      // SITE:exit:CODE[:COUNT] — the third field is the exit code.
      if (parts.size() < 3 || parts.size() > 4)
        throw ConfigError("bad failpoint spec '" + spec + "', expected SITE:exit:CODE[:COUNT]");
      action = FailpointAction::kExit;
      exit_code = static_cast<int>(parse_field(parts[2], "exit code"));
      if (parts.size() == 4) {
        const long long c = parse_field(parts[3], "count");
        if (c < 0) throw ConfigError("failpoint spec '" + spec + "': count must be non-negative");
        count = static_cast<std::size_t>(c);
      }
    } else {
      if (parts.size() > 4)
        throw ConfigError("bad failpoint spec '" + spec +
                          "', expected SITE:ACTION[:COUNT[:DELAY_MS]]");
      if (parts[1] == "throw") action = FailpointAction::kThrow;
      else if (parts[1] == "nan") action = FailpointAction::kNan;
      else if (parts[1] == "delay") action = FailpointAction::kDelay;
      else if (parts[1] == "alloc") action = FailpointAction::kAlloc;
      else if (parts[1] == "abort") action = FailpointAction::kAbort;
      else if (parts[1] == "segv") action = FailpointAction::kSegv;
      else
        throw ConfigError("unknown failpoint action '" + parts[1] + "' in '" + spec +
                          "' (expected throw, nan, delay, alloc, abort, segv, or exit)");
      if (parts.size() >= 3) {
        const long long c = parse_field(parts[2], "count");
        if (c < 0) throw ConfigError("failpoint spec '" + spec + "': count must be non-negative");
        count = static_cast<std::size_t>(c);
      }
      if (parts.size() >= 4) {
        const long long d = parse_field(parts[3], "delay_ms");
        if (d < 0) throw ConfigError("failpoint spec '" + spec + "': delay_ms must be non-negative");
        delay_ms = static_cast<unsigned>(d);
      }
    }
    arm(parts[0], action, count, delay_ms, exit_code);
  }
}

std::unique_lock<std::mutex> Failpoints::hold_for_fork() {
  return std::unique_lock<std::mutex>(registry_mutex());
}

void Failpoints::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end()) return;
  if (it->second.remaining > 0) armed_count.fetch_sub(1, std::memory_order_relaxed);
  registry().erase(it);
}

void Failpoints::disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const auto& [name, state] : registry())
    if (state.remaining > 0) armed_count.fetch_sub(1, std::memory_order_relaxed);
  registry().clear();
}

std::size_t Failpoints::hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

void Failpoints::hit(const char* site) {
  const Decision d = decide(site);
  if (!d.fire) return;
  switch (d.action) {
    case FailpointAction::kThrow:
      throw FailpointError(site);
    case FailpointAction::kAlloc:
      throw std::bad_alloc();
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return;
    case FailpointAction::kNan:
      return;  // only meaningful at RGLEAK_FAILPOINT_DOUBLE sites
    case FailpointAction::kAbort:
    case FailpointAction::kSegv:
    case FailpointAction::kExit:
      crash(d.action, d.exit_code, site);
  }
}

double Failpoints::corrupt(const char* site, double value) {
  const Decision d = decide(site);
  if (!d.fire) return value;
  switch (d.action) {
    case FailpointAction::kNan:
      return std::numeric_limits<double>::quiet_NaN();
    case FailpointAction::kThrow:
      throw FailpointError(site);
    case FailpointAction::kAlloc:
      throw std::bad_alloc();
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return value;
    case FailpointAction::kAbort:
    case FailpointAction::kSegv:
    case FailpointAction::kExit:
      crash(d.action, d.exit_code, site);
  }
  return value;
}

}  // namespace rgleak::util
