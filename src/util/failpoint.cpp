#include "util/failpoint.h"

#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <thread>

namespace rgleak::util {

namespace {

struct SiteState {
  FailpointAction action = FailpointAction::kThrow;
  std::size_t remaining = 0;  // executions left to fire on
  unsigned delay_ms = 0;
  std::size_t hits = 0;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> r;
  return r;
}

// Decides under the lock whether `site` fires, updates counters, and returns
// the action to take outside the lock (sleeping or throwing while holding the
// registry mutex would serialize unrelated sites).
struct Decision {
  bool fire = false;
  FailpointAction action = FailpointAction::kThrow;
  unsigned delay_ms = 0;
};

Decision decide(const char* site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end() || it->second.remaining == 0) return {};
  SiteState& s = it->second;
  if (s.remaining != std::numeric_limits<std::size_t>::max()) {
    --s.remaining;
    // Exhausted sites drop out of the fast-path count so production code goes
    // back to the single-load path once the injection burst is over.
    if (s.remaining == 0) Failpoints::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  ++s.hits;
  return {true, s.action, s.delay_ms};
}

}  // namespace

void Failpoints::arm(const std::string& site, FailpointAction action, std::size_t count,
                     unsigned delay_ms) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  SiteState& s = registry()[site];
  const bool was_live = s.remaining > 0;
  s = SiteState{action, count, delay_ms, 0};
  if (!was_live && count > 0) armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end()) return;
  if (it->second.remaining > 0) armed_count.fetch_sub(1, std::memory_order_relaxed);
  registry().erase(it);
}

void Failpoints::disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const auto& [name, state] : registry())
    if (state.remaining > 0) armed_count.fetch_sub(1, std::memory_order_relaxed);
  registry().clear();
}

std::size_t Failpoints::hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

void Failpoints::hit(const char* site) {
  const Decision d = decide(site);
  if (!d.fire) return;
  switch (d.action) {
    case FailpointAction::kThrow:
      throw FailpointError(site);
    case FailpointAction::kAlloc:
      throw std::bad_alloc();
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return;
    case FailpointAction::kNan:
      return;  // only meaningful at RGLEAK_FAILPOINT_DOUBLE sites
  }
}

double Failpoints::corrupt(const char* site, double value) {
  const Decision d = decide(site);
  if (!d.fire) return value;
  switch (d.action) {
    case FailpointAction::kNan:
      return std::numeric_limits<double>::quiet_NaN();
    case FailpointAction::kThrow:
      throw FailpointError(site);
    case FailpointAction::kAlloc:
      throw std::bad_alloc();
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return value;
  }
  return value;
}

}  // namespace rgleak::util
