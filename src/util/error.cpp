#include "util/error.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <sstream>

namespace rgleak {

namespace {

std::string format_parse_error(const std::string& source, std::size_t line, std::size_t column,
                               const std::string& message, const std::string& token) {
  std::ostringstream os;
  os << source << ':' << line;
  if (column > 0) os << ':' << column;
  os << ": " << message;
  if (!token.empty()) os << " (near '" << token << "')";
  return os.str();
}

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kContract: return "contract";
    case ErrorCode::kNumerical: return "numerical";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kResource: return "resource";
    case ErrorCode::kCrash: return "crash";
  }
  return "unknown";
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kContract: return 1;
    case ErrorCode::kConfig: return 2;
    case ErrorCode::kParse: return 3;
    case ErrorCode::kNumerical: return 4;
    case ErrorCode::kIo: return 5;
    case ErrorCode::kDeadline: return 6;
    case ErrorCode::kResource: return 8;
    case ErrorCode::kCrash: return 9;
  }
  return 1;
}

bool error_code_for_exit(int exit_code, ErrorCode& out) {
  switch (exit_code) {
    case 1: out = ErrorCode::kContract; return true;
    case 2: out = ErrorCode::kConfig; return true;
    case 3: out = ErrorCode::kParse; return true;
    case 4: out = ErrorCode::kNumerical; return true;
    case 5: out = ErrorCode::kIo; return true;
    case 6: out = ErrorCode::kDeadline; return true;
    case 8: out = ErrorCode::kResource; return true;
    case 9: out = ErrorCode::kCrash; return true;
  }
  return false;
}

ParseError::ParseError(std::string source, std::size_t line, std::size_t column,
                       const std::string& message, std::string token)
    : std::runtime_error(format_parse_error(source, line, column, message, token)),
      Error(ErrorCode::kParse, format_parse_error(source, line, column, message, token)),
      source_(std::move(source)),
      line_(line),
      column_(column),
      token_(std::move(token)) {}

std::string error_json(const Error& error) {
  std::ostringstream os;
  os << "{\"error\":\"" << error_code_name(error.code()) << "\",\"exit_code\":"
     << exit_code_for(error.code()) << ",\"message\":";
  append_json_string(os, error.message());
  if (const auto* pe = dynamic_cast<const ParseError*>(&error)) {
    os << ",\"source\":";
    append_json_string(os, pe->source());
    os << ",\"line\":" << pe->line() << ",\"column\":" << pe->column();
    if (!pe->token().empty()) {
      os << ",\"token\":";
      append_json_string(os, pe->token());
    }
  }
  os << '}';
  return os.str();
}

std::string error_json(const std::exception& error) {
  if (const auto* typed = dynamic_cast<const Error*>(&error)) return error_json(*typed);
  std::ostringstream os;
  os << "{\"error\":\"internal\",\"exit_code\":1,\"message\":";
  append_json_string(os, error.what());
  os << '}';
  return os.str();
}

namespace {

bool g_terminate_json = false;

// The contract of the installed handler: one structured line on stderr, then
// the typed exit code — never the bare abort() the default handler produces.
// Careful with allocations: a bad_alloc may be what got us here, so that
// branch uses only static strings.
[[noreturn]] void report_and_exit() {
  int code = 1;
  try {
    if (const auto eptr = std::current_exception()) std::rethrow_exception(eptr);
    // terminate without an active exception (noexcept violation, direct call).
    if (g_terminate_json)
      std::fputs(
          "{\"error\":\"internal\",\"exit_code\":1,\"message\":\"terminated without an active "
          "exception\"}\n",
          stderr);
    else
      std::fputs("error: terminated without an active exception\n", stderr);
  } catch (const std::bad_alloc&) {
    if (g_terminate_json)
      std::fputs("{\"error\":\"resource\",\"exit_code\":8,\"message\":\"allocation failed\"}\n",
                 stderr);
    else
      std::fputs("error: allocation failed (out of memory)\n", stderr);
    code = 8;
  } catch (const Error& e) {
    if (g_terminate_json)
      std::fprintf(stderr, "%s\n", error_json(e).c_str());
    else
      std::fprintf(stderr, "error: %s\n", e.message().c_str());
    code = exit_code_for(e.code());
  } catch (const std::exception& e) {
    if (g_terminate_json)
      std::fprintf(stderr, "%s\n", error_json(e).c_str());
    else
      std::fprintf(stderr, "error: %s\n", e.what());
  } catch (...) {
    if (g_terminate_json)
      std::fputs("{\"error\":\"internal\",\"exit_code\":1,\"message\":\"unknown exception\"}\n",
                 stderr);
    else
      std::fputs("error: unknown exception\n", stderr);
  }
  std::fflush(stderr);
  std::_Exit(code);
}

}  // namespace

void install_terminate_handler(bool json_errors) {
  g_terminate_json = json_errors;
  std::set_terminate(report_and_exit);
}

}  // namespace rgleak
