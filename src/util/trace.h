#pragma once
// Trace spans: one JSONL record per phase/attempt, appended to a shared file.
//
// Arming: trace::open(path) (the CLI's --trace flag) or the RGLEAK_TRACE
// environment variable (picked up lazily on first span). When unarmed, a
// Span costs one relaxed atomic load at construction and nothing at
// destruction — cheap enough to leave permanently in the batch and job
// runners (spans mark phases and attempts, never per-trial work).
//
// Fork safety is the load-bearing constraint: sandboxed job children
// (--isolate=process) inherit the open O_APPEND descriptor and the
// thread-local parent-span stack, so a child's phase spans parent naturally
// to the attempt span opened on the supervisor side. Emission is therefore
// mutex-free — each span builds its full line in private memory and publishes
// it with a single ::write() on the O_APPEND fd (atomic append; interleaved
// writers never shear a line). Span ids are "<pid>:<seq>", unique across the
// supervisor and every forked child.
//
// Record schema (FORMATS.md, trace-span-v1): flat JSON object with a crc32
// trailer field exactly like journal records —
//   {"span":"<pid:seq>","parent":"<pid:seq>"|"","name":...,"job":...,
//    "attempt":N,"t_ns":<steady-clock start>,"wall_ns":N,
//    "outcome":"ok"|"error"|...,"crc":"<8hex>"}

#include <chrono>
#include <string>
#include <string_view>

namespace rgleak::util::trace {

/// Open (create/append) the trace file. Replaces any previous target.
/// Throws IoError when the path cannot be opened.
void open(const std::string& path);

/// Close the trace fd; spans become no-ops again. Safe when not open.
void close();

/// True when a trace target is armed (after open() or via RGLEAK_TRACE).
bool enabled();

/// RAII span. Construction stamps the start time and pushes this span as the
/// current parent for the calling thread (and, across fork, for the child);
/// destruction pops it and appends the record. Outcome defaults to "ok", or
/// "error" when the span unwinds due to an exception; set_outcome overrides
/// (e.g. "crash", "retry", "shed", "timeout").
class Span {
 public:
  explicit Span(std::string_view name, std::string_view job = {}, int attempt = -1);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_outcome(std::string_view outcome);

  /// This span's id ("" when tracing is unarmed).
  const std::string& id() const { return id_; }

 private:
  bool active_ = false;
  std::string id_;
  std::string parent_;
  std::string name_;
  std::string job_;
  std::string outcome_;
  int attempt_ = -1;
  int uncaught_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rgleak::util::trace
