#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/failpoint.h"

#if defined(_WIN32)
#include <process.h>
#define RGLEAK_GETPID _getpid
#else
#include <fcntl.h>
#include <unistd.h>
#define RGLEAK_GETPID getpid
#endif

namespace rgleak::util {

namespace {

// Removes the temp file on every exit path that did not commit it.
struct TempGuard {
  std::string path;
  bool committed = false;
  ~TempGuard() {
    if (!committed) std::remove(path.c_str());
  }
};

#if !defined(_WIN32)
// fsync `path` (a file opened O_WRONLY or a directory opened O_RDONLY).
// Throws IoError when the open or the sync fails.
void fsync_or_throw(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) throw IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw IoError("fsync failed: " + path);
}
#endif

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& emit) {
  TempGuard tmp{path + ".tmp." + std::to_string(RGLEAK_GETPID())};
  {
    std::ofstream os(tmp.path, std::ios::trunc);
    if (!os) throw IoError("cannot open for writing: " + tmp.path);
    RGLEAK_FAILPOINT("util.atomic_file.write");
    emit(os);
    os.flush();
    if (!os) throw IoError("write failed: " + tmp.path);
  }
#if !defined(_WIN32)
  // Durability step 1: force the temp file's data to stable storage BEFORE
  // the rename. Without this a power loss after the rename can leave the
  // destination pointing at a zero-length or partial file on journaled
  // filesystems that reorder data behind metadata — the classic broken
  // temp+rename. A failure here aborts the commit; the destination is
  // untouched and the temp file is removed.
  RGLEAK_FAILPOINT("util.atomic_file.fsync");
  fsync_or_throw(tmp.path, /*directory=*/false);
#endif
  RGLEAK_FAILPOINT("util.atomic_file.commit");
  if (std::rename(tmp.path.c_str(), path.c_str()) != 0)
    throw IoError("cannot rename " + tmp.path + " onto " + path);
  tmp.committed = true;
#if !defined(_WIN32)
  // Durability step 2: fsync the parent directory so the rename (the name →
  // inode update) itself survives power loss. The file IS committed by this
  // point — a failure here raises IoError but the destination already holds
  // the new content; callers that must distinguish can check the path.
  RGLEAK_FAILPOINT("util.atomic_file.fsync_dir");
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash == 0 ? 1 : slash);
  fsync_or_throw(dir, /*directory=*/true);
#endif
}

}  // namespace rgleak::util
