#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/failpoint.h"

#if defined(_WIN32)
#include <process.h>
#define RGLEAK_GETPID _getpid
#else
#include <unistd.h>
#define RGLEAK_GETPID getpid
#endif

namespace rgleak::util {

namespace {

// Removes the temp file on every exit path that did not commit it.
struct TempGuard {
  std::string path;
  bool committed = false;
  ~TempGuard() {
    if (!committed) std::remove(path.c_str());
  }
};

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& emit) {
  TempGuard tmp{path + ".tmp." + std::to_string(RGLEAK_GETPID())};
  {
    std::ofstream os(tmp.path, std::ios::trunc);
    if (!os) throw IoError("cannot open for writing: " + tmp.path);
    RGLEAK_FAILPOINT("util.atomic_file.write");
    emit(os);
    os.flush();
    if (!os) throw IoError("write failed: " + tmp.path);
  }
  RGLEAK_FAILPOINT("util.atomic_file.commit");
  if (std::rename(tmp.path.c_str(), path.c_str()) != 0)
    throw IoError("cannot rename " + tmp.path + " onto " + path);
  tmp.committed = true;
}

}  // namespace rgleak::util
