#include "util/memory.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "util/error.h"

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

namespace rgleak::util {

namespace {

std::string human_bytes(std::uint64_t bytes) {
  // Keep the raw byte count for machines and add a rounded unit for humans.
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << bytes << " bytes";
  if (u > 0) {
    os.precision(1);
    os << " (" << std::fixed << v << ' ' << units[u] << ')';
  }
  return os.str();
}

// Reads a single numeric value (or "max") from a cgroup limit file. Returns 0
// when the file is absent, unreadable, "max", or implausibly huge (cgroup v1
// reports PAGE_COUNTER_MAX when unlimited).
std::uint64_t read_cgroup_limit(const char* path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string tok;
  in >> tok;
  if (!in || tok.empty() || tok == "max") return 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(tok);
  } catch (...) {
    return 0;
  }
  // Treat anything >= 2^62 as "unlimited sentinel".
  if (value >= (std::uint64_t{1} << 62)) return 0;
  return value;
}

}  // namespace

MemoryBudget& MemoryBudget::process() {
  static MemoryBudget budget;
  return budget;
}

void MemoryBudget::reserve(std::uint64_t bytes, const char* site) {
  if (!try_reserve(bytes, site)) {
    const std::uint64_t lim = limit();
    std::ostringstream os;
    os << site << ": memory reservation of " << human_bytes(bytes)
       << " exceeds budget headroom " << human_bytes(headroom()) << " (limit "
       << human_bytes(lim) << ", reserved " << human_bytes(reserved()) << ")";
    throw ResourceError(os.str());
  }
}

bool MemoryBudget::try_reserve(std::uint64_t bytes, const char* site) {
  (void)site;
  const std::uint64_t lim = limit_.load(std::memory_order_relaxed);
  std::uint64_t cur = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (lim != 0 && (bytes > lim || cur > lim - bytes)) return false;
    if (reserved_.compare_exchange_weak(cur, cur + bytes, std::memory_order_relaxed)) break;
  }
  // Advance the high-water mark (racy max loop).
  const std::uint64_t now = cur + bytes;
  std::uint64_t pk = peak_.load(std::memory_order_relaxed);
  while (now > pk && !peak_.compare_exchange_weak(pk, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::release(std::uint64_t bytes) {
  std::uint64_t cur = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = bytes > cur ? 0 : cur - bytes;
    if (reserved_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) return;
  }
}

std::uint64_t MemoryBudget::headroom() const {
  const std::uint64_t lim = limit();
  if (lim == 0) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t cur = reserved();
  return cur >= lim ? 0 : lim - cur;
}

MemoryReservation::MemoryReservation(std::uint64_t bytes, const char* site, MemoryBudget* budget)
    : budget_(budget != nullptr ? budget : &MemoryBudget::process()),
      bytes_(bytes),
      site_(site) {
  budget_->reserve(bytes_, site_.c_str());
}

MemoryReservation::MemoryReservation(const MemoryReservation& other)
    : budget_(other.budget_), bytes_(other.bytes_), site_(other.site_) {
  if (budget_ != nullptr && bytes_ > 0) budget_->reserve(bytes_, site_.c_str());
}

MemoryReservation& MemoryReservation::operator=(const MemoryReservation& other) {
  if (this == &other) return *this;
  // Reserve the new charge first so a throwing copy leaves *this intact.
  if (other.budget_ != nullptr && other.bytes_ > 0)
    other.budget_->reserve(other.bytes_, other.site_.c_str());
  release();
  budget_ = other.budget_;
  bytes_ = other.bytes_;
  site_ = other.site_;
  return *this;
}

MemoryReservation::MemoryReservation(MemoryReservation&& other) noexcept
    : budget_(other.budget_), bytes_(other.bytes_), site_(std::move(other.site_)) {
  other.budget_ = nullptr;
  other.bytes_ = 0;
}

MemoryReservation& MemoryReservation::operator=(MemoryReservation&& other) noexcept {
  if (this == &other) return *this;
  release();
  budget_ = other.budget_;
  bytes_ = other.bytes_;
  site_ = std::move(other.site_);
  other.budget_ = nullptr;
  other.bytes_ = 0;
  return *this;
}

void MemoryReservation::release() {
  if (budget_ != nullptr && bytes_ > 0) budget_->release(bytes_);
  budget_ = nullptr;
  bytes_ = 0;
}

std::uint64_t detect_memory_limit() {
  std::uint64_t best = 0;
  const auto consider = [&best](std::uint64_t candidate) {
    if (candidate != 0 && (best == 0 || candidate < best)) best = candidate;
  };
  consider(read_cgroup_limit("/sys/fs/cgroup/memory.max"));
  consider(read_cgroup_limit("/sys/fs/cgroup/memory/memory.limit_in_bytes"));
#if !defined(_WIN32)
  struct rlimit rl{};
  if (getrlimit(RLIMIT_AS, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY)
    consider(static_cast<std::uint64_t>(rl.rlim_cur));
#endif
  return best;
}

std::uint64_t parse_memory_size(const std::string& text) {
  if (text.empty()) throw ConfigError("empty memory size");
  std::size_t i = 0;
  if (!std::isdigit(static_cast<unsigned char>(text[0])))
    throw ConfigError("invalid memory size '" + text + "' (expected BYTES or N[kmg])");
  std::uint64_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      throw ConfigError("memory size overflows: '" + text + "'");
    value = value * 10 + digit;
    ++i;
  }
  std::uint64_t scale = 1;
  if (i < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[i]))) {
      case 'k': scale = std::uint64_t{1} << 10; break;
      case 'm': scale = std::uint64_t{1} << 20; break;
      case 'g': scale = std::uint64_t{1} << 30; break;
      default:
        throw ConfigError("invalid memory size suffix in '" + text + "' (use k, m, or g)");
    }
    ++i;
    // Accept an optional trailing 'b'/'B' ("512mb").
    if (i < text.size() && std::tolower(static_cast<unsigned char>(text[i])) == 'b') ++i;
  }
  if (i != text.size())
    throw ConfigError("trailing characters in memory size '" + text + "'");
  if (scale != 1 && value > std::numeric_limits<std::uint64_t>::max() / scale)
    throw ConfigError("memory size overflows: '" + text + "'");
  return value * scale;
}

}  // namespace rgleak::util
