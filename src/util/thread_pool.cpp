#include "util/thread_pool.h"

#include "util/failpoint.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace rgleak::util {

struct ThreadPool::Impl {
  std::size_t threads = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;   // signals workers: new job or shutdown
  std::condition_variable done_cv;   // signals caller: all participants exited
  bool shutdown = false;

  // Current job. Workers snapshot (count, fn) under the mutex when they pick
  // up a generation, then claim indices from `next`. `inflight` (also guarded
  // by the mutex) counts workers currently inside run_indices; the caller
  // waits for it to drop to zero, so no straggler can still be claiming
  // indices — or reading `fn` — when parallel_for returns and the next job
  // resets the slot. `generation` lets sleeping workers distinguish a new job
  // from a spurious wakeup; a worker that wakes after the job was torn down
  // snapshots count == 0 and never touches `next` or `fn`.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t inflight = 0;
  std::exception_ptr error;
  // Set while a parallel_for is in flight so reentrant calls (from inside a
  // task, or from a second thread) run inline instead of corrupting the slot.
  std::atomic<bool> busy{false};

  void run_indices(std::size_t n, const std::function<void(std::size_t)>* f) {
    if (n == 0) return;  // stale wakeup between jobs: nothing to claim
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        RGLEAK_FAILPOINT("thread_pool.task");
        (*f)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::size_t n = 0;
      const std::function<void(std::size_t)>* f = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        n = count;
        f = fn;
        ++inflight;
      }
      run_indices(n, f);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--inflight == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  impl_->threads = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::size() const { return impl_->threads; }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->threads > 1 && count > 1 &&
      !impl_->busy.exchange(true, std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->count = count;
      impl_->fn = &fn;
      impl_->next.store(0, std::memory_order_relaxed);
      impl_->error = nullptr;
      ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    // The caller participates. When its claim loop exits, every index has
    // been claimed — by the caller (and already executed) or by a worker
    // counted in `inflight` — so inflight == 0 implies the job is complete
    // AND no worker can still touch the job slot.
    impl_->run_indices(count, &fn);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->done_cv.wait(lock, [&] { return impl_->inflight == 0; });
      impl_->fn = nullptr;
      impl_->count = 0;
      error = impl_->error;
    }
    impl_->busy.store(false, std::memory_order_release);
    if (error) std::rethrow_exception(error);
    return;
  }
  // Serial pool, trivial job, or reentrant call: run inline.
  for (std::size_t i = 0; i < count; ++i) {
    RGLEAK_FAILPOINT("thread_pool.task");
    fn(i);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool& ThreadPool::shared(std::size_t threads) {
  if (threads == 0) return shared();
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<ThreadPool>& slot = pools[threads];
  if (!slot) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

}  // namespace rgleak::util
