#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rgleak::util {

struct ThreadPool::Impl {
  std::size_t threads = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;   // signals workers: new job or shutdown
  std::condition_variable done_cv;   // signals caller: job finished
  bool shutdown = false;

  // Current job. Workers claim indices from `next`; the last one to finish
  // (tracked by `remaining`) wakes the caller. `generation` lets sleeping
  // workers distinguish a new job from a spurious wakeup; a worker that wakes
  // after the job drained simply finds next >= count and never touches `fn`.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::exception_ptr error;
  // Set while a parallel_for is in flight so reentrant calls (from inside a
  // task, or from a second thread) run inline instead of corrupting the slot.
  std::atomic<bool> busy{false};

  void run_indices() {
    const std::size_t n = count;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      run_indices();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  impl_->threads = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::size() const { return impl_->threads; }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_->threads > 1 && count > 1 &&
      !impl_->busy.exchange(true, std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->count = count;
      impl_->fn = &fn;
      impl_->next.store(0, std::memory_order_relaxed);
      impl_->remaining.store(count, std::memory_order_relaxed);
      impl_->error = nullptr;
      ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    impl_->run_indices();  // the caller participates
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->done_cv.wait(
          lock, [&] { return impl_->remaining.load(std::memory_order_acquire) == 0; });
      impl_->fn = nullptr;
    }
    impl_->busy.store(false, std::memory_order_release);
    if (impl_->error) std::rethrow_exception(impl_->error);
    return;
  }
  // Serial pool, trivial job, or reentrant call: run inline.
  for (std::size_t i = 0; i < count; ++i) fn(i);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace rgleak::util
