#include "util/thread_pool.h"

#include "util/failpoint.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace rgleak::util {

struct ThreadPool::Impl {
  std::size_t threads = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;   // signals workers: new job or shutdown
  std::condition_variable done_cv;   // signals caller: all participants exited
  bool shutdown = false;

  // Current job. Workers snapshot (count, fn, run, cancel) under the mutex
  // when they pick up a generation, then claim indices from `next`.
  // `inflight` (also guarded by the mutex) counts workers currently inside
  // run_indices; the caller waits for it to drop to zero, so no straggler can
  // still be claiming indices — or reading `fn` — when parallel_for returns
  // and the next job resets the slot. `generation` lets sleeping workers
  // distinguish a new job from a spurious wakeup; a worker that wakes after
  // the job was torn down snapshots count == 0 and never touches `next` or
  // `fn`.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  const RunControl* run = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t inflight = 0;
  std::exception_ptr error;
  // Set while a parallel_for is in flight so reentrant calls (from inside a
  // task, or from a second thread) run inline instead of corrupting the slot.
  std::atomic<bool> busy{false};
  // Cancel flag of the job in flight; lives in parallel_for's frame and is
  // registered here (guarded by the mutex) so stop() can reach it. Null when
  // no top-level job is active.
  std::atomic<bool>* active_cancel = nullptr;

  // True once this job should claim no more indices. One relaxed atomic load
  // when nothing is armed (`run` null checks compile to a register test).
  static bool drained(const RunControl* run, const std::atomic<bool>* cancel) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return true;
    return run != nullptr && run->should_stop();
  }

  void run_indices(std::size_t n, const std::function<void(std::size_t)>* f,
                   const RunControl* rc, const std::atomic<bool>* cancel) {
    if (n == 0) return;  // stale wakeup between jobs: nothing to claim
    for (;;) {
      if (drained(rc, cancel)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        RGLEAK_FAILPOINT("thread_pool.task");
        (*f)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::size_t n = 0;
      const std::function<void(std::size_t)>* f = nullptr;
      const RunControl* rc = nullptr;
      std::atomic<bool>* cancel = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        n = count;
        f = fn;
        rc = run;
        cancel = active_cancel;
        ++inflight;
      }
      run_indices(n, f, rc, cancel);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--inflight == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  impl_->threads = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

std::size_t ThreadPool::size() const { return impl_->threads; }

void ThreadPool::stop() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->active_cancel != nullptr)
    impl_->active_cancel->store(true, std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              const RunControl* run) {
  if (count == 0) return;
  if (!impl_->busy.exchange(true, std::memory_order_acquire)) {
    // Top-level job: owns the slot; its cancel flag lives in this frame and
    // is registered so stop() (from any thread) can drain it.
    std::atomic<bool> cancelled{false};
    if (impl_->threads > 1 && count > 1) {
      {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->count = count;
        impl_->fn = &fn;
        impl_->run = run;
        impl_->active_cancel = &cancelled;
        impl_->next.store(0, std::memory_order_relaxed);
        impl_->error = nullptr;
        ++impl_->generation;
      }
      impl_->work_cv.notify_all();
      // The caller participates. When its claim loop exits, every index has
      // been claimed or the job was drained; inflight == 0 then implies no
      // worker can still touch the job slot (or this frame's cancel flag).
      impl_->run_indices(count, &fn, run, &cancelled);
      std::exception_ptr error;
      bool complete = false;
      {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] { return impl_->inflight == 0; });
        // Every claimed index was executed (the drain check sits before the
        // claim), so a claim counter past `count` means the job finished.
        complete = impl_->next.load(std::memory_order_relaxed) >= count;
        impl_->fn = nullptr;
        impl_->count = 0;
        impl_->run = nullptr;
        impl_->active_cancel = nullptr;
        error = impl_->error;
      }
      impl_->busy.store(false, std::memory_order_release);
      if (error) std::rethrow_exception(error);
      if (complete) return;  // a stop that lands after the last index is moot
    } else {
      // Serial pool or single-index job: run inline, still stoppable.
      {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->active_cancel = &cancelled;
      }
      std::size_t done = 0;
      try {
        for (; done < count; ++done) {
          if (Impl::drained(run, &cancelled)) break;
          RGLEAK_FAILPOINT("thread_pool.task");
          fn(done);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(impl_->mutex);
          impl_->active_cancel = nullptr;
        }
        impl_->busy.store(false, std::memory_order_release);
        throw;
      }
      {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->active_cancel = nullptr;
      }
      impl_->busy.store(false, std::memory_order_release);
      if (done >= count) return;
    }
    // Drained jobs surface as DeadlineExceeded on the calling thread; a task
    // exception (rethrown above) takes precedence.
    if (run != nullptr && run->should_stop()) throw run->make_error("thread_pool.parallel_for");
    if (cancelled.load(std::memory_order_relaxed))
      throw DeadlineExceeded("thread_pool.parallel_for: run cancelled (pool stop())");
    return;
  }
  // Reentrant call (from inside a task, or from a second thread while a job
  // is in flight): run inline; only the caller's RunControl can stop it.
  for (std::size_t i = 0; i < count; ++i) {
    if (run != nullptr && run->should_stop()) throw run->make_error("thread_pool.parallel_for");
    RGLEAK_FAILPOINT("thread_pool.task");
    fn(i);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

ThreadPool& ThreadPool::shared(std::size_t threads) {
  if (threads == 0) return shared();
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<ThreadPool>& slot = pools[threads];
  if (!slot) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

}  // namespace rgleak::util
