#pragma once
// Process-wide memory budget: tracked reservations for the big arenas.
//
// rgleak's peak memory is dominated by a handful of arenas — FFT plans and
// field-sampler caches, per-worker MC workspaces, exact-estimator offset
// tiles. Rather than instrument every allocation, those arenas *charge* their
// footprint against a process-wide MemoryBudget before allocating and release
// it when they die. The budget is the memory analogue of RunControl's time
// budget:
//
//  * a limit of 0 means unlimited — charging is then pure bookkeeping
//    (reserved/peak telemetry for bench records and cost-model calibration);
//  * with a limit set, a reservation that would overshoot throws
//    ResourceError naming the site, the requested bytes, and the headroom,
//    so one oversized job fails typed instead of OOM-killing the process;
//  * all counters are relaxed atomics — charging is cheap enough to keep in
//    production paths permanently.
//
// The admission layer (service/admission.h) uses MemoryCostModel predictions
// to keep jobs from reaching a throwing reservation in the first place;
// the reservation is the backstop for mispredictions, and std::bad_alloc
// translation (see the `alloc` failpoint action) is the backstop below that.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rgleak::util {

/// Tracked-allocation accountant. Thread-safe; usually used through the
/// process() singleton, but tests construct private instances freely.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// The process-wide budget every arena charges against.
  static MemoryBudget& process();

  /// Set the budget limit in bytes; 0 = unlimited (default). Does not evict
  /// existing reservations: lowering the limit below reserved() only affects
  /// future reserve() calls.
  void set_limit(std::uint64_t bytes) { limit_.store(bytes, std::memory_order_relaxed); }
  std::uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }

  /// Charge `bytes` against the budget. Throws ResourceError naming `site`
  /// when the charge would push reserved() past a non-zero limit; on success
  /// the caller owns the charge and must release() it (or hold it in a
  /// MemoryReservation).
  void reserve(std::uint64_t bytes, const char* site);

  /// Like reserve() but returns false instead of throwing.
  bool try_reserve(std::uint64_t bytes, const char* site);

  /// Return a previous charge. Releasing more than reserved clamps to 0
  /// (and is a caller bug, but must not wrap the gauge).
  void release(std::uint64_t bytes);

  /// Currently charged bytes.
  std::uint64_t reserved() const { return reserved_.load(std::memory_order_relaxed); }

  /// High-water mark of reserved() since construction or the last
  /// reset_peak(). Feeds bench records and MemoryCostModel calibration.
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset_peak() { peak_.store(reserved(), std::memory_order_relaxed); }

  /// Bytes still available under the limit (UINT64_MAX when unlimited).
  std::uint64_t headroom() const;

 private:
  std::atomic<std::uint64_t> limit_{0};
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// RAII charge against a MemoryBudget. Movable; copying re-reserves the same
/// byte count (and may therefore throw) — per-worker clones each carry their
/// own charge.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  /// Charges `bytes` against `budget` (the process budget by default);
  /// throws ResourceError when it does not fit.
  MemoryReservation(std::uint64_t bytes, const char* site, MemoryBudget* budget = nullptr);
  ~MemoryReservation() { release(); }

  MemoryReservation(const MemoryReservation& other);
  MemoryReservation& operator=(const MemoryReservation& other);
  MemoryReservation(MemoryReservation&& other) noexcept;
  MemoryReservation& operator=(MemoryReservation&& other) noexcept;

  /// Drop the charge early (idempotent).
  void release();

  std::uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::string site_;
};

/// Best-effort detection of this process's memory ceiling: the minimum of the
/// cgroup v2 `memory.max`, cgroup v1 `memory.limit_in_bytes`, and
/// `RLIMIT_AS` limits that are present and finite. Returns 0 when none is
/// set (unlimited). Used by the CLI's `--mem-budget auto` default.
std::uint64_t detect_memory_limit();

/// Parse a human memory size: plain bytes ("1048576") or a k/m/g suffixed
/// value ("512m", "2g", "1024K"; powers of 1024). Throws ConfigError on
/// anything else (including negative, overflow, and trailing junk).
std::uint64_t parse_memory_size(const std::string& text);

}  // namespace rgleak::util
