#include "util/clock.h"

#include <chrono>
#include <thread>

namespace rgleak::util {

double SystemClock::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

double FakeClock::now_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_ms_;
}

void FakeClock::sleep_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ms > 0.0) now_ms_ += ms;
  sleeps_.push_back(ms);
}

void FakeClock::advance_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ms_ += ms;
}

std::vector<double> FakeClock::sleeps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sleeps_;
}

double FakeClock::total_slept_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (double s : sleeps_)
    if (s > 0.0) total += s;
  return total;
}

}  // namespace rgleak::util
