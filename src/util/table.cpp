#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/format.h"
#include "util/require.h"

namespace rgleak::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RGLEAK_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  RGLEAK_REQUIRE(!rows_.empty(), "call row() before cell()");
  RGLEAK_REQUIRE(rows_.back().size() < header_.size(), "row has more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  // Not snprintf("%.*g"): that honors LC_NUMERIC, and CSV output with decimal
  // commas is ambiguous with the separator.
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return cell(std::string(buf));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << s;
      if (c + 1 < header_.size()) os << std::string(width[c] - s.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + (c + 1 < header_.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace rgleak::util
