#pragma once
// Retry backoff with decorrelated jitter.
//
// The batch service layer retries transient job failures. Plain exponential
// backoff synchronizes retries across workers (every failed job re-fires at
// the same instants); "decorrelated jitter" (Brooker, AWS architecture blog)
// avoids that: each delay is drawn uniformly from [base, prev * multiplier]
// and clamped at a cap, so consecutive delays grow roughly exponentially in
// expectation but individual workers spread out.
//
// The draw is deterministic given the BackoffState's seed (a self-contained
// SplitMix64, so util stays dependency-free), which lets tests assert exact
// schedules and lets the batch runner derive per-job seeds for reproducible
// soak runs.

#include <cstdint>

namespace rgleak::util {

struct BackoffPolicy {
  double base_ms = 50.0;    ///< minimum delay, and the first delay
  double cap_ms = 5000.0;   ///< upper clamp on any delay
  double multiplier = 3.0;  ///< decorrelated growth factor (>= 1)
};

/// Per-retry-sequence state: the previous delay and the jitter stream.
struct BackoffState {
  double prev_ms = 0.0;
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
};

/// Next delay of the sequence: uniform in [base, max(base, prev * multiplier)]
/// clamped to cap, starting at exactly base_ms for the first call. Updates
/// `state` in place and returns the delay in milliseconds.
double next_backoff_ms(const BackoffPolicy& policy, BackoffState& state);

/// State seeded for one retry sequence; mixing in a stable per-job hash keeps
/// schedules reproducible whichever worker picks the job up.
BackoffState backoff_state_for(std::uint64_t seed);

/// FNV-1a hash of a job id, for backoff_state_for(seed ^ job_hash(id)).
std::uint64_t backoff_job_hash(const char* id);

}  // namespace rgleak::util
