#pragma once
// Interrupt-safe file writing: emit into a sibling temp file, then rename()
// onto the target. rename() within a directory is atomic on POSIX, so a
// reader (or a rerun after SIGINT / a crash / an injected io failpoint) sees
// either the complete previous file or the complete new one — never a
// truncated artifact. Every writer that produces a consumable file
// (.rgchar, .rgnl, .lib, .sp, MC checkpoints) goes through this helper.

#include <functional>
#include <iosfwd>
#include <string>

namespace rgleak::util {

/// Writes `emit(os)` to `path` atomically: the content goes to
/// "<path>.tmp.<pid>" first and is renamed onto `path` only after a
/// successful flush. On any failure (open, emit throwing, flush, rename) the
/// temp file is removed and the previous `path` contents are left untouched.
/// Throws IoError for OS-level failures; exceptions from `emit` propagate.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& emit);

}  // namespace rgleak::util
