#pragma once
// Injectable time source for retry/backoff logic.
//
// The batch service layer sleeps between retry attempts. Unit tests must not
// actually sleep (a retry test that waits out real exponential backoff is a
// suite-killer), so everything that waits takes a Clock. Production code uses
// SystemClock (steady_clock + sleep_for); tests inject a FakeClock whose
// sleep_ms() advances virtual time instantly and records the request, which
// makes backoff schedules assertable to the millisecond with zero wall time.

#include <cstddef>
#include <mutex>
#include <vector>

namespace rgleak::util {

/// Monotonic time + sleep, virtualized for tests. Implementations must be
/// thread-safe: the batch runner's workers share one clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since an arbitrary epoch.
  virtual double now_ms() const = 0;

  /// Blocks (or pretends to) for `ms` milliseconds. Negative / zero is a
  /// no-op. Callers that must stay cancellable sleep in small chunks and poll
  /// their RunControl between chunks.
  virtual void sleep_ms(double ms) = 0;
};

/// The real thing: std::chrono::steady_clock and std::this_thread::sleep_for.
class SystemClock : public Clock {
 public:
  double now_ms() const override;
  void sleep_ms(double ms) override;

  /// Shared process-wide instance (stateless; cheaper than passing new ones).
  static SystemClock& instance();
};

/// Deterministic virtual clock for tests: now_ms() only moves when advance_ms
/// or sleep_ms is called. Every sleep request is recorded so tests can assert
/// the exact backoff schedule.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double start_ms = 0.0) : now_ms_(start_ms) {}

  double now_ms() const override;
  /// Advances virtual time by `ms` and records the request (no real wait).
  void sleep_ms(double ms) override;

  void advance_ms(double ms);
  /// Every sleep_ms() request so far, in call order.
  std::vector<double> sleeps() const;
  double total_slept_ms() const;

 private:
  mutable std::mutex mutex_;
  double now_ms_ = 0.0;
  std::vector<double> sleeps_;
};

}  // namespace rgleak::util
