#pragma once
// The rgleak error taxonomy.
//
// Every failure the library raises is one of five typed errors, each carrying
// an ErrorCode so front ends can map failures to exit codes / machine-readable
// reports without string matching:
//
//   ContractViolation  — a documented precondition or invariant was broken.
//                        This is a *bug in the caller* (or in rgleak itself),
//                        never bad user input. CLI exit code 1 ("please
//                        report").
//   NumericalError     — a numerical routine failed: non-PSD correlation
//                        matrix, diverging expectation, ill-conditioned fit,
//                        overflow, or an estimator post-condition (finite
//                        mean, variance >= 0) that did not hold. Exit code 4.
//   ParseError         — malformed input text (.bench, .rgnl, .rgchar, ...).
//                        Carries the source name, 1-based line and column, and
//                        the offending token. Exit code 3.
//   IoError            — the OS said no: open/read/write failures. Exit
//                        code 5.
//   ConfigError        — structurally valid input that asks for something
//                        impossible (unknown correlation family, bad option
//                        combination). Exit code 2, like a usage error.
//   DeadlineExceeded   — the run was stopped cooperatively before it
//                        finished: an armed deadline expired, or a stop was
//                        requested (SIGINT, ThreadPool::stop()). The work
//                        that was interrupted may have checkpointed; the
//                        message says where. Exit code 6.
//
// Concrete errors derive from the std exception the pre-taxonomy code threw
// (logic_error for contracts, runtime_error otherwise) *and* from the
// rgleak::Error mixin, so `catch (const std::exception&)`, the historical
// `catch (const NumericalError&)` sites, and taxonomy-aware
// `catch (const rgleak::Error&)` handlers all keep working.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace rgleak {

enum class ErrorCode {
  kContract,
  kNumerical,
  kParse,
  kIo,
  kConfig,
  kDeadline,
  kResource,
  kCrash,
};

/// Short stable name for an error code ("contract", "numerical", "parse",
/// "io", "config", "deadline", "resource", "crash"); used by error reports
/// and logs.
const char* error_code_name(ErrorCode code);

/// The documented CLI exit code for an error class: 2 = usage/config,
/// 3 = parse, 4 = numerical, 5 = io, 6 = deadline/cancelled,
/// 8 = resource (over memory budget / allocation failure),
/// 9 = crash (a sandboxed job child died on a signal or without a result),
/// 1 = contract (internal bug).
int exit_code_for(ErrorCode code);

/// Maps a CLI exit code back to its error class; false for codes with no
/// taxonomy meaning (0, 7, 126, ...). The subprocess supervisor uses this to
/// reconstruct a typed error from a sandboxed child that exited cleanly but
/// died before writing its result record.
bool error_code_for_exit(int exit_code, ErrorCode& out);

/// Mixin carried by every typed rgleak error alongside its std exception
/// base. Catch `const rgleak::Error&` to handle all taxonomy errors
/// uniformly; `message()` repeats what() so handlers need not cross-cast.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  virtual ~Error() = default;

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Thrown when a documented precondition or invariant of the library is
/// violated. A caller bug, not bad input: front ends should ask for a report.
class ContractViolation : public std::logic_error, public Error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what), Error(ErrorCode::kContract, what) {}
};

/// Thrown when a numerical routine fails to converge, receives an
/// ill-conditioned problem, overflows, or violates a result post-condition.
class NumericalError : public std::runtime_error, public Error {
 public:
  explicit NumericalError(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kNumerical, what) {}
};

/// Thrown on operating-system level file failures (open / read / write).
class IoError : public std::runtime_error, public Error {
 public:
  explicit IoError(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kIo, what) {}
};

/// Thrown when well-formed input requests an unsupported configuration.
class ConfigError : public std::runtime_error, public Error {
 public:
  explicit ConfigError(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kConfig, what) {}
};

/// Thrown when a run is stopped cooperatively before completing: an armed
/// deadline expired or a stop was requested (SIGINT, another thread). Not a
/// failure of the computation itself — partial work may have been
/// checkpointed, and the message names the interrupted site.
class DeadlineExceeded : public std::runtime_error, public Error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kDeadline, what) {}
};

/// Thrown when a run cannot be granted the memory it needs: a job's
/// preflighted footprint exceeds the configured budget even at the floor of
/// the degradation ladder, a tracked reservation would overshoot the
/// process-wide MemoryBudget, or an arena allocation raised std::bad_alloc.
/// The message names the site and the bytes involved so operators can size
/// budgets from failures. Retryable in the batch service: a retry walks the
/// degradation ladder further down, and transient pressure may have cleared.
class ResourceError : public std::runtime_error, public Error {
 public:
  explicit ResourceError(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kResource, what) {}
};

/// Thrown by the process-isolation supervisor when a sandboxed job child died
/// without delivering a result: killed by a signal (SIGSEGV, SIGABRT, SIGBUS,
/// the kernel OOM-killer's SIGKILL), or exited with a code that carries no
/// taxonomy meaning. The crash is contained to the job — the supervisor and
/// every other job keep running — and the message names the signal / exit
/// code plus a tail of the child's captured stderr. Retryable in the batch
/// service under a dedicated per-job crash cap (a crashing job gets fewer
/// retries than a merely flaky one).
class CrashError : public std::runtime_error, public Error {
 public:
  explicit CrashError(const std::string& what)
      : std::runtime_error(what), Error(ErrorCode::kCrash, what) {}
};

/// Thrown on malformed input text. what() reads
/// "source:line:column: message (near 'token')" so editors and humans can
/// jump straight to the failure; the structured fields are also exposed for
/// machine-readable reporting.
class ParseError : public std::runtime_error, public Error {
 public:
  ParseError(std::string source, std::size_t line, std::size_t column, const std::string& message,
             std::string token = "");

  /// Source name: a path, or "<stream>" for in-memory parses.
  const std::string& source() const { return source_; }
  /// 1-based line of the failure (0 when unknown, e.g. unexpected EOF
  /// position reported at the last line read).
  std::size_t line() const { return line_; }
  /// 1-based column of the offending token; 0 when the whole line is at
  /// fault.
  std::size_t column() const { return column_; }
  /// The offending token, if one was isolated.
  const std::string& token() const { return token_; }

 private:
  std::string source_;
  std::size_t line_;
  std::size_t column_;
  std::string token_;
};

/// Renders a taxonomy error as a single-line JSON object:
///   {"error":"parse","exit_code":3,"message":"...","source":"...",
///    "line":12,"column":7,"token":"NAND"}
/// (location fields only for ParseError). Strings are JSON-escaped.
std::string error_json(const Error& error);

/// Renders an untyped exception the same way, as {"error":"internal",...}.
std::string error_json(const std::exception& error);

/// Installs a std::terminate handler of last resort: any exception that slips
/// past main's catch blocks (a throwing destructor during unwinding, a
/// detached thread, a noexcept violation) is rendered to stderr — as the
/// one-line error_json record when `json_errors` is set, as a plain
/// "error: ..." line otherwise — and the process _exits with the taxonomy
/// exit code instead of aborting with no report. Call once, early in main.
void install_terminate_handler(bool json_errors);

}  // namespace rgleak
