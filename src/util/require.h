#pragma once
// Precondition / invariant checking for rgleak.
//
// RGLEAK_REQUIRE(cond, msg)  — throws rgleak::ContractViolation when `cond` is
// false. Used for API preconditions; always on (these checks are cheap relative
// to the numerical work this library does).
//
// The exception taxonomy itself (ContractViolation, NumericalError, ParseError,
// IoError, ConfigError) lives in util/error.h; this header re-exports it so the
// many existing `#include "util/require.h"` sites keep compiling.

#include <sstream>
#include <string>

#include "util/error.h"

namespace rgleak {

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "rgleak contract violation: " << msg << " [" << expr << "] at " << file << ":" << line;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace rgleak

#define RGLEAK_REQUIRE(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) ::rgleak::detail::contract_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
