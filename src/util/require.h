#pragma once
// Precondition / invariant checking for rgleak.
//
// RGLEAK_REQUIRE(cond, msg)  — throws rgleak::ContractViolation when `cond` is
// false. Used for API preconditions; always on (these checks are cheap relative
// to the numerical work this library does).

#include <sstream>
#include <stdexcept>
#include <string>

namespace rgleak {

/// Thrown when a documented precondition or invariant of the library is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a numerical routine fails to converge or receives an
/// ill-conditioned problem (distinct from caller bugs, which are
/// ContractViolation).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "rgleak contract violation: " << msg << " [" << expr << "] at " << file << ":" << line;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace rgleak

#define RGLEAK_REQUIRE(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) ::rgleak::detail::contract_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
