#pragma once
// Deadline-aware run control: cooperative cancellation for long-running work.
//
// A RunControl is shared between a driver (which arms a deadline, or requests
// a stop from a signal handler or another thread) and the compute kernels
// (which poll it between chunks of work). Design constraints, in order:
//
//  * unarmed cost — a poll on a RunControl with no deadline and no stop
//    request is ONE relaxed atomic load (same budget discipline as the
//    failpoint registry), so run control can stay threaded through every hot
//    path permanently;
//  * signal safety — request_stop() touches only lock-free atomics, so a
//    SIGINT handler may call it directly;
//  * latching — once stopped (explicitly or by deadline expiry) the state
//    never un-stops, and the first reason wins; kernels several layers deep
//    all observe the same verdict.
//
// Kernels poll at chunk granularity (a tile of the exact pairwise sum, one
// FFT type-pair batch, one MC trial), so cancellation latency is bounded by
// one chunk plus whatever delay a task injects (see the failpoint tests).

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/error.h"

namespace rgleak::util {

/// Why a run was stopped.
enum class StopReason : std::uint8_t {
  kNone = 0,       ///< still running
  kCancelled = 1,  ///< request_stop(): SIGINT, another thread, pool stop()
  kDeadline = 2,   ///< the armed deadline passed
  kStalled = 3,    ///< a watchdog saw no progress heartbeat for too long
};

class RunControl {
 public:
  using Clock = std::chrono::steady_clock;

  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Request a cooperative stop. Async-signal-safe and thread-safe; the first
  /// recorded reason wins. `reason` defaults to explicit cancellation.
  void request_stop(StopReason reason = StopReason::kCancelled);

  /// Arm a wall-clock deadline `budget_s` seconds from now. A non-positive
  /// budget stops the run immediately (reason kDeadline).
  void arm_budget(double budget_s);
  /// Arm an absolute deadline.
  void arm_deadline(Clock::time_point when);

  /// Link a parent control: once the parent stops, polls on this control stop
  /// too (the parent's reason is latched here). This is how a nested control
  /// — a budgeted estimator's internal deadline, a batch job's watchdog —
  /// composes with an outer stop source (SIGINT, batch shutdown) without
  /// merging their deadlines. Call before sharing this control across
  /// threads; the parent must outlive this control.
  void set_parent(const RunControl* parent);

  /// True once a deadline has been armed or a stop requested (i.e. polls can
  /// no longer take the single-load fast path).
  bool armed() const { return state_.load(std::memory_order_relaxed) != kIdle; }

  /// Should the work stop? Fast path (nothing armed): one relaxed atomic
  /// load. With a deadline armed this also reads the clock and latches
  /// kDeadline on expiry.
  bool should_stop() const;

  /// should_stop() without the heartbeat: evaluates deadline/parent and
  /// latches exactly the same, but registers no progress. For observers that
  /// poll on a worker's behalf — the subprocess supervisor watching a
  /// sandboxed child — where beating would mask the child's own stall from
  /// the watchdog sampling this control.
  bool stop_pending() const;

  /// Reason the run stopped (kNone while still running). Does NOT beat: a
  /// watchdog may read it without registering as the worker's progress.
  StopReason reason() const;

  /// Record one unit of cooperative progress (one trial, one tile, one pool
  /// tick). poll() and should_stop() beat automatically, so any kernel that
  /// already polls publishes a heartbeat for free; a wedged kernel that stops
  /// polling goes flat — which is exactly the signal a stall watchdog needs.
  /// One relaxed fetch_add; safe from any thread.
  void beat() const {
    beats_.fetch_add(1, std::memory_order_relaxed);
    if (auto* sink = beat_sink_.load(std::memory_order_relaxed); sink != nullptr)
      sink->fetch_add(1, std::memory_order_relaxed);
  }

  /// Monotonic heartbeat counter since construction. Does NOT beat. When a
  /// source was adopted (adopt_beats_from) its count is folded in, so a stall
  /// watchdog sampling this control sees progress published from the other
  /// side of a process boundary.
  std::uint64_t beats() const {
    std::uint64_t n = beats_.load(std::memory_order_relaxed);
    if (const auto* src = beat_source_.load(std::memory_order_acquire); src != nullptr)
      n += src->load(std::memory_order_relaxed);
    return n;
  }

  /// Mirror every beat() into `sink` as well (a cross-process shared-memory
  /// counter: a sandboxed job child mirrors its heartbeats into a page the
  /// parent supervisor maps). `sink` must outlive the control. Null detaches.
  void mirror_beats_to(std::atomic<std::uint64_t>* sink) {
    beat_sink_.store(sink, std::memory_order_release);
  }

  /// Fold an external heartbeat counter into beats() (the parent supervisor
  /// adopts the shared page its child mirrors into, so the stall monitor
  /// works unchanged across the process boundary). `source` must stay mapped
  /// until detach_beat_source().
  void adopt_beats_from(const std::atomic<std::uint64_t>* source) {
    beat_source_.store(source, std::memory_order_release);
  }

  /// Folds the adopted counter's final value into beats() and detaches it.
  /// Must run before the adopted memory is unmapped; concurrent beats()
  /// readers (the stall monitor) stay safe throughout — they see at worst a
  /// momentary double count between the fold and the detach, never a read of
  /// freed memory.
  void detach_beat_source() {
    if (const auto* src = beat_source_.load(std::memory_order_acquire); src != nullptr) {
      beats_.fetch_add(src->load(std::memory_order_relaxed), std::memory_order_relaxed);
      beat_source_.store(nullptr, std::memory_order_release);
    }
  }

  /// Seconds left before the armed deadline; +infinity when no deadline is
  /// armed, clamped at 0 once expired.
  double remaining_s() const;

  /// Poll-and-throw: raises DeadlineExceeded (naming `site` and the reason)
  /// when the run should stop. Kernels call this between chunks.
  void poll(const char* site) const;

  /// Builds the DeadlineExceeded a stopped run should raise; poll() and
  /// drivers that need to checkpoint before throwing both use this.
  DeadlineExceeded make_error(const char* site) const;

 private:
  // state_ bit set: kStopBit latched stop, kDeadlineBit deadline armed,
  // kParentBit parent linked (polls must consult it).
  static constexpr int kIdle = 0;
  static constexpr int kStopBit = 1;
  static constexpr int kDeadlineBit = 2;
  static constexpr int kParentBit = 4;

  mutable std::atomic<int> state_{kIdle};
  mutable std::atomic<std::uint8_t> reason_{0};  // StopReason, first writer wins
  mutable std::atomic<std::uint64_t> beats_{0};  // progress heartbeat counter
  // Written before kDeadlineBit is released, read after it is acquired.
  std::atomic<Clock::time_point::rep> deadline_ticks_{0};
  const RunControl* parent_ = nullptr;  // set before sharing, then read-only
  // Heartbeat bridging across a process boundary. Atomic pointers: the
  // supervisor attaches/detaches the shared page while the stall monitor
  // samples beats() concurrently.
  mutable std::atomic<std::atomic<std::uint64_t>*> beat_sink_{nullptr};
  std::atomic<const std::atomic<std::uint64_t>*> beat_source_{nullptr};

  void latch(StopReason reason) const;
};

}  // namespace rgleak::util
