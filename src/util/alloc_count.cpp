// Counting replacements for the global allocation functions (see
// alloc_count.h). Every variant funnels through counting_alloc so the
// counters see aligned, nothrow, and array forms alike.

#include "util/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_bytes{0};

void* counting_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counting_alloc_aligned(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) return nullptr;
  return p;
}

}  // namespace

namespace rgleak::util {

std::size_t allocation_count() { return g_allocations.load(std::memory_order_relaxed); }
std::size_t allocated_bytes() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace rgleak::util

void* operator new(std::size_t size) {
  if (void* p = counting_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counting_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counting_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counting_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counting_alloc_aligned(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counting_alloc_aligned(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counting_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counting_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
