#pragma once
// Small text/CSV table writer used by the benchmark harness to print the
// rows/series corresponding to each table and figure in the paper.

#include <iosfwd>
#include <string>
#include <vector>

namespace rgleak::util {

/// Column-aligned text table with an optional CSV dump. Cells are strings;
/// numeric helpers format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_* calls append cells to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 4);
  Table& cell(long long value);

  /// Renders the table, column-aligned, to `os`.
  void print(std::ostream& os) const;
  /// Renders the table as CSV to `os`.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rgleak::util
