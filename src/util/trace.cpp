#include "util/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <vector>

#include "util/crc32.h"
#include "util/error.h"

namespace rgleak::util::trace {

namespace {

// The armed trace target. Plain atomics only: a forked child inherits both
// the descriptor and the counter state and keeps appending safely (O_APPEND),
// and no lock can be left held across fork by another thread.
std::atomic<int> g_fd{-1};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<bool> g_env_checked{false};

// Current span nesting per thread. Inherited by forked children (fork clones
// the calling thread's stack), which is exactly what parents child phase
// spans to the supervisor-side attempt span.
thread_local std::vector<std::string> t_stack;

std::vector<std::string>& stack() { return t_stack; }

void check_env_once() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  g_env_checked.store(true, std::memory_order_release);
  if (g_fd.load(std::memory_order_relaxed) >= 0) return;
  const char* path = std::getenv("RGLEAK_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  int expected = -1;
  if (!g_fd.compare_exchange_strong(expected, fd, std::memory_order_acq_rel)) ::close(fd);
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::int64_t steady_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count();
}

}  // namespace

void open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0)
    throw IoError("trace: cannot open '" + path + "': " + std::strerror(errno));
  const int old = g_fd.exchange(fd, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
  g_env_checked.store(true, std::memory_order_release);
}

void close() {
  const int old = g_fd.exchange(-1, std::memory_order_acq_rel);
  if (old >= 0) ::close(old);
}

bool enabled() {
  check_env_once();
  return g_fd.load(std::memory_order_acquire) >= 0;
}

Span::Span(std::string_view name, std::string_view job, int attempt) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  job_ = job;
  attempt_ = attempt;
  uncaught_ = std::uncaught_exceptions();
  // Span ids are "<pid>:<seq>". getpid() at construction, not a cached
  // value: a span created after fork must carry the child's pid so ids stay
  // unique across the supervisor and its sandboxed children (both inherit
  // the same seq counter state).
  id_ = std::to_string(static_cast<long>(::getpid())) + ':' +
        std::to_string(g_seq.fetch_add(1, std::memory_order_relaxed));
  auto& st = stack();
  if (!st.empty()) parent_ = st.back();
  st.push_back(id_);
  start_ = std::chrono::steady_clock::now();
}

void Span::set_outcome(std::string_view outcome) { outcome_ = outcome; }

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  auto& st = stack();
  // Pop this span (normally the top; be tolerant if an intermediate frame
  // skipped destruction, e.g. after a longjmp-style exit path).
  for (std::size_t i = st.size(); i > 0; --i) {
    if (st[i - 1] == id_) {
      st.erase(st.begin() + static_cast<std::ptrdiff_t>(i - 1), st.end());
      break;
    }
  }
  const int fd = g_fd.load(std::memory_order_acquire);
  if (fd < 0) return;
  std::string out = "{\"span\":";
  append_json_string(out, id_);
  out += ",\"parent\":";
  append_json_string(out, parent_);
  out += ",\"name\":";
  append_json_string(out, name_);
  out += ",\"job\":";
  append_json_string(out, job_);
  out += ",\"attempt\":";
  out += std::to_string(attempt_);
  out += ",\"t_ns\":";
  out += std::to_string(steady_ns(start_));
  out += ",\"wall_ns\":";
  out += std::to_string(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
  out += ",\"outcome\":";
  if (!outcome_.empty())
    append_json_string(out, outcome_);
  else
    append_json_string(out, std::uncaught_exceptions() > uncaught_ ? "error" : "ok");
  out += '}';
  // Same integrity trailer as journal records: CRC32 of the record as
  // rendered without the crc field, inserted before the closing brace.
  out.insert(out.size() - 1, ",\"crc\":\"" + crc32_hex(crc32(out)) + "\"");
  out += '\n';
  // One write() on an O_APPEND fd: concurrent writers (threads AND forked
  // children) interleave whole lines, never shear them. A failed or short
  // write drops the span — tracing never takes down the run.
  (void)!::write(fd, out.data(), out.size());
}

}  // namespace rgleak::util::trace
