#pragma once
// Reusable fixed-size worker pool with a blocking parallel_for.
//
// Design goals, in order:
//  * determinism — parallel_for runs an indexed task set; callers that write
//    per-index results and reduce them in index order get results that are
//    independent of the thread count and of scheduling;
//  * reuse — workers persist across parallel_for calls, so per-call cost is a
//    wakeup, not a thread spawn (the MC engine and the exact estimator issue
//    many small parallel regions);
//  * safety — exceptions thrown by tasks are captured and rethrown on the
//    calling thread once the region completes;
//  * cooperative stop — a job can be cancelled mid-flight, either through a
//    RunControl passed to parallel_for (deadline or external stop) or through
//    stop() on the pool itself. Workers drain: each finishes the index it is
//    executing and claims no more, so cancellation latency is bounded by one
//    index. A drained job raises DeadlineExceeded on the calling thread; the
//    pool itself stays usable (shared pools are never torn down by a stop).

#include <cstddef>
#include <functional>
#include <memory>

#include "util/run_control.h"

namespace rgleak::util {

class ThreadPool {
 public:
  /// `threads` = total worker count used by parallel_for (the calling thread
  /// participates, so only threads-1 workers are spawned). 0 picks the
  /// hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads parallel_for spreads work over (>= 1).
  std::size_t size() const;

  /// Run fn(i) for every i in [0, count), spread over the pool; blocks until
  /// all indices are done. Indices are claimed dynamically, so `fn` must not
  /// assume any execution order; determinism comes from indexed outputs.
  /// Reentrant calls from inside a task run inline on the calling thread.
  ///
  /// When `run` is non-null it is polled (one relaxed load unarmed) before
  /// every index claim; once it reports stop, workers drain and parallel_for
  /// throws DeadlineExceeded after the rendezvous. A task exception takes
  /// precedence over cancellation.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    const RunControl* run = nullptr);

  /// Cooperatively cancels the parallel_for currently in flight on this pool
  /// (no-op when idle): workers finish their current index, drain, and the
  /// blocked parallel_for call throws DeadlineExceeded. The pool remains
  /// usable for subsequent jobs — this is how a long-running job on a shared
  /// (process-wide, never-destroyed) pool is interrupted.
  void stop();

  /// Process-wide pool sized to the hardware, built on first use.
  static ThreadPool& shared();

  /// Process-wide pool with exactly `threads` workers, built on first use and
  /// cached per thread count, so repeated calls with a pinned count reuse
  /// workers instead of respawning them. `threads` = 0 returns shared().
  static ThreadPool& shared(std::size_t threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rgleak::util
