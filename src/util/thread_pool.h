#pragma once
// Reusable fixed-size worker pool with a blocking parallel_for.
//
// Design goals, in order:
//  * determinism — parallel_for runs an indexed task set; callers that write
//    per-index results and reduce them in index order get results that are
//    independent of the thread count and of scheduling;
//  * reuse — workers persist across parallel_for calls, so per-call cost is a
//    wakeup, not a thread spawn (the MC engine and the exact estimator issue
//    many small parallel regions);
//  * safety — exceptions thrown by tasks are captured and rethrown on the
//    calling thread once the region completes.

#include <cstddef>
#include <functional>
#include <memory>

namespace rgleak::util {

class ThreadPool {
 public:
  /// `threads` = total worker count used by parallel_for (the calling thread
  /// participates, so only threads-1 workers are spawned). 0 picks the
  /// hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads parallel_for spreads work over (>= 1).
  std::size_t size() const;

  /// Run fn(i) for every i in [0, count), spread over the pool; blocks until
  /// all indices are done. Indices are claimed dynamically, so `fn` must not
  /// assume any execution order; determinism comes from indexed outputs.
  /// Reentrant calls from inside a task run inline on the calling thread.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized to the hardware, built on first use.
  static ThreadPool& shared();

  /// Process-wide pool with exactly `threads` workers, built on first use and
  /// cached per thread count, so repeated calls with a pinned count reuse
  /// workers instead of respawning them. `threads` = 0 returns shared().
  static ThreadPool& shared(std::size_t threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rgleak::util
