#pragma once
// Locale-independent numeric formatting.
//
// printf-family and ostream double formatting honor LC_NUMERIC, so a process
// started under e.g. LC_ALL=de_DE.UTF-8 emits "3,14" — which the strict JSONL
// parsers (journal, result pipe, bench JSON) then refuse. Every writer that
// produces machine-readable numbers goes through these helpers instead; they
// are specified to match the C locale exactly regardless of the process
// locale (std::to_chars is locale-independent by definition).

#include <string>
#include <string_view>

namespace rgleak::util {

/// C-locale equivalent of snprintf("%.*g", precision, value).
/// Non-finite values format as "nan", "inf", "-inf" (matching glibc printf).
std::string format_double(double value, int precision = 17);

/// C-locale equivalent of snprintf("%.*f", precision, value).
std::string format_double_fixed(double value, int precision);

/// Locale-independent strtod over the WHOLE string (decimal or scientific
/// form, plus "inf"/"nan" spellings). Returns false unless every character
/// was consumed. Stricter than std::stod: no leading whitespace, no '+'
/// sign, no hex floats — i.e. exactly the JSON-compatible subset.
bool parse_double(std::string_view text, double& out);

}  // namespace rgleak::util
