#include "util/backoff.h"

#include <algorithm>

namespace rgleak::util {

namespace {

// SplitMix64 (Steele et al.): tiny, full-period, and good enough for jitter.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  // 53 random bits into [0, 1).
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

double next_backoff_ms(const BackoffPolicy& policy, BackoffState& state) {
  const double base = std::max(0.0, policy.base_ms);
  const double hi = std::max(base, state.prev_ms * std::max(1.0, policy.multiplier));
  double delay = base + (hi - base) * uniform01(state.rng);
  delay = std::min(delay, policy.cap_ms);
  state.prev_ms = delay;
  return delay;
}

BackoffState backoff_state_for(std::uint64_t seed) {
  BackoffState st;
  st.rng = seed ^ 0x9e3779b97f4a7c15ULL;
  return st;
}

std::uint64_t backoff_job_hash(const char* id) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = id; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rgleak::util
