#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for integrity trailers on
// crash-critical files: MC checkpoints carry a whole-file trailer and batch
// journal lines a per-record checksum, so a torn write, a bit flip, or a
// filesystem that lied about durability is rejected at read time with a
// located ParseError instead of silently resuming from corrupt state.
//
// Software table-driven implementation (the container has no zlib); ~500 MB/s
// is far above what the text formats it guards ever reach.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rgleak::util {

/// CRC of `data` continuing from `seed` (pass the previous return value to
/// checksum a file in chunks). The default seed starts a fresh checksum.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Renders a CRC as the fixed-width lowercase hex the file trailers use.
/// Always 8 characters, zero-padded.
std::string crc32_hex(std::uint32_t crc);

/// Parses an 8-character lowercase/uppercase hex CRC. Returns false on any
/// other shape (wrong length, non-hex characters).
bool parse_crc32_hex(std::string_view text, std::uint32_t& out);

}  // namespace rgleak::util
