#include "util/metrics.h"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/format.h"

namespace rgleak::util::metrics {

namespace {

// Minimal JSON string escaping for instrument names (dotted identifiers in
// practice, but snapshot output must stay valid JSON for any name).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string bits_hex(double v) {
  char buf[17];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, std::bit_cast<std::uint64_t>(v), 16);
  (void)ec;
  return std::string(buf, end);
}

bool parse_u64(std::string_view s, std::uint64_t& out, int base = 10) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out, base);
  return ec == std::errc() && p == s.data() + s.size();
}

bool parse_bits(std::string_view s, double& out) {
  std::uint64_t bits = 0;
  if (!parse_u64(s, bits, 16)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

// Splits `s` on `sep`, invoking `fn` per piece (pieces may be empty).
template <typename Fn>
void for_each_piece(std::string_view s, char sep, Fn&& fn) {
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    fn(s.substr(start, end - start));
    start = end + 1;
  }
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // also catches NaN
  const int e = std::ilogb(v);                    // floor(log2(v))
  const int idx = e + 11;  // bucket 1 starts at 2^-10
  if (idx < 0) return 0;
  if (idx >= kBuckets) return kBuckets - 1;
  return idx;
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.try_emplace(std::string(name)).first;
  return it->second;
}

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    out += format_double(h.sum());
    out += ",\"max\":";
    out += format_double(h.max());
    out += ",\"buckets\":{";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket(i);
      if (n == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '"';
      out += std::to_string(i);
      out += "\":";
      out += std::to_string(n);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist& hs = snap.histograms[name];
    hs.count = h.count();
    hs.sum = h.sum();
    hs.max = h.max();
    for (int i = 0; i < Histogram::kBuckets; ++i) hs.buckets[i] = h.bucket(i);
  }
  return snap;
}

std::string Registry::encode_delta(const Snapshot& base) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto sep = [&] {
    if (!out.empty()) out += ';';
  };
  for (const auto& [name, c] : counters_) {
    std::uint64_t before = 0;
    if (auto it = base.counters.find(name); it != base.counters.end()) before = it->second;
    const std::uint64_t now = c.value();
    if (now <= before) continue;
    sep();
    out += "c|";
    out += name;
    out += '|';
    out += std::to_string(now - before);
  }
  for (const auto& [name, h] : histograms_) {
    const Snapshot::Hist* before = nullptr;
    if (auto it = base.histograms.find(name); it != base.histograms.end()) before = &it->second;
    const std::uint64_t dcount = h.count() - (before != nullptr ? before->count : 0);
    if (dcount == 0) continue;
    sep();
    out += "h|";
    out += name;
    out += '|';
    out += std::to_string(dcount);
    out += '|';
    out += bits_hex(h.sum() - (before != nullptr ? before->sum : 0.0));
    out += '|';
    out += bits_hex(h.max());  // max does not difference; ship the child max
    out += '|';
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t d = h.bucket(i) - (before != nullptr ? before->buckets[i] : 0);
      if (d == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += std::to_string(i);
      out += ':';
      out += std::to_string(d);
    }
  }
  return out;
}

void Registry::merge_delta(std::string_view text) {
  if (text.empty()) return;
  for_each_piece(text, ';', [&](std::string_view rec) {
    if (rec.empty()) return;
    // Split on '|' into at most 6 fields.
    std::string_view f[6];
    int nf = 0;
    std::size_t start = 0;
    while (nf < 6 && start <= rec.size()) {
      std::size_t end = rec.find('|', start);
      if (end == std::string_view::npos) end = rec.size();
      f[nf++] = rec.substr(start, end - start);
      start = end + 1;
    }
    if (nf >= 3 && f[0] == "c") {
      std::uint64_t n = 0;
      if (parse_u64(f[2], n)) counter(f[1]).add(n);
      return;
    }
    if (nf >= 6 && f[0] == "h") {
      std::uint64_t count = 0;
      double sum = 0.0;
      double mx = 0.0;
      if (!parse_u64(f[2], count) || !parse_bits(f[3], sum) || !parse_bits(f[4], mx)) return;
      Histogram& h = histogram(f[1]);
      std::uint64_t bucket_total = 0;
      for_each_piece(f[5], ',', [&](std::string_view pair) {
        if (pair.empty()) return;
        const std::size_t colon = pair.find(':');
        if (colon == std::string_view::npos) return;
        std::uint64_t idx = 0;
        std::uint64_t n = 0;
        if (!parse_u64(pair.substr(0, colon), idx) || !parse_u64(pair.substr(colon + 1), n))
          return;
        if (idx >= static_cast<std::uint64_t>(Histogram::kBuckets)) return;
        h.buckets_[idx].fetch_add(n, std::memory_order_relaxed);
        bucket_total += n;
      });
      h.count_.fetch_add(count, std::memory_order_relaxed);
      h.sum_.fetch_add(sum, std::memory_order_relaxed);
      double seen = h.max_.load(std::memory_order_relaxed);
      while (mx > seen && !h.max_.compare_exchange_weak(seen, mx, std::memory_order_relaxed)) {
      }
      (void)bucket_total;
    }
    // Unknown kinds: ignored (forward compatibility).
  });
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g.set(0);
  for (auto& [name, h] : histograms_) {
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0.0, std::memory_order_relaxed);
    h.max_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace rgleak::util::metrics
