#include "netlist/netlist.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::netlist {

Netlist::Netlist(std::string name, const cells::StdCellLibrary* library,
                 std::vector<GateInstance> gates)
    : name_(std::move(name)), library_(library), gates_(std::move(gates)) {
  RGLEAK_REQUIRE(library_ != nullptr, "netlist needs a library");
  RGLEAK_REQUIRE(!gates_.empty(), "netlist needs at least one gate");
  for (const auto& g : gates_)
    RGLEAK_REQUIRE(g.cell_index < library_->size(), "gate references unknown cell");
}

const GateInstance& Netlist::gate(std::size_t i) const {
  RGLEAK_REQUIRE(i < gates_.size(), "gate index out of range");
  return gates_[i];
}

void UsageHistogram::validate() const {
  RGLEAK_REQUIRE(!alphas.empty(), "usage histogram is empty");
  double total = 0.0;
  for (double a : alphas) {
    RGLEAK_REQUIRE(a >= 0.0, "usage frequencies must be non-negative");
    total += a;
  }
  RGLEAK_REQUIRE(std::abs(total - 1.0) < 1e-6, "usage frequencies must sum to 1");
}

UsageHistogram extract_usage(const Netlist& netlist) {
  UsageHistogram h;
  h.alphas.assign(netlist.library().size(), 0.0);
  for (const auto& g : netlist.gates()) h.alphas[g.cell_index] += 1.0;
  for (double& a : h.alphas) a /= static_cast<double>(netlist.size());
  return h;
}

UsageHistogram usage_from_counts(const cells::StdCellLibrary& library,
                                 const std::vector<std::pair<std::string, std::size_t>>& counts) {
  UsageHistogram h;
  h.alphas.assign(library.size(), 0.0);
  std::size_t total = 0;
  for (const auto& [name, count] : counts) {
    h.alphas[library.index_of(name)] += static_cast<double>(count);
    total += count;
  }
  RGLEAK_REQUIRE(total > 0, "usage counts are all zero");
  for (double& a : h.alphas) a /= static_cast<double>(total);
  return h;
}

}  // namespace rgleak::netlist
