#pragma once
// The nine ISCAS85 benchmark circuits used in Table 1 of the paper, mapped
// onto the virtual 90 nm library.
//
// Substitution note (DESIGN.md §2): the original placed-and-routed netlists
// are not available offline, so each circuit is represented by its published
// total gate count plus a synthesized per-type composition consistent with
// the benchmark's documented structure (e.g. c6288 is a NOR/AND multiplier
// array; c499/c1355 are XOR-rich ECC circuits). Table 1 only consumes the
// high-level characteristics (histogram, gate count, layout dims) plus a
// placement, so the experiment's comparison is preserved.

#include <string>
#include <vector>

#include "math/rng.h"
#include "netlist/netlist.h"

namespace rgleak::netlist {

/// Descriptor of one benchmark: name, and (cell name, count) composition.
struct Iscas85Descriptor {
  std::string name;
  std::vector<std::pair<std::string, std::size_t>> composition;

  std::size_t total_gates() const;
};

/// All nine circuits of Table 1 (c432 ... c7552), in the paper's order.
const std::vector<Iscas85Descriptor>& iscas85_descriptors();

/// Instantiates a benchmark as a netlist over `library` (shuffled gate order
/// so a row-major placement scatters types across the die).
Netlist make_iscas85(const Iscas85Descriptor& descriptor,
                     const cells::StdCellLibrary& library, math::Rng& rng);

}  // namespace rgleak::netlist
