#include "netlist/random_circuit.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.h"

namespace rgleak::netlist {

Netlist generate_random_circuit(const cells::StdCellLibrary& library,
                                const UsageHistogram& usage, std::size_t n, math::Rng& rng,
                                UsageMatch match, const std::string& name) {
  usage.validate();
  RGLEAK_REQUIRE(usage.alphas.size() == library.size(), "histogram/library size mismatch");
  RGLEAK_REQUIRE(n >= 1, "circuit needs at least one gate");

  std::vector<GateInstance> gates;
  gates.reserve(n);

  if (match == UsageMatch::kIid) {
    // Inverse-CDF draw per gate.
    std::vector<double> cdf(usage.alphas.size());
    std::partial_sum(usage.alphas.begin(), usage.alphas.end(), cdf.begin());
    for (std::size_t g = 0; g < n; ++g) {
      const double u = rng.uniform() * cdf.back();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      gates.push_back({static_cast<std::size_t>(it - cdf.begin())});
    }
  } else {
    // Largest-remainder apportionment: floor everything, then hand out the
    // remaining gates to the largest fractional parts.
    const double dn = static_cast<double>(n);
    std::vector<std::size_t> count(usage.alphas.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainder;
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < usage.alphas.size(); ++i) {
      const double ideal = usage.alphas[i] * dn;
      count[i] = static_cast<std::size_t>(std::floor(ideal));
      assigned += count[i];
      remainder.emplace_back(ideal - std::floor(ideal), i);
    }
    std::sort(remainder.begin(), remainder.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t r = 0; assigned < n; ++r, ++assigned) count[remainder[r % remainder.size()].second]++;
    for (std::size_t i = 0; i < count.size(); ++i)
      for (std::size_t k = 0; k < count[i]; ++k) gates.push_back({i});
  }

  // Fisher-Yates shuffle: random assignment of types to placement order.
  for (std::size_t i = gates.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(gates[i - 1], gates[j]);
  }
  return Netlist(name, &library, std::move(gates));
}

}  // namespace rgleak::netlist
