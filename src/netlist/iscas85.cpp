#include "netlist/iscas85.h"

#include "util/require.h"

namespace rgleak::netlist {

std::size_t Iscas85Descriptor::total_gates() const {
  std::size_t n = 0;
  for (const auto& [name, count] : composition) n += count;
  return n;
}

const std::vector<Iscas85Descriptor>& iscas85_descriptors() {
  // Totals follow the published ISCAS85 gate counts; the per-type split is a
  // synthesized composition consistent with each circuit's documented
  // character (see header comment).
  static const std::vector<Iscas85Descriptor> kCircuits = {
      {"c432",  // 36-input priority decoder: NAND/NOR tree + XOR layer
       {{"NAND2_X1", 60}, {"NAND3_X1", 20}, {"NOR2_X1", 22}, {"INV_X1", 40}, {"XOR2_X1", 18}}},
      {"c499",  // 32-bit SEC circuit: XOR dominated
       {{"XOR2_X1", 104}, {"AND2_X1", 40}, {"OR2_X1", 18}, {"INV_X1", 40}}},
      {"c880",  // 8-bit ALU
       {{"NAND2_X1", 120}, {"NAND3_X1", 30}, {"NAND4_X1", 14}, {"NOR2_X1", 60},
        {"AND2_X1", 35}, {"OR2_X1", 30}, {"INV_X1", 64}, {"BUF_X1", 30}}},
      {"c1355",  // 32-bit SEC (NAND-mapped version of c499)
       {{"NAND2_X1", 416}, {"AND2_X1", 40}, {"OR2_X1", 18}, {"INV_X1", 40}, {"BUF_X1", 32}}},
      {"c1908",  // 16-bit SEC/DED
       {{"NAND2_X1", 350}, {"NAND3_X1", 60}, {"NOR2_X1", 90}, {"XOR2_X1", 60}, {"INV_X1", 280},
        {"BUF_X1", 40}}},
      {"c2670",  // 12-bit ALU and controller
       {{"NAND2_X1", 380}, {"NAND3_X1", 70}, {"NAND4_X1", 30}, {"NOR2_X1", 150},
        {"AND2_X1", 160}, {"OR2_X1", 90}, {"INV_X1", 250}, {"BUF_X1", 63}}},
      {"c5315",  // 9-bit ALU
       {{"NAND2_X1", 750}, {"NAND3_X1", 150}, {"NAND4_X1", 60}, {"NOR2_X1", 300},
        {"AND2_X1", 280}, {"OR2_X1", 180}, {"AOI21_X1", 100}, {"OAI21_X1", 80},
        {"INV_X1", 327}, {"BUF_X1", 80}}},
      {"c6288",  // 16x16 multiplier: NOR/AND carry-save array
       {{"NOR2_X1", 1860}, {"AND2_X1", 256}, {"INV_X1", 300}}},
      {"c7552",  // 32-bit adder/comparator
       {{"NAND2_X1", 1100}, {"NAND3_X1", 200}, {"NAND4_X1", 80}, {"NOR2_X1", 450},
        {"AND2_X1", 400}, {"OR2_X1", 250}, {"XOR2_X1", 150}, {"AOI21_X1", 120},
        {"OAI21_X1", 100}, {"INV_X1", 562}, {"BUF_X1", 100}}},
  };
  return kCircuits;
}

Netlist make_iscas85(const Iscas85Descriptor& descriptor, const cells::StdCellLibrary& library,
                     math::Rng& rng) {
  std::vector<GateInstance> gates;
  gates.reserve(descriptor.total_gates());
  for (const auto& [name, count] : descriptor.composition) {
    const std::size_t idx = library.index_of(name);
    for (std::size_t k = 0; k < count; ++k) gates.push_back({idx});
  }
  RGLEAK_REQUIRE(!gates.empty(), "benchmark has no gates");
  for (std::size_t i = gates.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(gates[i - 1], gates[j]);
  }
  return Netlist(descriptor.name, &library, std::move(gates));
}

}  // namespace rgleak::netlist
