#pragma once
// Gate-level netlist abstraction and the high-level-characteristics
// extraction the paper's late-mode flow performs (cell-usage histogram, gate
// count; layout dimensions come from the placement).

#include <cstddef>
#include <string>
#include <vector>

#include "cells/library.h"

namespace rgleak::netlist {

/// One placed-or-unplaced gate instance: its library cell index.
struct GateInstance {
  std::size_t cell_index = 0;
};

/// A netlist over a given library. Connectivity is not modeled — leakage does
/// not depend on it (interconnect leakage is excluded, as in the paper).
class Netlist {
 public:
  Netlist(std::string name, const cells::StdCellLibrary* library,
          std::vector<GateInstance> gates);

  const std::string& name() const { return name_; }
  const cells::StdCellLibrary& library() const { return *library_; }
  std::size_t size() const { return gates_.size(); }
  const GateInstance& gate(std::size_t i) const;
  const std::vector<GateInstance>& gates() const { return gates_; }

 private:
  std::string name_;
  const cells::StdCellLibrary* library_;
  std::vector<GateInstance> gates_;
};

/// Frequency-of-use distribution over library cells (the alpha_i of eq. (6)).
struct UsageHistogram {
  std::vector<double> alphas;  ///< one entry per library cell, sums to 1

  /// Validates non-negativity and normalization.
  void validate() const;
};

/// Extracts the usage histogram from a netlist (late-mode extraction; linear
/// time, as footnote 1 of the paper notes).
UsageHistogram extract_usage(const Netlist& netlist);

/// Builds a histogram from (cell name, count) pairs; unlisted cells get 0.
UsageHistogram usage_from_counts(const cells::StdCellLibrary& library,
                                 const std::vector<std::pair<std::string, std::size_t>>& counts);

}  // namespace rgleak::netlist
