#pragma once
// ISCAS89 sequential benchmarks mapped onto the virtual 90 nm library — an
// extension of the paper's Table-1 protocol to flip-flop-heavy designs
// (the paper's library includes flip-flops; its benchmark set does not
// exercise them).
//
// As with ISCAS85 (see iscas85.h), the original netlists are not available
// offline: each circuit is its published gate/FF total with a synthesized
// combinational composition, which is all the Table-1 experiment consumes.

#include <string>
#include <vector>

#include "math/rng.h"
#include "netlist/netlist.h"

namespace rgleak::netlist {

struct Iscas89Descriptor {
  std::string name;
  std::vector<std::pair<std::string, std::size_t>> composition;

  std::size_t total_gates() const;
};

/// Eight circuits spanning s298 (133 gates) to s38417 (~23.8k gates).
const std::vector<Iscas89Descriptor>& iscas89_descriptors();

/// Instantiates a benchmark as a shuffled netlist over `library`.
Netlist make_iscas89(const Iscas89Descriptor& descriptor,
                     const cells::StdCellLibrary& library, math::Rng& rng);

}  // namespace rgleak::netlist
