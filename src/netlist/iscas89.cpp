#include "netlist/iscas89.h"

#include "util/require.h"

namespace rgleak::netlist {

std::size_t Iscas89Descriptor::total_gates() const {
  std::size_t n = 0;
  for (const auto& [name, count] : composition) n += count;
  return n;
}

const std::vector<Iscas89Descriptor>& iscas89_descriptors() {
  // Totals follow the published ISCAS89 gate + flip-flop counts; the
  // combinational split is synthesized (see header).
  static const std::vector<Iscas89Descriptor> kCircuits = {
      {"s298",  // 119 gates + 14 FF
       {{"NAND2_X1", 30}, {"NOR2_X1", 38}, {"INV_X1", 44}, {"BUF_X1", 7}, {"DFF_X1", 14}}},
      {"s344",  // 160 gates + 15 FF
       {{"NAND2_X1", 50}, {"NOR2_X1", 30}, {"AND2_X1", 25}, {"INV_X1", 45}, {"BUF_X1", 10},
        {"DFF_X1", 15}}},
      {"s641",  // 379 gates + 19 FF
       {{"NAND2_X1", 120}, {"NOR2_X1", 60}, {"AND2_X1", 50}, {"OR2_X1", 40}, {"INV_X1", 85},
        {"BUF_X1", 24}, {"DFF_X1", 19}}},
      {"s1196",  // 529 gates + 18 FF
       {{"NAND2_X1", 180}, {"NOR2_X1", 80}, {"AND2_X1", 70}, {"OR2_X1", 50},
        {"XOR2_X1", 30}, {"INV_X1", 99}, {"BUF_X1", 20}, {"DFF_X1", 18}}},
      {"s5378",  // 2779 gates + 179 FF
       {{"NAND2_X1", 800}, {"NOR2_X1", 500}, {"AND2_X1", 350}, {"OR2_X1", 250},
        {"AOI21_X1", 150}, {"INV_X1", 600}, {"BUF_X1", 129}, {"DFF_X1", 179}}},
      {"s9234",  // 5597 gates + 211 FF
       {{"NAND2_X1", 1700}, {"NOR2_X1", 900}, {"AND2_X1", 700}, {"OR2_X1", 500},
        {"AOI21_X1", 300}, {"OAI21_X1", 250}, {"INV_X1", 1000}, {"BUF_X1", 247},
        {"DFF_X1", 211}}},
      {"s13207",  // 7951 gates + 638 FF
       {{"NAND2_X1", 2300}, {"NOR2_X1", 1300}, {"AND2_X1", 1000}, {"OR2_X1", 700},
        {"AOI21_X1", 450}, {"OAI21_X1", 350}, {"INV_X1", 1400}, {"BUF_X1", 451},
        {"DFF_X1", 638}, {"CLKBUF_X2", 0}}},
      {"s38417",  // 22179 gates + 1636 FF
       {{"NAND2_X1", 6500}, {"NOR2_X1", 3600}, {"AND2_X1", 2800}, {"OR2_X1", 2000},
        {"AOI21_X1", 1300}, {"OAI21_X1", 1000}, {"XOR2_X1", 800}, {"INV_X1", 3300},
        {"BUF_X1", 879}, {"DFF_X1", 1636}, {"CLKBUF_X2", 364}}},
  };
  return kCircuits;
}

Netlist make_iscas89(const Iscas89Descriptor& descriptor, const cells::StdCellLibrary& library,
                     math::Rng& rng) {
  std::vector<GateInstance> gates;
  gates.reserve(descriptor.total_gates());
  for (const auto& [name, count] : descriptor.composition) {
    if (count == 0) continue;
    const std::size_t idx = library.index_of(name);
    for (std::size_t k = 0; k < count; ++k) gates.push_back({idx});
  }
  RGLEAK_REQUIRE(!gates.empty(), "benchmark has no gates");
  for (std::size_t i = gates.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(gates[i - 1], gates[j]);
  }
  return Netlist(descriptor.name, &library, std::move(gates));
}

}  // namespace rgleak::netlist
