#pragma once
// Netlist serialization: the `.rgnl` line-based text format. Gate order is
// preserved (placement is row-major in gate order, so order carries the
// spatial arrangement of types).

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace rgleak::netlist {

/// Writes a netlist to a stream (.rgnl text format).
void save_netlist(const Netlist& netlist, std::ostream& os);
void save_netlist(const Netlist& netlist, const std::string& path);

/// Reads a .rgnl stream, binding cell names against `library`.
Netlist load_netlist(const cells::StdCellLibrary& library, std::istream& is);
Netlist load_netlist(const cells::StdCellLibrary& library, const std::string& path);

}  // namespace rgleak::netlist
