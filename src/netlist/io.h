#pragma once
// Netlist serialization: the `.rgnl` line-based text format. Gate order is
// preserved (placement is row-major in gate order, so order carries the
// spatial arrangement of types).
//
// Failure contract: malformed content throws rgleak::ParseError naming the
// source and 1-based line; OS-level open/read/write failures throw
// rgleak::IoError. A throwing load never returns a partially-filled netlist.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace rgleak::netlist {

/// Writes a netlist to a stream (.rgnl text format).
void save_netlist(const Netlist& netlist, std::ostream& os);
void save_netlist(const Netlist& netlist, const std::string& path);

/// Reads a .rgnl stream, binding cell names against `library`. `source_name`
/// labels ParseErrors (the path overload passes the path).
Netlist load_netlist(const cells::StdCellLibrary& library, std::istream& is,
                     const std::string& source_name = "<stream>");
Netlist load_netlist(const cells::StdCellLibrary& library, const std::string& path);

}  // namespace rgleak::netlist
