#pragma once
// Gate-level connectivity and signal-probability propagation.
//
// The paper treats signal probability as one global knob p (section 2.1.4).
// A placed netlist carries more information: each gate's inputs are driven by
// specific nets, so per-net 1-probabilities can be propagated through the
// logic (with the standard independence assumption — reconvergent fan-out
// correlation is ignored, as in classic probabilistic switching analysis).
// This module provides the connected-netlist representation, a random-DAG
// generator for experiments, and the propagation pass; the
// connectivity-aware estimator in core/ consumes the per-gate state
// distributions it produces.

#include <vector>

#include "math/rng.h"
#include "netlist/netlist.h"

namespace rgleak::netlist {

/// One gate with its input nets. Net ids: 0..num_primary_inputs-1 are primary
/// inputs; gate g drives net num_primary_inputs + g. Inputs must reference
/// lower-numbered nets (the netlist is a DAG in construction order).
struct ConnectedGate {
  std::size_t cell_index = 0;
  std::vector<std::size_t> input_nets;
};

class ConnectedNetlist {
 public:
  ConnectedNetlist(std::string name, const cells::StdCellLibrary* library,
                   std::size_t num_primary_inputs, std::vector<ConnectedGate> gates);

  const std::string& name() const { return name_; }
  const cells::StdCellLibrary& library() const { return *library_; }
  std::size_t size() const { return gates_.size(); }
  std::size_t num_primary_inputs() const { return num_primary_inputs_; }
  std::size_t num_nets() const { return num_primary_inputs_ + gates_.size(); }
  const ConnectedGate& gate(std::size_t g) const;
  /// Net driven by gate g.
  std::size_t output_net(std::size_t g) const { return num_primary_inputs_ + g; }

  /// Drops connectivity: the plain netlist (same gate order).
  Netlist flatten() const;

 private:
  std::string name_;
  const cells::StdCellLibrary* library_;
  std::size_t num_primary_inputs_;
  std::vector<ConnectedGate> gates_;
};

/// Generates a random DAG: gates sampled from `usage` (exact-match
/// apportionment, shuffled), each input wired uniformly to one of the nets
/// already defined (primary inputs or earlier gate outputs). Cells sampled
/// for internal nodes must expose a primary output; cells without one (pure
/// leak-path cells) are rejected by precondition.
ConnectedNetlist generate_random_dag(const cells::StdCellLibrary& library,
                                     const UsageHistogram& usage, std::size_t n,
                                     std::size_t num_primary_inputs, math::Rng& rng,
                                     const std::string& name = "random-dag");

/// Propagates per-net 1-probabilities: primary-input nets take
/// `input_probability`, every gate's output net gets its cell's exact output
/// probability given its input-net probabilities. Returns one probability per
/// net.
std::vector<double> propagate_probabilities(const ConnectedNetlist& netlist,
                                            double input_probability);

/// Per-gate input-signal probabilities (one vector entry per gate input, in
/// bit order), derived from a propagated net-probability vector.
std::vector<std::vector<double>> gate_input_probabilities(
    const ConnectedNetlist& netlist, const std::vector<double>& net_probs);

}  // namespace rgleak::netlist
