#pragma once
// Random circuit generation (the Fig.-6 experiment substrate): produces
// netlists of a given size whose cell-usage histogram matches a target
// distribution, either exactly (largest-remainder apportionment, then
// shuffled) or by i.i.d. sampling.

#include "math/rng.h"
#include "netlist/netlist.h"

namespace rgleak::netlist {

/// How the generator matches the target histogram.
enum class UsageMatch {
  kExact,  ///< per-cell counts = round(alpha_i * n) via largest remainder
  kIid,    ///< each gate drawn i.i.d. from the histogram
};

/// Generates a random netlist of `n` gates over `library` matching `usage`.
/// The gate order is shuffled (which, combined with a row-major placement,
/// yields a random placement of types on the grid).
Netlist generate_random_circuit(const cells::StdCellLibrary& library,
                                const UsageHistogram& usage, std::size_t n, math::Rng& rng,
                                UsageMatch match = UsageMatch::kExact,
                                const std::string& name = "random");

}  // namespace rgleak::netlist
