#include "netlist/bench.h"

#include <cctype>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/failpoint.h"

namespace rgleak::netlist {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' || c == '[' ||
         c == ']' || c == '-' || c == '/';
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Single-line scanner tracking the column for located errors.
struct Cursor {
  const std::string& text;
  const std::string& source;
  std::size_t line;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }
  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  std::size_t column() const { return pos + 1; }

  [[noreturn]] void fail(const std::string& msg, std::string token = "") const {
    throw ParseError(source, line, column(), msg, std::move(token));
  }

  std::string rest_token() const {
    std::size_t end = pos;
    while (end < text.size() && std::isspace(static_cast<unsigned char>(text[end])) == 0 &&
           end - pos < 16)
      ++end;
    return text.substr(pos, end - pos);
  }

  std::string identifier(const char* what) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() && ident_char(text[pos])) ++pos;
    if (pos == start) fail(std::string("expected ") + what, rest_token());
    return text.substr(start, pos - start);
  }

  void expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      fail(std::string("expected '") + c + "'", rest_token());
    ++pos;
  }

  bool accept(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

struct SourcePos {
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Maps a bench function + fan-in to a library cell index; errors point at
/// the function token.
std::size_t cell_for_function(const cells::StdCellLibrary& library, const std::string& source,
                              std::size_t line, std::size_t column, const std::string& func,
                              std::size_t fanin) {
  const std::string f = upper(func);
  std::string cell;
  if (f == "NOT" || f == "INV") {
    if (fanin != 1)
      throw ParseError(source, line, column, "NOT takes exactly one input", func);
    cell = "INV_X1";
  } else if (f == "BUF" || f == "BUFF") {
    if (fanin != 1)
      throw ParseError(source, line, column, "BUFF takes exactly one input", func);
    cell = "BUF_X1";
  } else if (f == "DFF") {
    if (fanin != 1)
      throw ParseError(source, line, column, "DFF takes exactly one data input", func);
    cell = "DFF_X1";
  } else if (f == "NAND" || f == "NOR" || f == "AND" || f == "OR" || f == "XOR" || f == "XNOR") {
    if (fanin < 2)
      throw ParseError(source, line, column, f + " needs at least two inputs", func);
    cell = f + std::to_string(fanin) + "_X1";
  } else {
    throw ParseError(source, line, column, "unknown gate function '" + func + "'", func);
  }
  if (!library.contains(cell))
    throw ParseError(source, line, column,
                     "no library cell implements " + f + " with " + std::to_string(fanin) +
                         " inputs (wanted '" + cell + "')",
                     func);
  return library.index_of(cell);
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name.empty() ? "bench" : name;
}

}  // namespace

Netlist load_bench(const cells::StdCellLibrary& library, std::istream& is,
                   const std::string& source_name) {
  std::map<std::string, std::size_t> defined_at;  // signal -> defining line
  std::map<std::string, SourcePos> first_use;     // signal -> first referencing position
  std::vector<GateInstance> gates;

  const auto note_use = [&](const std::string& sig, std::size_t line, std::size_t column) {
    first_use.emplace(sig, SourcePos{line, column});
  };
  const auto define = [&](const std::string& sig, const Cursor& cur, std::size_t column) {
    const auto [it, inserted] = defined_at.emplace(sig, cur.line);
    if (!inserted)
      throw ParseError(cur.source, cur.line, column,
                       "duplicate definition of '" + sig + "' (first defined at line " +
                           std::to_string(it->second) + ")",
                       sig);
  };

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    RGLEAK_FAILPOINT("netlist.bench.read_line");
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::size_t hash = raw.find('#');
    const std::string text = hash == std::string::npos ? raw : raw.substr(0, hash);

    Cursor cur{text, source_name, line_no};
    if (cur.at_end()) continue;

    const std::size_t first_col = cur.column();
    const std::string first = cur.identifier("a signal name or INPUT/OUTPUT");
    const std::string first_up = upper(first);

    if ((first_up == "INPUT" || first_up == "OUTPUT") && cur.accept('(')) {
      const std::size_t sig_col = cur.column();
      const std::string sig = cur.identifier("a signal name");
      cur.expect(')');
      if (!cur.at_end()) cur.fail("unexpected trailing characters", cur.rest_token());
      if (first_up == "INPUT") {
        define(sig, cur, sig_col);
      } else {
        note_use(sig, line_no, sig_col);
      }
      continue;
    }

    // Assignment: sig = FUNC(arg, ...).
    cur.expect('=');
    cur.skip_ws();
    const std::size_t func_col = cur.column();
    const std::string func = cur.identifier("a gate function");
    cur.expect('(');
    std::size_t fanin = 0;
    if (!cur.accept(')')) {
      do {
        const std::size_t arg_col = cur.column();
        const std::string arg = cur.identifier("a signal name");
        note_use(arg, line_no, arg_col);
        ++fanin;
      } while (cur.accept(','));
      cur.expect(')');
    }
    if (!cur.at_end()) cur.fail("unexpected trailing characters", cur.rest_token());
    if (fanin == 0)
      throw ParseError(source_name, line_no, func_col, "gate '" + first + "' has no inputs", func);

    define(first, cur, first_col);
    gates.push_back({cell_for_function(library, source_name, line_no, func_col, func, fanin)});
  }
  if (is.bad()) throw IoError("read failed: " + source_name);

  // A reference to a signal nobody drives means the file is incomplete
  // (truncation is the classic cause); report the earliest dangling use.
  const SourcePos* worst = nullptr;
  const std::string* worst_sig = nullptr;
  for (const auto& [sig, use] : first_use) {
    if (defined_at.count(sig) > 0) continue;
    if (worst == nullptr || use.line < worst->line ||
        (use.line == worst->line && use.column < worst->column)) {
      worst = &use;
      worst_sig = &sig;
    }
  }
  if (worst != nullptr)
    throw ParseError(source_name, worst->line, worst->column,
                     "signal '" + *worst_sig + "' is referenced but never defined", *worst_sig);

  if (gates.empty())
    throw ParseError(source_name, line_no == 0 ? 1 : line_no, 0, "netlist contains no gates");

  return Netlist(stem_of(source_name), &library, std::move(gates));
}

Netlist load_bench(const cells::StdCellLibrary& library, const std::string& path) {
  RGLEAK_FAILPOINT("netlist.bench.open");
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return load_bench(library, is, path);
}

}  // namespace rgleak::netlist
