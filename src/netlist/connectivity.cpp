#include "netlist/connectivity.h"

#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::netlist {

ConnectedNetlist::ConnectedNetlist(std::string name, const cells::StdCellLibrary* library,
                                   std::size_t num_primary_inputs,
                                   std::vector<ConnectedGate> gates)
    : name_(std::move(name)),
      library_(library),
      num_primary_inputs_(num_primary_inputs),
      gates_(std::move(gates)) {
  RGLEAK_REQUIRE(library_ != nullptr, "connected netlist needs a library");
  RGLEAK_REQUIRE(num_primary_inputs_ >= 1, "need at least one primary input");
  RGLEAK_REQUIRE(!gates_.empty(), "connected netlist needs at least one gate");
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const ConnectedGate& gate = gates_[g];
    RGLEAK_REQUIRE(gate.cell_index < library_->size(), "gate references unknown cell");
    const cells::Cell& cell = library_->cell(gate.cell_index);
    RGLEAK_REQUIRE(gate.input_nets.size() == static_cast<std::size_t>(cell.num_inputs()),
                   "input-net count mismatch for cell " + cell.name());
    for (std::size_t net : gate.input_nets)
      RGLEAK_REQUIRE(net < num_primary_inputs_ + g,
                     "gate input references a later net (not a DAG)");
  }
}

const ConnectedGate& ConnectedNetlist::gate(std::size_t g) const {
  RGLEAK_REQUIRE(g < gates_.size(), "gate index out of range");
  return gates_[g];
}

Netlist ConnectedNetlist::flatten() const {
  std::vector<GateInstance> flat;
  flat.reserve(gates_.size());
  for (const auto& g : gates_) flat.push_back({g.cell_index});
  return Netlist(name_, library_, std::move(flat));
}

ConnectedNetlist generate_random_dag(const cells::StdCellLibrary& library,
                                     const UsageHistogram& usage, std::size_t n,
                                     std::size_t num_primary_inputs, math::Rng& rng,
                                     const std::string& name) {
  usage.validate();
  RGLEAK_REQUIRE(usage.alphas.size() == library.size(), "histogram/library size mismatch");
  for (std::size_t ci = 0; ci < library.size(); ++ci)
    RGLEAK_REQUIRE(usage.alphas[ci] == 0.0 || library.cell(ci).has_primary_output(),
                   "DAG cells need a primary output: " + library.cell(ci).name());

  // Type sequence via the exact-match generator (shuffled).
  const Netlist types = generate_random_circuit(library, usage, n, rng);

  std::vector<ConnectedGate> gates;
  gates.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    ConnectedGate gate;
    gate.cell_index = types.gate(g).cell_index;
    const int k = library.cell(gate.cell_index).num_inputs();
    const std::size_t available = num_primary_inputs + g;
    for (int i = 0; i < k; ++i)
      gate.input_nets.push_back(rng.uniform_index(available));
    gates.push_back(std::move(gate));
  }
  return ConnectedNetlist(name, &library, num_primary_inputs, std::move(gates));
}

std::vector<double> propagate_probabilities(const ConnectedNetlist& netlist,
                                            double input_probability) {
  RGLEAK_REQUIRE(input_probability >= 0.0 && input_probability <= 1.0,
                 "input probability must be in [0, 1]");
  std::vector<double> prob(netlist.num_nets(), input_probability);
  for (std::size_t g = 0; g < netlist.size(); ++g) {
    const ConnectedGate& gate = netlist.gate(g);
    const cells::Cell& cell = netlist.library().cell(gate.cell_index);
    std::vector<double> inputs(gate.input_nets.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = prob[gate.input_nets[i]];
    prob[netlist.output_net(g)] = cell.output_probability(inputs);
  }
  return prob;
}

std::vector<std::vector<double>> gate_input_probabilities(
    const ConnectedNetlist& netlist, const std::vector<double>& net_probs) {
  RGLEAK_REQUIRE(net_probs.size() == netlist.num_nets(), "net probability count mismatch");
  std::vector<std::vector<double>> out(netlist.size());
  for (std::size_t g = 0; g < netlist.size(); ++g) {
    const ConnectedGate& gate = netlist.gate(g);
    out[g].resize(gate.input_nets.size());
    for (std::size_t i = 0; i < gate.input_nets.size(); ++i)
      out[g][i] = net_probs[gate.input_nets[i]];
  }
  return out;
}

}  // namespace rgleak::netlist
