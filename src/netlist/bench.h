#pragma once
// ISCAS85/89 `.bench` netlist parser.
//
// The classic benchmark interchange format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G11 = DFF(G10)          # ISCAS89 adds flip-flops
//
// Each assignment is mapped to a library cell by function name and fan-in
// (NAND with 2 inputs -> NAND2_X1, NOT -> INV_X1, DFF -> DFF_X1, ...). The
// paper's flow only needs the gate bag — connectivity does not enter leakage
// — but every signal reference is still validated so a truncated or corrupted
// file cannot silently drop gates.
//
// Robustness contract: every failure throws rgleak::ParseError carrying the
// source name, 1-based line and column, and the offending token — bad syntax,
// duplicate definitions, references to signals that are never defined,
// unknown functions, and fan-ins the library cannot implement all name their
// exact location. OS-level failures throw rgleak::IoError.

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace rgleak::netlist {

/// Parses a `.bench` stream against `library`. `source_name` labels errors
/// (use the file path when known).
Netlist load_bench(const cells::StdCellLibrary& library, std::istream& is,
                   const std::string& source_name = "<stream>");

/// Opens and parses `path`; the netlist is named after the file stem.
Netlist load_bench(const cells::StdCellLibrary& library, const std::string& path);

}  // namespace rgleak::netlist
