#include "netlist/io.h"

#include <fstream>
#include <sstream>

#include "util/require.h"

namespace rgleak::netlist {

namespace {
constexpr const char* kMagic = "rgnl-v1";
}

void save_netlist(const Netlist& netlist, std::ostream& os) {
  os << kMagic << "\n";
  os << "name " << netlist.name() << "\n";
  os << "gates " << netlist.size() << "\n";
  // Run-length encode consecutive repeats to keep files compact while
  // preserving order.
  const auto& gates = netlist.gates();
  std::size_t i = 0;
  while (i < gates.size()) {
    std::size_t j = i;
    while (j < gates.size() && gates[j].cell_index == gates[i].cell_index) ++j;
    os << netlist.library().cell(gates[i].cell_index).name() << ' ' << (j - i) << "\n";
    i = j;
  }
}

void save_netlist(const Netlist& netlist, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("cannot open for writing: " + path);
  save_netlist(netlist, os);
  if (!os) throw NumericalError("write failed: " + path);
}

Netlist load_netlist(const cells::StdCellLibrary& library, std::istream& is) {
  std::string line;
  RGLEAK_REQUIRE(std::getline(is, line) && line == kMagic, "bad .rgnl header");

  RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing name line");
  std::istringstream ns(line);
  std::string tag, name;
  ns >> tag >> name;
  RGLEAK_REQUIRE(static_cast<bool>(ns) && tag == "name", "bad name line");

  RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing gates line");
  std::istringstream gs(line);
  std::size_t total = 0;
  gs >> tag >> total;
  RGLEAK_REQUIRE(static_cast<bool>(gs) && tag == "gates", "bad gates line");

  std::vector<GateInstance> gates;
  gates.reserve(total);
  while (gates.size() < total) {
    RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "truncated gate list");
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::size_t count = 0;
    ls >> cell >> count;
    RGLEAK_REQUIRE(static_cast<bool>(ls) && count > 0, "bad gate run line: " + line);
    const std::size_t idx = library.index_of(cell);
    RGLEAK_REQUIRE(gates.size() + count <= total, "gate run exceeds declared total");
    for (std::size_t k = 0; k < count; ++k) gates.push_back({idx});
  }
  return Netlist(name, &library, std::move(gates));
}

Netlist load_netlist(const cells::StdCellLibrary& library, const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("cannot open for reading: " + path);
  return load_netlist(library, is);
}

}  // namespace rgleak::netlist
