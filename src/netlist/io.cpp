#include "netlist/io.h"

#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/require.h"

namespace rgleak::netlist {

namespace {
constexpr const char* kMagic = "rgnl-v1";
}

void save_netlist(const Netlist& netlist, std::ostream& os) {
  os << kMagic << "\n";
  os << "name " << netlist.name() << "\n";
  os << "gates " << netlist.size() << "\n";
  // Run-length encode consecutive repeats to keep files compact while
  // preserving order.
  const auto& gates = netlist.gates();
  std::size_t i = 0;
  while (i < gates.size()) {
    std::size_t j = i;
    while (j < gates.size() && gates[j].cell_index == gates[i].cell_index) ++j;
    os << netlist.library().cell(gates[i].cell_index).name() << ' ' << (j - i) << "\n";
    i = j;
  }
}

void save_netlist(const Netlist& netlist, const std::string& path) {
  RGLEAK_FAILPOINT("netlist.io.write");
  util::atomic_write_file(path, [&](std::ostream& os) { save_netlist(netlist, os); });
}

Netlist load_netlist(const cells::StdCellLibrary& library, std::istream& is,
                     const std::string& source_name) {
  std::size_t line_no = 0;
  std::string line;
  const auto next_line = [&](const char* what) {
    RGLEAK_FAILPOINT("netlist.io.read_line");
    if (!std::getline(is, line)) {
      if (is.bad()) throw IoError("read failed: " + source_name);
      throw ParseError(source_name, line_no + 1, 0,
                       std::string("unexpected end of file, expected ") + what);
    }
    ++line_no;
  };
  const auto fail = [&](const std::string& msg, const std::string& token = "") -> void {
    throw ParseError(source_name, line_no, 0, msg, token);
  };

  next_line("the rgnl-v1 header");
  if (line != kMagic) fail("bad .rgnl header, expected 'rgnl-v1'", line);

  next_line("a name line");
  std::istringstream ns(line);
  std::string tag, name;
  ns >> tag >> name;
  if (!ns || tag != "name") fail("bad name line, expected 'name <identifier>'", line);

  next_line("a gates line");
  std::istringstream gs(line);
  std::size_t total = 0;
  gs >> tag >> total;
  if (!gs || tag != "gates") fail("bad gates line, expected 'gates <count>'", line);

  std::vector<GateInstance> gates;
  gates.reserve(total);
  while (gates.size() < total) {
    next_line("a '<cell> <count>' gate run");
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::size_t count = 0;
    ls >> cell >> count;
    if (!ls || count == 0) fail("bad gate run line, expected '<cell> <count>'", line);
    if (!library.contains(cell)) fail("unknown cell '" + cell + "'", cell);
    const std::size_t idx = library.index_of(cell);
    if (gates.size() + count > total)
      fail("gate run exceeds the declared total of " + std::to_string(total), cell);
    for (std::size_t k = 0; k < count; ++k) gates.push_back({idx});
  }
  return Netlist(name, &library, std::move(gates));
}

Netlist load_netlist(const cells::StdCellLibrary& library, const std::string& path) {
  RGLEAK_FAILPOINT("netlist.io.open");
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return load_netlist(library, is, path);
}

}  // namespace rgleak::netlist
