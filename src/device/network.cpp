#include "device/network.h"

#include <cmath>
#include <limits>

#include "util/require.h"

namespace rgleak::device {

Network Network::device(NetworkDevice d) {
  Network n;
  n.kind_ = Kind::kDevice;
  n.device_ = d;
  return n;
}

Network Network::series(std::vector<Network> children) {
  RGLEAK_REQUIRE(!children.empty(), "series network needs children");
  if (children.size() == 1) return std::move(children.front());
  Network n;
  n.kind_ = Kind::kSeries;
  // Flatten nested series so the chain solver sees all internal nodes at once.
  for (auto& c : children) {
    if (c.kind_ == Kind::kSeries) {
      for (auto& gc : c.children_) n.children_.push_back(std::move(gc));
    } else {
      n.children_.push_back(std::move(c));
    }
  }
  return n;
}

Network Network::parallel(std::vector<Network> children) {
  RGLEAK_REQUIRE(!children.empty(), "parallel network needs children");
  if (children.size() == 1) return std::move(children.front());
  Network n;
  n.kind_ = Kind::kParallel;
  for (auto& c : children) {
    if (c.kind_ == Kind::kParallel) {
      for (auto& gc : c.children_) n.children_.push_back(std::move(gc));
    } else {
      n.children_.push_back(std::move(c));
    }
  }
  return n;
}

const NetworkDevice& Network::dev() const {
  RGLEAK_REQUIRE(kind_ == Kind::kDevice, "dev() on a composite network");
  return device_;
}

std::size_t Network::device_count() const {
  if (kind_ == Kind::kDevice) return 1;
  std::size_t n = 0;
  for (const auto& c : children_) n += c.device_count();
  return n;
}

void Network::collect_devices(std::vector<const NetworkDevice*>& out) const {
  if (kind_ == Kind::kDevice) {
    out.push_back(&device_);
    return;
  }
  for (const auto& c : children_) c.collect_devices(out);
}

namespace {

double device_current(const NetworkDevice& d, const NetworkEvalContext& ctx, double v_lo,
                      double v_hi) {
  RGLEAK_REQUIRE(ctx.tech != nullptr, "evaluation context missing technology");
  RGLEAK_REQUIRE(d.gate_signal >= 0 &&
                     static_cast<std::size_t>(d.gate_signal) < ctx.gate_voltage_v.size(),
                 "gate signal index out of range");
  const double vg = ctx.gate_voltage_v[static_cast<std::size_t>(d.gate_signal)];
  const double dvt = (d.dvt_index >= 0 &&
                      static_cast<std::size_t>(d.dvt_index) < ctx.dvt_v.size())
                         ? ctx.dvt_v[static_cast<std::size_t>(d.dvt_index)]
                         : 0.0;
  const double vds = v_hi - v_lo;
  if (d.type == DeviceType::kNmos) {
    // Current flows drain (v_hi) -> source (v_lo); Vgs measured from source.
    return subthreshold_current(*ctx.tech, DeviceType::kNmos, d.w_nm, ctx.l_nm, vg - v_lo, vds,
                                dvt);
  }
  // PMOS: source is the high node; Vsg = v_hi - vg, Vsd = vds.
  return subthreshold_current(*ctx.tech, DeviceType::kPmos, d.w_nm, ctx.l_nm, v_hi - vg, vds, dvt);
}

double element_current(const Network& n, const NetworkEvalContext& ctx, double v_lo, double v_hi);

// Solves a series chain by current marching: for a trial chain current I,
// walk the chain bottom-up inverting each element's monotone I-V curve to find
// the voltage it consumes; the total consumed voltage is increasing in I, so
// an outer bisection (in log-current, since stack currents span many decades)
// pins the unique I whose march lands exactly on v_hi. Unlike nonlinear
// Gauss-Seidel, this has no trouble with near-rigid links (an ON device
// between OFF devices).
double series_current(const Network& n, const NetworkEvalContext& ctx, double v_lo, double v_hi) {
  const auto& ch = n.children();

  if (ch.size() == 2) {
    // Fast path: one internal node; bisect the (non-decreasing in v) current
    // mismatch I_below(v_lo, v) - I_above(v, v_hi) directly.
    double lo = v_lo, hi = v_hi;
    for (int it = 0; it < 70 && hi - lo > 1e-16; ++it) {
      const double v = 0.5 * (lo + hi);
      if (element_current(ch[0], ctx, v_lo, v) > element_current(ch[1], ctx, v, v_hi)) {
        hi = v;
      } else {
        lo = v;
      }
    }
    const double v = 0.5 * (lo + hi);
    // Report the smaller side: at the bisection limit the two are equal to
    // solver precision, and taking the min avoids overstating the current
    // when the node sits against a rail.
    return std::min(element_current(ch[0], ctx, v_lo, v), element_current(ch[1], ctx, v, v_hi));
  }

  // Upper bound: no element can carry more than it would with the full swing
  // across it.
  double hi_i = std::numeric_limits<double>::infinity();
  for (const auto& c : ch) hi_i = std::min(hi_i, element_current(c, ctx, v_lo, v_hi));
  if (hi_i <= 0.0) return 0.0;

  // Inverts one element: the voltage v_above in [v_below, v_hi] at which the
  // element carries current i. Returns v_hi + 1 when even the full remaining
  // swing cannot carry i (the march overshoots).
  const auto invert = [&](const Network& e, double v_below, double i) {
    if (element_current(e, ctx, v_below, v_hi) < i) return v_hi + 1.0;
    double lo = v_below, hi = v_hi;
    for (int it = 0; it < 64 && hi - lo > 1e-15; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (element_current(e, ctx, v_below, mid) < i) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  };

  // March the chain for current i; returns the top voltage reached (or the
  // overshoot marker > v_hi).
  const auto march = [&](double i) {
    double v = v_lo;
    for (const auto& c : ch) {
      v = invert(c, v, i);
      if (v > v_hi) return v;
    }
    return v;
  };

  // Outer bisection on ln(I). The chain current cannot be more than ~e^53
  // below the weakest element's full-swing current (ON/OFF current ratio
  // bound), so 1e-36 relative is a safe floor.
  double lo_log = std::log(hi_i * 1e-36);
  double hi_log = std::log(hi_i);
  for (int it = 0; it < 90; ++it) {
    const double mid = 0.5 * (lo_log + hi_log);
    if (march(std::exp(mid)) >= v_hi) {
      hi_log = mid;
    } else {
      lo_log = mid;
    }
  }
  return std::exp(0.5 * (lo_log + hi_log));
}

double element_current(const Network& n, const NetworkEvalContext& ctx, double v_lo, double v_hi) {
  switch (n.kind()) {
    case Network::Kind::kDevice:
      return device_current(n.dev(), ctx, v_lo, v_hi);
    case Network::Kind::kParallel: {
      double s = 0.0;
      for (const auto& c : n.children()) s += element_current(c, ctx, v_lo, v_hi);
      return s;
    }
    case Network::Kind::kSeries:
      return series_current(n, ctx, v_lo, v_hi);
  }
  throw NumericalError("element_current: unreachable network kind");
}

}  // namespace

double network_current(const Network& network, const NetworkEvalContext& ctx, double v_lo_v,
                       double v_hi_v) {
  RGLEAK_REQUIRE(v_hi_v >= v_lo_v, "network_current needs v_hi >= v_lo");
  if (v_hi_v == v_lo_v) return 0.0;
  return element_current(network, ctx, v_lo_v, v_hi_v);
}

}  // namespace rgleak::device
