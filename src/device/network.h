#pragma once
// Series/parallel transistor-network leakage solver.
//
// A cell's pull-up and pull-down networks are series/parallel trees of
// devices. For a given input state, the leakage through the network between
// two rails is found by enforcing current continuity at the internal nodes:
// every element's current is monotone in its terminal voltages, so a
// nonlinear Gauss–Seidel sweep with safeguarded scalar root-finding converges
// rapidly. This reproduces the transistor "stack effect" (a 2-stack leaks
// ~10x less than a single off device), which is the logic-structure dependence
// the paper's cell pre-characterization captures.

#include <span>
#include <vector>

#include "device/subthreshold.h"

namespace rgleak::device {

/// One transistor in a network. `gate_signal` indexes the resolved signal
/// vector of the evaluation context (cells resolve logical values to rail
/// voltages). `dvt_index` indexes the per-device random-Vt vector (-1: none).
struct NetworkDevice {
  DeviceType type = DeviceType::kNmos;
  int gate_signal = 0;
  double w_nm = 120.0;
  int dvt_index = -1;
};

/// Series/parallel tree. Value type; build with the static factories.
class Network {
 public:
  enum class Kind { kDevice, kSeries, kParallel };

  static Network device(NetworkDevice d);
  static Network series(std::vector<Network> children);
  static Network parallel(std::vector<Network> children);

  Kind kind() const { return kind_; }
  const NetworkDevice& dev() const;
  const std::vector<Network>& children() const { return children_; }

  /// Total number of devices in the tree.
  std::size_t device_count() const;
  /// Appends every device in the tree (pre-order) to `out`.
  void collect_devices(std::vector<const NetworkDevice*>& out) const;

 private:
  Network() = default;
  Kind kind_ = Kind::kDevice;
  NetworkDevice device_;
  std::vector<Network> children_;
};

/// Everything needed to evaluate device currents for one input state and one
/// process sample.
struct NetworkEvalContext {
  const TechnologyParams* tech = nullptr;
  std::span<const double> gate_voltage_v;  ///< resolved signal voltages
  double l_nm = 0.0;                       ///< sampled channel length (shared within cell)
  std::span<const double> dvt_v;           ///< per-device random Vt shifts (may be empty)
};

/// Current (nA) flowing through the network from the node at `v_hi_v` to the
/// node at `v_lo_v`. Requires v_hi_v >= v_lo_v. Throws NumericalError if the
/// internal-node solve fails to converge (does not happen for valid
/// series/parallel trees of monotone devices).
double network_current(const Network& network, const NetworkEvalContext& ctx, double v_lo_v,
                       double v_hi_v);

}  // namespace rgleak::device
