#include "device/subthreshold.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rgleak::device {

TechnologyParams at_temperature(const TechnologyParams& reference, double kelvin) {
  RGLEAK_REQUIRE(kelvin > 0.0, "temperature must be positive kelvin");
  TechnologyParams t = reference;
  const double tref = reference.temperature_k;
  t.temperature_k = kelvin;
  t.thermal_vt_v = reference.thermal_vt_v * kelvin / tref;
  const double dvt = reference.vt_tempco_v_per_k * (kelvin - tref);
  t.vt0_n_v = reference.vt0_n_v - dvt;
  t.vt0_p_v = reference.vt0_p_v - dvt;
  t.i0_na = reference.i0_na * std::sqrt(kelvin / tref);
  return t;
}

double gate_tunneling_current(const TechnologyParams& tech, double w_nm, double l_nm) {
  RGLEAK_REQUIRE(w_nm > 0.0 && l_nm > 0.0, "device geometry must be positive");
  return tech.gate_leak_na_per_um2 * (w_nm * l_nm) * 1e-6;  // nm^2 -> um^2
}

double effective_vt(const TechnologyParams& tech, DeviceType type, double l_nm, double vds_v,
                    double dvt_v) {
  RGLEAK_REQUIRE(l_nm > 0.0, "channel length must be positive");
  const double vt0 = type == DeviceType::kNmos ? tech.vt0_n_v : tech.vt0_p_v;
  return vt0 - tech.sce_v0_v * std::exp(-l_nm / tech.sce_l_nm) - tech.dibl_eta * vds_v + dvt_v;
}

double subthreshold_current(const TechnologyParams& tech, DeviceType type, double w_nm,
                            double l_nm, double vgs_v, double vds_v, double dvt_v) {
  RGLEAK_REQUIRE(w_nm > 0.0, "device width must be positive");
  RGLEAK_REQUIRE(vds_v >= 0.0, "solver must pass vds >= 0");
  if (vds_v == 0.0) return 0.0;
  const double vt_eff = effective_vt(tech, type, l_nm, vds_v, dvt_v);
  const double n_vt = tech.subthreshold_n * tech.thermal_vt_v;
  // Saturate the exponent in strong inversion: the network solver only needs
  // an ON device to be orders of magnitude more conductive than an OFF one.
  const double arg = std::min((vgs_v - vt_eff) / n_vt, 40.0);
  const double i0 =
      tech.i0_na * (type == DeviceType::kPmos ? tech.pmos_mobility_ratio : 1.0);
  return i0 * (w_nm / l_nm) * std::exp(arg) * (1.0 - std::exp(-vds_v / tech.thermal_vt_v));
}

}  // namespace rgleak::device
