#pragma once
// BSIM-flavored subthreshold leakage device model (substitute for the
// commercial 90 nm SPICE models used in the paper; see DESIGN.md).
//
//   I_off = I0 * (W / L) * exp((Vgs - Vt_eff) / (n * vT)) * (1 - exp(-Vds / vT))
//   Vt_eff(L, Vds) = Vt0 - Vsce * exp(-L / Lsce) - eta * Vds + dVt
//
// The exp(-L/Lsce) term is the short-channel Vt roll-off; it gives leakage its
// strong (approximately log-quadratic) dependence on channel length, which is
// exactly the property the paper's a*exp(bL + cL^2) fit captures. dVt is the
// per-device random dopant fluctuation. Units: nm, V, nA.

namespace rgleak::device {

/// Technology constants of the virtual 90 nm process.
struct TechnologyParams {
  double vdd_v = 1.0;
  double vt0_n_v = 0.35;        ///< long-channel NMOS threshold
  double vt0_p_v = 0.35;        ///< |Vt| of the PMOS
  double subthreshold_n = 1.4;  ///< subthreshold-swing ideality factor
  double thermal_vt_v = 0.0259; ///< kT/q at 300 K
  double dibl_eta = 0.08;       ///< DIBL coefficient (V/V)
  double sce_v0_v = 0.64;       ///< Vt roll-off magnitude
  double sce_l_nm = 20.0;       ///< Vt roll-off characteristic length
  double i0_na = 1000.0;        ///< leakage prefactor per W/L square, nA
  double pmos_mobility_ratio = 0.45;  ///< PMOS current per square vs NMOS
  double l_nominal_nm = 40.0;   ///< drawn == effective nominal channel length
  double temperature_k = 300.0; ///< junction temperature this corner models
  double vt_tempco_v_per_k = 8.0e-4;  ///< |dVt/dT| (Vt falls as T rises)
  /// Gate tunneling current density (nA/um^2) for a device with the full
  /// supply across its oxide. 0 (default) models the paper's
  /// subthreshold-only scope; nonzero enables the gate-leakage extension
  /// (linear in device area, so it perturbs the log-quadratic L fit — see
  /// bench_ablation_gate_leakage).
  double gate_leak_na_per_um2 = 0.0;
};

/// Gate tunneling current (nA) of one device with the full supply across its
/// oxide: density * W * L.
double gate_tunneling_current(const TechnologyParams& tech, double w_nm, double l_nm);

/// Technology parameters re-targeted to a junction temperature: the thermal
/// voltage kT/q scales linearly, Vt falls by vt_tempco per kelvin, and the
/// prefactor picks up the net mobility*vT^2 ~ sqrt(T/Tref) factor. This is
/// how leakage's strong positive temperature dependence enters the model.
TechnologyParams at_temperature(const TechnologyParams& reference, double kelvin);

enum class DeviceType { kNmos, kPmos };

/// Effective threshold voltage for a device of length l_nm under drain bias
/// vds_v and random dopant shift dvt_v.
double effective_vt(const TechnologyParams& tech, DeviceType type, double l_nm, double vds_v,
                    double dvt_v);

/// Subthreshold drain current (nA, >= 0) of a device with gate-source voltage
/// vgs_v and drain-source voltage vds_v >= 0 (polarities are magnitudes: for
/// PMOS pass Vsg and Vsd). Valid in weak inversion; in strong inversion it
/// saturates the exponent so the device simply looks very conductive, which is
/// all the leakage solver needs from an ON switch.
double subthreshold_current(const TechnologyParams& tech, DeviceType type, double w_nm,
                            double l_nm, double vgs_v, double vds_v, double dvt_v);

}  // namespace rgleak::device
