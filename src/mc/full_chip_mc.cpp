#include "mc/full_chip_mc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/memory_cost.h"
#include "mc/checkpoint.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace rgleak::mc {

namespace {

/// Neumaier-compensated accumulator: the per-trial totals sum thousands of
/// leakage values spanning orders of magnitude, and the bucketed path visits
/// them in a different order than the per-gate path. Compensation makes both
/// orders agree to ~1 ULP of the true sum, which is what lets the paths be
/// cross-validated against a tight tolerance.
struct CompensatedSum {
  double sum = 0.0;
  double comp = 0.0;

  void add(double v) {
    const double t = sum + v;
    if (std::abs(sum) >= std::abs(v))
      comp += (sum - t) + v;
    else
      comp += (v - t) + sum;
    sum = t;
  }
  double value() const { return sum + comp; }
};

/// Background checkpoint publisher. Serializing a checkpoint image takes the
/// trial loop well under a millisecond, but publishing it (temp-file write +
/// rename) can stall for hundreds of milliseconds when the filesystem commits
/// its journal. Periodic checkpoints therefore hand the finished image to
/// this single writer thread and keep computing; if a new image arrives while
/// the previous one is still being written, the unpublished one is dropped
/// (newest wins — every image is a complete recovery point, so skipping a
/// stale one only ages the recovery point by one cadence). Final checkpoints
/// (deadline/stop, end of run) call flush() to guarantee durability before
/// run() returns or surfaces the interruption; flush() and publish() also
/// rethrow any write failure from the background thread, so a dead disk
/// surfaces within one cadence instead of being swallowed.
class CheckpointFlusher {
 public:
  explicit CheckpointFlusher(std::string path) : path_(std::move(path)) {}

  ~CheckpointFlusher() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_.notify_all();
    if (writer_.joinable()) writer_.join();
    // A pending error here was already missed by every flush(); destruction
    // happens on exception paths where a second throw is not an option.
  }

  /// Queues `image` for publication and returns immediately. Rethrows a
  /// failure from a previous background write.
  void publish(const std::string& image) {
    std::unique_lock<std::mutex> lock(m_);
    rethrow_locked();
    pending_.assign(image);  // reuses capacity after the first cadence
    has_pending_ = true;
    if (!writer_.joinable()) writer_ = std::thread([this] { loop(); });
    lock.unlock();
    cv_.notify_all();
  }

  /// Blocks until every queued image is durably published; rethrows any
  /// background write failure.
  void flush() {
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [&] { return (!has_pending_ && !writing_) || error_; });
    rethrow_locked();
  }

 private:
  void rethrow_locked() {
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

  void loop() {
    std::string image;
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
      cv_.wait(lock, [&] { return has_pending_ || stop_; });
      if (!has_pending_) return;  // stop requested with nothing queued
      image.swap(pending_);
      has_pending_ = false;
      writing_ = true;
      lock.unlock();
      std::exception_ptr err;
      const auto flush_t0 = std::chrono::steady_clock::now();
      try {
        util::atomic_write_file(path_, [&](std::ostream& os) {
          os.write(image.data(), static_cast<std::streamsize>(image.size()));
        });
      } catch (...) {
        err = std::current_exception();
      }
      flush_ms_.observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - flush_t0)
                            .count());
      lock.lock();
      writing_ = false;
      if (err && !error_) error_ = err;
      done_cv_.notify_all();
      if (stop_ && !has_pending_) return;
    }
  }

  std::string path_;
  std::thread writer_;
  std::mutex m_;
  std::condition_variable cv_;       // signals the writer: work or stop
  std::condition_variable done_cv_;  // signals flushers: idle or failed
  std::string pending_;
  bool has_pending_ = false;
  bool writing_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  // Publish-to-durable latency of the background write, recorded per cadence
  // (never on the trial path).
  util::metrics::Histogram& flush_ms_ =
      util::metrics::Registry::instance().histogram("mc.checkpoint.flush_ms");
};

}  // namespace

FullChipMonteCarlo::FullChipMonteCarlo(const placement::Placement& placement,
                                       const charlib::CharacterizedLibrary& chars,
                                       FullChipMcOptions options)
    : placement_(&placement),
      chars_(&chars),
      options_(options),
      field_(placement.floorplan().rows, placement.floorplan().cols,
             placement.floorplan().site_w_nm, placement.floorplan().site_h_nm,
             chars.process().wid_correlation(), chars.process().length().sigma_wid_nm,
             chars.process().anisotropy()),
      rng_(options.seed) {
  RGLEAK_REQUIRE(options_.trials >= 2, "MC needs at least two trials");
  const std::size_t n = placement.netlist().size();
  RGLEAK_REQUIRE(n <= UINT32_MAX && placement.floorplan().num_sites() <= UINT32_MAX,
                 "MC bucketing indexes gates and sites with 32 bits");
  state_.resize(n);
  table_id_.resize(n);
  draw_states(rng_);
}

void FullChipMonteCarlo::draw_states(math::Rng& rng) {
  const netlist::Netlist& nl = placement_->netlist();
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    state_[g] = s;
    table_id_[g] = table_for(ci, s);
  }
  ws_.buckets_built = false;
}

std::uint32_t FullChipMonteCarlo::table_for(std::size_t cell_index, std::uint32_t state) {
  const std::uint64_t key = (static_cast<std::uint64_t>(cell_index) << 32) | state;
  const auto it = table_index_.find(key);
  if (it != table_index_.end()) return it->second;

  const double mu = chars_->process().length().mean_nm;
  const double sigma = chars_->process().length().sigma_total_nm();
  const double span = 8.0 * sigma;
  auto table = std::make_unique<charlib::LeakageTable>(
      chars_->library().cell(cell_index), state, chars_->library().tech(),
      std::max(mu - span, 1.0), mu + std::max(span, 1e-3), options_.table_points);
  const auto id = static_cast<std::uint32_t>(table_list_.size());
  table_list_.push_back(table.get());
  tables_.push_back(std::move(table));
  table_index_.emplace(key, id);
  return id;
}

void FullChipMonteCarlo::build_all_state_tables() {
  const netlist::Netlist& nl = placement_->netlist();
  cell_state_ids_.resize(chars_->library().size());
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    if (!cell_state_ids_[ci].empty()) continue;
    const std::uint32_t states = 1u << chars_->library().cell(ci).num_inputs();
    cell_state_ids_[ci].resize(states);
    for (std::uint32_t s = 0; s < states; ++s) cell_state_ids_[ci][s] = table_for(ci, s);
  }
}

void FullChipMonteCarlo::draw_states_into(math::Rng& rng,
                                          std::vector<std::uint32_t>& table_id) const {
  const netlist::Netlist& nl = placement_->netlist();
  table_id.resize(nl.size());
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    RGLEAK_REQUIRE(ci < cell_state_ids_.size() && !cell_state_ids_[ci].empty(),
                   "state table not prebuilt");
    table_id[g] = cell_state_ids_[ci][s];
  }
}

void FullChipMonteCarlo::build_buckets(McWorkspace& ws, bool merge_duplicates) const {
  // Counting sort of gates by table id: O(gates + tables), no comparisons,
  // and every buffer reuses its capacity across rebuilds (per-trial state
  // resampling rebuilds buckets every trial without allocating).
  const std::size_t n = ws.table_id.size();
  const std::size_t nb = table_list_.size();
  ws.bucket_begin.resize(nb + 1);
  std::fill(ws.bucket_begin.begin(), ws.bucket_begin.end(), 0u);
  for (std::size_t g = 0; g < n; ++g) ++ws.bucket_begin[ws.table_id[g] + 1];
  for (std::size_t b = 0; b < nb; ++b) ws.bucket_begin[b + 1] += ws.bucket_begin[b];

  ws.entry_site.resize(n);
  ws.entry_weight.resize(n);
  ws.fill.resize(nb);
  std::copy(ws.bucket_begin.begin(), ws.bucket_begin.end() - 1, ws.fill.begin());
  for (std::size_t g = 0; g < n; ++g) {
    const std::uint32_t e = ws.fill[ws.table_id[g]]++;
    ws.entry_site[e] = static_cast<std::uint32_t>(placement_->site_of(g));
    ws.entry_weight[e] = 1.0;
  }

  if (merge_duplicates) {
    // Fold repeated (site, table) pairs into one weighted entry: the gate
    // count becomes the entry weight, so N gates sharing a site and table
    // cost one table lookup instead of N. Placements that give every gate
    // its own site compact to weight-1 entries (a no-op); the sort is only
    // worth its cost when the buckets are built once per run.
    std::size_t out = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::uint32_t begin = ws.bucket_begin[b];
      const std::uint32_t end = ws.bucket_begin[b + 1];
      std::sort(ws.entry_site.begin() + begin, ws.entry_site.begin() + end);
      ws.bucket_begin[b] = static_cast<std::uint32_t>(out);
      for (std::uint32_t e = begin; e < end;) {
        const std::uint32_t site = ws.entry_site[e];
        std::uint32_t run = 0;
        while (e < end && ws.entry_site[e] == site) {
          ++run;
          ++e;
        }
        ws.entry_site[out] = site;
        ws.entry_weight[out] = static_cast<double>(run);
        ++out;
      }
    }
    ws.bucket_begin[nb] = static_cast<std::uint32_t>(out);
  }

  const std::size_t total = ws.bucket_begin[nb];
  ws.l_buf.resize(total);
  ws.i_buf.resize(total);
  ws.buckets_built = true;
}

double FullChipMonteCarlo::run_trial(process::GridFieldSampler& field, math::Rng& rng,
                                     McWorkspace& ws) const {
  RGLEAK_FAILPOINT("mc.trial");
  const double mu = chars_->process().length().mean_nm;
  const double d2d = rng.normal(0.0, chars_->process().length().sigma_d2d_nm);
  field.sample_into(rng, ws.field, ws.wid);
  const double base = mu + d2d;
  if (options_.eval_path == McEvalPath::kBucketed) {
    if (!ws.buckets_built) build_buckets(ws, /*merge_duplicates=*/!options_.resample_states_per_trial);
    return sum_bucketed(ws, base);
  }
  return sum_per_gate(ws, base);
}

double FullChipMonteCarlo::sum_bucketed(McWorkspace& ws, double base) const {
  const std::size_t nb = table_list_.size();
  const std::size_t total = ws.bucket_begin[nb];
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint32_t begin = ws.bucket_begin[b];
    const std::uint32_t count = ws.bucket_begin[b + 1] - begin;
    if (count == 0) continue;
    double* l = ws.l_buf.data() + begin;
    const std::uint32_t* site = ws.entry_site.data() + begin;
    for (std::uint32_t e = 0; e < count; ++e) l[e] = base + ws.wid[site[e]];
    table_list_[b]->eval_many_na(l, ws.i_buf.data() + begin, count);
  }
  CompensatedSum acc;
  for (std::size_t e = 0; e < total; ++e) acc.add(ws.entry_weight[e] * ws.i_buf[e]);
  return acc.value();
}

double FullChipMonteCarlo::sum_per_gate(const McWorkspace& ws, double base) const {
  const std::size_t n = ws.table_id.size();
  CompensatedSum acc;
  for (std::size_t g = 0; g < n; ++g) {
    const double l = base + ws.wid[placement_->site_of(g)];
    acc.add(table_list_[ws.table_id[g]]->eval_na(l));
  }
  return acc.value();
}

double FullChipMonteCarlo::sample_total_na(math::Rng& rng) {
  if (options_.resample_states_per_trial) draw_states(rng);
  // Mirror the run()-path workspace: per-gate table ids live in the
  // workspace (assign reuses capacity — no steady-state allocation).
  if (options_.resample_states_per_trial || ws_.table_id.size() != table_id_.size())
    ws_.table_id.assign(table_id_.begin(), table_id_.end());
  return run_trial(field_, rng, ws_);
}

void FullChipMonteCarlo::restore(const std::string& path, std::size_t threads,
                                 std::vector<std::unique_ptr<Worker>>& workers) const {
  const McCheckpoint ckpt = load_mc_checkpoint(path);
  const auto mismatch = [&](const char* field, auto have, auto want) {
    std::ostringstream os;
    os << "checkpoint " << path << " does not match this run: " << field << " is " << want
       << " in the checkpoint but " << have << " here (resume needs identical seed, threads, "
          "trials, resampling, table points, and netlist)";
    throw ConfigError(os.str());
  };
  if (ckpt.seed != options_.seed) mismatch("seed", options_.seed, ckpt.seed);
  if (ckpt.threads != threads) mismatch("threads", threads, ckpt.threads);
  if (ckpt.trials != options_.trials) mismatch("trials", options_.trials, ckpt.trials);
  if (ckpt.resample_states_per_trial != options_.resample_states_per_trial)
    mismatch("resample_states_per_trial", options_.resample_states_per_trial,
             ckpt.resample_states_per_trial);
  if (ckpt.table_points != options_.table_points)
    mismatch("table_points", options_.table_points, ckpt.table_points);
  if (ckpt.gate_count != placement_->netlist().size())
    mismatch("gate count", placement_->netlist().size(), ckpt.gate_count);

  for (std::size_t w = 0; w < threads; ++w) {
    const McWorkerState& ws = ckpt.workers[w];
    const std::size_t slice =
        (w + 1) * options_.trials / threads - w * options_.trials / threads;
    if (ws.samples.size() > slice)
      mismatch("worker sample count", slice, ws.samples.size());
    workers[w]->rng.set_state(ws.rng);
    if (!ws.cached_field.empty()) workers[w]->field.set_cached_field(ws.cached_field);
    // assign() keeps the slice's reserved capacity, unlike operator=.
    workers[w]->samples.assign(ws.samples.begin(), ws.samples.end());
  }
}

FullChipMcResult FullChipMonteCarlo::run() {
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  try {
    return run_with_threads(threads);
  } catch (const std::bad_alloc&) {
    // Real or injected ("mc.workspace.alloc") allocation failure: surface it
    // typed and located so one starved MC job cannot crash a batch.
    std::ostringstream os;
    os << "full-chip MC: out of memory allocating " << threads << " worker workspace(s) for "
       << placement_->netlist().size() << " gates on a " << field_.rows() << "x" << field_.cols()
       << " site grid (padded " << field_.padded_rows() << "x" << field_.padded_cols() << ")";
    throw ResourceError(os.str());
  }
}

FullChipMcResult FullChipMonteCarlo::run_with_threads(std::size_t threads) {
  const util::RunControl* rc = options_.run;

  // Charge the per-worker arenas (sampler copy + FFT workspace + bucket
  // scratch) and the sample slices against the process memory budget up
  // front; the reservation lives until run() returns. This is the tracked
  // backstop behind the admission layer's preflight — if the budget cannot
  // take it, the job fails typed here instead of OOM-killing the process.
  RGLEAK_FAILPOINT("mc.workspace.alloc");
  const util::MemoryReservation arena(
      threads * core::MemoryCostModel::mc_worker_bytes(field_.padded_rows(), field_.padded_cols(),
                                                       field_.rows(), field_.cols(),
                                                       placement_->netlist().size()) +
          std::uint64_t{options_.trials} * sizeof(double),
      "mc.workspace");

  // Each worker gets its own RNG stream, field-sampler copy (the sampler
  // caches the second field of each FFT, and that cache must live as long as
  // the stream) and workspace, and fills a disjoint slice of the trials so
  // the merged sample set is deterministic for a fixed (seed, threads). The
  // serial case is worker 0 continuing rng_ itself, matching the historical
  // serial stream. All of this state persists across checkpoint rounds,
  // which is what makes the result independent of the checkpoint cadence and
  // of interrupt/resume cycles.
  if (options_.resample_states_per_trial) build_all_state_tables();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(threads);
  if (threads == 1) {
    workers.push_back(std::make_unique<Worker>(rng_, field_));
  } else {
    for (std::size_t w = 0; w < threads; ++w)
      workers.push_back(std::make_unique<Worker>(rng_.fork(), field_));
  }
  std::vector<std::size_t> slice_size(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    slice_size[w] = (w + 1) * options_.trials / threads - w * options_.trials / threads;
    workers[w]->ws.table_id = table_id_;
    workers[w]->samples.reserve(slice_size[w]);
  }

  if (!options_.resume_path.empty()) restore(options_.resume_path, threads, workers);

  // The writer outlives the round loop so every cadence reuses its text
  // buffer; worker state is streamed in place (no per-cadence deep copies).
  // Publication goes through the background flusher so filesystem stalls
  // overlap with the next round's trials; `durable` forces a synchronous
  // flush for checkpoints that must hit disk before run() exits.
  McCheckpointWriter ckpt_writer;
  std::optional<CheckpointFlusher> flusher;
  if (!options_.checkpoint_path.empty()) flusher.emplace(options_.checkpoint_path);
  const auto checkpoint_now = [&](bool durable) {
    ckpt_writer.begin(options_.seed, threads, options_.trials,
                      options_.resample_states_per_trial, options_.table_points,
                      placement_->netlist().size(), threads);
    for (std::size_t w = 0; w < threads; ++w) {
      const Worker& wk = *workers[w];
      ckpt_writer.add_worker(wk.rng.state(),
                             wk.field.has_cached_field() ? &wk.field.cached_field() : nullptr,
                             wk.samples);
    }
    flusher->publish(ckpt_writer.finish());
    if (durable) flusher->flush();
  };
  const auto all_done = [&] {
    for (std::size_t w = 0; w < threads; ++w)
      if (workers[w]->samples.size() < slice_size[w]) return false;
    return true;
  };

  // Round loop: each round advances every worker by at most `chunk` trials,
  // then checkpoints. Workers poll the run control per trial and drain (the
  // control is deliberately NOT handed to parallel_for — a worker that stops
  // must keep its partial state for the final checkpoint).
  const std::size_t chunk = options_.checkpoint_every == 0
                                ? options_.trials
                                : std::max<std::size_t>(1, options_.checkpoint_every / threads);
  // Armed once here, then one relaxed fetch_add per trial — the whole cost of
  // the observability layer on the hot path (a trial is at minimum one grid
  // FFT, so the add is noise; the bench asserts ≤2% against the off state).
  util::metrics::Counter* trials_counter =
      options_.metrics ? &util::metrics::Registry::instance().counter("mc.trials") : nullptr;
  const auto worker_round = [&](std::size_t w) {
    Worker& wk = *workers[w];
    const std::size_t target = slice_size[w];
    for (std::size_t did = 0; wk.samples.size() < target && did < chunk; ++did) {
      if (rc && rc->should_stop()) break;
      if (options_.resample_states_per_trial) {
        draw_states_into(wk.rng, wk.ws.table_id);
        wk.ws.buckets_built = false;
      }
      wk.samples.push_back(run_trial(wk.field, wk.rng, wk.ws));
      if (trials_counter != nullptr) trials_counter->add();
    }
  };

  while (!all_done()) {
    if (threads == 1) {
      worker_round(0);
    } else {
      util::ThreadPool::shared(threads).parallel_for(threads, worker_round);
    }
    const bool stopping = rc && rc->should_stop() && !all_done();
    if (flusher && (options_.checkpoint_every > 0 || stopping))
      checkpoint_now(/*durable=*/stopping);
    if (stopping) throw rc->make_error("mc.run");
  }
  if (flusher) flusher->flush();  // last periodic image is durable on return

  if (threads == 1) rng_ = workers[0]->rng;
  math::SampleSet acc;
  acc.reserve(options_.trials);
  for (const auto& w : workers)
    for (double v : w->samples) acc.add(v);
  FullChipMcResult r;
  r.mean_na = acc.mean();
  r.sigma_na = acc.stddev();
  if (!std::isfinite(r.mean_na) || !std::isfinite(r.sigma_na) || r.sigma_na < 0.0) {
    std::ostringstream os;
    os << "full-chip MC: non-physical result (mean " << r.mean_na << " nA, sigma " << r.sigma_na
       << " nA) after " << options_.trials << " trials on "
       << placement_->netlist().size() << " gates";
    throw NumericalError(os.str());
  }
  r.trials = options_.trials;
  r.p50_na = acc.percentile(0.50);
  r.p90_na = acc.percentile(0.90);
  r.p99_na = acc.percentile(0.99);
  return r;
}

}  // namespace rgleak::mc
