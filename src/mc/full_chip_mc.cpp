#include "mc/full_chip_mc.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "mc/checkpoint.h"
#include "util/failpoint.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace rgleak::mc {

FullChipMonteCarlo::FullChipMonteCarlo(const placement::Placement& placement,
                                       const charlib::CharacterizedLibrary& chars,
                                       FullChipMcOptions options)
    : placement_(&placement),
      chars_(&chars),
      options_(options),
      field_(placement.floorplan().rows, placement.floorplan().cols,
             placement.floorplan().site_w_nm, placement.floorplan().site_h_nm,
             chars.process().wid_correlation(), chars.process().length().sigma_wid_nm,
             chars.process().anisotropy()),
      rng_(options.seed) {
  RGLEAK_REQUIRE(options_.trials >= 2, "MC needs at least two trials");
  const std::size_t n = placement.netlist().size();
  state_.resize(n);
  table_.resize(n, nullptr);
  draw_states(rng_);
}

void FullChipMonteCarlo::draw_states(math::Rng& rng) {
  const netlist::Netlist& nl = placement_->netlist();
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    state_[g] = s;
    table_[g] = table_for(ci, s);
  }
}

const charlib::LeakageTable* FullChipMonteCarlo::table_for(std::size_t cell_index,
                                                           std::uint32_t state) {
  const std::uint64_t key = (static_cast<std::uint64_t>(cell_index) << 32) | state;
  const auto it = table_index_.find(key);
  if (it != table_index_.end()) return it->second;

  const double mu = chars_->process().length().mean_nm;
  const double sigma = chars_->process().length().sigma_total_nm();
  const double span = 8.0 * sigma;
  auto table = std::make_unique<charlib::LeakageTable>(
      chars_->library().cell(cell_index), state, chars_->library().tech(),
      std::max(mu - span, 1.0), mu + std::max(span, 1e-3), options_.table_points);
  const charlib::LeakageTable* ptr = table.get();
  tables_.push_back(std::move(table));
  table_index_.emplace(key, ptr);
  return ptr;
}

void FullChipMonteCarlo::build_all_state_tables() {
  const netlist::Netlist& nl = placement_->netlist();
  std::vector<bool> seen(chars_->library().size(), false);
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    if (seen[ci]) continue;
    seen[ci] = true;
    const std::uint32_t states = 1u << chars_->library().cell(ci).num_inputs();
    for (std::uint32_t s = 0; s < states; ++s) (void)table_for(ci, s);
  }
}

void FullChipMonteCarlo::draw_states_into(
    math::Rng& rng, std::vector<const charlib::LeakageTable*>& table) const {
  const netlist::Netlist& nl = placement_->netlist();
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    const std::uint64_t key = (static_cast<std::uint64_t>(ci) << 32) | s;
    const auto it = table_index_.find(key);
    RGLEAK_REQUIRE(it != table_index_.end(), "state table not prebuilt");
    table[g] = it->second;
  }
}

double FullChipMonteCarlo::sample_total_na(math::Rng& rng) {
  if (options_.resample_states_per_trial) draw_states(rng);
  return sample_total_with(field_, rng);
}

double FullChipMonteCarlo::sample_total_with(process::GridFieldSampler& field,
                                             math::Rng& rng) const {
  return sample_total_tables(field, rng, table_);
}

double FullChipMonteCarlo::sample_total_tables(
    process::GridFieldSampler& field, math::Rng& rng,
    const std::vector<const charlib::LeakageTable*>& table) const {
  RGLEAK_FAILPOINT("mc.trial");
  const double mu = chars_->process().length().mean_nm;
  const double d2d = rng.normal(0.0, chars_->process().length().sigma_d2d_nm);
  const std::vector<double> wid = field.sample(rng);
  const placement::Floorplan& fp = placement_->floorplan();
  const std::size_t n = placement_->netlist().size();
  double total = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    const std::size_t site = placement_->site_of(g);
    const std::size_t row = site / fp.cols, col = site % fp.cols;
    const double l = mu + d2d + wid[row * fp.cols + col];
    total += table[g]->eval_na(l);
  }
  return total;
}

void FullChipMonteCarlo::restore(const std::string& path, std::size_t threads,
                                 std::vector<math::Rng>& rngs,
                                 std::vector<process::GridFieldSampler>& fields,
                                 std::vector<std::vector<double>>& slices) const {
  const McCheckpoint ckpt = load_mc_checkpoint(path);
  const auto mismatch = [&](const char* field, auto have, auto want) {
    std::ostringstream os;
    os << "checkpoint " << path << " does not match this run: " << field << " is " << want
       << " in the checkpoint but " << have << " here (resume needs identical seed, threads, "
          "trials, resampling, table points, and netlist)";
    throw ConfigError(os.str());
  };
  if (ckpt.seed != options_.seed) mismatch("seed", options_.seed, ckpt.seed);
  if (ckpt.threads != threads) mismatch("threads", threads, ckpt.threads);
  if (ckpt.trials != options_.trials) mismatch("trials", options_.trials, ckpt.trials);
  if (ckpt.resample_states_per_trial != options_.resample_states_per_trial)
    mismatch("resample_states_per_trial", options_.resample_states_per_trial,
             ckpt.resample_states_per_trial);
  if (ckpt.table_points != options_.table_points)
    mismatch("table_points", options_.table_points, ckpt.table_points);
  if (ckpt.gate_count != placement_->netlist().size())
    mismatch("gate count", placement_->netlist().size(), ckpt.gate_count);

  for (std::size_t w = 0; w < threads; ++w) {
    const McWorkerState& ws = ckpt.workers[w];
    const std::size_t slice =
        (w + 1) * options_.trials / threads - w * options_.trials / threads;
    if (ws.samples.size() > slice)
      mismatch("worker sample count", slice, ws.samples.size());
    rngs[w].set_state(ws.rng);
    if (!ws.cached_field.empty()) fields[w].set_cached_field(ws.cached_field);
    slices[w] = ws.samples;
  }
}

FullChipMcResult FullChipMonteCarlo::run() {
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  const util::RunControl* rc = options_.run;

  // Each worker gets its own RNG stream, field-sampler copy (the sampler
  // caches the second field of each FFT, and that cache must live as long as
  // the stream) and per-gate table vector, and fills a disjoint slice of the
  // trials so the merged sample set is deterministic for a fixed
  // (seed, threads). The serial case is worker 0 continuing rng_ itself,
  // matching the historical serial stream. All of this state persists across
  // checkpoint rounds, which is what makes the result independent of the
  // checkpoint cadence and of interrupt/resume cycles.
  if (options_.resample_states_per_trial) build_all_state_tables();
  std::vector<math::Rng> rngs;
  rngs.reserve(threads);
  if (threads == 1) {
    rngs.push_back(rng_);
  } else {
    for (std::size_t w = 0; w < threads; ++w) rngs.push_back(rng_.fork());
  }
  std::vector<process::GridFieldSampler> fields(threads, field_);
  std::vector<std::vector<const charlib::LeakageTable*>> tables(threads, table_);
  std::vector<std::vector<double>> slices(threads);
  std::vector<std::size_t> slice_size(threads);
  for (std::size_t w = 0; w < threads; ++w)
    slice_size[w] = (w + 1) * options_.trials / threads - w * options_.trials / threads;

  if (!options_.resume_path.empty()) restore(options_.resume_path, threads, rngs, fields, slices);

  const auto checkpoint_now = [&] {
    McCheckpoint ckpt;
    ckpt.seed = options_.seed;
    ckpt.threads = threads;
    ckpt.trials = options_.trials;
    ckpt.resample_states_per_trial = options_.resample_states_per_trial;
    ckpt.table_points = options_.table_points;
    ckpt.gate_count = placement_->netlist().size();
    ckpt.workers.resize(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      ckpt.workers[w].rng = rngs[w].state();
      if (fields[w].has_cached_field()) ckpt.workers[w].cached_field = fields[w].cached_field();
      ckpt.workers[w].samples = slices[w];
    }
    save_mc_checkpoint(options_.checkpoint_path, ckpt);
  };
  const auto all_done = [&] {
    for (std::size_t w = 0; w < threads; ++w)
      if (slices[w].size() < slice_size[w]) return false;
    return true;
  };

  // Round loop: each round advances every worker by at most `chunk` trials,
  // then checkpoints. Workers poll the run control per trial and drain (the
  // control is deliberately NOT handed to parallel_for — a worker that stops
  // must keep its partial state for the final checkpoint).
  const std::size_t chunk = options_.checkpoint_every == 0
                                ? options_.trials
                                : std::max<std::size_t>(1, options_.checkpoint_every / threads);
  const auto worker_round = [&](std::size_t w) {
    math::Rng& rng = rngs[w];
    process::GridFieldSampler& field = fields[w];
    std::vector<const charlib::LeakageTable*>& table = tables[w];
    std::vector<double>& out = slices[w];
    out.reserve(slice_size[w]);
    for (std::size_t did = 0; out.size() < slice_size[w] && did < chunk; ++did) {
      if (rc && rc->should_stop()) break;
      if (options_.resample_states_per_trial) draw_states_into(rng, table);
      out.push_back(sample_total_tables(field, rng, table));
    }
  };

  while (!all_done()) {
    if (threads == 1) {
      worker_round(0);
    } else {
      util::ThreadPool::shared(threads).parallel_for(threads, worker_round);
    }
    const bool stopping = rc && rc->should_stop() && !all_done();
    if (!options_.checkpoint_path.empty() && (options_.checkpoint_every > 0 || stopping))
      checkpoint_now();
    if (stopping) throw rc->make_error("mc.run");
  }

  if (threads == 1) rng_ = rngs[0];
  math::SampleSet acc;
  acc.reserve(options_.trials);
  for (const auto& s : slices)
    for (double v : s) acc.add(v);
  FullChipMcResult r;
  r.mean_na = acc.mean();
  r.sigma_na = acc.stddev();
  if (!std::isfinite(r.mean_na) || !std::isfinite(r.sigma_na) || r.sigma_na < 0.0) {
    std::ostringstream os;
    os << "full-chip MC: non-physical result (mean " << r.mean_na << " nA, sigma " << r.sigma_na
       << " nA) after " << options_.trials << " trials on "
       << placement_->netlist().size() << " gates";
    throw NumericalError(os.str());
  }
  r.trials = options_.trials;
  r.p50_na = acc.percentile(0.50);
  r.p90_na = acc.percentile(0.90);
  r.p99_na = acc.percentile(0.99);
  return r;
}

}  // namespace rgleak::mc
