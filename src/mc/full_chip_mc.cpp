#include "mc/full_chip_mc.h"

#include <cmath>
#include <sstream>
#include <thread>

#include "util/failpoint.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace rgleak::mc {

FullChipMonteCarlo::FullChipMonteCarlo(const placement::Placement& placement,
                                       const charlib::CharacterizedLibrary& chars,
                                       FullChipMcOptions options)
    : placement_(&placement),
      chars_(&chars),
      options_(options),
      field_(placement.floorplan().rows, placement.floorplan().cols,
             placement.floorplan().site_w_nm, placement.floorplan().site_h_nm,
             chars.process().wid_correlation(), chars.process().length().sigma_wid_nm,
             chars.process().anisotropy()),
      rng_(options.seed) {
  RGLEAK_REQUIRE(options_.trials >= 2, "MC needs at least two trials");
  const std::size_t n = placement.netlist().size();
  state_.resize(n);
  table_.resize(n, nullptr);
  draw_states(rng_);
}

void FullChipMonteCarlo::draw_states(math::Rng& rng) {
  const netlist::Netlist& nl = placement_->netlist();
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    state_[g] = s;
    table_[g] = table_for(ci, s);
  }
}

const charlib::LeakageTable* FullChipMonteCarlo::table_for(std::size_t cell_index,
                                                           std::uint32_t state) {
  const std::uint64_t key = (static_cast<std::uint64_t>(cell_index) << 32) | state;
  const auto it = table_index_.find(key);
  if (it != table_index_.end()) return it->second;

  const double mu = chars_->process().length().mean_nm;
  const double sigma = chars_->process().length().sigma_total_nm();
  const double span = 8.0 * sigma;
  auto table = std::make_unique<charlib::LeakageTable>(
      chars_->library().cell(cell_index), state, chars_->library().tech(),
      std::max(mu - span, 1.0), mu + std::max(span, 1e-3), options_.table_points);
  const charlib::LeakageTable* ptr = table.get();
  tables_.push_back(std::move(table));
  table_index_.emplace(key, ptr);
  return ptr;
}

void FullChipMonteCarlo::build_all_state_tables() {
  const netlist::Netlist& nl = placement_->netlist();
  std::vector<bool> seen(chars_->library().size(), false);
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    if (seen[ci]) continue;
    seen[ci] = true;
    const std::uint32_t states = 1u << chars_->library().cell(ci).num_inputs();
    for (std::uint32_t s = 0; s < states; ++s) (void)table_for(ci, s);
  }
}

void FullChipMonteCarlo::draw_states_into(
    math::Rng& rng, std::vector<const charlib::LeakageTable*>& table) const {
  const netlist::Netlist& nl = placement_->netlist();
  for (std::size_t g = 0; g < nl.size(); ++g) {
    const std::size_t ci = nl.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    std::uint32_t s = 0;
    for (int bit = 0; bit < cell.num_inputs(); ++bit)
      if (rng.bernoulli(options_.signal_probability)) s |= (1u << bit);
    const std::uint64_t key = (static_cast<std::uint64_t>(ci) << 32) | s;
    const auto it = table_index_.find(key);
    RGLEAK_REQUIRE(it != table_index_.end(), "state table not prebuilt");
    table[g] = it->second;
  }
}

double FullChipMonteCarlo::sample_total_na(math::Rng& rng) {
  if (options_.resample_states_per_trial) draw_states(rng);
  return sample_total_with(field_, rng);
}

double FullChipMonteCarlo::sample_total_with(process::GridFieldSampler& field,
                                             math::Rng& rng) const {
  return sample_total_tables(field, rng, table_);
}

double FullChipMonteCarlo::sample_total_tables(
    process::GridFieldSampler& field, math::Rng& rng,
    const std::vector<const charlib::LeakageTable*>& table) const {
  RGLEAK_FAILPOINT("mc.trial");
  const double mu = chars_->process().length().mean_nm;
  const double d2d = rng.normal(0.0, chars_->process().length().sigma_d2d_nm);
  const std::vector<double> wid = field.sample(rng);
  const placement::Floorplan& fp = placement_->floorplan();
  const std::size_t n = placement_->netlist().size();
  double total = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    const std::size_t site = placement_->site_of(g);
    const std::size_t row = site / fp.cols, col = site % fp.cols;
    const double l = mu + d2d + wid[row * fp.cols + col];
    total += table[g]->eval_na(l);
  }
  return total;
}

FullChipMcResult FullChipMonteCarlo::run() {
  math::SampleSet acc;
  acc.reserve(options_.trials);
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads == 1) {
    for (std::size_t t = 0; t < options_.trials; ++t) acc.add(sample_total_na(rng_));
  } else {
    // Each worker gets a forked RNG stream, its own field-sampler copy (the
    // sampler caches the second field of each FFT) and, when resampling, its
    // own per-gate table vector fed from the prebuilt shared cache. Workers
    // fill disjoint slices so the merged sample set is deterministic.
    if (options_.resample_states_per_trial) build_all_state_tables();
    std::vector<math::Rng> rngs;
    rngs.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) rngs.push_back(rng_.fork());
    std::vector<std::vector<double>> slices(threads);
    util::ThreadPool& pool = util::ThreadPool::shared(threads);
    pool.parallel_for(threads, [&](std::size_t w) {
      process::GridFieldSampler field = field_;  // thread-local copy
      std::vector<const charlib::LeakageTable*> table = table_;
      const std::size_t begin = w * options_.trials / threads;
      const std::size_t end = (w + 1) * options_.trials / threads;
      std::vector<double> out;
      out.reserve(end - begin);
      for (std::size_t t = begin; t < end; ++t) {
        if (options_.resample_states_per_trial) draw_states_into(rngs[w], table);
        out.push_back(sample_total_tables(field, rngs[w], table));
      }
      slices[w] = std::move(out);
    });
    for (const auto& s : slices)
      for (double v : s) acc.add(v);
  }
  FullChipMcResult r;
  r.mean_na = acc.mean();
  r.sigma_na = acc.stddev();
  if (!std::isfinite(r.mean_na) || !std::isfinite(r.sigma_na) || r.sigma_na < 0.0) {
    std::ostringstream os;
    os << "full-chip MC: non-physical result (mean " << r.mean_na << " nA, sigma " << r.sigma_na
       << " nA) after " << options_.trials << " trials on "
       << placement_->netlist().size() << " gates";
    throw NumericalError(os.str());
  }
  r.trials = options_.trials;
  r.p50_na = acc.percentile(0.50);
  r.p90_na = acc.percentile(0.90);
  r.p99_na = acc.percentile(0.99);
  return r;
}

}  // namespace rgleak::mc
