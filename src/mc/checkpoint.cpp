#include "mc/checkpoint.h"

#include <bit>
#include <charconv>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/require.h"

namespace rgleak::mc {

namespace {

constexpr const char* kMagic = "rgmcckpt-v1";

// Appenders matching the formatting the v1 format was originally written
// with via ostream: decimal for counts, lowercase hex without leading zeros
// for bit patterns (std::to_chars produces exactly that).
void append_u64(std::string& buf, std::uint64_t v, int base = 10) {
  char tmp[24];
  const auto res = std::to_chars(tmp, tmp + sizeof(tmp), v, base);
  buf.append(tmp, res.ptr);
}

void append_bits(std::string& buf, double v) {
  append_u64(buf, std::bit_cast<std::uint64_t>(v), 16);
}


[[noreturn]] void fail(const std::string& path, const std::string& message,
                       const std::string& token = "") {
  throw ParseError(path, 0, 0, message, token);
}

std::string next_token(std::istream& is, const std::string& path, const char* what) {
  std::string tok;
  if (!(is >> tok)) fail(path, std::string("unexpected end of checkpoint, wanted ") + what);
  return tok;
}

void expect(std::istream& is, const std::string& path, const char* keyword) {
  const std::string tok = next_token(is, path, keyword);
  if (tok != keyword)
    fail(path, std::string("expected keyword '") + keyword + "'", tok);
}

std::uint64_t read_u64(std::istream& is, const std::string& path, const char* what) {
  const std::string tok = next_token(is, path, what);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used, 10);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail(path, std::string("expected an unsigned integer for ") + what, tok);
  }
}

std::uint64_t read_hex64(std::istream& is, const std::string& path, const char* what) {
  const std::string tok = next_token(is, path, what);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used, 16);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail(path, std::string("expected a hex word for ") + what, tok);
  }
}

double read_bits(std::istream& is, const std::string& path, const char* what) {
  return std::bit_cast<double>(read_hex64(is, path, what));
}

}  // namespace

void McCheckpointWriter::begin(std::uint64_t seed, std::size_t threads, std::size_t trials,
                               bool resample_states_per_trial, std::size_t table_points,
                               std::size_t gate_count, std::size_t workers) {
  buf_.clear();  // keeps capacity: subsequent checkpoints reuse the buffer
  workers_declared_ = workers;
  workers_added_ = 0;
  finished_ = false;
  buf_ += kMagic;
  buf_ += "\nseed ";
  append_u64(buf_, seed);
  buf_ += "\nthreads ";
  append_u64(buf_, threads);
  buf_ += "\ntrials ";
  append_u64(buf_, trials);
  buf_ += "\nresample ";
  buf_ += resample_states_per_trial ? '1' : '0';
  buf_ += "\ntable_points ";
  append_u64(buf_, table_points);
  buf_ += "\ngates ";
  append_u64(buf_, gate_count);
  buf_ += "\nworkers ";
  append_u64(buf_, workers);
  buf_ += '\n';
}

void McCheckpointWriter::add_worker(const math::Rng::State& rng,
                                    const std::vector<double>* cached_field,
                                    const std::vector<double>& samples) {
  RGLEAK_REQUIRE(workers_added_ < workers_declared_,
                 "checkpoint writer: more worker records than declared");
  buf_ += "worker ";
  append_u64(buf_, workers_added_++);
  buf_ += "\nrng";
  for (std::uint64_t word : rng.s) {
    buf_ += ' ';
    append_u64(buf_, word, 16);
  }
  buf_ += ' ';
  append_u64(buf_, rng.spare_bits, 16);
  buf_ += ' ';
  buf_ += rng.has_spare ? '1' : '0';
  buf_ += "\ncached ";
  append_u64(buf_, cached_field != nullptr ? cached_field->size() : 0);
  if (cached_field != nullptr) {
    for (double v : *cached_field) {
      buf_ += ' ';
      append_bits(buf_, v);
    }
  }
  buf_ += "\nsamples ";
  append_u64(buf_, samples.size());
  for (double v : samples) {
    buf_ += ' ';
    append_bits(buf_, v);
  }
  buf_ += '\n';
}

const std::string& McCheckpointWriter::finish() {
  RGLEAK_REQUIRE(workers_added_ == workers_declared_,
                 "checkpoint writer: missing worker records");
  if (!finished_) {
    buf_ += "end\n";
    // Integrity trailer: CRC32 of every byte above it. The loader verifies
    // and strips this line, so a checkpoint torn mid-write or bit-flipped at
    // rest is rejected instead of silently resuming a corrupted MC run.
    const std::uint32_t crc = util::crc32(buf_);
    buf_ += "crc32 ";
    buf_ += util::crc32_hex(crc);
    buf_ += '\n';
    finished_ = true;
  }
  return buf_;
}

void McCheckpointWriter::save(const std::string& path) {
  const std::string& image = finish();
  util::atomic_write_file(path, [&](std::ostream& os) {
    os.write(image.data(), static_cast<std::streamsize>(image.size()));
  });
}

void save_mc_checkpoint(const std::string& path, const McCheckpoint& ckpt) {
  McCheckpointWriter writer;
  writer.begin(ckpt.seed, ckpt.threads, ckpt.trials, ckpt.resample_states_per_trial,
               ckpt.table_points, ckpt.gate_count, ckpt.workers.size());
  for (const McWorkerState& ws : ckpt.workers)
    writer.add_worker(ws.rng, ws.cached_field.empty() ? nullptr : &ws.cached_field, ws.samples);
  writer.save(path);
}

McCheckpoint load_mc_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open for reading: " + path);
  std::ostringstream whole;
  whole << file.rdbuf();
  std::string text = whole.str();

  // Verify and strip the integrity trailer ("crc32 <8 hex>" as the last
  // line, covering every byte before it). Legacy checkpoints without a
  // trailer still load; a trailer that is present but malformed or wrong
  // means corruption and must not parse. A file truncated above the trailer
  // loses the trailer line itself and is caught here too (the remaining
  // payload no longer matches the checksum).
  std::string payload = text;
  {
    std::string_view tail(text);
    if (!tail.empty() && tail.back() == '\n') tail.remove_suffix(1);
    const auto nl = tail.rfind('\n');
    const std::string_view last =
        nl == std::string_view::npos ? tail : tail.substr(nl + 1);
    if (last.substr(0, 6) == "crc32 ") {
      std::uint32_t want = 0;
      if (!util::parse_crc32_hex(last.substr(6), want))
        fail(path, "malformed checkpoint checksum trailer", std::string(last));
      payload = nl == std::string_view::npos ? std::string() : text.substr(0, nl + 1);
      if (util::crc32(payload) != want)
        fail(path, "checkpoint checksum mismatch (corrupt or truncated file)");
    }
  }
  std::istringstream is(payload);

  const std::string magic = next_token(is, path, "magic header");
  if (magic != kMagic)
    fail(path, std::string("not a checkpoint (wanted header '") + kMagic + "')", magic);

  McCheckpoint ckpt;
  expect(is, path, "seed");
  ckpt.seed = read_u64(is, path, "seed");
  expect(is, path, "threads");
  ckpt.threads = static_cast<std::size_t>(read_u64(is, path, "threads"));
  expect(is, path, "trials");
  ckpt.trials = static_cast<std::size_t>(read_u64(is, path, "trials"));
  expect(is, path, "resample");
  ckpt.resample_states_per_trial = read_u64(is, path, "resample") != 0;
  expect(is, path, "table_points");
  ckpt.table_points = static_cast<std::size_t>(read_u64(is, path, "table_points"));
  expect(is, path, "gates");
  ckpt.gate_count = static_cast<std::size_t>(read_u64(is, path, "gates"));
  expect(is, path, "workers");
  const std::size_t nworkers = static_cast<std::size_t>(read_u64(is, path, "worker count"));
  if (nworkers == 0 || nworkers != ckpt.threads)
    fail(path, "worker count must equal the checkpointed thread count");

  ckpt.workers.resize(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    McWorkerState& ws = ckpt.workers[w];
    expect(is, path, "worker");
    if (read_u64(is, path, "worker index") != w)
      fail(path, "worker records out of order");
    expect(is, path, "rng");
    for (auto& word : ws.rng.s) word = read_hex64(is, path, "rng state word");
    ws.rng.spare_bits = read_hex64(is, path, "rng spare bits");
    ws.rng.has_spare = read_u64(is, path, "rng spare flag") != 0;
    expect(is, path, "cached");
    const std::size_t ncached = static_cast<std::size_t>(read_u64(is, path, "cached size"));
    ws.cached_field.resize(ncached);
    for (auto& v : ws.cached_field) v = read_bits(is, path, "cached field value");
    expect(is, path, "samples");
    const std::size_t nsamples = static_cast<std::size_t>(read_u64(is, path, "sample count"));
    ws.samples.resize(nsamples);
    for (auto& v : ws.samples) v = read_bits(is, path, "sample value");
  }
  expect(is, path, "end");
  return ckpt;
}

}  // namespace rgleak::mc
