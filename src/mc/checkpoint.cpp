#include "mc/checkpoint.h"

#include <bit>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"

namespace rgleak::mc {

namespace {

constexpr const char* kMagic = "rgmcckpt-v1";

void put_bits(std::ostream& os, double v) {
  os << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

[[noreturn]] void fail(const std::string& path, const std::string& message,
                       const std::string& token = "") {
  throw ParseError(path, 0, 0, message, token);
}

std::string next_token(std::istream& is, const std::string& path, const char* what) {
  std::string tok;
  if (!(is >> tok)) fail(path, std::string("unexpected end of checkpoint, wanted ") + what);
  return tok;
}

void expect(std::istream& is, const std::string& path, const char* keyword) {
  const std::string tok = next_token(is, path, keyword);
  if (tok != keyword)
    fail(path, std::string("expected keyword '") + keyword + "'", tok);
}

std::uint64_t read_u64(std::istream& is, const std::string& path, const char* what) {
  const std::string tok = next_token(is, path, what);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used, 10);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail(path, std::string("expected an unsigned integer for ") + what, tok);
  }
}

std::uint64_t read_hex64(std::istream& is, const std::string& path, const char* what) {
  const std::string tok = next_token(is, path, what);
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used, 16);
    if (used != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail(path, std::string("expected a hex word for ") + what, tok);
  }
}

double read_bits(std::istream& is, const std::string& path, const char* what) {
  return std::bit_cast<double>(read_hex64(is, path, what));
}

}  // namespace

void save_mc_checkpoint(const std::string& path, const McCheckpoint& ckpt) {
  util::atomic_write_file(path, [&](std::ostream& os) {
    os << kMagic << "\n";
    os << "seed " << ckpt.seed << "\n";
    os << "threads " << ckpt.threads << "\n";
    os << "trials " << ckpt.trials << "\n";
    os << "resample " << (ckpt.resample_states_per_trial ? 1 : 0) << "\n";
    os << "table_points " << ckpt.table_points << "\n";
    os << "gates " << ckpt.gate_count << "\n";
    os << "workers " << ckpt.workers.size() << "\n";
    for (std::size_t w = 0; w < ckpt.workers.size(); ++w) {
      const McWorkerState& ws = ckpt.workers[w];
      os << "worker " << w << "\n";
      os << "rng" << std::hex;
      for (std::uint64_t word : ws.rng.s) os << ' ' << word;
      os << ' ' << ws.rng.spare_bits << std::dec << ' ' << (ws.rng.has_spare ? 1 : 0)
         << "\n";
      os << "cached " << ws.cached_field.size();
      for (double v : ws.cached_field) {
        os << ' ';
        put_bits(os, v);
      }
      os << "\n";
      os << "samples " << ws.samples.size();
      for (double v : ws.samples) {
        os << ' ';
        put_bits(os, v);
      }
      os << "\n";
    }
    os << "end\n";
  });
}

McCheckpoint load_mc_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);

  const std::string magic = next_token(is, path, "magic header");
  if (magic != kMagic)
    fail(path, std::string("not a checkpoint (wanted header '") + kMagic + "')", magic);

  McCheckpoint ckpt;
  expect(is, path, "seed");
  ckpt.seed = read_u64(is, path, "seed");
  expect(is, path, "threads");
  ckpt.threads = static_cast<std::size_t>(read_u64(is, path, "threads"));
  expect(is, path, "trials");
  ckpt.trials = static_cast<std::size_t>(read_u64(is, path, "trials"));
  expect(is, path, "resample");
  ckpt.resample_states_per_trial = read_u64(is, path, "resample") != 0;
  expect(is, path, "table_points");
  ckpt.table_points = static_cast<std::size_t>(read_u64(is, path, "table_points"));
  expect(is, path, "gates");
  ckpt.gate_count = static_cast<std::size_t>(read_u64(is, path, "gates"));
  expect(is, path, "workers");
  const std::size_t nworkers = static_cast<std::size_t>(read_u64(is, path, "worker count"));
  if (nworkers == 0 || nworkers != ckpt.threads)
    fail(path, "worker count must equal the checkpointed thread count");

  ckpt.workers.resize(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    McWorkerState& ws = ckpt.workers[w];
    expect(is, path, "worker");
    if (read_u64(is, path, "worker index") != w)
      fail(path, "worker records out of order");
    expect(is, path, "rng");
    for (auto& word : ws.rng.s) word = read_hex64(is, path, "rng state word");
    ws.rng.spare_bits = read_hex64(is, path, "rng spare bits");
    ws.rng.has_spare = read_u64(is, path, "rng spare flag") != 0;
    expect(is, path, "cached");
    const std::size_t ncached = static_cast<std::size_t>(read_u64(is, path, "cached size"));
    ws.cached_field.resize(ncached);
    for (auto& v : ws.cached_field) v = read_bits(is, path, "cached field value");
    expect(is, path, "samples");
    const std::size_t nsamples = static_cast<std::size_t>(read_u64(is, path, "sample count"));
    ws.samples.resize(nsamples);
    for (auto& v : ws.samples) v = read_bits(is, path, "sample value");
  }
  expect(is, path, "end");
  return ckpt;
}

}  // namespace rgleak::mc
