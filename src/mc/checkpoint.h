#pragma once
// Checkpoint/resume state for the full-chip Monte-Carlo engine.
//
// A checkpoint captures everything a fresh process needs to continue a run
// bit-identically: per-worker RNG engine state (including the Marsaglia
// spare), the field sampler's spare-field cache, and every completed sample
// (the percentile estimates need the raw values, not just moments). All
// doubles are stored as exact 64-bit hex patterns so the text round-trip is
// lossless. An identity header (seed, threads, trials, ...) guards against
// resuming with a different run setup.
//
// Format "rgmcckpt-v1" is documented in docs/FORMATS.md. Files are written
// atomically (temp file + rename), so an interrupted save never leaves a
// truncated checkpoint behind.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "math/rng.h"

namespace rgleak::mc {

/// One worker's stochastic state at a checkpoint boundary.
struct McWorkerState {
  math::Rng::State rng;
  /// Spare field pending in the worker's GridFieldSampler (empty when none).
  std::vector<double> cached_field;
  /// Completed trial samples of this worker's slice, in trial order.
  std::vector<double> samples;
};

struct McCheckpoint {
  // Identity guard: resume refuses a checkpoint whose run setup differs.
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t trials = 0;
  bool resample_states_per_trial = false;
  std::size_t table_points = 0;
  std::size_t gate_count = 0;

  std::vector<McWorkerState> workers;
};

/// Writes the checkpoint atomically (temp file + rename). Throws IoError.
void save_mc_checkpoint(const std::string& path, const McCheckpoint& ckpt);

/// Loads and validates a checkpoint. Throws IoError on an unreadable file and
/// ParseError on a malformed or wrong-version one.
McCheckpoint load_mc_checkpoint(const std::string& path);

}  // namespace rgleak::mc
