#pragma once
// Checkpoint/resume state for the full-chip Monte-Carlo engine.
//
// A checkpoint captures everything a fresh process needs to continue a run
// bit-identically: per-worker RNG engine state (including the Marsaglia
// spare), the field sampler's spare-field cache, and every completed sample
// (the percentile estimates need the raw values, not just moments). All
// doubles are stored as exact 64-bit hex patterns so the text round-trip is
// lossless. An identity header (seed, threads, trials, ...) guards against
// resuming with a different run setup.
//
// Format "rgmcckpt-v1" is documented in docs/FORMATS.md. Files are written
// atomically (temp file + rename), so an interrupted save never leaves a
// truncated checkpoint behind.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "math/rng.h"

namespace rgleak::mc {

/// One worker's stochastic state at a checkpoint boundary.
struct McWorkerState {
  math::Rng::State rng;
  /// Spare field pending in the worker's GridFieldSampler (empty when none).
  std::vector<double> cached_field;
  /// Completed trial samples of this worker's slice, in trial order.
  std::vector<double> samples;
};

struct McCheckpoint {
  // Identity guard: resume refuses a checkpoint whose run setup differs.
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t trials = 0;
  bool resample_states_per_trial = false;
  std::size_t table_points = 0;
  std::size_t gate_count = 0;

  std::vector<McWorkerState> workers;
};

/// Writes the checkpoint atomically (temp file + rename). Throws IoError.
void save_mc_checkpoint(const std::string& path, const McCheckpoint& ckpt);

/// Serializer for periodic checkpointing that reuses its internal text
/// buffer across saves and reads worker state in place. The engine's old
/// cadence path deep-copied every worker's RNG state, cached field, and full
/// sample slice into a McCheckpoint before formatting it through ostream
/// locale machinery — O(total samples) of copies plus slow formatting every
/// cadence. begin()/add_worker()/save() write the same rgmcckpt-v1 text
/// straight from the live vectors with std::to_chars; after the first save
/// the only allocation left is inside atomic_write_file's temp-path string.
class McCheckpointWriter {
 public:
  /// Starts a new checkpoint image; `workers` is the number of add_worker()
  /// calls that must follow before save().
  void begin(std::uint64_t seed, std::size_t threads, std::size_t trials,
             bool resample_states_per_trial, std::size_t table_points, std::size_t gate_count,
             std::size_t workers);

  /// Appends one worker record. `cached_field` may be null (no spare field
  /// pending). The vectors are read in place, not copied.
  void add_worker(const math::Rng::State& rng, const std::vector<double>* cached_field,
                  const std::vector<double>& samples);

  /// Finalizes the image (appends the end marker; requires exactly the
  /// declared number of worker records) and returns the serialized bytes.
  /// Idempotent; the reference stays valid until the next begin(). The MC
  /// engine hands this image to its background checkpoint flusher instead of
  /// blocking the trial loop on the filesystem.
  const std::string& finish();

  /// Atomically writes the finalized image (temp file + rename). Throws
  /// IoError.
  void save(const std::string& path);

 private:
  std::string buf_;
  std::size_t workers_declared_ = 0;
  std::size_t workers_added_ = 0;
  bool finished_ = false;
};

/// Loads and validates a checkpoint. Throws IoError on an unreadable file and
/// ParseError on a malformed or wrong-version one.
McCheckpoint load_mc_checkpoint(const std::string& path);

}  // namespace rgleak::mc
