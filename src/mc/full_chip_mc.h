#pragma once
// Full-chip Monte-Carlo reference engine.
//
// Independent end-to-end validation of the analytical estimators: per trial,
// draw a D2D length shift, a spatially correlated WID length field over the
// placement grid (circulant embedding), look up every placed gate's leakage
// at its sampled length, and sum. Across trials this yields the empirical
// mean/sigma of total chip leakage, which the RG estimates must match.
//
// The trial loop is the throughput bound for every MC-backed validation, so
// it is built around three ideas (DESIGN.md "MC performance"):
//  * site/table bucketing — a gate's leakage depends only on (site L-value,
//    leakage table), so trials group gates by table and evaluate each bucket
//    with one batched LeakageTable::eval_many_na gather + vexp pass instead
//    of a scalar eval per gate;
//  * zero-allocation steady state — every per-trial buffer (field FFT
//    scratch, bucket arrays, gather/eval buffers) lives in a per-worker
//    McWorkspace that is warmed once and reused, so the steady-state loop
//    performs no heap allocations (asserted by tests/mc/test_mc_perf_path.cpp
//    with a counting operator new);
//  * cheap checkpoints — the periodic checkpoint path streams live worker
//    state through a buffer-reusing McCheckpointWriter instead of
//    deep-copying every slice each cadence.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "charlib/characterize.h"
#include "charlib/leakage_table.h"
#include "math/histogram.h"
#include "math/rng.h"
#include "math/stats.h"
#include "placement/placement.h"
#include "process/field_sampler.h"
#include "util/run_control.h"

namespace rgleak::mc {

/// How a trial evaluates the per-gate leakage sum.
enum class McEvalPath {
  /// Group gates into (site, table) buckets once per state draw; evaluate
  /// each bucket with one batched table lookup (gather + vexp). The default.
  kBucketed,
  /// Historical scalar loop: one LeakageTable::eval_na (std::exp) per gate.
  /// Kept as the reference the bucketed path is validated against, and for
  /// A/B benchmarking.
  kPerGate,
};

struct FullChipMcOptions {
  std::size_t trials = 500;
  std::uint64_t seed = 777;
  /// Signal probability used to draw each gate's (fixed) input state.
  double signal_probability = 0.5;
  /// When true, gate input states are redrawn every trial (models workload
  /// variability in addition to process variability).
  bool resample_states_per_trial = false;
  std::size_t table_points = 129;
  /// Worker threads for run(). 1 = serial, 0 = hardware concurrency. Results
  /// are deterministic for a fixed (seed, threads) pair; different thread
  /// counts reorder the per-thread RNG streams and therefore produce
  /// different (equally valid) samples. Threaded runs support per-trial
  /// state resampling: workers draw states into thread-local tables.
  std::size_t threads = 1;
  /// Trial evaluation strategy; kBucketed and kPerGate consume the identical
  /// RNG stream (same states, same fields), so for a fixed (seed, threads)
  /// they agree to floating-point reassociation error (both paths use
  /// compensated summation; see tests/mc/test_mc_perf_path.cpp for the
  /// asserted tolerance).
  McEvalPath eval_path = McEvalPath::kBucketed;
  /// Cooperative stop / deadline. Workers poll it once per trial (one relaxed
  /// atomic load when unarmed) and drain; run() then writes a final
  /// checkpoint (when checkpoint_path is set) and throws DeadlineExceeded.
  const util::RunControl* run = nullptr;
  /// Total trials between periodic checkpoints (split across workers);
  /// 0 disables periodic checkpoints. Checkpoint cadence never changes the
  /// result: worker state persists across rounds, so the sample stream is
  /// bit-identical whatever the cadence — or whether the run was interrupted
  /// and resumed — for a fixed (seed, threads).
  std::size_t checkpoint_every = 0;
  /// Where checkpoints are written (atomic temp-file + rename). Empty
  /// disables checkpointing entirely.
  std::string checkpoint_path;
  /// Resume from this checkpoint instead of starting fresh. The checkpoint's
  /// identity header must match (seed, threads, trials, resampling, table
  /// points, gate count), else ConfigError.
  std::string resume_path;
  /// Record engine metrics (mc.trials counter, checkpoint flush latency) into
  /// util::metrics::Registry. One relaxed fetch_add per trial when on;
  /// bench_full_chip_mc runs the armed/off pair and asserts the difference
  /// stays within the 2% observability budget. Off exists for that A/B
  /// baseline, not as a recommended configuration.
  bool metrics = true;
};

struct FullChipMcResult {
  double mean_na = 0.0;
  double sigma_na = 0.0;
  std::size_t trials = 0;
  /// Empirical percentiles of the total-leakage distribution.
  double p50_na = 0.0;
  double p90_na = 0.0;
  double p99_na = 0.0;
};

/// Per-worker trial scratch. All buffers grow to their steady-state size on
/// the first trial and are reused afterwards; nothing in here allocates in
/// steady state.
struct McWorkspace {
  process::FieldWorkspace field;        ///< FFT buffers for sample_into
  std::vector<double> wid;              ///< WID field draw, one value per site
  std::vector<std::uint32_t> table_id;  ///< per gate: current input-state table
  // Site/table buckets: entry e evaluates table `b` (entries grouped by
  // table id, bucket b spanning [bucket_begin[b], bucket_begin[b+1])) at
  // site entry_site[e], counted entry_weight[e] times.
  std::vector<std::uint32_t> entry_site;
  std::vector<double> entry_weight;
  std::vector<std::uint32_t> bucket_begin;
  std::vector<std::uint32_t> fill;  ///< counting-sort cursors
  std::vector<double> l_buf;        ///< gathered per-entry channel lengths
  std::vector<double> i_buf;        ///< batched per-entry leakage values
  bool buckets_built = false;       ///< valid for the current table_id draw
};

class FullChipMonteCarlo {
 public:
  FullChipMonteCarlo(const placement::Placement& placement,
                     const charlib::CharacterizedLibrary& chars, FullChipMcOptions options = {});

  FullChipMcResult run();

  /// Total-leakage sample for one process draw (exposed for tests); uses the
  /// engine's own workspace — allocation-free once warm.
  double sample_total_na(math::Rng& rng);

 private:
  /// Per-worker run() state: own RNG stream, field-sampler copy (the sampler
  /// caches the second field of each FFT, which must live as long as the
  /// stream), workspace, and the disjoint slice of trials it fills. Each
  /// worker is a separate heap block, so hot per-trial writes (slice
  /// push_back, workspace fills) never share a cache line across workers.
  struct Worker {
    math::Rng rng;
    process::GridFieldSampler field;
    McWorkspace ws;
    std::vector<double> samples;

    Worker(math::Rng r, const process::GridFieldSampler& f) : rng(r), field(f) {}
  };

  const placement::Placement* placement_;
  const charlib::CharacterizedLibrary* chars_;
  FullChipMcOptions options_;
  process::GridFieldSampler field_;
  math::Rng rng_;
  std::vector<std::uint32_t> state_;     // per gate
  std::vector<std::uint32_t> table_id_;  // per gate, indexes table_list_
  std::vector<std::unique_ptr<charlib::LeakageTable>> tables_;  // per (cell,state), owned
  std::vector<const charlib::LeakageTable*> table_list_;        // id -> table
  std::unordered_map<std::uint64_t, std::uint32_t> table_index_;
  /// cell index -> (state -> table id), filled by build_all_state_tables so
  /// the per-trial state redraw resolves table ids with two array loads
  /// instead of a hash lookup per gate.
  std::vector<std::vector<std::uint32_t>> cell_state_ids_;
  McWorkspace ws_;  // workspace of the sample_total_na test path

  /// run() with the thread count resolved (0 already mapped to hardware
  /// concurrency) and bad_alloc translation applied by the caller.
  FullChipMcResult run_with_threads(std::size_t threads);
  std::uint32_t table_for(std::size_t cell_index, std::uint32_t state);
  void draw_states(math::Rng& rng);
  /// Eagerly build the lookup tables for every input state of every cell used
  /// by the netlist, so threaded workers can resample states without touching
  /// the shared cache.
  void build_all_state_tables();
  /// Thread-safe state draw into a caller-owned per-gate table-id vector; the
  /// tables must have been prebuilt. Mirrors draw_states' RNG consumption.
  void draw_states_into(math::Rng& rng, std::vector<std::uint32_t>& table_id) const;
  /// Rebuilds ws's (site, table) buckets from ws.table_id via counting sort;
  /// `merge_duplicates` additionally folds repeated (site, table) pairs into
  /// one weighted entry (worth it only when states are fixed for the whole
  /// run, so the buckets are built once).
  void build_buckets(McWorkspace& ws, bool merge_duplicates) const;
  /// One trial: D2D + WID field draw, then the per-gate sum over the selected
  /// evaluation path. Both paths consume the same RNG stream and use
  /// compensated (Neumaier) summation.
  double run_trial(process::GridFieldSampler& field, math::Rng& rng, McWorkspace& ws) const;
  double sum_bucketed(McWorkspace& ws, double base) const;
  double sum_per_gate(const McWorkspace& ws, double base) const;
  /// Loads `path`, verifies its identity header against this run's setup
  /// (ConfigError on mismatch), and installs the per-worker state.
  void restore(const std::string& path, std::size_t threads,
               std::vector<std::unique_ptr<Worker>>& workers) const;
};

}  // namespace rgleak::mc
