#pragma once
// Full-chip Monte-Carlo reference engine.
//
// Independent end-to-end validation of the analytical estimators: per trial,
// draw a D2D length shift, a spatially correlated WID length field over the
// placement grid (circulant embedding), look up every placed gate's leakage
// at its sampled length, and sum. Across trials this yields the empirical
// mean/sigma of total chip leakage, which the RG estimates must match.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "charlib/characterize.h"
#include "charlib/leakage_table.h"
#include "math/histogram.h"
#include "math/rng.h"
#include "math/stats.h"
#include "placement/placement.h"
#include "process/field_sampler.h"
#include "util/run_control.h"

namespace rgleak::mc {

struct FullChipMcOptions {
  std::size_t trials = 500;
  std::uint64_t seed = 777;
  /// Signal probability used to draw each gate's (fixed) input state.
  double signal_probability = 0.5;
  /// When true, gate input states are redrawn every trial (models workload
  /// variability in addition to process variability).
  bool resample_states_per_trial = false;
  std::size_t table_points = 129;
  /// Worker threads for run(). 1 = serial, 0 = hardware concurrency. Results
  /// are deterministic for a fixed (seed, threads) pair; different thread
  /// counts reorder the per-thread RNG streams and therefore produce
  /// different (equally valid) samples. Threaded runs support per-trial
  /// state resampling: workers draw states into thread-local tables.
  std::size_t threads = 1;
  /// Cooperative stop / deadline. Workers poll it once per trial (one relaxed
  /// atomic load when unarmed) and drain; run() then writes a final
  /// checkpoint (when checkpoint_path is set) and throws DeadlineExceeded.
  const util::RunControl* run = nullptr;
  /// Total trials between periodic checkpoints (split across workers);
  /// 0 disables periodic checkpoints. Checkpoint cadence never changes the
  /// result: worker state persists across rounds, so the sample stream is
  /// bit-identical whatever the cadence — or whether the run was interrupted
  /// and resumed — for a fixed (seed, threads).
  std::size_t checkpoint_every = 0;
  /// Where checkpoints are written (atomic temp-file + rename). Empty
  /// disables checkpointing entirely.
  std::string checkpoint_path;
  /// Resume from this checkpoint instead of starting fresh. The checkpoint's
  /// identity header must match (seed, threads, trials, resampling, table
  /// points, gate count), else ConfigError.
  std::string resume_path;
};

struct FullChipMcResult {
  double mean_na = 0.0;
  double sigma_na = 0.0;
  std::size_t trials = 0;
  /// Empirical percentiles of the total-leakage distribution.
  double p50_na = 0.0;
  double p90_na = 0.0;
  double p99_na = 0.0;
};

class FullChipMonteCarlo {
 public:
  FullChipMonteCarlo(const placement::Placement& placement,
                     const charlib::CharacterizedLibrary& chars, FullChipMcOptions options = {});

  FullChipMcResult run();

  /// Total-leakage sample for one process draw (exposed for tests).
  double sample_total_na(math::Rng& rng);

  /// Thread-safe variant over an explicit field sampler (fixed gate states).
  double sample_total_with(process::GridFieldSampler& field, math::Rng& rng) const;

 private:
  const placement::Placement* placement_;
  const charlib::CharacterizedLibrary* chars_;
  FullChipMcOptions options_;
  process::GridFieldSampler field_;
  math::Rng rng_;
  std::vector<std::uint32_t> state_;               // per gate
  std::vector<const charlib::LeakageTable*> table_;  // per gate
  std::vector<std::unique_ptr<charlib::LeakageTable>> tables_;  // per (cell,state), owned
  std::unordered_map<std::uint64_t, const charlib::LeakageTable*> table_index_;

  const charlib::LeakageTable* table_for(std::size_t cell_index, std::uint32_t state);
  void draw_states(math::Rng& rng);
  /// Eagerly build the lookup tables for every input state of every cell used
  /// by the netlist, so threaded workers can resample states without touching
  /// the shared cache.
  void build_all_state_tables();
  /// Thread-safe state draw into a caller-owned per-gate table vector; the
  /// tables must have been prebuilt. Mirrors draw_states' RNG consumption.
  void draw_states_into(math::Rng& rng,
                        std::vector<const charlib::LeakageTable*>& table) const;
  double sample_total_tables(process::GridFieldSampler& field, math::Rng& rng,
                             const std::vector<const charlib::LeakageTable*>& table) const;
  /// Loads `path`, verifies its identity header against this run's setup
  /// (ConfigError on mismatch), and installs the per-worker state.
  void restore(const std::string& path, std::size_t threads, std::vector<math::Rng>& rngs,
               std::vector<process::GridFieldSampler>& fields,
               std::vector<std::vector<double>>& slices) const;
};

}  // namespace rgleak::mc
