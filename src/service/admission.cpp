#include "service/admission.h"

#include <array>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace rgleak::service {

namespace {

// The ladder, most expensive first. Admission enters at the requested rung
// and only ever walks down (a cheaper request is never upgraded).
constexpr std::array<const char*, 4> kLadder = {"exact_fft", "exact_direct", "linear",
                                                "integral_polar"};

std::string human_mb(std::uint64_t bytes) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << static_cast<double>(bytes) / (1024.0 * 1024.0) << " MiB";
  return os.str();
}

}  // namespace

Admission admit_estimate(const ResourceGovernor& gov, std::size_t sites,
                         const std::string& method) {
  Admission adm;
  adm.method = method;
  if (gov.mem_budget_bytes == 0) return adm;  // unlimited: run as requested

  std::size_t start = kLadder.size();  // methods off the ladder map to themselves
  for (std::size_t i = 0; i < kLadder.size(); ++i)
    if (method == kLadder[i]) {
      start = i;
      break;
    }
  if (start == kLadder.size()) {
    // integral_rect and friends: constant-memory floor rungs. Check-fit only.
    if (gov.memory.predict_bytes(method, sites) > gov.mem_budget_bytes) {
      std::ostringstream os;
      os << "admission: method '" << method << "' at " << sites << " sites needs "
         << human_mb(gov.memory.predict_bytes(method, sites)) << ", over the "
         << human_mb(gov.mem_budget_bytes) << " memory budget with no cheaper rung";
      throw ResourceError(os.str());
    }
    return adm;
  }

  for (std::size_t i = start; i < kLadder.size(); ++i) {
    if (gov.memory.predict_bytes(kLadder[i], sites) <= gov.mem_budget_bytes) {
      adm.method = kLadder[i];
      if (i != start) {
        std::ostringstream os;
        os << "mem: " << method << "->" << kLadder[i];
        adm.degradation = os.str();
      }
      return adm;
    }
  }
  std::ostringstream os;
  os << "admission: no estimator rung fits at " << sites << " sites: floor '"
     << kLadder.back() << "' needs " << human_mb(gov.memory.predict_bytes(kLadder.back(), sites))
     << ", over the " << human_mb(gov.mem_budget_bytes) << " memory budget";
  throw ResourceError(os.str());
}

Admission admit_mc(const ResourceGovernor& gov, std::size_t sites, std::size_t threads) {
  Admission adm;
  adm.method = "mc";
  adm.threads = threads == 0 ? 1 : threads;
  if (gov.mem_budget_bytes == 0) {
    adm.threads = threads;  // preserve 0 = hardware concurrency
    return adm;
  }

  const std::uint64_t per_worker = gov.memory.predict_bytes("mc", sites);
  std::size_t admitted = adm.threads;
  while (admitted > 1 && per_worker * admitted > gov.mem_budget_bytes) admitted /= 2;
  if (per_worker * admitted > gov.mem_budget_bytes) {
    std::ostringstream os;
    os << "admission: mc at " << sites << " sites needs " << human_mb(per_worker)
       << " even with a single worker, over the " << human_mb(gov.mem_budget_bytes)
       << " memory budget";
    throw ResourceError(os.str());
  }
  if (admitted != adm.threads) {
    std::ostringstream os;
    os << "mem: mc threads " << adm.threads << "->" << admitted;
    adm.degradation = os.str();
  }
  adm.threads = admitted;
  return adm;
}

}  // namespace rgleak::service
