#include "service/job_queue.h"

#include <algorithm>

#include "util/error.h"
#include "util/require.h"

namespace rgleak::service {

ShedPolicy parse_shed_policy(const std::string& name) {
  if (name == "block") return ShedPolicy::kBlock;
  if (name == "reject-new") return ShedPolicy::kRejectNew;
  if (name == "drop-oldest") return ShedPolicy::kDropOldest;
  throw ConfigError("unknown shed policy '" + name +
                    "' (expected block, reject-new, or drop-oldest)");
}

const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBlock: return "block";
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropOldest: return "drop-oldest";
  }
  return "unknown";
}

JobQueue::JobQueue(std::size_t capacity, ShedPolicy policy)
    : capacity_(capacity), policy_(policy) {
  RGLEAK_REQUIRE(capacity > 0, "JobQueue capacity must be positive");
}

JobQueue::PushResult JobQueue::push(JobSpec job) {
  std::unique_lock<std::mutex> lock(mutex_);
  PushResult result;
  if (policy_ == ShedPolicy::kBlock)
    space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
  if (closed_) {
    result.closed = true;
    return result;
  }
  if (queue_.size() >= capacity_) {
    ++shed_count_;
    if (policy_ == ShedPolicy::kRejectNew) {
      result.shed = std::move(job);
      return result;
    }
    // kDropOldest: evict the head to admit the newcomer.
    result.shed = std::move(queue_.front());
    queue_.pop_front();
  }
  queue_.push_back(std::move(job));
  high_watermark_ = std::max(high_watermark_, queue_.size());
  result.queued = true;
  lock.unlock();
  items_.notify_one();
  return result;
}

std::optional<JobSpec> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  items_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  JobSpec job = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  space_.notify_one();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  space_.notify_all();
  items_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t JobQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_count_;
}

std::size_t JobQueue::high_watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_watermark_;
}

}  // namespace rgleak::service
