#pragma once
// Minimal JSON line handling for the batch service layer.
//
// Manifests and journals are JSONL: one flat JSON object per line, values
// limited to strings, numbers, booleans, and null. That subset keeps parsing
// a page of code (no external dependency; the container ships none), while
// staying real JSON so manifests can be produced by any tool. Parse failures
// raise located ParseError ("file:line:col"), same contract as every other
// reader in the repo.

#include <cstddef>
#include <map>
#include <string>

namespace rgleak::service {

/// A parsed flat JSON object: key -> raw scalar value. String values are
/// unescaped; numbers / booleans / null keep their literal spelling ("12.5",
/// "true", "null") — consumers parse them with their own typed checks.
using JsonObject = std::map<std::string, std::string>;

/// Parses one flat JSON object from `text`. `source` and `line` locate
/// errors; `line` is the 1-based line of `text` within its file. Columns in
/// raised ParseErrors are 1-based offsets into `text`.
JsonObject parse_json_object(const std::string& text, const std::string& source,
                             std::size_t line);

/// JSON string escaping (same rules as util::error_json: quotes, backslash,
/// \n \r \t, \u00XX for other control bytes).
std::string json_escape(const std::string& s);

/// Renders `value` as a JSON string literal including the quotes.
std::string json_string(const std::string& value);

}  // namespace rgleak::service
