#pragma once
// Bounded MPMC job queue with explicit backpressure and load-shed policy.
//
// The batch runner's producer feeds this queue and worker threads drain it.
// The bound is the backpressure mechanism: a full queue either blocks the
// producer (kBlock — the default; total throughput is then governed by the
// workers), or sheds load explicitly so the batch keeps moving under
// overload. Shedding is never silent: push() hands the shed job back to the
// caller, which records it as a structured kShed outcome in the journal —
// a dropped job is an auditable record, not a disappearance.
//
// close() ends the stream: producers stop enqueuing, consumers drain what is
// left and then see kClosed. All operations are thread-safe; a TSan-covered
// test drives concurrent producers/consumers through every policy.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "service/job.h"

namespace rgleak::service {

/// What a full queue does with an incoming job.
enum class ShedPolicy {
  kBlock,       ///< wait for space (pure backpressure, nothing is shed)
  kRejectNew,   ///< refuse the incoming job (newest is shed)
  kDropOldest,  ///< evict the queue head to admit the incoming job
};

/// Parses "block" / "reject-new" / "drop-oldest"; throws ConfigError on
/// anything else.
ShedPolicy parse_shed_policy(const std::string& name);
const char* shed_policy_name(ShedPolicy policy);

class JobQueue {
 public:
  struct PushResult {
    /// True when the incoming job was admitted.
    bool queued = false;
    /// True when the queue was closed before the job could be admitted.
    bool closed = false;
    /// The job shed to make this push resolve: the incoming one under
    /// kRejectNew, the previous queue head under kDropOldest.
    std::optional<JobSpec> shed;
  };

  JobQueue(std::size_t capacity, ShedPolicy policy);

  /// Admits `job` per the shed policy. kBlock waits until space frees or the
  /// queue closes. Never both queues and rejects silently: the caller always
  /// learns exactly what happened to which job.
  PushResult push(JobSpec job);

  /// Blocks until a job is available or the queue is closed and drained
  /// (then returns nullopt).
  std::optional<JobSpec> pop();

  /// No further pushes succeed; blocked producers and consumers wake. Idempotent.
  void close();

  std::size_t capacity() const { return capacity_; }
  ShedPolicy policy() const { return policy_; }
  std::size_t size() const;
  /// Jobs shed so far (both policies).
  std::size_t shed_count() const;
  /// Deepest the queue has been, for backpressure diagnostics.
  std::size_t high_watermark() const;

 private:
  const std::size_t capacity_;
  const ShedPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable space_;  // producers wait here under kBlock
  std::condition_variable items_;  // consumers wait here
  std::deque<JobSpec> queue_;
  bool closed_ = false;
  std::size_t shed_count_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace rgleak::service
