#pragma once
// Retry classification and budgets for batch jobs.
//
// Retryability derives from the error taxonomy (util/error.h), not from
// string matching:
//
//   retryable  — NumericalError (an injected NaN or an ill-conditioned draw
//                may not recur; the executor also degrades the method one
//                rung down the PR-3 cost ladder on each retry),
//                DeadlineExceeded (the per-job watchdog fired; a degraded,
//                cheaper method may fit), IoError (transient OS refusals),
//                and foreign / unclassified exceptions (e.g. an armed
//                failpoint) — what we cannot classify we assume transient.
//   permanent  — ParseError and ConfigError (the input will not improve on a
//                second read), ContractViolation (a bug; retrying hides it).
//
// Retries are bounded twice: per job (max_attempts) and per batch
// (RetryBudget, a shared atomic), so a pathological manifest cannot turn
// into an unbounded retry storm.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/backoff.h"
#include "util/error.h"

namespace rgleak::service {

/// Whether a failed attempt may be retried.
bool retryable(ErrorCode code);

struct RetryPolicy {
  /// Total attempts per job (1 = no retries).
  int max_attempts = 3;
  util::BackoffPolicy backoff;
  /// Total retries allowed across the whole batch; SIZE_MAX = unbounded.
  std::size_t batch_retry_budget = SIZE_MAX;
  /// Retries allowed per job for crash outcomes (ErrorCode::kCrash) — a child
  /// killed by SIGSEGV/SIGABRT/OOM. Capped below max_attempts because a crash
  /// is usually reproducible: one fresh-child retry catches the flaky case
  /// without replaying a deterministic segfault N times.
  int max_crash_retries = 1;
};

/// Shared per-batch retry budget. try_take() atomically consumes one retry;
/// once it returns false, every job's next retry is denied and its failure
/// becomes terminal.
class RetryBudget {
 public:
  explicit RetryBudget(std::size_t budget) : remaining_(budget) {}

  bool try_take() {
    std::size_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (remaining_.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) return true;
    }
    return false;
  }

  std::size_t remaining() const { return remaining_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> remaining_;
};

}  // namespace rgleak::service
