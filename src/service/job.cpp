#include "service/job.h"

#include <fstream>
#include <set>
#include <sstream>

#include "service/jsonio.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/format.h"

namespace rgleak::service {

namespace {

std::string take_required(JsonObject& obj, const char* key, const std::string& source,
                          std::size_t line) {
  const auto it = obj.find(key);
  if (it == obj.end() || it->second.empty())
    throw ParseError(source, line, 0, std::string("job needs a non-empty \"") + key + "\"");
  std::string value = it->second;
  obj.erase(it);
  return value;
}

double parse_number(const std::string& tok, const char* what, const std::string& source,
                    std::size_t line) {
  double v = 0.0;
  if (!util::parse_double(tok, v))
    throw ParseError(source, line, 0, std::string("expected a number for ") + what, tok);
  return v;
}

}  // namespace

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kSucceeded: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kShed: return "shed";
  }
  return "unknown";
}

std::vector<JobSpec> parse_manifest(std::istream& is, const std::string& source) {
  std::vector<JobSpec> jobs;
  std::set<std::string> seen;
  std::string text;
  std::size_t line = 0;
  while (std::getline(is, text)) {
    ++line;
    RGLEAK_FAILPOINT("service.manifest.read_line");
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos || text[first] == '#') continue;
    JsonObject obj = parse_json_object(text, source, line);
    JobSpec job;
    job.line = line;
    job.id = take_required(obj, "id", source, line);
    job.kind = take_required(obj, "kind", source, line);
    if (!seen.insert(job.id).second)
      throw ParseError(source, line, 0, "duplicate job id", job.id);
    job.params = std::move(obj);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobSpec> load_manifest(const std::string& path) {
  RGLEAK_FAILPOINT("service.manifest.open");
  std::ifstream is(path);
  if (!is) throw IoError("cannot open manifest for reading: " + path);
  return parse_manifest(is, path);
}

std::string journal_record_json(const JobRecord& rec) {
  std::ostringstream os;
  os << "{\"job\":" << json_string(rec.id) << ",\"status\":\""
     << job_status_name(rec.status) << "\",\"attempts\":" << rec.attempts;
  // Numbers go through util::format_double*: ostringstream honors
  // LC_NUMERIC, and a decimal-comma journal line would fail its own strict
  // re-parse (and its byte-identity guarantee across locales).
  os << ",\"wall_ms\":" << util::format_double_fixed(rec.wall_ms, 4);
  if (rec.status == JobStatus::kSucceeded) {
    os << ",\"mean_na\":" << util::format_double(rec.mean_na, 17)
       << ",\"sigma_na\":" << util::format_double(rec.sigma_na, 17);
    if (!rec.method.empty()) os << ",\"method\":" << json_string(rec.method);
  }
  if (!rec.degradation.empty()) os << ",\"degradation\":" << json_string(rec.degradation);
  if (rec.beats > 0) os << ",\"beats\":" << rec.beats;
  if (!rec.error.empty()) os << ",\"error\":" << json_string(rec.error);
  os << "}";
  // Integrity trailer: CRC32 of the record as rendered WITHOUT the "crc"
  // field. parse_journal_record verifies and strips it, so a bit flip or a
  // torn tail in a journal line is a located ParseError, not silent data.
  std::string base = os.str();
  base.insert(base.size() - 1, ",\"crc\":\"" + util::crc32_hex(util::crc32(base)) + "\"");
  return base;
}

JobRecord parse_journal_record(const std::string& text, const std::string& source,
                               std::size_t line) {
  // Verify and strip the CRC trailer when present. Records written before
  // checksumming (or by external tools) have no "crc" suffix and are accepted
  // as-is; a present-but-wrong checksum is corruption and must not parse.
  std::string body = text;
  constexpr std::size_t kCrcSuffixLen = 18;  // ,"crc":"xxxxxxxx"}
  if (body.size() > kCrcSuffixLen &&
      body.compare(body.size() - kCrcSuffixLen, 8, ",\"crc\":\"") == 0 &&
      body.compare(body.size() - 2, 2, "\"}") == 0) {
    std::uint32_t want = 0;
    if (util::parse_crc32_hex(body.substr(body.size() - 10, 8), want)) {
      std::string base = body.substr(0, body.size() - kCrcSuffixLen) + "}";
      if (util::crc32(base) != want)
        throw ParseError(source, line, 0,
                         "journal record checksum mismatch (corrupt or truncated record)");
      body = std::move(base);
    }
  }
  JsonObject obj = parse_json_object(body, source, line);
  JobRecord rec;
  rec.id = take_required(obj, "job", source, line);
  const std::string status = take_required(obj, "status", source, line);
  if (status == "ok") rec.status = JobStatus::kSucceeded;
  else if (status == "failed") rec.status = JobStatus::kFailed;
  else if (status == "shed") rec.status = JobStatus::kShed;
  else throw ParseError(source, line, 0, "unknown job status", status);
  if (const auto it = obj.find("attempts"); it != obj.end())
    rec.attempts = static_cast<int>(parse_number(it->second, "attempts", source, line));
  if (const auto it = obj.find("wall_ms"); it != obj.end())
    rec.wall_ms = parse_number(it->second, "wall_ms", source, line);
  if (const auto it = obj.find("mean_na"); it != obj.end())
    rec.mean_na = parse_number(it->second, "mean_na", source, line);
  if (const auto it = obj.find("sigma_na"); it != obj.end())
    rec.sigma_na = parse_number(it->second, "sigma_na", source, line);
  if (const auto it = obj.find("method"); it != obj.end()) rec.method = it->second;
  if (const auto it = obj.find("degradation"); it != obj.end()) rec.degradation = it->second;
  if (const auto it = obj.find("beats"); it != obj.end())
    rec.beats = static_cast<std::uint64_t>(parse_number(it->second, "beats", source, line));
  if (const auto it = obj.find("error"); it != obj.end()) rec.error = it->second;
  if (rec.status == JobStatus::kSucceeded && obj.find("mean_na") == obj.end())
    throw ParseError(source, line, 0, "succeeded record is missing mean_na", rec.id);
  return rec;
}

}  // namespace rgleak::service
