#include "service/journal.h"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace rgleak::service {

namespace {
constexpr const char* kMagic = "rgbatch-journal-v1";

// Takes the exclusive single-writer lock for `path`. The lock lives on a
// `.lock` sidecar because the journal itself is atomically rewritten (temp +
// rename) on every append — its inode, and any flock on it, would vanish with
// the first record. Returns the held fd; flock releases on close (including
// process death, so a SIGKILL'd batch never leaves a stale lock).
int take_writer_lock(const std::string& path) {
#if defined(_WIN32)
  (void)path;
  return -1;
#else
  const std::string lock_path = path + ".lock";
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) throw IoError("cannot open journal lock file: " + lock_path);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    throw IoError("journal '" + path + "' is already open in another batch (writer lock '" +
                  lock_path + "' is held); two writers would lose each other's records");
  }
  return fd;
#endif
}

}  // namespace

Journal::~Journal() {
#if !defined(_WIN32)
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
#endif
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      records_(std::move(other.records_)),
      order_(std::move(other.order_)),
      write_failures_(other.write_failures_),
      lock_fd_(std::exchange(other.lock_fd_, -1)) {}

Journal Journal::open(const std::string& path) {
  Journal j;
  j.path_ = path;
  if (path.empty()) return j;
  j.lock_fd_ = take_writer_lock(path);

  std::ifstream is(path);
  if (!is) {
    // Missing file = fresh journal; an existing file we cannot read is an
    // IoError (silently re-running a whole batch would be worse).
    std::error_code ec;
    if (std::filesystem::exists(path, ec))
      throw IoError("cannot open journal for reading: " + path);
    return j;
  }
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(is, line)) return j;  // empty file: fresh journal
  ++lineno;
  if (line != kMagic)
    throw ParseError(path, lineno, 0,
                     std::string("not a batch journal (wanted header '") + kMagic + "')", line);
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    JobRecord rec = parse_journal_record(line, path, lineno);
    if (j.records_.count(rec.id))
      throw ParseError(path, lineno, 0, "duplicate journal record for job", rec.id);
    j.order_.push_back(rec.id);
    j.records_.emplace(rec.id, std::move(rec));
  }
  return j;
}

bool Journal::has(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.count(id) > 0;
}

std::map<std::string, JobRecord> Journal::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Journal::append(const JobRecord& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.count(rec.id) == 0) order_.push_back(rec.id);
  records_[rec.id] = rec;
  if (path_.empty()) return;
  try {
    RGLEAK_FAILPOINT("service.journal.append");
    persist_locked();
  } catch (const std::exception&) {
    // Absorbed: the batch must outlive a flaky disk. The in-memory record is
    // kept; the next successful append (or flush) persists it too.
    ++write_failures_;
  }
}

std::size_t Journal::write_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

void Journal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return;
  persist_locked();
}

void Journal::persist_locked() {
  util::atomic_write_file(path_, [&](std::ostream& os) {
    os << kMagic << "\n";
    for (const std::string& id : order_) os << journal_record_json(records_.at(id)) << "\n";
  });
}

}  // namespace rgleak::service
