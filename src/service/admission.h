#pragma once
// Memory admission control for batch jobs.
//
// Before a job runs, the JobRunner preflights its peak-memory prediction
// (core/MemoryCostModel) against the configured budget and, when it does not
// fit, walks the same accuracy ladder PR 3 walks for time budgets:
//
//   exact_fft -> exact_direct -> linear -> integral_polar     (estimates)
//   mc @ N threads -> mc @ N/2 -> ... -> mc @ 1               (Monte Carlo)
//
// The first rung that fits is admitted and the walk is recorded in the job's
// `degradation` string (journaled, so operators can see what the budget cost
// them). A job that does not fit even at the floor is rejected with a
// ResourceError — a typed, journaled record, not an OOM kill.
//
// Admission is *predictive*; the tracked MemoryBudget reservations inside the
// engines are the backstop for mispredictions. Both use the same
// MemoryCostModel formulas, so they rarely disagree.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/memory_cost.h"

namespace rgleak::service {

/// Per-batch resource policy: the memory budget jobs are admitted against
/// and the cost model that predicts their footprints.
struct ResourceGovernor {
  /// Bytes one job may need at peak; 0 = unlimited (admission is a no-op).
  std::uint64_t mem_budget_bytes = 0;
  core::MemoryCostModel memory = core::MemoryCostModel::defaults();
};

/// What admission decided for one job.
struct Admission {
  /// Admitted estimator rung ("exact_fft", "exact_direct", "linear",
  /// "integral_polar") — for MC, always "mc".
  std::string method;
  /// Admitted MC worker count (admit_mc only).
  std::size_t threads = 0;
  /// Empty when the job runs as requested; otherwise a human-readable walk,
  /// e.g. "mem: exact_fft->linear" or "mem: mc threads 8->2". Journaled.
  std::string degradation;
};

/// Admits an estimate at `sites` sites requesting `method` (one of the rung
/// names above), walking down the ladder from the requested rung until the
/// prediction fits `gov.mem_budget_bytes`. Throws ResourceError when even
/// the constant-memory floor does not fit.
Admission admit_estimate(const ResourceGovernor& gov, std::size_t sites,
                         const std::string& method);

/// Admits an MC run at `sites` sites with `threads` requested workers,
/// halving the worker count until the per-worker prediction times the count
/// fits. Throws ResourceError when one worker does not fit.
Admission admit_mc(const ResourceGovernor& gov, std::size_t sites, std::size_t threads);

}  // namespace rgleak::service
