#pragma once
// The execution boundary of the batch layer.
//
// BatchRunner owns orchestration (queue, retries, watchdogs, journal);
// Executors own domain work. Keeping the boundary a one-method interface
// lets tests and benchmarks drive the full orchestration machinery with
// synthetic jobs (a lambda that sleeps, throws, or returns a constant), and
// keeps the production adapters (service/job_runner.h) free of any
// scheduling concerns.

#include "service/job.h"
#include "util/run_control.h"

namespace rgleak::service {

/// What a successful job execution produced.
struct JobOutput {
  double mean_na = 0.0;
  double sigma_na = 0.0;
  /// Estimator rung / engine that answered ("exact_fft", "linear", "mc", ...).
  std::string method;
  /// Non-empty when the job did not run as requested: the admission /
  /// retry ladder walk that was applied (e.g. "mem: exact_fft->linear").
  /// Journaled with the record.
  std::string degradation;
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs one job attempt. `watchdog` carries the per-job deadline and any
  /// forwarded batch-level stop; implementations thread it into every kernel
  /// they call so a wedged job cancels within one chunk. `degrade` counts
  /// prior retryable failures of this job — implementations that own an
  /// accuracy ladder walk one rung down per degradation step (see
  /// job_runner.h). Failures are reported by throwing (taxonomy errors
  /// preferred; anything else is classified as transient).
  virtual JobOutput execute(const JobSpec& job, const util::RunControl* watchdog,
                            int degrade) = 0;
};

}  // namespace rgleak::service
