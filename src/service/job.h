#pragma once
// Batch job specifications and outcome records.
//
// A manifest is JSONL: one job per line, e.g.
//
//   {"id":"c432-mc","kind":"mc","lib":"corner.rgchar","netlist":"c432.rgnl",
//    "trials":200,"seed":7,"threads":2}
//
// "id" (unique) and "kind" are required; every other key is a kind-specific
// parameter interpreted by the executor (see service/job_runner.h). Unknown
// kinds and bad parameters are *job* failures (ConfigError, permanent), not
// manifest failures — a batch isolates them instead of dying.
//
// A JobRecord is the terminal outcome of one job: succeeded with an estimate,
// failed with a structured error (the error_json rendering of the final
// attempt's taxonomy error), or shed by the queue's load-shed policy. Records
// are what the journal persists and what `rgleak batch` reports.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rgleak::service {

struct JobSpec {
  std::string id;
  std::string kind;
  /// Kind-specific parameters, raw JSON scalars (numbers keep their literal
  /// spelling; executors parse them with typed checks).
  std::map<std::string, std::string> params;
  /// 1-based manifest line, for diagnostics.
  std::size_t line = 0;
};

enum class JobStatus {
  kSucceeded,  ///< executor returned a result
  kFailed,     ///< every allowed attempt failed; `error` holds the last error
  kShed,       ///< dropped by the queue's load-shed policy, never executed
};

const char* job_status_name(JobStatus status);

struct JobRecord {
  std::string id;
  JobStatus status = JobStatus::kFailed;
  /// Execution attempts consumed (0 for shed jobs).
  int attempts = 0;
  /// Wall time across all attempts, ms (backoff sleeps excluded).
  double wall_ms = 0.0;
  // Success payload.
  double mean_na = 0.0;
  double sigma_na = 0.0;
  /// Estimator rung / engine that answered ("exact_fft", "linear", "mc", ...).
  std::string method;
  /// Non-empty when the job ran below its requested rung: the admission /
  /// retry ladder walk (e.g. "mem: exact_fft->linear", "mem: mc threads
  /// 8->2").
  std::string degradation;
  /// Progress heartbeats observed across all attempts (RunControl::beats);
  /// 0 when heartbeat tracking was off. Diagnostic for stall post-mortems.
  std::uint64_t beats = 0;
  /// For kFailed / kShed: the one-line error_json rendering of the failure.
  std::string error;
};

/// Parses a JSONL manifest. Throws located ParseError on malformed JSON,
/// a missing/empty "id" or "kind", or a duplicate id. Blank lines and
/// '#'-prefixed comment lines are skipped.
std::vector<JobSpec> parse_manifest(std::istream& is, const std::string& source);

/// Loads a manifest file. Throws IoError when unreadable.
std::vector<JobSpec> load_manifest(const std::string& path);

/// One journal line for `rec` (no trailing newline).
std::string journal_record_json(const JobRecord& rec);

/// Parses one journal record line. Throws located ParseError.
JobRecord parse_journal_record(const std::string& text, const std::string& source,
                               std::size_t line);

}  // namespace rgleak::service
