#include "service/job_runner.h"

#include <cmath>
#include <new>
#include <sstream>

#include "charlib/io.h"
#include "core/estimators.h"
#include "core/leakage_estimator.h"
#include "core/method_cost.h"
#include "core/random_gate.h"
#include "mc/full_chip_mc.h"
#include "netlist/io.h"
#include "placement/placement.h"
#include "process/variation.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace rgleak::service {

namespace {

// One scope per job phase: a trace span (parented to the batch attempt span
// via the thread-local stack, including across the sandbox fork) plus a
// latency histogram observation. Instrument references resolve once.
util::metrics::Histogram& phase_hist(const char* which) {
  auto& reg = util::metrics::Registry::instance();
  static util::metrics::Histogram& parse = reg.histogram("job.phase.parse_ms");
  static util::metrics::Histogram& characterize = reg.histogram("job.phase.characterize_ms");
  static util::metrics::Histogram& estimate = reg.histogram("job.phase.estimate_ms");
  static util::metrics::Histogram& write = reg.histogram("job.phase.write_ms");
  switch (which[0]) {
    case 'p': return parse;
    case 'c': return characterize;
    case 'w': return write;
    default: return estimate;
  }
}

class PhaseScope {
 public:
  PhaseScope(const char* span_name, const char* which, const JobSpec& job)
      : span_(span_name, job.id), timer_(phase_hist(which)) {}

 private:
  util::trace::Span span_;
  util::metrics::ScopedTimerMs timer_;
};

std::string require_param(const JobSpec& job, const char* key) {
  const auto it = job.params.find(key);
  if (it == job.params.end() || it->second.empty())
    throw ConfigError("job '" + job.id + "' (" + job.kind + ") needs parameter \"" + key + "\"");
  return it->second;
}

std::string param(const JobSpec& job, const char* key, const std::string& fallback) {
  const auto it = job.params.find(key);
  return it == job.params.end() ? fallback : it->second;
}

double num_param(const JobSpec& job, const char* key, double fallback) {
  const auto it = job.params.find(key);
  if (it == job.params.end()) return fallback;
  double v = 0.0;
  if (!util::parse_double(it->second, v))
    throw ConfigError("job '" + job.id + "': parameter \"" + key + "\" expects a number, got '" +
                      it->second + "'");
  return v;
}

std::size_t count_param(const JobSpec& job, const char* key, std::size_t fallback) {
  const double v = num_param(job, key, static_cast<double>(fallback));
  if (v < 0.0 || v != std::floor(v))
    throw ConfigError("job '" + job.id + "': parameter \"" + key +
                      "\" expects a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool bool_param(const JobSpec& job, const char* key, bool fallback) {
  const auto it = job.params.find(key);
  if (it == job.params.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw ConfigError("job '" + job.id + "': parameter \"" + key + "\" expects true or false");
}

netlist::UsageHistogram parse_usage_spec(const cells::StdCellLibrary& lib, const JobSpec& job,
                                         const std::string& spec) {
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  std::istringstream ss(spec);
  std::string item;
  double total = 0.0;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos)
      throw ConfigError("job '" + job.id + "': bad usage item '" + item + "'");
    const std::string name = item.substr(0, colon);
    double w = 0.0;
    if (!util::parse_double(item.substr(colon + 1), w)) w = -1.0;
    if (w <= 0.0) throw ConfigError("job '" + job.id + "': bad usage weight in '" + item + "'");
    u.alphas[lib.index_of(name)] += w;
    total += w;
  }
  if (total <= 0.0) throw ConfigError("job '" + job.id + "': usage spec is empty");
  for (double& a : u.alphas) a /= total;
  return u;
}

void parse_die_spec(const JobSpec& job, const std::string& spec, double& w_nm, double& h_nm) {
  const auto x = spec.find('x');
  double w = 0.0, h = 0.0;
  if (x != std::string::npos) {
    if (!util::parse_double(spec.substr(0, x), w) || !util::parse_double(spec.substr(x + 1), h))
      w = h = 0.0;
  }
  if (w <= 0.0 || h <= 0.0)
    throw ConfigError("job '" + job.id + "': die_um expects WxH in um, got '" + spec + "'");
  w_nm = w * 1000.0;
  h_nm = h * 1000.0;
}

JobOutput output_of(const core::LeakageEstimate& e) {
  JobOutput out;
  out.mean_na = e.mean_na;
  out.sigma_na = e.sigma_na;
  out.method = e.method.empty() ? "unknown" : e.method;
  if (!std::isfinite(out.mean_na) || !std::isfinite(out.sigma_na))
    throw NumericalError("estimate produced a non-finite result (mean " +
                         std::to_string(out.mean_na) + ", sigma " + std::to_string(out.sigma_na) +
                         ")");
  return out;
}

}  // namespace

JobOutput JobRunner::execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) {
  RGLEAK_FAILPOINT("service.job.execute");
  if (watchdog != nullptr) watchdog->poll("service.job.execute");
  try {
    if (job.kind == "estimate") return run_estimate(job, watchdog, degrade);
    if (job.kind == "netlist") return run_netlist(job, watchdog, degrade);
    if (job.kind == "mc") return run_mc(job, watchdog);
    if (job.kind == "characterize") return run_characterize(job, watchdog);
  } catch (const std::bad_alloc&) {
    // Engines translate their own arena failures; this is the last line of
    // defense for allocations outside any charged arena (library loads,
    // caches). Keep it typed so the batch classifies it retryable.
    throw ResourceError("job '" + job.id + "' (" + job.kind +
                        "): allocation failed (std::bad_alloc) outside a charged arena");
  }
  throw ConfigError("job '" + job.id + "': unknown kind '" + job.kind +
                    "' (expected estimate, netlist, mc, or characterize)");
}

const charlib::CharacterizedLibrary& JobRunner::chars_for(const std::string& path) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = chars_cache_.find(path);
  if (it != chars_cache_.end()) return it->second;
  return chars_cache_.emplace(path, charlib::load_characterization(*library_, path))
      .first->second;
}

const netlist::Netlist& JobRunner::netlist_for(const std::string& path) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = netlist_cache_.find(path);
  if (it != netlist_cache_.end()) return it->second;
  return netlist_cache_.emplace(path, netlist::load_netlist(*library_, path)).first->second;
}

JobOutput JobRunner::run_estimate(const JobSpec& job, const util::RunControl* watchdog,
                                  int degrade) {
  const charlib::CharacterizedLibrary& chars = [&]() -> const charlib::CharacterizedLibrary& {
    const PhaseScope phase("phase.parse", "parse", job);
    return chars_for(require_param(job, "lib"));
  }();

  core::DesignCharacteristics d;
  d.usage = parse_usage_spec(*library_, job, require_param(job, "usage"));
  d.gate_count = count_param(job, "gates", 0);
  if (d.gate_count == 0) throw ConfigError("job '" + job.id + "': gates must be positive");
  parse_die_spec(job, require_param(job, "die_um"), d.width_nm, d.height_nm);

  core::EstimatorConfig cfg;
  cfg.run = watchdog;
  cfg.time_budget_s = num_param(job, "time_budget_s", 0.0);
  cfg.correlation_mode = chars.has_models() ? core::CorrelationMode::kAnalytic
                                            : core::CorrelationMode::kSimplified;
  const std::string method = param(job, "method", "auto");
  if (method == "auto") cfg.method = core::EstimationMethod::kAuto;
  else if (method == "linear") cfg.method = core::EstimationMethod::kLinear;
  else if (method == "rect") cfg.method = core::EstimationMethod::kIntegralRect;
  else if (method == "polar") cfg.method = core::EstimationMethod::kIntegralPolar;
  else throw ConfigError("job '" + job.id + "': unknown method '" + method + "'");
  // Retry degradation: after a retryable failure, answer from the O(1)
  // integral rung instead of re-running the rung that failed.
  if (degrade >= 1) cfg.method = core::EstimationMethod::kIntegralPolar;

  std::string degradation;
  if (governor_ != nullptr) {
    // Admission sees the most expensive rung this job could occupy: auto
    // resolves to at most the linear rung on this path.
    std::string requested = "linear";
    if (cfg.method == core::EstimationMethod::kIntegralRect) requested = "integral_rect";
    if (cfg.method == core::EstimationMethod::kIntegralPolar) requested = "integral_polar";
    const placement::Floorplan fp = placement::Floorplan::for_gate_count(d.gate_count);
    const Admission adm = admit_estimate(*governor_, fp.rows * fp.cols, requested);
    if (!adm.degradation.empty()) {
      if (adm.method == "integral_polar") cfg.method = core::EstimationMethod::kIntegralPolar;
      degradation = adm.degradation;
    }
  }

  const std::string p = param(job, "p", "max");
  if (p == "max") {
    cfg.maximize_signal_probability = true;
  } else {
    cfg.maximize_signal_probability = false;
    cfg.signal_probability = num_param(job, "p", 0.5);
  }

  const PhaseScope phase("phase.estimate", "estimate", job);
  const core::LeakageEstimator estimator(chars, cfg);
  JobOutput out = output_of(estimator.estimate(d));
  out.degradation = degradation;
  return out;
}

JobOutput JobRunner::run_netlist(const JobSpec& job, const util::RunControl* watchdog,
                                 int degrade) {
  const auto parse_inputs = [&] {
    const PhaseScope phase("phase.parse", "parse", job);
    const charlib::CharacterizedLibrary& chars = chars_for(require_param(job, "lib"));
    const netlist::Netlist& nl = netlist_for(require_param(job, "netlist"));
    return std::pair<const charlib::CharacterizedLibrary&, const netlist::Netlist&>(chars, nl);
  };
  const auto [chars, nl] = parse_inputs();
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(nl.size());
  const netlist::UsageHistogram usage = netlist::extract_usage(nl);
  const core::CorrelationMode mode = chars.has_models() ? core::CorrelationMode::kAnalytic
                                                        : core::CorrelationMode::kSimplified;
  const double p = num_param(job, "p", 0.5);
  const core::RandomGate rg(chars, usage, p, mode);

  const double budget_s = num_param(job, "time_budget_s", 0.0);
  const bool want_exact = bool_param(job, "exact", false) || job.params.count("exact_method") > 0;

  core::ExactOptions opts;
  opts.threads = count_param(job, "threads", 1);
  const std::string method = param(job, "exact_method", "auto");
  if (method == "auto") opts.method = core::ExactMethod::kAuto;
  else if (method == "direct") opts.method = core::ExactMethod::kDirect;
  else if (method == "fft") opts.method = core::ExactMethod::kFft;
  else throw ConfigError("job '" + job.id + "': unknown exact_method '" + method + "'");

  // The cost ladder: retry degradation picks the requested rung (one down per
  // retryable failure), then memory admission may walk further down still.
  // Auto is admitted at the FFT rung — the most memory it could occupy.
  std::string requested;
  if (degrade >= 2) requested = "integral_polar";
  else if (degrade >= 1 || (!want_exact && budget_s <= 0.0)) requested = "linear";
  else requested = opts.method == core::ExactMethod::kDirect ? "exact_direct" : "exact_fft";

  std::string admitted = requested;
  std::string degradation;
  if (governor_ != nullptr) {
    const Admission adm =
        admit_estimate(*governor_, static_cast<std::size_t>(fp.rows) * fp.cols, requested);
    admitted = adm.method;
    degradation = adm.degradation;
  }

  const PhaseScope phase("phase.estimate", "estimate", job);
  JobOutput out;
  if (admitted == "integral_polar") {
    out = output_of(core::estimate_integral_polar(rg, fp));
  } else if (admitted == "linear") {
    out = output_of(core::estimate_linear(rg, fp, watchdog));
  } else {
    if (admitted == "exact_direct" && requested == "exact_fft")
      opts.method = core::ExactMethod::kDirect;
    const placement::Placement pl(&nl, fp);
    const core::ExactEstimator exact(chars, p, mode);
    if (budget_s > 0.0) {
      const core::CostModel costs = core::CostModel::defaults();
      out = output_of(
          core::estimate_placed_budgeted(exact, rg, pl, budget_s, costs, opts, watchdog));
    } else {
      opts.run = watchdog;
      out = output_of(exact.estimate(pl, opts));
    }
  }
  out.degradation = degradation;
  return out;
}

JobOutput JobRunner::run_mc(const JobSpec& job, const util::RunControl* watchdog) {
  const auto parse_inputs = [&] {
    const PhaseScope phase("phase.parse", "parse", job);
    const charlib::CharacterizedLibrary& chars = chars_for(require_param(job, "lib"));
    const netlist::Netlist& nl = netlist_for(require_param(job, "netlist"));
    return std::pair<const charlib::CharacterizedLibrary&, const netlist::Netlist&>(chars, nl);
  };
  const auto [chars, nl] = parse_inputs();
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(nl.size());
  const placement::Placement pl(&nl, fp);

  mc::FullChipMcOptions opts;
  opts.trials = count_param(job, "trials", 200);
  opts.seed = static_cast<std::uint64_t>(num_param(job, "seed", 777.0));
  opts.threads = count_param(job, "threads", 1);
  opts.signal_probability = num_param(job, "p", 0.5);
  opts.resample_states_per_trial = bool_param(job, "resample", false);
  opts.run = watchdog;

  std::string degradation;
  if (governor_ != nullptr) {
    const Admission adm = admit_mc(
        *governor_, static_cast<std::size_t>(fp.rows) * fp.cols, opts.threads);
    opts.threads = adm.threads;
    degradation = adm.degradation;
  }

  const PhaseScope phase("phase.estimate", "estimate", job);
  mc::FullChipMonteCarlo engine(pl, chars, opts);
  const mc::FullChipMcResult r = engine.run();
  JobOutput out;
  out.mean_na = r.mean_na;
  out.sigma_na = r.sigma_na;
  out.method = "mc";
  out.degradation = degradation;
  if (!std::isfinite(out.mean_na) || !std::isfinite(out.sigma_na))
    throw NumericalError("mc produced a non-finite result");
  return out;
}

JobOutput JobRunner::run_characterize(const JobSpec& job, const util::RunControl* watchdog) {
  const std::string out_path = require_param(job, "out");
  const std::string mode = param(job, "mode", "analytic");
  if (mode != "analytic" && mode != "mc")
    throw ConfigError("job '" + job.id + "': unknown characterize mode '" + mode + "'");

  process::LengthVariation len;
  len.mean_nm = num_param(job, "mean_l", 40.0);
  len.sigma_d2d_nm = num_param(job, "sigma_d2d", 1.7678);
  len.sigma_wid_nm = num_param(job, "sigma_wid", 1.7678);
  process::VtVariation vt;
  vt.sigma_v = num_param(job, "sigma_vt", 0.02);
  const std::string family = param(job, "corr", "exponential");
  const double scale_nm = num_param(job, "corr_scale_um", 100.0) * 1000.0;
  const process::ProcessVariation process(len, vt, process::make_correlation(family, scale_nm));

  charlib::CharacterizedLibrary chars = [&] {
    const PhaseScope phase("phase.characterize", "characterize", job);
    if (mode == "mc") {
      charlib::McCharOptions opts;
      opts.samples = count_param(job, "samples", 20000);
      opts.run = watchdog;
      return charlib::characterize_monte_carlo(*library_, process, opts);
    }
    charlib::AnalyticCharOptions opts;
    opts.run = watchdog;
    return charlib::characterize_analytic(*library_, process, opts);
  }();
  {
    const PhaseScope phase("phase.write", "write", job);
    charlib::save_characterization(chars, out_path);
  }

  JobOutput out;
  out.method = mode == "mc" ? "characterize_mc" : "characterize_analytic";
  return out;
}

}  // namespace rgleak::service
