#pragma once
// Batch orchestration: manifest in, journal out, failures isolated.
//
// run_batch() feeds a manifest's jobs through a bounded JobQueue into a pool
// of worker threads, each attempt wrapped in a per-job watchdog RunControl
// (deadline + parent link to the batch-level stop source). The contract is
// fault isolation: a job that throws, returns NaN, or blows its deadline
// produces a structured JobRecord in the journal — the batch itself never
// dies and never wedges.
//
// Retry loop per job: a retryable failure (see service/retry.h) is retried up
// to RetryPolicy::max_attempts times, gated by the shared per-batch
// RetryBudget, with exponential backoff + decorrelated jitter between
// attempts (seeded per job id, so schedules are deterministic and
// worker-independent). Each retry also bumps the executor's `degrade` level,
// walking estimate jobs down the cost ladder so the retry is cheaper than the
// attempt that failed.
//
// Stop semantics: when the batch-level RunControl stops (SIGINT, a test),
// jobs already finished keep their records, jobs mid-flight or still queued
// get NO record — the crash-only journal re-runs them on resume. Backoff
// sleeps are chunked and poll the stop source, so cancellation latency is
// bounded by one chunk, not one backoff.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/executor.h"
#include "service/job_queue.h"
#include "service/journal.h"
#include "service/retry.h"
#include "util/clock.h"
#include "util/run_control.h"

namespace rgleak::service {

/// How job attempts execute relative to the supervisor process.
enum class ExecIsolation {
  /// Resolve from the RGLEAK_ISOLATE environment variable ("process" forces
  /// process isolation); otherwise in-process. The CLI leaves this default so
  /// CI can force sandboxing across an existing test matrix.
  kDefault,
  /// Attempts run on the worker thread, in the batch process (the historical
  /// behavior; fastest, but a segfaulting job kills the whole batch).
  kInProcess,
  /// Every attempt forks a sandboxed, rlimited child (service/subprocess.h).
  /// A crashing job becomes a journaled CrashError instead of killing the
  /// batch. POSIX only: run_batch throws ConfigError where unsupported.
  kProcess,
};

struct BatchOptions {
  RetryPolicy retry;
  /// Queue bound; the backpressure knob.
  std::size_t queue_depth = 32;
  ShedPolicy shed_policy = ShedPolicy::kBlock;
  /// Worker threads. 0 = hardware concurrency.
  std::size_t workers = 1;
  /// Per-job watchdog deadline, seconds; 0 = none. Applies to each *attempt*.
  double job_deadline_s = 0.0;
  /// Stall watchdog: cancel a job attempt whose progress heartbeat
  /// (RunControl::beats) stays flat this long, seconds; 0 = off. Unlike the
  /// deadline, a stalled stop is keyed to *progress*, not elapsed time — a
  /// slow-but-polling job is left alone. Cancellation latency is bounded by
  /// one watchdog poll interval (timeout/4, at most 50 ms) past the timeout.
  double stall_timeout_s = 0.0;
  /// Seed for the backoff jitter streams (combined with each job id).
  std::uint64_t jitter_seed = 0x5eedULL;
  /// Time source for backoff sleeps; null = the shared SystemClock.
  util::Clock* clock = nullptr;
  /// Batch-level stop source (SIGINT handler, a test). Linked as the parent
  /// of every per-job watchdog.
  const util::RunControl* run = nullptr;
  /// Attempt isolation mode (see ExecIsolation).
  ExecIsolation isolate = ExecIsolation::kDefault;
  /// Process isolation: seconds between the cooperative SIGTERM and the
  /// SIGKILL when stopping a sandboxed child.
  double isolate_grace_s = 2.0;
  /// Process isolation: RLIMIT_AS for each child, bytes. 0 = derive — twice
  /// the process MemoryBudget limit plus slack when one is set (the tracked
  /// budget stays the soft limit that throws typed ResourceErrors; the rlimit
  /// is the hard backstop for untracked leaks), unlimited otherwise.
  std::uint64_t isolate_as_limit_bytes = 0;
  /// Process isolation: RLIMIT_CPU for each child, seconds. 0 = derive from
  /// job_deadline_s (4x the deadline plus slack — a hard backstop well above
  /// the cooperative watchdog, for children wedged in signal-blind loops);
  /// unlimited when no deadline is set either.
  std::uint64_t isolate_cpu_limit_s = 0;
};

struct BatchSummary {
  std::size_t total = 0;        ///< jobs in the manifest
  std::size_t skipped = 0;      ///< already terminal in the journal (resume)
  std::size_t succeeded = 0;
  std::size_t failed = 0;       ///< terminal structured failures
  std::size_t shed = 0;         ///< load-shed by the queue (structured records)
  std::size_t interrupted = 0;  ///< batch stopped first; no record, will re-run
  std::size_t retries = 0;      ///< retry attempts consumed across the batch
  std::size_t stalls = 0;       ///< job attempts cancelled by the stall watchdog
  std::size_t crashes = 0;      ///< sandboxed child deaths (ErrorCode::kCrash)
  std::size_t journal_write_failures = 0;
  std::size_t queue_high_watermark = 0;
  bool stopped = false;         ///< the batch-level stop source fired

  /// Every manifest job is accounted for exactly once.
  std::size_t accounted() const {
    return skipped + succeeded + failed + shed + interrupted;
  }
};

/// Runs `jobs` to terminal outcomes. Jobs already present in `journal` are
/// skipped (crash-only resume); every other job ends as exactly one of
/// succeeded / failed / shed (with a journal record) or interrupted (no
/// record, batch stop). Never throws for job-level failures; throws only for
/// batch-level misconfiguration (ContractViolation).
BatchSummary run_batch(const std::vector<JobSpec>& jobs, Executor& executor, Journal& journal,
                       const BatchOptions& options = {});

}  // namespace rgleak::service
