#pragma once
// Fork-per-job sandbox: run one Executor attempt in a child process.
//
// `rgleak batch --isolate=process` routes every job attempt through
// run_job_in_subprocess(): the supervisor forks (no exec — the child keeps
// the parent's loaded library, caches, and armed failpoints), applies
// per-child rlimits, and the child executes the job with its own RunControl,
// then reports back over a pipe as exactly one JSONL record (service/jsonio)
// before _exit-ing with the taxonomy exit code. The parent never trusts the
// child to be well-behaved:
//
//  * a child killed by a signal (SIGSEGV, SIGABRT, SIGBUS, the OOM-killer's
//    SIGKILL) or exiting without a result record becomes a CrashError
//    (ErrorCode::kCrash) naming the signal and a tail of the child's captured
//    stderr — a journaled, retryable failure instead of a dead batch;
//  * a child that exits cleanly with an error record has its taxonomy error
//    reconstructed and rethrown, so retry classification is identical to
//    in-process mode;
//  * stop/deadline propagation: when the parent-side watchdog stops (batch
//    SIGINT, per-job deadline, stall monitor) the child gets SIGTERM — its
//    handler requests a cooperative stop, it drains and reports — and after a
//    grace period, SIGKILL;
//  * heartbeats cross the boundary through one shared-memory counter: the
//    child's RunControl mirrors every beat into a MAP_SHARED page the
//    parent-side watchdog adopts, so the PR 7 stall monitor needs no change.
//
// The child never runs C++ static destructors or atexit handlers (_exit
// only), never touches the journal, and re-raises nothing into the parent's
// address space. Jobs may carry a "failpoint" parameter (the CLI spec
// grammar, see util/failpoint.h); it is armed inside the child only, which is
// how the crash matrix injects SIGSEGV/SIGABRT per job without taking the
// supervisor down.
//
// POSIX only; on other platforms run_job_in_subprocess throws ConfigError.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "service/executor.h"
#include "util/error.h"
#include "util/run_control.h"

namespace rgleak::service {

/// Mixin carried by errors the supervisor reconstructs from a child's result
/// record. It preserves the child's own error_json rendering verbatim, so the
/// journal record for a sandboxed failure is byte-identical to what in-process
/// execution would have written (a ParseError keeps its source/line/column
/// fields, which a round trip through code+message alone would lose).
class ChildReport {
 public:
  explicit ChildReport(std::string json) : json_(std::move(json)) {}
  virtual ~ChildReport() = default;

  /// The error_json line the child rendered, or "" if it sent none.
  const std::string& error_json_line() const { return json_; }

 private:
  std::string json_;
};

/// A taxonomy error reported by a sandboxed child over its result pipe and
/// rethrown in the supervisor: same ErrorCode (hence same retry
/// classification and exit code) as the original throw inside the child.
class ChildReportedError : public std::runtime_error, public Error, public ChildReport {
 public:
  ChildReportedError(ErrorCode code, const std::string& message, std::string json);
};

/// A non-taxonomy ("foreign") exception reported by a sandboxed child:
/// deliberately NOT an rgleak::Error, so the batch retry loop treats it
/// exactly like an in-process foreign exception (assume transient, retry).
class ChildForeignError : public std::runtime_error, public ChildReport {
 public:
  ChildForeignError(const std::string& message, std::string json);
};

/// Sandbox limits and knobs for one child, derived by the batch runner from
/// the job's admission decision (memory budget -> RLIMIT_AS, job deadline ->
/// RLIMIT_CPU backstop).
struct SubprocessOptions {
  /// Seconds between SIGTERM (cooperative stop) and SIGKILL.
  double term_grace_s = 2.0;
  /// RLIMIT_CPU for the child, seconds; 0 = unlimited. A hard backstop under
  /// the cooperative deadline: a child spinning in a signal-blind loop dies
  /// on SIGXCPU/SIGKILL instead of running forever.
  std::uint64_t cpu_limit_s = 0;
  /// RLIMIT_AS for the child, bytes; 0 = unlimited. Derived from the batch
  /// memory budget so a leaking job gets std::bad_alloc (-> typed
  /// ResourceError in the child) instead of dragging the host into swap.
  std::uint64_t as_limit_bytes = 0;
  /// RLIMIT_CORE: children do not dump core unless asked (a crash-matrix
  /// soak would otherwise litter gigabytes of cores).
  bool allow_core = false;
  /// Bytes of child stdout+stderr retained (the *tail* — the last lines are
  /// where crash diagnostics live).
  std::size_t capture_limit = 4096;
};

/// True when this build can fork job children (POSIX).
bool subprocess_supported();

/// Runs one job attempt in a forked, rlimited child of the current process.
/// Returns the child's JobOutput on success. Throws the reconstructed
/// taxonomy error when the child reports a typed failure, CrashError when it
/// dies on a signal or vanishes without a record, and the watchdog's
/// DeadlineExceeded when the attempt was stopped from the parent side.
/// `watchdog` must be the attempt-scoped control (non-null); its beats()
/// reflect the child's heartbeats while the child runs.
JobOutput run_job_in_subprocess(Executor& executor, const JobSpec& job,
                                util::RunControl* watchdog, int degrade,
                                const SubprocessOptions& options);

}  // namespace rgleak::service
