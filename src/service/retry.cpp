#include "service/retry.h"

namespace rgleak::service {

bool retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNumerical:
    case ErrorCode::kDeadline:
    case ErrorCode::kIo:
    // Resource pressure is transient at batch scope: peers finishing release
    // budget, and the retry ladder re-admits at a cheaper rung.
    case ErrorCode::kResource:
    // A crashed sandbox child may have hit a data race or a corrupted cache;
    // the retry runs in a fresh child. Bounded separately by the per-job
    // crash cap (RetryPolicy::max_crash_retries) — a reproducible segfault
    // should fail fast, not burn the whole attempt budget.
    case ErrorCode::kCrash:
      return true;
    case ErrorCode::kParse:
    case ErrorCode::kConfig:
    case ErrorCode::kContract:
      return false;
  }
  return true;
}

}  // namespace rgleak::service
