#include "service/retry.h"

namespace rgleak::service {

bool retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNumerical:
    case ErrorCode::kDeadline:
    case ErrorCode::kIo:
      return true;
    case ErrorCode::kParse:
    case ErrorCode::kConfig:
    case ErrorCode::kContract:
      return false;
  }
  return true;
}

}  // namespace rgleak::service
