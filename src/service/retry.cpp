#include "service/retry.h"

namespace rgleak::service {

bool retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNumerical:
    case ErrorCode::kDeadline:
    case ErrorCode::kIo:
    // Resource pressure is transient at batch scope: peers finishing release
    // budget, and the retry ladder re-admits at a cheaper rung.
    case ErrorCode::kResource:
      return true;
    case ErrorCode::kParse:
    case ErrorCode::kConfig:
    case ErrorCode::kContract:
      return false;
  }
  return true;
}

}  // namespace rgleak::service
