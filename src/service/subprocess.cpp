#include "service/subprocess.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "service/jsonio.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/format.h"
#include "util/metrics.h"
#include "util/require.h"

#if !defined(_WIN32)
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rgleak::service {

#if defined(_WIN32)

bool subprocess_supported() { return false; }

JobOutput run_job_in_subprocess(Executor&, const JobSpec&, util::RunControl*, int,
                                const SubprocessOptions&) {
  throw ConfigError("process isolation (--isolate=process) is not supported on this platform");
}

#else  // POSIX

namespace {

// ---------------------------------------------------------------------------
// Shared-memory heartbeat counter: one MAP_SHARED page holding the atomic the
// child's RunControl mirrors beats into and the parent-side watchdog adopts.
// std::atomic<uint64_t> is lock-free here (asserted), so the cross-process
// aliasing is plain atomic loads/stores on both sides.
class SharedBeatCounter {
 public:
  SharedBeatCounter() {
    void* page = ::mmap(nullptr, sizeof(std::atomic<std::uint64_t>), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED) throw IoError("subprocess: cannot map shared heartbeat page");
    counter_ = new (page) std::atomic<std::uint64_t>(0);
    static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                  "shared-memory heartbeats need a lock-free atomic");
  }
  ~SharedBeatCounter() {
    if (counter_ != nullptr) ::munmap(counter_, sizeof(std::atomic<std::uint64_t>));
  }
  SharedBeatCounter(const SharedBeatCounter&) = delete;
  SharedBeatCounter& operator=(const SharedBeatCounter&) = delete;

  std::atomic<std::uint64_t>* counter() { return counter_; }

 private:
  std::atomic<std::uint64_t>* counter_ = nullptr;
};

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;

  Pipe() {
    int fds[2];
    if (::pipe(fds) != 0) throw IoError("subprocess: cannot create pipe");
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    close_read();
    close_write();
  }
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  void close_read() {
    if (read_fd >= 0) ::close(read_fd);
    read_fd = -1;
  }
  void close_write() {
    if (write_fd >= 0) ::close(write_fd);
    write_fd = -1;
  }
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Keeps the tail of a byte stream: crash diagnostics (the assert message, the
// "failpoint ... injected segv" line) are at the end of a child's output.
struct CaptureTail {
  std::string data;
  std::size_t limit;

  void feed(const char* buf, std::size_t n) {
    data.append(buf, n);
    if (data.size() > limit) data.erase(0, data.size() - limit);
  }
};

// Drains whatever `fd` has ready into `sink` without blocking. Returns false
// once the write side is closed and the pipe is empty (EOF).
template <typename Sink>
bool drain(int fd, Sink&& sink) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      sink(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // treat read errors as EOF; classification uses waitpid
  }
}

void write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return;  // parent gone; nothing useful left to do with the report
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGINT: return "SIGINT";
    default: return "signal";
  }
}

bool error_code_from_name(const std::string& name, ErrorCode& out) {
  if (name == "contract") out = ErrorCode::kContract;
  else if (name == "numerical") out = ErrorCode::kNumerical;
  else if (name == "parse") out = ErrorCode::kParse;
  else if (name == "io") out = ErrorCode::kIo;
  else if (name == "config") out = ErrorCode::kConfig;
  else if (name == "deadline") out = ErrorCode::kDeadline;
  else if (name == "resource") out = ErrorCode::kResource;
  else if (name == "crash") out = ErrorCode::kCrash;
  else return false;
  return true;
}

// Synthesizes the typed error for a child that exited with a taxonomy code
// but no result record (e.g. an `exit:3` failpoint): same retry
// classification as the in-process throw would have had.
[[noreturn]] void throw_typed(ErrorCode code, const std::string& msg) {
  switch (code) {
    case ErrorCode::kContract: throw ContractViolation(msg);
    case ErrorCode::kNumerical: throw NumericalError(msg);
    case ErrorCode::kParse: throw ParseError("<child>", 0, 0, msg);
    case ErrorCode::kIo: throw IoError(msg);
    case ErrorCode::kConfig: throw ConfigError(msg);
    case ErrorCode::kDeadline: throw DeadlineExceeded(msg);
    case ErrorCode::kResource: throw ResourceError(msg);
    case ErrorCode::kCrash: throw CrashError(msg);
  }
  throw CrashError(msg);
}

std::string tail_suffix(const CaptureTail& tail) {
  if (tail.data.empty()) return "";
  // Single-line rendering for error messages and journal records.
  std::string flat = tail.data;
  for (char& c : flat)
    if (c == '\n' || c == '\r') c = ' ';
  return "; child output tail: '" + flat + "'";
}

// ---------------------------------------------------------------------------
// Child side. Everything below the fork runs with exactly one thread; it must
// end in _exit (never return, never unwind into the batch loop, never run the
// parent's static destructors).

util::RunControl* g_child_control = nullptr;

extern "C" void child_on_term(int) {
  // request_stop touches only lock-free atomics: async-signal-safe.
  if (g_child_control != nullptr) g_child_control->request_stop(util::StopReason::kCancelled);
}

void apply_rlimits(const SubprocessOptions& opts) {
  if (opts.cpu_limit_s > 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(opts.cpu_limit_s);
    rl.rlim_max = static_cast<rlim_t>(opts.cpu_limit_s + 1);  // SIGXCPU, then SIGKILL
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (opts.as_limit_bytes > 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(opts.as_limit_bytes);
    rl.rlim_max = static_cast<rlim_t>(opts.as_limit_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (!opts.allow_core) {
    rlimit rl{};  // rlim_cur = rlim_max = 0
    ::setrlimit(RLIMIT_CORE, &rl);
  }
}

// `metrics` is the child-side registry delta (metrics::Registry::
// encode_delta against the snapshot taken at job start); it rides the
// existing result record as one extra string field, so the parent can fold
// sandboxed work into its own aggregates. Parents that predate the field
// ignore unknown keys, so the record stays backward/forward compatible.
std::string child_ok_record(const JobOutput& out, const std::string& metrics) {
  std::ostringstream os;
  // util::format_double, not stream insertion: the child inherits the
  // parent's locale, and a decimal comma here would tear the result record.
  os << "{\"ok\":true,\"mean_na\":" << util::format_double(out.mean_na, 17)
     << ",\"sigma_na\":" << util::format_double(out.sigma_na, 17);
  if (!out.method.empty()) os << ",\"method\":" << json_string(out.method);
  if (!out.degradation.empty()) os << ",\"degradation\":" << json_string(out.degradation);
  if (!metrics.empty()) os << ",\"metrics\":" << json_string(metrics);
  os << "}\n";
  return os.str();
}

std::string child_error_record(const char* code, const std::string& message,
                               const std::string& json, const std::string& metrics) {
  std::ostringstream os;
  os << "{\"ok\":false,\"code\":\"" << code << "\",\"message\":" << json_string(message)
     << ",\"json\":" << json_string(json);
  if (!metrics.empty()) os << ",\"metrics\":" << json_string(metrics);
  os << "}\n";
  return os.str();
}

[[noreturn]] void run_child(Executor& executor, const JobSpec& job, int degrade, int result_fd,
                            int capture_fd, std::atomic<std::uint64_t>* shared_beats,
                            double remaining_deadline_s, const SubprocessOptions& opts) {
  // The child's stdout/stderr become the capture pipe: printf chatter from
  // engines, assert messages, and sanitizer reports all land where the
  // supervisor can attach them to the failure record.
  ::dup2(capture_fd, STDOUT_FILENO);
  ::dup2(capture_fd, STDERR_FILENO);
  ::close(capture_fd);
  apply_rlimits(opts);

  static util::RunControl control;  // static: outlives the signal handler race
  g_child_control = &control;
  std::signal(SIGTERM, child_on_term);
  std::signal(SIGINT, SIG_IGN);  // a terminal ^C is the supervisor's call
  control.mirror_beats_to(shared_beats);
  if (std::isfinite(remaining_deadline_s)) control.arm_budget(remaining_deadline_s);

  // Metrics recorded in the sandbox would die with it: snapshot the forked
  // registry now (it carries the parent's counts) and ship only the delta on
  // the result record, whatever the outcome.
  const util::metrics::Snapshot metrics_base = util::metrics::Registry::instance().snapshot();
  auto metrics_delta = [&metrics_base] {
    return util::metrics::Registry::instance().encode_delta(metrics_base);
  };

  std::string record;
  int exit_code = 0;
  try {
    // Job-carried fault injection, armed in the sandbox only: this is how the
    // crash matrix drives SIGSEGV/SIGABRT/exit through one job at a time
    // without arming anything in the supervisor.
    const auto fp = job.params.find("failpoint");
    if (fp != job.params.end()) util::Failpoints::arm_specs(fp->second);

    const JobOutput out = executor.execute(job, &control, degrade);
    record = child_ok_record(out, metrics_delta());
  } catch (const Error& e) {
    record = child_error_record(error_code_name(e.code()), e.message(), error_json(e),
                                metrics_delta());
    exit_code = exit_code_for(e.code());
  } catch (const std::exception& e) {
    record = child_error_record("internal", e.what(), error_json(e), metrics_delta());
    exit_code = 1;
  } catch (...) {
    record = child_error_record("internal", "unknown exception",
                                "{\"error\":\"internal\",\"exit_code\":1,"
                                "\"message\":\"unknown exception\"}",
                                metrics_delta());
    exit_code = 1;
  }
  write_all(result_fd, record);
  std::fflush(nullptr);  // push captured stdio through the pipe before dying
  ::_exit(exit_code);
}

}  // namespace

bool subprocess_supported() { return true; }

JobOutput run_job_in_subprocess(Executor& executor, const JobSpec& job,
                                util::RunControl* watchdog, int degrade,
                                const SubprocessOptions& options) {
  RGLEAK_REQUIRE(watchdog != nullptr, "subprocess execution needs an attempt watchdog");

  SharedBeatCounter beats;
  Pipe result;
  Pipe capture;
  const double remaining_s = watchdog->remaining_s();

  // The registry lock is held across fork so the single-threaded child can
  // never inherit a failpoint mutex locked by a vanished parent thread. (The
  // only other locks parent threads take in process mode guard the journal,
  // which the child never touches; glibc orders its own malloc locks around
  // fork internally.)
  auto failpoint_lock = util::Failpoints::hold_for_fork();
  const pid_t pid = ::fork();
  if (pid == 0) {
    failpoint_lock.unlock();  // the forking thread owns the child's copy
    result.close_read();
    capture.close_read();
    run_child(executor, job, degrade, result.write_fd, capture.write_fd, beats.counter(),
              remaining_s, options);  // never returns
  }
  failpoint_lock.unlock();
  if (pid < 0) throw IoError("subprocess: fork failed for job '" + job.id + "': " +
                             std::strerror(errno));

  result.close_write();
  capture.close_write();
  set_nonblocking(result.read_fd);
  set_nonblocking(capture.read_fd);
  watchdog->adopt_beats_from(beats.counter());
  // The shared page dies with this frame, but the watchdog (and the stall
  // monitor sampling it) outlives us: fold-and-detach on every exit path.
  struct DetachGuard {
    util::RunControl* w;
    ~DetachGuard() { w->detach_beat_source(); }
  } detach_guard{watchdog};

  std::string result_text;
  CaptureTail tail{std::string(), options.capture_limit};
  bool term_sent = false;
  bool kill_sent = false;
  auto term_time = std::chrono::steady_clock::time_point{};

  int status = 0;
  for (;;) {
    bool result_open = drain(result.read_fd, [&](const char* b, std::size_t n) {
      if (result_text.size() < (1u << 20)) result_text.append(b, n);
    });
    bool capture_open = drain(capture.read_fd, [&](const char* b, std::size_t n) {
      tail.feed(b, n);
    });

    // Stop propagation: first a cooperative SIGTERM (the child's handler
    // requests a stop; engines drain within one chunk and report), then a
    // SIGKILL once the grace period is spent on a child that will not die.
    // stop_pending, NOT should_stop: this loop polls on the child's behalf,
    // and beating here would feed the stall monitor a fake heartbeat for a
    // wedged child.
    if (!kill_sent && watchdog->stop_pending()) {
      const auto now = std::chrono::steady_clock::now();
      if (!term_sent) {
        ::kill(pid, SIGTERM);
        term_sent = true;
        term_time = now;
      } else if (std::chrono::duration<double>(now - term_time).count() >=
                 options.term_grace_s) {
        ::kill(pid, SIGKILL);
        kill_sent = true;
      }
    }

    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid) break;
    if (w < 0 && errno != EINTR) {
      status = 0;  // ECHILD: someone reaped our child — classify as a crash
      break;
    }

    if (result_open || capture_open) {
      pollfd fds[2];
      nfds_t nfds = 0;
      if (result_open) fds[nfds++] = {result.read_fd, POLLIN, 0};
      if (capture_open) fds[nfds++] = {capture.read_fd, POLLIN, 0};
      ::poll(fds, nfds, 20);
    } else {
      // Both pipes are at EOF but the child is not reaped yet: it is in
      // _exit. A short sleep instead of a poll that would return instantly.
      ::usleep(2000);
    }
  }
  // The child is reaped; collect everything still buffered in the pipes.
  drain(result.read_fd, [&](const char* b, std::size_t n) {
    if (result_text.size() < (1u << 20)) result_text.append(b, n);
  });
  drain(capture.read_fd, [&](const char* b, std::size_t n) { tail.feed(b, n); });

  // --- Classification -------------------------------------------------------
  const std::string prefix = "job '" + job.id + "': sandboxed child ";

  // A complete result record wins even over a stop request (same
  // completed-job-wins semantics as in-process mode).
  const auto newline = result_text.find('\n');
  if (newline != std::string::npos) {
    JsonObject obj;
    bool parsed = true;
    try {
      obj = parse_json_object(result_text.substr(0, newline), "<child result>", 1);
    } catch (const ParseError&) {
      parsed = false;  // torn record: fall through to crash classification
    }
    if (parsed && obj.count("ok")) {
      // Fold sandboxed-side metrics (trial counts, phase timings) into this
      // process's registry before any classification can throw.
      if (const auto it = obj.find("metrics"); it != obj.end())
        util::metrics::Registry::instance().merge_delta(it->second);
      if (obj["ok"] == "true") {
        JobOutput out;
        double mean = 0.0;
        double sigma = 0.0;
        if (!obj.count("mean_na") || !obj.count("sigma_na") ||
            !util::parse_double(obj["mean_na"], mean) ||
            !util::parse_double(obj["sigma_na"], sigma))
          throw CrashError(prefix + "returned a malformed result record" + tail_suffix(tail));
        out.mean_na = mean;
        out.sigma_na = sigma;
        if (const auto it = obj.find("method"); it != obj.end()) out.method = it->second;
        if (const auto it = obj.find("degradation"); it != obj.end())
          out.degradation = it->second;
        return out;
      }
      const std::string code_name = obj.count("code") ? obj["code"] : "internal";
      const std::string message =
          obj.count("message") ? obj["message"] : "child reported an unnamed failure";
      const std::string json = obj.count("json") ? obj["json"] : std::string();
      ErrorCode code;
      if (error_code_from_name(code_name, code)) throw ChildReportedError(code, message, json);
      throw ChildForeignError(message, json);
    }
  }

  // No (usable) result record: the child died. The watchdog's verdict takes
  // precedence when the parent is the one who shot it.
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    if ((term_sent && sig == SIGTERM) || (kill_sent && sig == SIGKILL))
      throw watchdog->make_error("service.subprocess");
    std::ostringstream os;
    os << prefix << "killed by " << signal_name(sig) << " (signal " << sig << ")";
    if (sig == SIGKILL) os << " — possibly the kernel OOM-killer";
    if (sig == SIGXCPU) os << " — CPU rlimit exhausted";
    os << tail_suffix(tail);
    throw CrashError(os.str());
  }
  if (term_sent || kill_sent) throw watchdog->make_error("service.subprocess");

  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  ErrorCode taxonomy;
  if (code > 0 && error_code_for_exit(code, taxonomy)) {
    std::ostringstream os;
    os << prefix << "exited with code " << code << " (" << error_code_name(taxonomy)
       << ") without a result record" << tail_suffix(tail);
    throw_typed(taxonomy, os.str());
  }
  std::ostringstream os;
  os << prefix << "exited with code " << code << " without a result record" << tail_suffix(tail);
  throw CrashError(os.str());
}

#endif  // POSIX

ChildReportedError::ChildReportedError(ErrorCode code, const std::string& message,
                                       std::string json)
    : std::runtime_error(message), Error(code, message), ChildReport(std::move(json)) {}

ChildForeignError::ChildForeignError(const std::string& message, std::string json)
    : std::runtime_error(message), ChildReport(std::move(json)) {}

}  // namespace rgleak::service
