#pragma once
// Production Executor: adapts manifest jobs onto the library's engines.
//
// Kinds and their parameters (all values are JSON scalars; paths are
// relative to the process working directory):
//
//   estimate      lib, gates, die_um ("WxH" in um), usage ("CELL:w,..."),
//                 [method=auto|linear|rect|polar] [p=NUM|"max"]
//                 [time_budget_s=S]
//   netlist       lib, netlist, [exact=true] [exact_method=auto|direct|fft]
//                 [threads=N] [time_budget_s=S] [p=NUM]
//   mc            lib, netlist, [trials=200] [seed=777] [threads=1] [p=0.5]
//                 [resample=true]
//   characterize  out, [mode=analytic|mc] [mean_l=40] [sigma_d2d] [sigma_wid]
//                 [sigma_vt] [corr=exponential|...] [corr_scale_um=100]
//                 [samples=N]
//
// Unknown kinds and malformed parameters raise ConfigError (permanent — the
// job fails with a structured record; the batch keeps going). The per-job
// watchdog is threaded into every engine (estimator run controls, MC worker
// polls, characterizer polls), so a wedged job cancels within one chunk.
//
// Retry degradation: on each retryable failure the estimate/netlist kinds
// walk one rung down the PR-3 cost ladder (exact -> linear -> integral), so
// a job that NaN'd or blew its deadline at an expensive rung retries at a
// cheaper one instead of failing the same way again. mc and characterize
// re-run unchanged (their failures are draw- or io-transient).
//
// Characterized libraries and netlists are cached by path across jobs — a
// manifest sweeping 500 operating points of one design loads it once.

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "netlist/netlist.h"
#include "service/admission.h"
#include "service/executor.h"

namespace rgleak::service {

class JobRunner : public Executor {
 public:
  explicit JobRunner(const cells::StdCellLibrary& library) : library_(&library) {}

  /// Installs memory admission control. `gov` must outlive the runner; pass
  /// nullptr (the default state) to run every job exactly as requested.
  /// Admitted jobs that ran below their requested rung report the walk in
  /// JobOutput::degradation.
  void set_governor(const ResourceGovernor* gov) { governor_ = gov; }

  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog,
                    int degrade) override;

 private:
  const cells::StdCellLibrary* library_;
  const ResourceGovernor* governor_ = nullptr;

  std::mutex cache_mutex_;
  std::map<std::string, charlib::CharacterizedLibrary> chars_cache_;
  std::map<std::string, netlist::Netlist> netlist_cache_;

  const charlib::CharacterizedLibrary& chars_for(const std::string& path);
  const netlist::Netlist& netlist_for(const std::string& path);

  JobOutput run_estimate(const JobSpec& job, const util::RunControl* watchdog, int degrade);
  JobOutput run_netlist(const JobSpec& job, const util::RunControl* watchdog, int degrade);
  JobOutput run_mc(const JobSpec& job, const util::RunControl* watchdog);
  JobOutput run_characterize(const JobSpec& job, const util::RunControl* watchdog);
};

}  // namespace rgleak::service
