#include "service/batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "service/subprocess.h"
#include "util/backoff.h"
#include "util/error.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/require.h"
#include "util/trace.h"

namespace rgleak::service {

namespace {

// One published attempt per worker, observed by the stall monitor. The mutex
// orders publish/clear in the worker against the monitor's beat sampling, so
// the monitor never reads a RunControl whose attempt already returned (the
// control is stack-local to the attempt).
struct WorkerSlot {
  std::mutex m;
  util::RunControl* active = nullptr;  // null between attempts
  std::uint64_t last_beats = 0;
  std::chrono::steady_clock::time_point last_change{};
  bool fired = false;  // stop already requested for this flat stretch
};

// Batch-level instruments, registered once per run_batch call and recorded
// with single relaxed atomic ops from workers, the producer, and the stall
// monitor concurrently (see FORMATS.md metrics-json for the names).
struct BatchMetrics {
  util::metrics::Counter& started = util::metrics::Registry::instance().counter("batch.jobs.started");
  util::metrics::Counter& succeeded =
      util::metrics::Registry::instance().counter("batch.jobs.succeeded");
  util::metrics::Counter& failed = util::metrics::Registry::instance().counter("batch.jobs.failed");
  util::metrics::Counter& retried =
      util::metrics::Registry::instance().counter("batch.jobs.retried");
  util::metrics::Counter& crashed =
      util::metrics::Registry::instance().counter("batch.jobs.crashed");
  util::metrics::Counter& shed = util::metrics::Registry::instance().counter("batch.jobs.shed");
  util::metrics::Counter& stalled =
      util::metrics::Registry::instance().counter("batch.jobs.stalled");
  util::metrics::Gauge& queue_depth =
      util::metrics::Registry::instance().gauge("batch.queue.depth");
  util::metrics::Histogram& attempt_ms =
      util::metrics::Registry::instance().histogram("batch.attempt_ms");
};

struct BatchState {
  BatchMetrics metrics;
  Executor* executor = nullptr;
  Journal* journal = nullptr;
  const BatchOptions* opts = nullptr;
  util::Clock* clock = nullptr;
  RetryBudget* budget = nullptr;
  // Resolved isolation: when true every attempt forks a sandboxed child.
  bool use_subprocess = false;
  SubprocessOptions sub_opts;
  // unique_ptr for stable addresses: workers and the monitor hold raw slots.
  std::vector<std::unique_ptr<WorkerSlot>> slots;

  std::atomic<std::size_t> succeeded{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> interrupted{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> stalls{0};
  std::atomic<std::size_t> crashes{0};

  bool stopping() const { return opts->run != nullptr && opts->run->should_stop(); }
};

// Publishes the current attempt's watchdog to the worker's slot for the
// monitor to sample, and clears it on every exit path from the attempt.
class SlotGuard {
 public:
  SlotGuard(WorkerSlot* slot, util::RunControl* watchdog) : slot_(slot) {
    if (slot_ == nullptr) return;
    std::lock_guard<std::mutex> lock(slot_->m);
    slot_->active = watchdog;
    slot_->last_beats = watchdog->beats();
    slot_->last_change = std::chrono::steady_clock::now();
    slot_->fired = false;
  }
  ~SlotGuard() {
    if (slot_ == nullptr) return;
    std::lock_guard<std::mutex> lock(slot_->m);
    slot_->active = nullptr;
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  WorkerSlot* slot_;
};

// Sleeps `ms` on the batch clock in small chunks, polling the stop source
// between chunks so a SIGINT does not have to wait out a long backoff.
void backoff_sleep(BatchState& st, double ms) {
  constexpr double kChunkMs = 25.0;
  while (ms > 0.0 && !st.stopping()) {
    const double chunk = std::min(ms, kChunkMs);
    st.clock->sleep_ms(chunk);
    ms -= chunk;
  }
}

void record_terminal(BatchState& st, JobRecord rec) {
  if (rec.status == JobStatus::kSucceeded) {
    st.succeeded.fetch_add(1, std::memory_order_relaxed);
    st.metrics.succeeded.add();
  } else {
    st.failed.fetch_add(1, std::memory_order_relaxed);
    st.metrics.failed.add();
  }
  st.journal->append(rec);
}

// Runs one job to a terminal outcome (or abandons it on batch stop). Never
// lets an exception escape: that is the fault-isolation contract.
void run_one(BatchState& st, const JobSpec& job, WorkerSlot* slot) {
  JobRecord rec;
  rec.id = job.id;
  int degrade = 0;
  int crash_count = 0;  // kCrash outcomes for this job, capped separately
  util::BackoffState backoff =
      util::backoff_state_for(st.opts->jitter_seed ^ util::backoff_job_hash(job.id.c_str()));

  st.metrics.started.add();
  for (;;) {
    if (st.stopping()) {
      st.interrupted.fetch_add(1, std::memory_order_relaxed);
      return;  // no record: the job re-runs on resume
    }
    ++rec.attempts;

    bool retry = false;
    bool done = false;
    {
      // Attempt scope: the trace span and latency histogram cover the
      // execution only, never the backoff sleep that may follow.
      util::trace::Span span("attempt", job.id, static_cast<int>(rec.attempts));
      util::RunControl watchdog;
      watchdog.set_parent(st.opts->run);
      if (st.opts->job_deadline_s > 0.0) watchdog.arm_budget(st.opts->job_deadline_s);
      const SlotGuard guard(slot, &watchdog);

      const double t0 = st.clock->now_ms();
      try {
        const JobOutput out =
            st.use_subprocess
                ? run_job_in_subprocess(*st.executor, job, &watchdog, degrade, st.sub_opts)
                : st.executor->execute(job, &watchdog, degrade);
        rec.wall_ms += st.clock->now_ms() - t0;
        rec.beats += watchdog.beats();
        rec.status = JobStatus::kSucceeded;
        rec.mean_na = out.mean_na;
        rec.sigma_na = out.sigma_na;
        rec.method = out.method;
        rec.degradation = out.degradation;
        rec.error.clear();
        record_terminal(st, rec);
        done = true;
      } catch (const rgleak::Error& e) {
        rec.wall_ms += st.clock->now_ms() - t0;
        rec.beats += watchdog.beats();
        // An error reconstructed from a sandboxed child carries the child's
        // own error_json rendering; using it keeps journal records
        // byte-identical to in-process mode (ParseError location fields
        // survive the pipe).
        const auto* child = dynamic_cast<const ChildReport*>(&e);
        rec.error = (child != nullptr && !child->error_json_line().empty())
                        ? child->error_json_line()
                        : error_json(e);
        retry = retryable(e.code());
        if (e.code() == ErrorCode::kCrash) {
          st.crashes.fetch_add(1, std::memory_order_relaxed);
          st.metrics.crashed.add();
          span.set_outcome("crash");
          // Crashes get their own, tighter cap: a deterministic segfault
          // should fail after max_crash_retries fresh children, not
          // max_attempts.
          if (++crash_count > st.opts->retry.max_crash_retries) retry = false;
        } else {
          span.set_outcome("error");
        }
      } catch (const std::exception& e) {
        // Outside the taxonomy (e.g. an armed failpoint): assume transient.
        rec.wall_ms += st.clock->now_ms() - t0;
        rec.beats += watchdog.beats();
        const auto* child = dynamic_cast<const ChildReport*>(&e);
        rec.error = (child != nullptr && !child->error_json_line().empty())
                        ? child->error_json_line()
                        : error_json(e);
        retry = true;
        span.set_outcome("error");
      }
      st.metrics.attempt_ms.observe(st.clock->now_ms() - t0);
    }
    if (done) return;

    if (st.stopping()) {
      // The failure is indistinguishable from a cancellation side effect
      // (the watchdog forwards the batch stop into the engines); abandon
      // without a record so the job re-runs cleanly on resume.
      st.interrupted.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!retry || rec.attempts >= st.opts->retry.max_attempts || !st.budget->try_take()) {
      rec.status = JobStatus::kFailed;
      record_terminal(st, rec);
      return;
    }
    st.retries.fetch_add(1, std::memory_order_relaxed);
    st.metrics.retried.add();
    ++degrade;  // next attempt answers from a cheaper rung
    backoff_sleep(st, util::next_backoff_ms(st.opts->retry.backoff, backoff));
  }
}

JobRecord shed_record(const JobSpec& job, ShedPolicy policy) {
  JobRecord rec;
  rec.id = job.id;
  rec.status = JobStatus::kShed;
  rec.error = std::string("{\"error\":\"shed\",\"message\":\"queue full (policy ") +
              shed_policy_name(policy) + "): job shed before execution\"}";
  return rec;
}

}  // namespace

BatchSummary run_batch(const std::vector<JobSpec>& jobs, Executor& executor, Journal& journal,
                       const BatchOptions& options) {
  RGLEAK_REQUIRE(options.retry.max_attempts >= 1, "batch needs max_attempts >= 1");
  RGLEAK_REQUIRE(options.queue_depth >= 1, "batch needs queue_depth >= 1");

  BatchSummary summary;
  summary.total = jobs.size();

  RetryBudget budget(options.retry.batch_retry_budget);
  BatchState st;
  st.executor = &executor;
  st.journal = &journal;
  st.opts = &options;
  st.clock = options.clock != nullptr ? options.clock : &util::SystemClock::instance();
  st.budget = &budget;

  // Resolve attempt isolation. kDefault consults RGLEAK_ISOLATE so CI can
  // force sandboxing through an unmodified call site; an explicit kInProcess
  // or kProcess from the caller always wins (tests that assert on in-parent
  // side effects pin kInProcess).
  ExecIsolation isolate = options.isolate;
  if (isolate == ExecIsolation::kDefault) {
    const char* env = std::getenv("RGLEAK_ISOLATE");
    isolate = (env != nullptr && std::strcmp(env, "process") == 0) ? ExecIsolation::kProcess
                                                                   : ExecIsolation::kInProcess;
  }
  if (isolate == ExecIsolation::kProcess) {
    if (!subprocess_supported())
      throw ConfigError("process isolation requested but not supported on this platform");
    st.use_subprocess = true;
    st.sub_opts.term_grace_s = options.isolate_grace_s;
    st.sub_opts.as_limit_bytes = options.isolate_as_limit_bytes;
    if (st.sub_opts.as_limit_bytes == 0) {
      // Derive the hard cap from the soft (tracked) budget: the MemoryBudget
      // the child inherits still throws typed ResourceErrors first; the
      // rlimit only catches what the accountant never saw.
      const std::uint64_t soft = util::MemoryBudget::process().limit();
      if (soft > 0) st.sub_opts.as_limit_bytes = soft * 2 + (256ULL << 20);
    }
    st.sub_opts.cpu_limit_s = options.isolate_cpu_limit_s;
    if (st.sub_opts.cpu_limit_s == 0 && options.job_deadline_s > 0.0)
      st.sub_opts.cpu_limit_s =
          static_cast<std::uint64_t>(std::ceil(options.job_deadline_s * 4.0)) + 5;
  }

  std::size_t workers = options.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());

  const bool stall_watch = options.stall_timeout_s > 0.0;
  if (stall_watch) {
    st.slots.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      st.slots.push_back(std::make_unique<WorkerSlot>());
  }

  JobQueue queue(options.queue_depth, options.shed_policy);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    WorkerSlot* slot = stall_watch ? st.slots[w].get() : nullptr;
    pool.emplace_back([&st, &queue, slot] {
      while (auto job = queue.pop()) {
        st.metrics.queue_depth.set(static_cast<std::int64_t>(queue.size()));
        run_one(st, *job, slot);
      }
    });
  }

  // The stall monitor samples every worker's published heartbeat counter and
  // cancels (reason kStalled) any attempt whose counter stays flat past the
  // timeout. Sampling never beats (beats()/reason() are observation-only), so
  // the monitor cannot mask a stall it is watching for.
  std::mutex monitor_m;
  std::condition_variable monitor_cv;
  bool monitor_quit = false;
  std::thread monitor;
  if (stall_watch) {
    monitor = std::thread([&] {
      const std::chrono::duration<double> timeout(options.stall_timeout_s);
      const std::chrono::duration<double> poll(
          std::min(options.stall_timeout_s / 4.0, 0.05));
      std::unique_lock<std::mutex> lock(monitor_m);
      while (!monitor_quit) {
        monitor_cv.wait_for(lock, poll, [&] { return monitor_quit; });
        if (monitor_quit) return;
        const auto now = std::chrono::steady_clock::now();
        for (const auto& slot_ptr : st.slots) {
          WorkerSlot& slot = *slot_ptr;
          std::lock_guard<std::mutex> slock(slot.m);
          if (slot.active == nullptr) continue;
          const std::uint64_t beats = slot.active->beats();
          if (beats != slot.last_beats) {
            slot.last_beats = beats;
            slot.last_change = now;
          } else if (!slot.fired && now - slot.last_change >= timeout) {
            slot.active->request_stop(util::StopReason::kStalled);
            slot.fired = true;
            st.stalls.fetch_add(1, std::memory_order_relaxed);
            st.metrics.stalled.add();
          }
        }
      }
    });
  }

  std::size_t shed = 0;
  for (const JobSpec& job : jobs) {
    if (journal.has(job.id)) {
      ++summary.skipped;  // crash-only resume: terminal outcomes never re-run
      continue;
    }
    if (st.stopping()) {
      st.interrupted.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    JobQueue::PushResult result = queue.push(job);
    st.metrics.queue_depth.set(static_cast<std::int64_t>(queue.size()));
    if (result.shed.has_value()) {
      ++shed;
      st.metrics.shed.add();
      journal.append(shed_record(*result.shed, options.shed_policy));
    }
    if (result.closed) st.interrupted.fetch_add(1, std::memory_order_relaxed);
  }
  queue.close();
  for (std::thread& t : pool) t.join();
  st.metrics.queue_depth.set(0);
  if (monitor.joinable()) {
    {
      std::lock_guard<std::mutex> lock(monitor_m);
      monitor_quit = true;
    }
    monitor_cv.notify_one();
    monitor.join();
  }

  summary.succeeded = st.succeeded.load();
  summary.failed = st.failed.load();
  summary.shed = shed;
  summary.interrupted = st.interrupted.load();
  summary.retries = st.retries.load();
  summary.stalls = st.stalls.load();
  summary.crashes = st.crashes.load();
  summary.journal_write_failures = journal.write_failures();
  summary.queue_high_watermark = queue.high_watermark();
  summary.stopped = st.stopping();
  return summary;
}

}  // namespace rgleak::service
