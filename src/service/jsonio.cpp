#include "service/jsonio.h"

#include <cctype>
#include <sstream>

#include "util/error.h"
#include "util/format.h"

namespace rgleak::service {

namespace {

class Cursor {
 public:
  Cursor(const std::string& text, const std::string& source, std::size_t line)
      : text_(text), source_(source), line_(line) {}

  [[noreturn]] void fail(const std::string& message, std::string token = "") const {
    throw ParseError(source_, line_, pos_ + 1, message, std::move(token));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool done() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON object");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    const char got = take();
    if (got != c) fail(std::string("expected '") + c + "'", std::string(1, got));
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape", std::string(1, h));
          }
          // UTF-8 encode (BMP only; surrogate pairs are not expected in our
          // own journals and are rejected as malformed input).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape", std::string(1, esc));
      }
    }
  }

  std::string scalar_literal() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '}' || std::isspace(static_cast<unsigned char>(c))) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    // Validate the literal: number, true, false, or null.
    if (tok == "true" || tok == "false" || tok == "null") return tok;
    // util::parse_double, not std::stod: stod honors LC_NUMERIC, so under a
    // decimal-comma locale it would reject the dot-formatted numbers every
    // writer in this codebase emits.
    double ignored = 0.0;
    if (!util::parse_double(tok, ignored)) fail("expected a JSON scalar", tok);
    return tok;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  const std::string& source_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonObject parse_json_object(const std::string& text, const std::string& source,
                             std::size_t line) {
  Cursor c(text, source, line);
  JsonObject obj;
  c.expect('{');
  if (c.peek() == '}') {
    c.take();
  } else {
    while (true) {
      const std::string key = c.string_literal();
      c.expect(':');
      const std::string value = c.peek() == '"' ? c.string_literal() : c.scalar_literal();
      if (!obj.emplace(key, value).second) c.fail("duplicate key", key);
      const char next = c.take();
      if (next == '}') break;
      if (next != ',') c.fail("expected ',' or '}'", std::string(1, next));
    }
  }
  if (!c.done()) c.fail("trailing characters after JSON object");
  return obj;
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string json_string(const std::string& value) { return "\"" + json_escape(value) + "\""; }

}  // namespace rgleak::service
