#pragma once
// Crash-only batch journal.
//
// One JSONL record per *terminal* job outcome (succeeded / failed / shed),
// preceded by a magic header line. There is no "in progress" state and no
// recovery procedure: a job that was mid-flight when the process was
// SIGKILL'd simply has no record and is re-run on resume (jobs are
// deterministic for fixed inputs, so at-least-once execution is safe), while
// a job with a record is never re-run and never duplicated.
//
// Every append rewrites the file through util::atomic_write_file (temp +
// rename), so a reader — including a resume after SIGKILL at any instant —
// sees a complete, well-formed journal: either with or without the latest
// record, never a torn line. That is what makes the journal crash-only: the
// recovery path IS the normal open path.
//
// Append failures (disk full, injected io failpoints) do not kill the batch:
// the record stays in memory, the append is retried on the next record, and
// the failure count is surfaced in the batch summary. The cost of a lost
// append is bounded and safe — at worst a completed job re-runs after a
// crash.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.h"

namespace rgleak::service {

class Journal {
 public:
  /// In-memory journal (no persistence); what you get for an empty path.
  Journal() = default;
  ~Journal();

  /// Movable so open() can return by value (a fresh mutex; the source must
  /// not be in concurrent use, which open-time construction guarantees).
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path`, loading existing records when the file exists (a missing
  /// file is a fresh journal, not an error). Throws IoError on an unreadable
  /// existing file and located ParseError on a malformed one.
  ///
  /// Single-writer: open() takes an exclusive advisory flock on a `.lock`
  /// sidecar (the journal file itself changes inode on every atomic rewrite,
  /// so the lock must live on a stable path) and holds it for the Journal's
  /// lifetime. A second batch targeting the same journal fails fast with an
  /// IoError naming the lock file, instead of the two batches silently
  /// interleaving rewrites and losing each other's records.
  static Journal open(const std::string& path);

  /// True when `id` already has a terminal record (job must not re-run).
  bool has(const std::string& id) const;

  /// Records loaded at open time plus those appended since, by job id.
  std::map<std::string, JobRecord> records() const;
  std::size_t size() const;

  /// Appends a terminal record and persists the journal atomically.
  /// Thread-safe. A persistence failure is absorbed (see header) and counted;
  /// the in-memory record is kept either way.
  void append(const JobRecord& rec);

  /// Persistence failures absorbed so far.
  std::size_t write_failures() const;

  /// Forces a rewrite of the backing file (used to flush after absorbed
  /// failures). Throws on failure when `path` is set.
  void flush();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::map<std::string, JobRecord> records_;
  std::vector<std::string> order_;  // append order, for stable files
  std::size_t write_failures_ = 0;
  int lock_fd_ = -1;  // exclusive flock on path_ + ".lock"; -1 = none

  void persist_locked();
};

}  // namespace rgleak::service
