#pragma once
// Floorplan and placement: the k x m site grid of Fig. 4 with site pitch
// (dW, dH), and the mapping of netlist gates onto sites. Distances between
// sites are centre-to-centre, d_ij = sqrt((i dW)^2 + (j dH)^2).

#include <cstddef>

#include "netlist/netlist.h"

namespace rgleak::placement {

/// The rectangular RG array of the paper: k rows x m columns of identical
/// sites.
struct Floorplan {
  std::size_t rows = 1;      ///< k
  std::size_t cols = 1;      ///< m
  double site_w_nm = 1500.0; ///< dW
  double site_h_nm = 1500.0; ///< dH

  std::size_t num_sites() const { return rows * cols; }
  double width_nm() const { return static_cast<double>(cols) * site_w_nm; }
  double height_nm() const { return static_cast<double>(rows) * site_h_nm; }
  double area_nm2() const { return width_nm() * height_nm(); }

  /// Centre of site (row r, col c).
  double site_x_nm(std::size_t c) const;
  double site_y_nm(std::size_t r) const;

  /// Near-square floorplan with at least `n` sites (rows*cols >= n, as tight
  /// as possible).
  static Floorplan for_gate_count(std::size_t n, double site_w_nm = 1500.0,
                                  double site_h_nm = 1500.0);
};

/// Assignment of every netlist gate to a distinct site, row-major in gate
/// order (the netlist generators shuffle gate order, so this scatters types
/// randomly over the die).
class Placement {
 public:
  Placement(const netlist::Netlist* netlist, Floorplan floorplan);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const Floorplan& floorplan() const { return floorplan_; }

  std::size_t site_of(std::size_t gate) const;
  double x_nm(std::size_t gate) const;
  double y_nm(std::size_t gate) const;
  /// Centre-to-centre distance between two gates' sites.
  double distance_nm(std::size_t gate_a, std::size_t gate_b) const;

 private:
  const netlist::Netlist* netlist_;
  Floorplan floorplan_;
};

}  // namespace rgleak::placement
