#include "placement/placement.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::placement {

double Floorplan::site_x_nm(std::size_t c) const {
  RGLEAK_REQUIRE(c < cols, "column out of range");
  return (static_cast<double>(c) + 0.5) * site_w_nm;
}

double Floorplan::site_y_nm(std::size_t r) const {
  RGLEAK_REQUIRE(r < rows, "row out of range");
  return (static_cast<double>(r) + 0.5) * site_h_nm;
}

Floorplan Floorplan::for_gate_count(std::size_t n, double site_w_nm, double site_h_nm) {
  RGLEAK_REQUIRE(n >= 1, "floorplan needs at least one site");
  RGLEAK_REQUIRE(site_w_nm > 0.0 && site_h_nm > 0.0, "site pitch must be positive");
  Floorplan fp;
  fp.site_w_nm = site_w_nm;
  fp.site_h_nm = site_h_nm;
  fp.rows = static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(n))));
  if (fp.rows == 0) fp.rows = 1;
  fp.cols = (n + fp.rows - 1) / fp.rows;
  return fp;
}

Placement::Placement(const netlist::Netlist* netlist, Floorplan floorplan)
    : netlist_(netlist), floorplan_(floorplan) {
  RGLEAK_REQUIRE(netlist_ != nullptr, "placement needs a netlist");
  RGLEAK_REQUIRE(floorplan_.num_sites() >= netlist_->size(),
                 "floorplan has fewer sites than gates");
}

std::size_t Placement::site_of(std::size_t gate) const {
  RGLEAK_REQUIRE(gate < netlist_->size(), "gate index out of range");
  return gate;  // row-major in (shuffled) gate order
}

double Placement::x_nm(std::size_t gate) const {
  return floorplan_.site_x_nm(site_of(gate) % floorplan_.cols);
}

double Placement::y_nm(std::size_t gate) const {
  return floorplan_.site_y_nm(site_of(gate) / floorplan_.cols);
}

double Placement::distance_nm(std::size_t gate_a, std::size_t gate_b) const {
  return std::hypot(x_nm(gate_a) - x_nm(gate_b), y_nm(gate_a) - y_nm(gate_b));
}

}  // namespace rgleak::placement
