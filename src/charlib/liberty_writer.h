#pragma once
// Liberty-style (.lib) export of leakage characterization.
//
// Downstream power flows consume per-cell, per-state leakage in the Liberty
// format's `leakage_power` groups with `when` conditions. This writer emits a
// minimal-but-valid Liberty library: one `cell` group per library cell, one
// state-conditioned `leakage_power` group per input state (mean leakage in
// the library's `leakage_power_unit`), plus the default (state-mixed at
// p = 0.5) `cell_leakage_power` attribute.

#include <iosfwd>
#include <string>

#include "charlib/characterize.h"

namespace rgleak::charlib {

struct LibertyWriterOptions {
  std::string library_name = "rgleak_virtual90";
  /// Signal probability used for each cell's default cell_leakage_power.
  double default_signal_probability = 0.5;
};

/// Writes the characterized library as Liberty text to `os`.
void write_liberty(const CharacterizedLibrary& chars, std::ostream& os,
                   const LibertyWriterOptions& options = {});
void write_liberty(const CharacterizedLibrary& chars, const std::string& path,
                   const LibertyWriterOptions& options = {});

/// The Liberty `when` condition for one input state of a cell: input pins are
/// named A, B, C, ... in bit order; e.g. state 0b10 of a 2-input cell is
/// "!A & B". Exposed for tests.
std::string liberty_when_condition(int num_inputs, std::uint32_t state);

}  // namespace rgleak::charlib
