#pragma once
// Serialization of characterization results.
//
// Characterizing a 62-cell library is the expensive one-time step of the flow
// (minutes of MC, seconds analytically); production flows persist it. The
// `.rgchar` format is a line-based text format carrying the process
// description and the per-(cell, state) statistics plus, when present, the
// fitted (a,b,c) triplets. Loading binds the data back against a concrete
// StdCellLibrary by cell name and validates state counts.

#include <iosfwd>
#include <string>

#include "charlib/characterize.h"

namespace rgleak::charlib {

/// Writes a characterized library (process + per-cell statistics) to a
/// stream in the .rgchar text format.
void save_characterization(const CharacterizedLibrary& chars, std::ostream& os);
/// Convenience: writes to a file path. Throws NumericalError on I/O failure.
void save_characterization(const CharacterizedLibrary& chars, const std::string& path);

/// Reads a .rgchar stream and rebinds it against `library` (cell names and
/// state counts must match). Throws ContractViolation on format or binding
/// errors.
CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           std::istream& is);
CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           const std::string& path);

}  // namespace rgleak::charlib
