#pragma once
// Serialization of characterization results.
//
// Characterizing a 62-cell library is the expensive one-time step of the flow
// (minutes of MC, seconds analytically); production flows persist it. The
// `.rgchar` format is a line-based text format carrying the process
// description and the per-(cell, state) statistics plus, when present, the
// fitted (a,b,c) triplets. Loading binds the data back against a concrete
// StdCellLibrary by cell name and validates state counts.
//
// Failure contract: malformed or mismatching content throws rgleak::ParseError
// naming the source and 1-based line; OS-level open/read/write failures throw
// rgleak::IoError. A throwing load never returns a partially-filled library.

#include <iosfwd>
#include <string>

#include "charlib/characterize.h"

namespace rgleak::charlib {

/// Writes a characterized library (process + per-cell statistics) to a
/// stream in the .rgchar text format.
void save_characterization(const CharacterizedLibrary& chars, std::ostream& os);
/// Convenience: writes to a file path. Throws rgleak::IoError on I/O failure.
void save_characterization(const CharacterizedLibrary& chars, const std::string& path);

/// Reads a .rgchar stream and rebinds it against `library` (cell names and
/// state counts must match). `source_name` labels ParseErrors.
CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library, std::istream& is,
                                           const std::string& source_name = "<stream>");
CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           const std::string& path);

}  // namespace rgleak::charlib
