#pragma once
// Random-Vt leakage statistics (section 2.1 of the paper).
//
// Random dopant fluctuation makes each device's threshold voltage an
// independent normal; the paper argues that for full-chip estimation this
// component (i) scales the *mean* by a log-normal factor and (ii) contributes
// negligibly to the *variance* for large n, because independent contributions
// average as n while correlated L contributions grow as n^2.
//
// This module quantifies both claims from the transistor netlists themselves:
// per (cell, state), Monte-Carlo over per-device dVt vectors yields the
// cell-level mean inflation and the cell-level sigma due to Vt alone.

#include <cstdint>

#include "cells/library.h"
#include "math/rng.h"
#include "process/variation.h"

namespace rgleak::charlib {

/// Per-(cell, state) leakage statistics under random Vt only (channel length
/// held at nominal).
struct VtCellStats {
  double mean_na = 0.0;        ///< E[I] with dVt ~ iid N(0, sigma_vt)
  double sigma_na = 0.0;       ///< std[I] under Vt randomness alone
  double nominal_na = 0.0;     ///< I at dVt = 0
  double mean_inflation = 0.0; ///< mean_na / nominal_na
};

/// Monte-Carlo estimate of VtCellStats: `samples` draws of the per-device
/// dVt vector. The per-device sigma is scaled by sqrt(Wmin*Lmin/(W*L))
/// (Pelgrom): wider devices fluctuate less.
VtCellStats vt_cell_statistics(const cells::Cell& cell, std::uint32_t state,
                               const device::TechnologyParams& tech,
                               const process::VtVariation& vt, math::Rng& rng,
                               std::size_t samples = 20000);

/// Pelgrom-scaled per-device sigma for a device of width w_nm at channel
/// length l_nm: sigma_vt * sqrt(Wref*Lref / (w*l)) with the reference device
/// being a minimum-size NMOS (120 nm x nominal L).
double pelgrom_sigma_v(const process::VtVariation& vt, const device::TechnologyParams& tech,
                       double w_nm, double l_nm);

}  // namespace rgleak::charlib
