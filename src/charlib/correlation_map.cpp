#include "charlib/correlation_map.h"

#include <cmath>

#include "math/gaussian_moments.h"
#include "util/require.h"

namespace rgleak::charlib {

double pair_product_expectation(const math::LogQuadraticModel& m1,
                                const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                                double rho_l) {
  RGLEAK_REQUIRE(m1.a > 0.0 && m2.a > 0.0, "models need positive scale");
  return m1.a * m2.a *
         math::expectation_exp_quadratic_2d(m1.b, m1.c, m2.b, m2.c, mu_l,
                                            sigma_l * sigma_l, rho_l);
}

double pair_leakage_covariance(const math::LogQuadraticModel& m1,
                               const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                               double rho_l) {
  const math::LogQuadraticMoments mo1(m1, mu_l, sigma_l);
  const math::LogQuadraticMoments mo2(m2, mu_l, sigma_l);
  return pair_product_expectation(m1, m2, mu_l, sigma_l, rho_l) - mo1.mean() * mo2.mean();
}

double pair_leakage_correlation(const math::LogQuadraticModel& m1,
                                const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                                double rho_l) {
  const math::LogQuadraticMoments mo1(m1, mu_l, sigma_l);
  const math::LogQuadraticMoments mo2(m2, mu_l, sigma_l);
  RGLEAK_REQUIRE(mo1.stddev() > 0.0 && mo2.stddev() > 0.0,
                 "correlation needs non-degenerate leakage");
  return pair_leakage_covariance(m1, m2, mu_l, sigma_l, rho_l) / (mo1.stddev() * mo2.stddev());
}

std::vector<RgComponent> make_rg_components(const CharacterizedLibrary& chars,
                                            const std::vector<double>& usage_alphas,
                                            double signal_probability) {
  RGLEAK_REQUIRE(usage_alphas.size() == chars.size(),
                 "usage distribution must have one entry per library cell");
  double total = 0.0;
  for (double a : usage_alphas) {
    RGLEAK_REQUIRE(a >= 0.0, "usage frequencies must be non-negative");
    total += a;
  }
  RGLEAK_REQUIRE(std::abs(total - 1.0) < 1e-6, "usage frequencies must sum to 1");

  std::vector<RgComponent> components;
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    if (usage_alphas[ci] == 0.0) continue;
    const std::vector<double> sp = chars.state_probabilities(ci, signal_probability);
    const CellChar& cc = chars.cell(ci);
    for (std::size_t s = 0; s < cc.states.size(); ++s) {
      const double w = usage_alphas[ci] * sp[s];
      if (w == 0.0) continue;
      RgComponent comp;
      comp.weight = w;
      comp.mean_na = cc.states[s].mean_na;
      comp.sigma_na = cc.states[s].sigma_na;
      comp.model = cc.states[s].model;
      components.push_back(comp);
    }
  }
  RGLEAK_REQUIRE(!components.empty(), "RG mixture has no components");
  return components;
}

namespace {

// Mixture mean and variance of the RG (eqs (7)-(8)).
void mixture_stats(const std::vector<RgComponent>& comps, double& mean, double& variance) {
  double m = 0.0, second = 0.0;
  for (const auto& c : comps) {
    m += c.weight * c.mean_na;
    second += c.weight * (c.sigma_na * c.sigma_na + c.mean_na * c.mean_na);
  }
  mean = m;
  variance = second - m * m;
}

}  // namespace

AnalyticRgCovariance::AnalyticRgCovariance(std::vector<RgComponent> components, double mu_l,
                                           double sigma_l, std::size_t grid_points)
    : components_(std::move(components)), mu_l_(mu_l), sigma_l_(sigma_l) {
  RGLEAK_REQUIRE(grid_points >= 2, "rho grid needs at least two points");
  for (const auto& c : components_)
    RGLEAK_REQUIRE(c.model.has_value(),
                   "analytic RG covariance needs fitted models for every component");
  mixture_stats(components_, mean_, variance_);
  grid_.resize(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double rho = static_cast<double>(i) / static_cast<double>(grid_points - 1);
    grid_[i] = exact_covariance(rho);
  }
}

double AnalyticRgCovariance::exact_covariance(double rho_l) const {
  // F(rho) = sum_k sum_l w_k w_l Cov(X_k, X_l; rho); symmetric, so fold.
  const std::size_t n = components_.size();
  const double var_l = sigma_l_ * sigma_l_;
  double f = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto& a = components_[k];
    for (std::size_t l = k; l < n; ++l) {
      const auto& b = components_[l];
      const double e12 = a.model->a * b.model->a *
                         math::expectation_exp_quadratic_2d(a.model->b, a.model->c, b.model->b,
                                                            b.model->c, mu_l_, var_l, rho_l);
      const double cov = e12 - a.mean_na * b.mean_na;
      f += (k == l ? 1.0 : 2.0) * a.weight * b.weight * cov;
    }
  }
  return f;
}

double AnalyticRgCovariance::covariance(double rho_l) const {
  RGLEAK_REQUIRE(rho_l >= 0.0 && rho_l <= 1.0, "rho_L must be in [0, 1]");
  const double pos = rho_l * static_cast<double>(grid_.size() - 1);
  const auto idx = std::min(static_cast<std::size_t>(pos), grid_.size() - 2);
  const double frac = pos - static_cast<double>(idx);
  return grid_[idx] + frac * (grid_[idx + 1] - grid_[idx]);
}

CrossRgCovariance::CrossRgCovariance(std::vector<RgComponent> a, std::vector<RgComponent> b,
                                     double mu_l, double sigma_l, std::size_t grid_points) {
  RGLEAK_REQUIRE(grid_points >= 2, "rho grid needs at least two points");
  RGLEAK_REQUIRE(!a.empty() && !b.empty(), "cross covariance needs non-empty mixtures");
  for (const auto& c : a)
    RGLEAK_REQUIRE(c.model.has_value(), "analytic cross covariance needs fitted models");
  for (const auto& c : b)
    RGLEAK_REQUIRE(c.model.has_value(), "analytic cross covariance needs fitted models");
  const double var_l = sigma_l * sigma_l;
  grid_.resize(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double rho = static_cast<double>(i) / static_cast<double>(grid_points - 1);
    double f = 0.0;
    for (const auto& ca : a) {
      for (const auto& cb : b) {
        const double e12 =
            ca.model->a * cb.model->a *
            math::expectation_exp_quadratic_2d(ca.model->b, ca.model->c, cb.model->b,
                                               cb.model->c, mu_l, var_l, rho);
        f += ca.weight * cb.weight * (e12 - ca.mean_na * cb.mean_na);
      }
    }
    grid_[i] = f;
  }
}

CrossRgCovariance::CrossRgCovariance(const std::vector<RgComponent>& a,
                                     const std::vector<RgComponent>& b, bool simplified)
    : simplified_(true) {
  RGLEAK_REQUIRE(simplified, "use the analytic constructor for the exact mapping");
  RGLEAK_REQUIRE(!a.empty() && !b.empty(), "cross covariance needs non-empty mixtures");
  double sa = 0.0, sb = 0.0;
  for (const auto& c : a) sa += c.weight * c.sigma_na;
  for (const auto& c : b) sb += c.weight * c.sigma_na;
  scale_ = sa * sb;
}

double CrossRgCovariance::covariance(double rho_l) const {
  RGLEAK_REQUIRE(rho_l >= 0.0 && rho_l <= 1.0, "rho_L must be in [0, 1]");
  if (simplified_) return scale_ * rho_l;
  const double pos = rho_l * static_cast<double>(grid_.size() - 1);
  const auto idx = std::min(static_cast<std::size_t>(pos), grid_.size() - 2);
  const double frac = pos - static_cast<double>(idx);
  return grid_[idx] + frac * (grid_[idx + 1] - grid_[idx]);
}

SimplifiedRgCovariance::SimplifiedRgCovariance(const std::vector<RgComponent>& components) {
  mixture_stats(components, mean_, variance_);
  double s = 0.0;
  for (const auto& c : components) s += c.weight * c.sigma_na;
  rho_scale_ = s * s;
}

}  // namespace rgleak::charlib
