#include "charlib/leakage_table.h"

#include <algorithm>
#include <cmath>

#include "math/vexp.h"
#include "util/require.h"

namespace rgleak::charlib {

LeakageTable::LeakageTable(const cells::Cell& cell, std::uint32_t state,
                           const device::TechnologyParams& tech, double l_min_nm,
                           double l_max_nm, std::size_t points)
    : l_min_(l_min_nm), l_max_(l_max_nm) {
  RGLEAK_REQUIRE(points >= 2, "leakage table needs at least two points");
  RGLEAK_REQUIRE(l_min_nm > 0.0 && l_min_nm < l_max_nm, "invalid length range");
  step_ = (l_max_ - l_min_) / static_cast<double>(points - 1);
  inv_step_ = 1.0 / step_;
  log_i_.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double l = l_min_ + static_cast<double>(i) * step_;
    const double leak = cell.leakage_na(state, l, tech);
    RGLEAK_REQUIRE(leak > 0.0, "cell leakage must be positive");
    log_i_[i] = std::log(leak);
  }
}

double LeakageTable::eval_na(double l_nm) const {
  const double pos = (l_nm - l_min_) / step_;
  const auto n = static_cast<double>(log_i_.size() - 1);
  // Clamp to the end segments: linear extrapolation of ln(I).
  double p = pos;
  if (p < 0.0) p = 0.0;
  if (p > n - 1.0) p = n - 1.0;
  const auto idx = static_cast<std::size_t>(p);
  const double frac = pos - static_cast<double>(idx);
  const double log_i = log_i_[idx] + frac * (log_i_[idx + 1] - log_i_[idx]);
  return std::exp(log_i);
}

void LeakageTable::eval_many_na(const double* l_nm, double* out_na, std::size_t n) const {
  // Same interpolation as eval_na, written branch-free (min/max clamps, a
  // precomputed reciprocal of the step) so the gather loop vectorizes; the
  // exponential runs as one batched vexp pass over the contiguous results.
  const double* logi = log_i_.data();
  const double seg_max = static_cast<double>(log_i_.size() - 1) - 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = (l_nm[i] - l_min_) * inv_step_;
    const double p = std::min(std::max(pos, 0.0), seg_max);
    const auto idx = static_cast<std::size_t>(p);
    const double frac = pos - static_cast<double>(idx);
    out_na[i] = logi[idx] + frac * (logi[idx + 1] - logi[idx]);
  }
  math::vexp(out_na, out_na, n);
}

double LeakageTable::log_i_min() const {
  return *std::min_element(log_i_.begin(), log_i_.end());
}

double LeakageTable::log_i_max() const {
  return *std::max_element(log_i_.begin(), log_i_.end());
}

}  // namespace rgleak::charlib
