#include "charlib/leakage_table.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::charlib {

LeakageTable::LeakageTable(const cells::Cell& cell, std::uint32_t state,
                           const device::TechnologyParams& tech, double l_min_nm,
                           double l_max_nm, std::size_t points)
    : l_min_(l_min_nm), l_max_(l_max_nm) {
  RGLEAK_REQUIRE(points >= 2, "leakage table needs at least two points");
  RGLEAK_REQUIRE(l_min_nm > 0.0 && l_min_nm < l_max_nm, "invalid length range");
  step_ = (l_max_ - l_min_) / static_cast<double>(points - 1);
  log_i_.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double l = l_min_ + static_cast<double>(i) * step_;
    const double leak = cell.leakage_na(state, l, tech);
    RGLEAK_REQUIRE(leak > 0.0, "cell leakage must be positive");
    log_i_[i] = std::log(leak);
  }
}

double LeakageTable::eval_na(double l_nm) const {
  const double pos = (l_nm - l_min_) / step_;
  const auto n = static_cast<double>(log_i_.size() - 1);
  // Clamp to the end segments: linear extrapolation of ln(I).
  double p = pos;
  if (p < 0.0) p = 0.0;
  if (p > n - 1.0) p = n - 1.0;
  const auto idx = static_cast<std::size_t>(p);
  const double frac = pos - static_cast<double>(idx);
  const double log_i = log_i_[idx] + frac * (log_i_[idx + 1] - log_i_[idx]);
  return std::exp(log_i);
}

}  // namespace rgleak::charlib
