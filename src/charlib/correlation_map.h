#pragma once
// Leakage-correlation machinery (sections 2.1.3 and 2.2.3 of the paper).
//
// Given two cells with fitted models X_m = a_m exp(b_m L + c_m L^2) and
// jointly normal lengths with correlation rho_L, the product moment
// E[X_m X_n] has the closed form of the bivariate Gaussian
// exponential-quadratic expectation, which yields the exact mapping
//   rho_{m,n} = f_{m,n}(rho_L)
// from channel-length correlation to leakage correlation (Fig. 2: f is close
// to the identity).
//
// The Random-Gate covariance of eq. (10) is the usage-weighted mixture of the
// pairwise covariances over all (cell, state) components:
//   F(rho_L) = sum_k sum_l w_k w_l Cov(X_k, X_l; rho_L).
// Two implementations are provided:
//  * AnalyticRgCovariance — exact, from the fitted models (cached on a rho
//    grid and interpolated);
//  * SimplifiedRgCovariance — the rho_{m,n} ~= rho_L assumption of section
//    3.1.2, F(rho) = rho * (sum_k w_k sigma_k)^2, usable with MC-characterized
//    libraries that carry no (a,b,c).

#include <memory>
#include <vector>

#include "charlib/characterize.h"
#include "math/mgf.h"

namespace rgleak::charlib {

/// E[X1 X2] for two log-quadratic models with lengths (L1, L2) jointly normal:
/// common mean mu_l, common sigma sigma_l, correlation rho_l.
double pair_product_expectation(const math::LogQuadraticModel& m1,
                                const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                                double rho_l);

/// Cov(X1, X2) for the same setting.
double pair_leakage_covariance(const math::LogQuadraticModel& m1,
                               const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                               double rho_l);

/// The f_{m,n} mapping: leakage correlation as a function of length
/// correlation.
double pair_leakage_correlation(const math::LogQuadraticModel& m1,
                                const math::LogQuadraticModel& m2, double mu_l, double sigma_l,
                                double rho_l);

/// One component of the Random-Gate mixture: a (cell, state) pair with its
/// usage-times-state probability weight.
struct RgComponent {
  double weight = 0.0;
  double mean_na = 0.0;
  double sigma_na = 0.0;
  std::optional<math::LogQuadraticModel> model;
};

/// Flattens a characterized library + usage distribution + signal probability
/// into the RG component mixture. Weights sum to 1.
std::vector<RgComponent> make_rg_components(const CharacterizedLibrary& chars,
                                            const std::vector<double>& usage_alphas,
                                            double signal_probability);

/// Interface: the RG leakage covariance as a function of length correlation
/// (eq. (11)): covariance(rho) = F(rho) for distinct locations; variance() is
/// sigma^2_{X_I} for coincident locations.
class RgCovarianceModel {
 public:
  virtual ~RgCovarianceModel() = default;
  /// F(rho_L) for distinct locations; rho_L in [0, 1].
  virtual double covariance(double rho_l) const = 0;
  /// sigma^2 of the RG leakage (same-location covariance).
  virtual double variance() const = 0;
  /// mu of the RG leakage.
  virtual double mean() const = 0;
};

/// Exact mixture covariance from fitted models, cached on a rho grid.
class AnalyticRgCovariance final : public RgCovarianceModel {
 public:
  /// Requires every component to carry a fitted model. `grid_points` controls
  /// the rho-cache resolution.
  AnalyticRgCovariance(std::vector<RgComponent> components, double mu_l, double sigma_l,
                       std::size_t grid_points = 65);

  double covariance(double rho_l) const override;
  double variance() const override { return variance_; }
  double mean() const override { return mean_; }

 private:
  double exact_covariance(double rho_l) const;

  std::vector<RgComponent> components_;
  double mu_l_, sigma_l_;
  double mean_ = 0.0, variance_ = 0.0;
  std::vector<double> grid_;  // F at rho = i/(grid_points-1)
};

/// Covariance between the leakages of two *different* RG mixtures (e.g. two
/// floorplan blocks with different usage histograms) as a function of length
/// correlation: F_AB(rho) = sum_{k in A} sum_{l in B} w_k w_l Cov(X_k, X_l;
/// rho). Used by the multi-block estimator.
class CrossRgCovariance {
 public:
  /// Analytic form: both component lists must carry fitted models.
  CrossRgCovariance(std::vector<RgComponent> a, std::vector<RgComponent> b, double mu_l,
                    double sigma_l, std::size_t grid_points = 33);
  /// Simplified form (rho_mn = rho_L): F_AB(rho) = rho * (sum w sigma)_A *
  /// (sum w sigma)_B. Select with `simplified = true`; models not required.
  CrossRgCovariance(const std::vector<RgComponent>& a, const std::vector<RgComponent>& b,
                    bool simplified);

  double covariance(double rho_l) const;

 private:
  bool simplified_ = false;
  double scale_ = 0.0;        // simplified mode
  std::vector<double> grid_;  // analytic mode
};

/// Simplified covariance under rho_{m,n} = rho_L (section 3.1.2).
class SimplifiedRgCovariance final : public RgCovarianceModel {
 public:
  explicit SimplifiedRgCovariance(const std::vector<RgComponent>& components);

  double covariance(double rho_l) const override { return rho_scale_ * rho_l; }
  double variance() const override { return variance_; }
  double mean() const override { return mean_; }

 private:
  double rho_scale_ = 0.0;  // (sum_k w_k sigma_k)^2
  double mean_ = 0.0, variance_ = 0.0;
};

}  // namespace rgleak::charlib
