#pragma once
// Cell pre-characterization (section 2.1 of the paper).
//
// Two characterization routes are provided, mirroring the paper:
//  * Monte-Carlo (section 2.1.1): sample L ~ N(mu, sigma_total) with fully
//    correlated within-cell lengths and accumulate per-state mean/sigma.
//  * Analytical (section 2.1.2): sample the leakage curve at a handful of
//    lengths, fit ln(I) = ln(a) + b L + c L^2, and compute the *exact* moments
//    of a*exp(bL + cL^2) through the non-central chi-square MGF.
//
// The result is a CharacterizedLibrary: per cell, per input state, the leakage
// mean/sigma (and the fitted (a,b,c) when available), plus helpers to mix
// states under signal probabilities (section 2.1.4).

#include <optional>
#include <vector>

#include "cells/library.h"
#include "charlib/leakage_table.h"
#include "math/mgf.h"
#include "math/rng.h"
#include "process/variation.h"
#include "util/run_control.h"

namespace rgleak::charlib {

/// Characterized statistics of one (cell, input state).
struct StateChar {
  double mean_na = 0.0;
  double sigma_na = 0.0;
  /// Fitted functional form; present when the analytic route produced it.
  std::optional<math::LogQuadraticModel> model;
};

/// Characterized statistics of one cell: one entry per input state.
struct CellChar {
  std::vector<StateChar> states;
};

/// Effective (state-mixed) statistics of one cell under given state
/// probabilities: mean = sum_s P(s) mu_s, second moment mixes accordingly.
struct EffectiveCellStats {
  double mean_na = 0.0;
  double sigma_na = 0.0;
};

/// Options for the Monte-Carlo characterizer.
struct McCharOptions {
  std::size_t samples = 20000;
  std::size_t table_points = 129;
  double table_span_sigma = 8.0;  ///< table covers mu ± span*sigma
  std::uint64_t seed = 12345;
  /// Cooperative stop / deadline, polled once per (cell, state); a stop
  /// throws DeadlineExceeded from the characterizer.
  const util::RunControl* run = nullptr;
};

/// Options for the analytic characterizer.
struct AnalyticCharOptions {
  std::size_t fit_points = 9;    ///< leakage samples for the regression
  double fit_span_sigma = 3.0;   ///< fit window mu ± span*sigma
  /// Cooperative stop / deadline, polled once per (cell, state).
  const util::RunControl* run = nullptr;
};

/// Library + process + per-cell characterization data. Value type.
class CharacterizedLibrary {
 public:
  CharacterizedLibrary(const cells::StdCellLibrary* library, process::ProcessVariation process,
                       std::vector<CellChar> cells);

  const cells::StdCellLibrary& library() const { return *library_; }
  const process::ProcessVariation& process() const { return process_; }
  std::size_t size() const { return cells_.size(); }
  const CellChar& cell(std::size_t index) const;

  /// State-mixed statistics of cell `index` under the given per-state
  /// probabilities (must sum to ~1 and match the state count).
  EffectiveCellStats effective(std::size_t index, const std::vector<double>& state_probs) const;

  /// Per-state probabilities for cell `index` when every input is
  /// independently 1 with probability `signal_probability`.
  std::vector<double> state_probabilities(std::size_t index, double signal_probability) const;

  /// True when every (cell, state) carries a fitted (a,b,c) model.
  bool has_models() const;

 private:
  const cells::StdCellLibrary* library_;
  process::ProcessVariation process_;
  std::vector<CellChar> cells_;
};

/// Monte-Carlo characterization of every cell and input state.
CharacterizedLibrary characterize_monte_carlo(const cells::StdCellLibrary& library,
                                              const process::ProcessVariation& process,
                                              const McCharOptions& options = {});

/// Analytical characterization (fit + exact moments) of every cell and state.
CharacterizedLibrary characterize_analytic(const cells::StdCellLibrary& library,
                                           const process::ProcessVariation& process,
                                           const AnalyticCharOptions& options = {});

/// Fits ln(leakage) of one (cell, state) to the log-quadratic form; exposed
/// for tests and for the Fig.-2 experiment.
math::LogQuadraticModel fit_log_quadratic(const cells::Cell& cell, std::uint32_t state,
                                          const device::TechnologyParams& tech, double mu_l_nm,
                                          double sigma_l_nm,
                                          const AnalyticCharOptions& options = {});

}  // namespace rgleak::charlib
