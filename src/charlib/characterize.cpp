#include "charlib/characterize.h"

#include <cmath>
#include <sstream>

#include "math/polyfit.h"
#include "math/stats.h"
#include "util/require.h"

namespace rgleak::charlib {

CharacterizedLibrary::CharacterizedLibrary(const cells::StdCellLibrary* library,
                                           process::ProcessVariation process,
                                           std::vector<CellChar> cells)
    : library_(library), process_(std::move(process)), cells_(std::move(cells)) {
  RGLEAK_REQUIRE(library_ != nullptr, "characterized library needs a cell library");
  RGLEAK_REQUIRE(cells_.size() == library_->size(),
                 "characterization entry count must match library size");
  for (std::size_t i = 0; i < cells_.size(); ++i)
    RGLEAK_REQUIRE(cells_[i].states.size() == library_->cell(i).num_states(),
                   "state count mismatch for cell " + library_->cell(i).name());
}

const CellChar& CharacterizedLibrary::cell(std::size_t index) const {
  RGLEAK_REQUIRE(index < cells_.size(), "cell index out of range");
  return cells_[index];
}

EffectiveCellStats CharacterizedLibrary::effective(std::size_t index,
                                                   const std::vector<double>& state_probs) const {
  const CellChar& c = cell(index);
  RGLEAK_REQUIRE(state_probs.size() == c.states.size(), "state probability count mismatch");
  double mean = 0.0, second = 0.0, total_p = 0.0;
  for (std::size_t s = 0; s < c.states.size(); ++s) {
    const double p = state_probs[s];
    RGLEAK_REQUIRE(p >= 0.0, "state probabilities must be non-negative");
    total_p += p;
    mean += p * c.states[s].mean_na;
    second += p * (c.states[s].sigma_na * c.states[s].sigma_na +
                   c.states[s].mean_na * c.states[s].mean_na);
  }
  RGLEAK_REQUIRE(std::abs(total_p - 1.0) < 1e-6, "state probabilities must sum to 1");
  EffectiveCellStats out;
  out.mean_na = mean;
  const double var = second - mean * mean;
  out.sigma_na = var > 0.0 ? std::sqrt(var) : 0.0;
  return out;
}

std::vector<double> CharacterizedLibrary::state_probabilities(std::size_t index,
                                                              double signal_probability) const {
  RGLEAK_REQUIRE(signal_probability >= 0.0 && signal_probability <= 1.0,
                 "signal probability must be in [0,1]");
  const cells::Cell& c = library_->cell(index);
  const std::uint32_t n_states = c.num_states();
  std::vector<double> probs(n_states);
  for (std::uint32_t s = 0; s < n_states; ++s) {
    double p = 1.0;
    for (int bit = 0; bit < c.num_inputs(); ++bit)
      p *= ((s >> bit) & 1u) ? signal_probability : 1.0 - signal_probability;
    probs[s] = p;
  }
  return probs;
}

bool CharacterizedLibrary::has_models() const {
  for (const auto& c : cells_)
    for (const auto& s : c.states)
      if (!s.model) return false;
  return true;
}

CharacterizedLibrary characterize_monte_carlo(const cells::StdCellLibrary& library,
                                              const process::ProcessVariation& process,
                                              const McCharOptions& options) {
  RGLEAK_REQUIRE(options.samples >= 2, "MC characterization needs >= 2 samples");
  const double mu = process.length().mean_nm;
  const double sigma = process.length().sigma_total_nm();
  const double span = options.table_span_sigma * sigma;
  const double l_min = std::max(mu - span, 1.0);
  const double l_max = mu + std::max(span, 1e-3);

  math::Rng rng(options.seed);
  std::vector<CellChar> cells;
  cells.reserve(library.size());
  for (std::size_t ci = 0; ci < library.size(); ++ci) {
    const cells::Cell& cell = library.cell(ci);
    CellChar cc;
    cc.states.resize(cell.num_states());
    for (std::uint32_t s = 0; s < cell.num_states(); ++s) {
      if (options.run) options.run->poll("characterize_monte_carlo");
      const LeakageTable table(cell, s, library.tech(), l_min, l_max, options.table_points);
      math::RunningStats acc;
      // One shared stream: cell statistics must not depend on library order,
      // so fork a stream per (cell, state).
      math::Rng local = rng.fork();
      for (std::size_t k = 0; k < options.samples; ++k)
        acc.add(table.eval_na(local.normal(mu, sigma)));
      cc.states[s].mean_na = acc.mean();
      cc.states[s].sigma_na = acc.stddev();
    }
    cells.push_back(std::move(cc));
  }
  return CharacterizedLibrary(&library, process, std::move(cells));
}

math::LogQuadraticModel fit_log_quadratic(const cells::Cell& cell, std::uint32_t state,
                                          const device::TechnologyParams& tech, double mu_l_nm,
                                          double sigma_l_nm, const AnalyticCharOptions& options) {
  RGLEAK_REQUIRE(options.fit_points >= 3, "log-quadratic fit needs >= 3 points");
  const double span = options.fit_span_sigma * sigma_l_nm;
  const double lo = std::max(mu_l_nm - span, 1.0);
  const double hi = mu_l_nm + std::max(span, 1e-3);
  std::vector<double> ls(options.fit_points), logs(options.fit_points);
  for (std::size_t i = 0; i < options.fit_points; ++i) {
    const double l = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(options.fit_points - 1);
    const double leak = cell.leakage_na(state, l, tech);
    RGLEAK_REQUIRE(leak > 0.0, "cell leakage must be positive");
    ls[i] = l - mu_l_nm;  // center the regressor for conditioning
    logs[i] = std::log(leak);
  }
  math::PolyfitInfo fit_info;
  const std::vector<double> coef = math::polyfit(ls, logs, 2, &fit_info);
  // Centered regressors keep the Vandermonde well conditioned; a huge
  // condition number means the fit span collapsed and the coefficients are
  // garbage — better to refuse than to ship a bogus (a, b, c).
  constexpr double kMaxFitCondition = 1e10;
  if (fit_info.condition > kMaxFitCondition) {
    std::ostringstream os;
    os << "log-quadratic fit for cell " << cell.name() << " state " << state
       << " is ill-conditioned (condition " << fit_info.condition << " over L in [" << lo << ", "
       << hi << "] nm)";
    throw NumericalError(os.str());
  }
  // Un-center: ln I = k0 + k1 (L - mu) + k2 (L - mu)^2
  //                 = (k0 - k1 mu + k2 mu^2) + (k1 - 2 k2 mu) L + k2 L^2.
  math::LogQuadraticModel m;
  m.c = coef[2];
  m.b = coef[1] - 2.0 * coef[2] * mu_l_nm;
  m.a = std::exp(coef[0] - coef[1] * mu_l_nm + coef[2] * mu_l_nm * mu_l_nm);
  return m;
}

CharacterizedLibrary characterize_analytic(const cells::StdCellLibrary& library,
                                           const process::ProcessVariation& process,
                                           const AnalyticCharOptions& options) {
  const double mu = process.length().mean_nm;
  const double sigma = process.length().sigma_total_nm();
  std::vector<CellChar> cells;
  cells.reserve(library.size());
  for (std::size_t ci = 0; ci < library.size(); ++ci) {
    const cells::Cell& cell = library.cell(ci);
    CellChar cc;
    cc.states.resize(cell.num_states());
    for (std::uint32_t s = 0; s < cell.num_states(); ++s) {
      if (options.run) options.run->poll("characterize_analytic");
      const math::LogQuadraticModel model =
          fit_log_quadratic(cell, s, library.tech(), mu, sigma, options);
      const math::LogQuadraticMoments moments(model, mu, sigma);
      cc.states[s].mean_na = moments.mean();
      cc.states[s].sigma_na = moments.stddev();
      cc.states[s].model = model;
    }
    cells.push_back(std::move(cc));
  }
  return CharacterizedLibrary(&library, process, std::move(cells));
}

}  // namespace rgleak::charlib
