#include "charlib/vt_statistics.h"

#include <cmath>
#include <vector>

#include "math/stats.h"
#include "util/require.h"

namespace rgleak::charlib {

double pelgrom_sigma_v(const process::VtVariation& vt, const device::TechnologyParams& tech,
                       double w_nm, double l_nm) {
  RGLEAK_REQUIRE(w_nm > 0.0 && l_nm > 0.0, "device geometry must be positive");
  const double ref_area = 120.0 * tech.l_nominal_nm;
  return vt.sigma_v * std::sqrt(ref_area / (w_nm * l_nm));
}

VtCellStats vt_cell_statistics(const cells::Cell& cell, std::uint32_t state,
                               const device::TechnologyParams& tech,
                               const process::VtVariation& vt, math::Rng& rng,
                               std::size_t samples) {
  RGLEAK_REQUIRE(samples >= 2, "vt_cell_statistics needs >= 2 samples");

  // Collect per-device sigmas (by dvt_index) from every stage network.
  std::vector<const device::NetworkDevice*> devices;
  for (const auto& stage : cell.stages()) {
    if (stage.pdn) stage.pdn->collect_devices(devices);
    if (stage.pun) stage.pun->collect_devices(devices);
    if (stage.rail_path) stage.rail_path->collect_devices(devices);
  }
  std::vector<double> sigma(cell.num_devices(), vt.sigma_v);
  for (const auto* d : devices) {
    if (d->dvt_index >= 0 && static_cast<std::size_t>(d->dvt_index) < sigma.size())
      sigma[static_cast<std::size_t>(d->dvt_index)] =
          pelgrom_sigma_v(vt, tech, d->w_nm, tech.l_nominal_nm);
  }

  VtCellStats out;
  out.nominal_na = cell.leakage_na(state, tech.l_nominal_nm, tech);

  math::RunningStats acc;
  std::vector<double> dvt(sigma.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t d = 0; d < dvt.size(); ++d) dvt[d] = rng.normal(0.0, sigma[d]);
    acc.add(cell.leakage_na(state, tech.l_nominal_nm, tech, dvt));
  }
  out.mean_na = acc.mean();
  out.sigma_na = acc.stddev();
  out.mean_inflation = out.mean_na / out.nominal_na;
  return out;
}

}  // namespace rgleak::charlib
