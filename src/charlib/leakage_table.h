#pragma once
// Tabulated leakage-vs-channel-length curve for one (cell, input state).
//
// Cell leakage with fully correlated within-cell L (the paper's MC assumption)
// and no random Vt is a deterministic scalar function of L. The
// characterization and full-chip Monte-Carlo engines therefore evaluate the
// transistor-network solver on a fixed L grid once and interpolate ln(I)
// linearly afterwards — turning microsecond network solves into nanosecond
// lookups without changing the statistics.

#include <cstdint>
#include <vector>

#include "cells/cell.h"
#include "device/subthreshold.h"

namespace rgleak::charlib {

class LeakageTable {
 public:
  /// Tabulates cell leakage for `state` on `points` equally spaced lengths in
  /// [l_min_nm, l_max_nm]. Requires points >= 2 and l_min < l_max.
  LeakageTable(const cells::Cell& cell, std::uint32_t state,
               const device::TechnologyParams& tech, double l_min_nm, double l_max_nm,
               std::size_t points = 129);

  /// Leakage (nA) at channel length l_nm; linear interpolation of ln(I),
  /// linear extrapolation of ln(I) beyond the table ends.
  double eval_na(double l_nm) const;

  /// Batched lookup: out_na[i] = leakage at l_nm[i], for i in [0, n). The
  /// contiguous ln(I) gather feeds one math::vexp pass, so the whole batch
  /// auto-vectorizes and performs zero allocations — the Monte-Carlo
  /// engine's bucketed hot path. In-place (out_na == l_nm) is allowed.
  /// Agrees with eval_na to a few ULP (the scalar path uses std::exp and a
  /// division where this path uses vexp and a precomputed reciprocal); see
  /// tests/charlib/test_leakage_table.cpp for the asserted bound.
  void eval_many_na(const double* l_nm, double* out_na, std::size_t n) const;

  /// ln of the tabulated leakage range (diagnostics and vexp range checks).
  double log_i_min() const;
  double log_i_max() const;

  double l_min_nm() const { return l_min_; }
  double l_max_nm() const { return l_max_; }
  std::size_t size() const { return log_i_.size(); }

 private:
  double l_min_, l_max_, step_, inv_step_;
  std::vector<double> log_i_;
};

}  // namespace rgleak::charlib
