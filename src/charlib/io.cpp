#include "charlib/io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/require.h"

namespace rgleak::charlib {

namespace {
constexpr const char* kMagic = "rgchar-v1";

std::string correlation_family(const process::SpatialCorrelation& corr) {
  return corr.name();
}

}  // namespace

void save_characterization(const CharacterizedLibrary& chars, std::ostream& os) {
  const auto& p = chars.process();
  os << kMagic << "\n";
  os << std::setprecision(17);
  const std::string family = correlation_family(p.wid_correlation());
  // Only factory-constructible families round-trip (powerexp carries a second
  // parameter the format does not store).
  try {
    (void)process::make_correlation(family, 1.0);
  } catch (const ContractViolation&) {
    throw ContractViolation("correlation family '" + family + "' is not serializable");
  }
  os << "process " << p.length().mean_nm << ' ' << p.length().sigma_d2d_nm << ' '
     << p.length().sigma_wid_nm << ' ' << p.vt().sigma_v << ' ' << family << ' '
     << process::correlation_scale_nm(p.wid_correlation()) << ' ' << p.anisotropy().scale_x << ' '
     << p.anisotropy().scale_y << "\n";
  os << "cells " << chars.size() << "\n";
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    const CellChar& cc = chars.cell(ci);
    os << "cell " << chars.library().cell(ci).name() << ' ' << cc.states.size() << "\n";
    for (const StateChar& s : cc.states) {
      os << "state " << s.mean_na << ' ' << s.sigma_na;
      if (s.model) os << " model " << s.model->a << ' ' << s.model->b << ' ' << s.model->c;
      os << "\n";
    }
  }
}

void save_characterization(const CharacterizedLibrary& chars, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw NumericalError("cannot open for writing: " + path);
  save_characterization(chars, os);
  if (!os) throw NumericalError("write failed: " + path);
}

CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           std::istream& is) {
  std::string line;
  RGLEAK_REQUIRE(std::getline(is, line) && line == kMagic, "bad .rgchar header");

  RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing process line");
  std::istringstream ps(line);
  std::string tag, family;
  process::LengthVariation len;
  process::VtVariation vt;
  double scale = 0.0;
  ps >> tag >> len.mean_nm >> len.sigma_d2d_nm >> len.sigma_wid_nm >> vt.sigma_v >> family >>
      scale;
  RGLEAK_REQUIRE(static_cast<bool>(ps) && tag == "process", "bad process line");
  process::CorrelationAnisotropy aniso;
  // Optional trailing anisotropy pair (older files omit it).
  if (!(ps >> aniso.scale_x >> aniso.scale_y)) aniso = {};
  process::ProcessVariation process(len, vt, process::make_correlation(family, scale), aniso);

  RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing cells line");
  std::istringstream cs(line);
  std::size_t count = 0;
  cs >> tag >> count;
  RGLEAK_REQUIRE(static_cast<bool>(cs) && tag == "cells", "bad cells line");
  RGLEAK_REQUIRE(count == library.size(), "cell count does not match target library");

  std::vector<CellChar> cells(library.size());
  for (std::size_t i = 0; i < count; ++i) {
    RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing cell line");
    std::istringstream hs(line);
    std::string name;
    std::size_t states = 0;
    hs >> tag >> name >> states;
    RGLEAK_REQUIRE(static_cast<bool>(hs) && tag == "cell", "bad cell line");
    const std::size_t idx = library.index_of(name);
    RGLEAK_REQUIRE(states == library.cell(idx).num_states(),
                   "state count mismatch for cell " + name);
    CellChar cc;
    cc.states.resize(states);
    for (std::size_t s = 0; s < states; ++s) {
      RGLEAK_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing state line");
      std::istringstream ss(line);
      StateChar st;
      ss >> tag >> st.mean_na >> st.sigma_na;
      RGLEAK_REQUIRE(static_cast<bool>(ss) && tag == "state", "bad state line");
      std::string model_tag;
      if (ss >> model_tag) {
        RGLEAK_REQUIRE(model_tag == "model", "unexpected token on state line");
        math::LogQuadraticModel m;
        ss >> m.a >> m.b >> m.c;
        RGLEAK_REQUIRE(static_cast<bool>(ss), "bad model triplet");
        st.model = m;
      }
      cc.states[s] = st;
    }
    cells[idx] = std::move(cc);
  }
  return CharacterizedLibrary(&library, std::move(process), std::move(cells));
}

CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NumericalError("cannot open for reading: " + path);
  return load_characterization(library, is);
}

}  // namespace rgleak::charlib
