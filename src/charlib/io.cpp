#include "charlib/io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/require.h"

namespace rgleak::charlib {

namespace {
constexpr const char* kMagic = "rgchar-v1";

std::string correlation_family(const process::SpatialCorrelation& corr) {
  return corr.name();
}

}  // namespace

void save_characterization(const CharacterizedLibrary& chars, std::ostream& os) {
  const auto& p = chars.process();
  os << kMagic << "\n";
  os << std::setprecision(17);
  const std::string family = correlation_family(p.wid_correlation());
  // Only factory-constructible families round-trip (powerexp carries a second
  // parameter the format does not store).
  try {
    (void)process::make_correlation(family, 1.0);
  } catch (const ConfigError&) {
    throw ContractViolation("correlation family '" + family + "' is not serializable");
  }
  os << "process " << p.length().mean_nm << ' ' << p.length().sigma_d2d_nm << ' '
     << p.length().sigma_wid_nm << ' ' << p.vt().sigma_v << ' ' << family << ' '
     << process::correlation_scale_nm(p.wid_correlation()) << ' ' << p.anisotropy().scale_x << ' '
     << p.anisotropy().scale_y << "\n";
  os << "cells " << chars.size() << "\n";
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    const CellChar& cc = chars.cell(ci);
    os << "cell " << chars.library().cell(ci).name() << ' ' << cc.states.size() << "\n";
    for (const StateChar& s : cc.states) {
      os << "state " << s.mean_na << ' ' << s.sigma_na;
      if (s.model) os << " model " << s.model->a << ' ' << s.model->b << ' ' << s.model->c;
      os << "\n";
    }
  }
}

void save_characterization(const CharacterizedLibrary& chars, const std::string& path) {
  RGLEAK_FAILPOINT("charlib.io.write");
  // Atomic write (temp file + rename): an interrupt or failure mid-write
  // never leaves a truncated characterization behind.
  util::atomic_write_file(path,
                          [&](std::ostream& os) { save_characterization(chars, os); });
}

CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library, std::istream& is,
                                           const std::string& source_name) {
  std::size_t line_no = 0;
  std::string line;
  const auto next_line = [&](const char* what) {
    RGLEAK_FAILPOINT("charlib.io.read_line");
    if (!std::getline(is, line)) {
      if (is.bad()) throw IoError("read failed: " + source_name);
      throw ParseError(source_name, line_no + 1, 0,
                       std::string("unexpected end of file, expected ") + what);
    }
    ++line_no;
  };
  const auto fail = [&](const std::string& msg, const std::string& token = "") -> void {
    throw ParseError(source_name, line_no, 0, msg, token);
  };

  next_line("the rgchar-v1 header");
  if (line != kMagic) fail("bad .rgchar header, expected 'rgchar-v1'", line);

  next_line("a process line");
  std::istringstream ps(line);
  std::string tag, family;
  process::LengthVariation len;
  process::VtVariation vt;
  double scale = 0.0;
  ps >> tag >> len.mean_nm >> len.sigma_d2d_nm >> len.sigma_wid_nm >> vt.sigma_v >> family >>
      scale;
  if (!ps || tag != "process") fail("bad process line", line);
  process::CorrelationAnisotropy aniso;
  // Optional trailing anisotropy pair (older files omit it).
  if (!(ps >> aniso.scale_x >> aniso.scale_y)) aniso = {};
  std::shared_ptr<const process::SpatialCorrelation> corr;
  try {
    corr = process::make_correlation(family, scale);
  } catch (const ConfigError&) {
    fail("unknown correlation family '" + family + "'", family);
  }
  process::ProcessVariation process(len, vt, std::move(corr), aniso);

  next_line("a cells line");
  std::istringstream cs(line);
  std::size_t count = 0;
  cs >> tag >> count;
  if (!cs || tag != "cells") fail("bad cells line, expected 'cells <count>'", line);
  if (count != library.size())
    fail("cell count " + std::to_string(count) + " does not match the target library (" +
         std::to_string(library.size()) + " cells)");

  std::vector<CellChar> cells(library.size());
  std::vector<bool> filled(library.size(), false);
  for (std::size_t i = 0; i < count; ++i) {
    next_line("a cell line");
    std::istringstream hs(line);
    std::string name;
    std::size_t states = 0;
    hs >> tag >> name >> states;
    if (!hs || tag != "cell") fail("bad cell line, expected 'cell <name> <states>'", line);
    if (!library.contains(name)) fail("unknown cell '" + name + "'", name);
    const std::size_t idx = library.index_of(name);
    if (filled[idx]) fail("duplicate cell entry '" + name + "'", name);
    if (states != library.cell(idx).num_states())
      fail("state count mismatch for cell " + name + " (file has " + std::to_string(states) +
               ", library expects " + std::to_string(library.cell(idx).num_states()) + ")",
           name);
    CellChar cc;
    cc.states.resize(states);
    for (std::size_t s = 0; s < states; ++s) {
      next_line("a state line");
      std::istringstream ss(line);
      StateChar st;
      ss >> tag >> st.mean_na >> st.sigma_na;
      if (!ss || tag != "state") fail("bad state line, expected 'state <mean> <sigma>'", line);
      std::string model_tag;
      if (ss >> model_tag) {
        if (model_tag != "model") fail("unexpected token on state line", model_tag);
        math::LogQuadraticModel m;
        ss >> m.a >> m.b >> m.c;
        if (!ss) fail("bad model triplet, expected 'model <a> <b> <c>'", line);
        st.model = m;
      }
      cc.states[s] = st;
    }
    cells[idx] = std::move(cc);
    filled[idx] = true;
  }
  return CharacterizedLibrary(&library, std::move(process), std::move(cells));
}

CharacterizedLibrary load_characterization(const cells::StdCellLibrary& library,
                                           const std::string& path) {
  RGLEAK_FAILPOINT("charlib.io.open");
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  return load_characterization(library, is, path);
}

}  // namespace rgleak::charlib
