#pragma once
// Signal-probability handling (section 2.1.4 / Fig. 3).
//
// The probability p that any logic signal is 1 modulates the per-cell input
// state distribution and hence the RG statistics. For large circuits the
// effect on total leakage is mild (law of large numbers over states), and the
// paper's conservative policy is: sweep p, pick the p that maximizes the RG
// mean leakage, and use it for both mean and sigma.

#include <vector>

#include "charlib/characterize.h"
#include "netlist/netlist.h"

namespace rgleak::core {

/// One point of the Fig.-3 sweep.
struct SignalProbabilityPoint {
  double p = 0.0;
  double rg_mean_na = 0.0;   ///< per-gate (RG) mean leakage
  double rg_sigma_na = 0.0;  ///< per-gate (RG) sigma
};

/// Sweeps p over [0, 1] with `points` samples and returns the RG mean/sigma
/// curve for the given usage distribution.
std::vector<SignalProbabilityPoint> sweep_signal_probability(
    const charlib::CharacterizedLibrary& chars, const netlist::UsageHistogram& usage,
    std::size_t points = 21);

/// The conservative setting: the p in the sweep that maximizes the RG mean.
double max_leakage_signal_probability(const charlib::CharacterizedLibrary& chars,
                                      const netlist::UsageHistogram& usage,
                                      std::size_t points = 41);

}  // namespace rgleak::core
