#pragma once
// Process-sensitivity analysis for design planning.
//
// "Which process knob moves my leakage spread?" — the estimator chain makes
// this cheap to answer: re-characterize at perturbed corners and difference
// the chip statistics. Central differences over the four first-order knobs:
// nominal length, D2D sigma, WID sigma, and the WID correlation length.
// Reported as relative sensitivities d(ln y)/d(ln x) so the knobs are
// comparable.

#include <string>
#include <vector>

#include "cells/library.h"
#include "core/estimate.h"
#include "netlist/netlist.h"
#include "process/variation.h"

namespace rgleak::core {

/// Sensitivity of the chip mean and sigma to one process parameter.
struct SensitivityEntry {
  std::string parameter;
  double base_value = 0.0;
  /// d(ln mean)/d(ln parameter) and d(ln sigma)/d(ln parameter).
  double mean_elasticity = 0.0;
  double sigma_elasticity = 0.0;
};

struct SensitivityOptions {
  /// Relative perturbation for the central differences.
  double step = 0.05;
  double signal_probability = 0.5;
};

/// Computes elasticities of the full-chip estimate (linear method on a
/// floorplan sized for `gate_count` at `site_pitch_nm`) with respect to the
/// process knobs. The correlation-length knob requires the WID model to be
/// one of the factory families (it is rebuilt by name at the scaled length).
std::vector<SensitivityEntry> process_sensitivities(
    const cells::StdCellLibrary& library, const process::ProcessVariation& base,
    const netlist::UsageHistogram& usage, std::size_t gate_count,
    double site_pitch_nm = 1500.0, const SensitivityOptions& options = {});

}  // namespace rgleak::core
