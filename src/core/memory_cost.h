#pragma once
// Per-method peak-memory cost models for the estimator ladder — the memory
// analogue of method_cost.h's wall-clock CostModel.
//
// Each rung of the ladder has a known arena structure: the direct exact path
// pins O(n) gate/offset tables, the FFT path pins per-type padded complex
// grids (the padding is a power of two >= 2n-1 per axis, so the constant is
// large), eq. (17) and the integrals are effectively O(1), and the MC engine
// pins one field sampler + FFT workspace + bucket scratch per worker. A
// MemoryCostModel predicts peak bytes for (method, sites) *before* running,
// so the admission layer can walk a job down the ladder — or tile MC worker
// counts — until the prediction fits the budget.
//
// Two prediction styles live here:
//  * structural helpers (exact_*_bytes, mc_bytes) compute the arena sizes
//    from the same formulas the arenas themselves use — these are what
//    estimators/MC actually charge against the MemoryBudget, so prediction
//    and charge agree by construction;
//  * the fitted per-rung model (predict_bytes) mirrors CostModel: a
//    conservative bytes-per-basis coefficient per rung, calibratable from
//    bench JSON records carrying "budget_peak_bytes" or "peak_rss_kb"
//    (see bench_full_chip_mc --mc-json / bench_scaling --exact-json).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace rgleak::core {

/// One rung's memory scaling law: bytes ≈ coeff_bytes * basis(n).
struct MethodMemoryModel {
  enum class Basis { kConstant, kLinear, kNLogN, kQuadratic };
  Basis basis = Basis::kConstant;
  double coeff_bytes = 0.0;

  double basis_value(std::size_t sites) const;
  std::uint64_t predict_bytes(std::size_t sites) const {
    return static_cast<std::uint64_t>(coeff_bytes * basis_value(sites));
  }
};

/// Rung names understood by the model: "exact_direct", "exact_fft",
/// "linear", "integral_rect", "integral_polar", and "mc" (per worker
/// thread — admission multiplies by the thread count).
class MemoryCostModel {
 public:
  /// Built-in conservative coefficients: deliberately generous so an
  /// uncalibrated model degrades too eagerly rather than admit an OOM.
  static MemoryCostModel defaults();

  /// defaults() tightened by a bench JSON record whose entries carry
  /// "method", "sites", and one of "budget_peak_bytes" (preferred) or
  /// "peak_rss_kb". Entries without a memory field are skipped (wall-clock
  /// records share the files). Throws IoError on an unreadable file and
  /// ParseError when the file has no "records" array.
  static MemoryCostModel from_bench_json(const std::string& path);

  /// Folds one measurement in: the rung coefficient becomes
  /// max(existing fit, bytes / basis(sites)) — conservative-max, same
  /// discipline as CostModel. Unknown method names are ignored.
  void calibrate(const std::string& method, std::size_t sites, std::uint64_t bytes);

  /// Predicted peak bytes of `method` at `sites` sites; UINT64_MAX for
  /// unknown names (treated as "does not fit").
  std::uint64_t predict_bytes(const std::string& method, std::size_t sites) const;

  // ---- structural arena formulas (what the code actually charges) ----

  /// Arenas of ExactEstimator::estimate_direct: gate type/row/col tables,
  /// the per-offset rho grid, and the tile partials.
  static std::uint64_t exact_direct_bytes(std::size_t gates, std::size_t rows, std::size_t cols);

  /// Arenas of ExactEstimator::estimate_fft: per-type occupancy grids and
  /// padded forward transforms (padding next_pow2(2n-1) per axis), transform
  /// scratch, the correlation output, and the rho/cov offset grids. `types`
  /// is the number of distinct cell types placed (pass the library size for
  /// a conservative preflight).
  static std::uint64_t exact_fft_bytes(std::size_t rows, std::size_t cols, std::size_t types);

  /// Per-worker arenas of the MC engine: the worker's field-sampler copy
  /// (eigenvalue table + spare-field cache on the padded grid), FFT
  /// workspace, WID field buffer, and (site, table) bucket scratch.
  /// `padded_rows/cols` come from GridFieldSampler::padded_dim (or the
  /// sampler's accessors once built).
  static std::uint64_t mc_worker_bytes(std::size_t padded_rows, std::size_t padded_cols,
                                       std::size_t rows, std::size_t cols, std::size_t gates);

 private:
  struct Entry {
    MethodMemoryModel model;
    double calibrated_coeff_bytes = 0.0;
  };
  std::map<std::string, Entry> rungs_;
};

}  // namespace rgleak::core
