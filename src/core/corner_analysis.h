#pragma once
// Multi-corner leakage sign-off: evaluate the full-chip estimate across
// process/temperature corners (systematic channel-length shift x junction
// temperature), the table a power-signoff flow reads. Leakage is worst at
// the fast (short-L) hot corner — the classic FF/110C.

#include <functional>
#include <string>
#include <vector>

#include "cells/library.h"
#include "core/estimate.h"
#include "netlist/netlist.h"
#include "process/variation.h"

namespace rgleak::core {

/// One process/temperature corner: a systematic shift of the nominal channel
/// length (negative = fast/short) and a junction temperature.
struct ProcessCorner {
  std::string name;
  double delta_l_nm = 0.0;
  double temperature_c = 25.0;
};

/// The classic 6-corner set: {SS, TT, FF} x {25C, 110C}, with +/- 1 sigma_dd
/// systematic L shifts.
std::vector<ProcessCorner> standard_corners(double sigma_shift_nm);

struct CornerResult {
  ProcessCorner corner;
  LeakageEstimate estimate;
};

struct CornerAnalysisOptions {
  double signal_probability = 0.5;
  double site_pitch_nm = 1500.0;
  /// Rebuilds the library for a corner's technology parameters. Defaults to
  /// the virtual 90 nm builder.
  std::function<cells::StdCellLibrary(const device::TechnologyParams&)> library_factory;
};

/// Runs the constant-inputs estimate at every corner. The corner shifts the
/// process mean length and re-targets the device model to the corner
/// temperature; statistical sigmas are unchanged (corner = systematic shift).
std::vector<CornerResult> analyze_corners(const device::TechnologyParams& base_tech,
                                          const process::ProcessVariation& base_process,
                                          const netlist::UsageHistogram& usage,
                                          std::size_t gate_count,
                                          const std::vector<ProcessCorner>& corners,
                                          const CornerAnalysisOptions& options = {});

/// The corner with the largest mean + 3 sigma (the sign-off number).
const CornerResult& worst_corner(const std::vector<CornerResult>& results);

}  // namespace rgleak::core
