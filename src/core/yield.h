#pragma once
// Leakage yield analysis on top of the RG estimates.
//
// The estimators deliver the first two moments of total chip leakage. For
// sign-off questions ("what fraction of dies exceeds the leakage budget?",
// "what is the 99th-percentile leakage?") a distribution shape is needed.
// Chip leakage is dominated by shared (D2D + long-range WID) variation acting
// through an exponential, so a moment-matched log-normal is the standard
// model ([Rao'04]); a normal model is provided for comparison (it
// underestimates the upper tail).

#include "core/estimate.h"

namespace rgleak::core {

enum class LeakageDistribution {
  kLognormal,  ///< moment-matched log-normal (recommended)
  kNormal,     ///< moment-matched normal (tail underestimate, for reference)
};

/// Distribution model fitted to a LeakageEstimate by moment matching.
class LeakageYieldModel {
 public:
  /// Requires mean > 0 and sigma >= 0.
  LeakageYieldModel(const LeakageEstimate& estimate,
                    LeakageDistribution shape = LeakageDistribution::kLognormal);

  /// P(total leakage <= budget_na).
  double cdf(double budget_na) const;
  /// Leakage yield: fraction of dies within budget (== cdf).
  double yield(double budget_na) const { return cdf(budget_na); }
  /// Inverse CDF: the leakage value not exceeded with probability q in (0,1).
  double quantile(double q) const;

  LeakageDistribution shape() const { return shape_; }
  const LeakageEstimate& estimate() const { return estimate_; }

 private:
  LeakageEstimate estimate_;
  LeakageDistribution shape_;
  double mu_ln_ = 0.0, sigma_ln_ = 0.0;  // log-normal parameters
};

/// Standard normal CDF.
double normal_cdf(double z);
/// Inverse standard normal CDF (Acklam/Moro-style rational approximation,
/// |error| < 1.2e-9). Requires q in (0, 1).
double normal_quantile(double q);

}  // namespace rgleak::core
