#include "core/random_gate.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

RandomGate::RandomGate(const charlib::CharacterizedLibrary& chars,
                       const netlist::UsageHistogram& usage, double signal_probability,
                       CorrelationMode mode)
    : process_(chars.process()), mode_(mode) {
  usage.validate();
  std::vector<charlib::RgComponent> components =
      charlib::make_rg_components(chars, usage.alphas, signal_probability);
  if (mode == CorrelationMode::kAnalytic) {
    RGLEAK_REQUIRE(chars.has_models(),
                   "analytic correlation mode needs an analytically characterized library");
    cov_ = std::make_shared<charlib::AnalyticRgCovariance>(
        std::move(components), process_.length().mean_nm, process_.length().sigma_total_nm());
  } else {
    cov_ = std::make_shared<charlib::SimplifiedRgCovariance>(components);
  }
  covariance_floor_ = cov_->covariance(process_.length().d2d_variance_fraction());
}

double RandomGate::sigma_na() const {
  const double v = variance_na2();
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

double RandomGate::covariance_at_distance(double d_nm) const {
  RGLEAK_REQUIRE(d_nm >= 0.0, "distance must be non-negative");
  if (d_nm == 0.0) return variance_na2();
  return cov_->covariance(process_.total_length_correlation(d_nm));
}

double RandomGate::covariance_at_offset(double dx_nm, double dy_nm) const {
  if (dx_nm == 0.0 && dy_nm == 0.0) return variance_na2();
  return cov_->covariance(process_.total_length_correlation_xy(dx_nm, dy_nm));
}

double RandomGate::correlation_at_distance(double d_nm) const {
  const double v = variance_na2();
  RGLEAK_REQUIRE(v > 0.0, "RG has zero variance");
  return covariance_at_distance(d_nm) / v;
}

}  // namespace rgleak::core
