#include "core/corner_analysis.h"

#include "charlib/characterize.h"
#include "core/estimators.h"
#include "core/random_gate.h"
#include "util/require.h"

namespace rgleak::core {

std::vector<ProcessCorner> standard_corners(double sigma_shift_nm) {
  RGLEAK_REQUIRE(sigma_shift_nm >= 0.0, "corner shift must be non-negative");
  std::vector<ProcessCorner> corners;
  for (const auto& [proc, dl] : std::vector<std::pair<std::string, double>>{
           {"SS", +sigma_shift_nm}, {"TT", 0.0}, {"FF", -sigma_shift_nm}}) {
    for (const double t_c : {25.0, 110.0}) {
      ProcessCorner c;
      c.name = proc + "/" + (t_c < 50.0 ? "25C" : "110C");
      c.delta_l_nm = dl;
      c.temperature_c = t_c;
      corners.push_back(c);
    }
  }
  return corners;
}

std::vector<CornerResult> analyze_corners(const device::TechnologyParams& base_tech,
                                          const process::ProcessVariation& base_process,
                                          const netlist::UsageHistogram& usage,
                                          std::size_t gate_count,
                                          const std::vector<ProcessCorner>& corners,
                                          const CornerAnalysisOptions& options) {
  RGLEAK_REQUIRE(!corners.empty(), "corner analysis needs at least one corner");
  usage.validate();
  auto factory = options.library_factory;
  if (!factory)
    factory = [](const device::TechnologyParams& t) { return cells::build_virtual90_library(t); };

  const placement::Floorplan fp = placement::Floorplan::for_gate_count(
      gate_count, options.site_pitch_nm, options.site_pitch_nm);

  std::vector<CornerResult> results;
  results.reserve(corners.size());
  for (const ProcessCorner& corner : corners) {
    const device::TechnologyParams tech =
        device::at_temperature(base_tech, corner.temperature_c + 273.15);
    const cells::StdCellLibrary lib = factory(tech);

    process::LengthVariation len = base_process.length();
    len.mean_nm += corner.delta_l_nm;
    RGLEAK_REQUIRE(len.mean_nm > 0.0, "corner shift drives nominal length non-positive");
    const process::ProcessVariation process(len, base_process.vt(),
                                            base_process.wid_correlation_ptr(),
                                            base_process.anisotropy());

    const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);
    const RandomGate rg(chars, usage, options.signal_probability,
                        CorrelationMode::kAnalytic);
    CornerResult r;
    r.corner = corner;
    r.estimate = estimate_linear(rg, fp);
    results.push_back(std::move(r));
  }
  return results;
}

const CornerResult& worst_corner(const std::vector<CornerResult>& results) {
  RGLEAK_REQUIRE(!results.empty(), "no corner results");
  const CornerResult* worst = &results.front();
  for (const auto& r : results) {
    const double budget = r.estimate.mean_na + 3.0 * r.estimate.sigma_na;
    const double worst_budget = worst->estimate.mean_na + 3.0 * worst->estimate.sigma_na;
    if (budget > worst_budget) worst = &r;
  }
  return *worst;
}

}  // namespace rgleak::core
