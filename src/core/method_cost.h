#pragma once
// Per-method wall-clock cost models for the estimator ladder.
//
// Each rung of the paper's accuracy-vs-cost ladder has a known complexity in
// the site count n: the exact pairwise sum is O(n^2) (direct) or
// O(T^2 n log n) (FFT offset histogram), eq. (17) is O(n), and the integral
// forms (eq. 20, eqs. 25/26) are O(1). A CostModel carries one fitted
// coefficient per rung, so a budgeted estimator can predict, *before*
// running, whether a method fits its remaining time budget and walk down the
// ladder when it would not.
//
// Coefficients ship with conservative built-in defaults and can be
// calibrated from a BENCH_exact_estimator.json-style perf record
// ({"sites": N, "method": "...", "wall_ms": X} rows, see
// bench_scaling --exact-json), which pins the model to the actual host.

#include <cstddef>
#include <map>
#include <string>

namespace rgleak::core {

/// One rung's scaling law: wall_ms ≈ coeff_ms * basis(n).
struct MethodCostModel {
  enum class Basis { kConstant, kLinear, kNLogN, kQuadratic };
  Basis basis = Basis::kConstant;
  double coeff_ms = 0.0;

  double basis_value(std::size_t sites) const;
  double predict_ms(std::size_t sites) const { return coeff_ms * basis_value(sites); }
};

/// Rung names understood by the model (and reported in LeakageEstimate):
/// "exact_direct", "exact_fft", "linear", "integral_rect", "integral_polar".
class CostModel {
 public:
  /// Built-in conservative coefficients (commodity-core magnitudes, rounded
  /// up; calibration tightens them).
  static CostModel defaults();

  /// defaults() tightened by a BENCH_exact_estimator.json-style record.
  /// Recognizes the bench method names ("direct_serial" is ignored,
  /// "direct_parallel" calibrates exact_direct, "fft" calibrates exact_fft)
  /// as well as the rung names themselves. Throws IoError / ParseError on an
  /// unreadable or malformed record.
  static CostModel from_bench_json(const std::string& path);

  /// Folds one measurement into the model: the rung's coefficient becomes
  /// max(existing fit, wall_ms / basis(sites)) — conservative, so a budget
  /// decision never trusts the fastest outlier. Unknown names are ignored.
  void calibrate(const std::string& method, std::size_t sites, double wall_ms);

  /// Predicted wall time of `method` at `sites` sites; +infinity for names
  /// the model does not know (callers treat unknown as "does not fit").
  double predict_ms(const std::string& method, std::size_t sites) const;

 private:
  // Per rung: the shipped default and the largest calibrated coefficient so
  // far (0 until a measurement arrives).
  struct Entry {
    MethodCostModel model;
    double calibrated_coeff_ms = 0.0;
  };
  std::map<std::string, Entry> rungs_;
};

}  // namespace rgleak::core
