#pragma once
// Connectivity-aware exact estimator.
//
// The paper's estimators use one global signal probability. With netlist
// connectivity available, per-net probabilities can be propagated and every
// gate gets its own input-state distribution; this estimator computes the
// exact O(n^2) statistics under those per-gate distributions. Comparing it
// against the global-p ExactEstimator quantifies what the section-2.1.4
// ball-park assumption costs on real(istic) topologies
// (bench_signal_propagation).

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/estimate.h"
#include "core/random_gate.h"
#include "netlist/connectivity.h"
#include "placement/placement.h"

namespace rgleak::core {

class ConnectivityAwareEstimator {
 public:
  ConnectivityAwareEstimator(const charlib::CharacterizedLibrary& chars, CorrelationMode mode);

  /// Exact pairwise estimate of the connected netlist placed row-major on
  /// `fp` (gate g at site g), with primary inputs at `input_probability` and
  /// per-gate state distributions from probability propagation.
  LeakageEstimate estimate(const netlist::ConnectedNetlist& netlist,
                           const placement::Floorplan& fp, double input_probability) const;

 private:
  const charlib::CharacterizedLibrary* chars_;
  CorrelationMode mode_;

  // Analytic mode: product-moment rho grids per (cell,state)x(cell,state).
  static constexpr std::size_t kRhoGrid = 33;
  mutable std::unordered_map<std::uint64_t, std::vector<double>> product_grid_;

  const std::vector<double>& product_grid(std::size_t cell_a, std::uint32_t state_a,
                                          std::size_t cell_b, std::uint32_t state_b) const;
};

}  // namespace rgleak::core
