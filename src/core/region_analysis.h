#pragma once
// Regional (tile-level) leakage statistics on the RG array.
//
// The full-chip variance transformation of eq. (17) generalizes to
// rectangular sub-regions: the number of site pairs between two column
// intervals [0, m') and [D, D+m') at column offset delta is the
// cross-correlation of their indicator functions, m' - |delta - D| (and
// likewise for rows). This gives exact O(tile-size) covariances between any
// two tiles of a regular tiling — the machinery behind leakage maps and
// power-grid budgeting, with the same inputs as the full-chip estimate.

#include <vector>

#include "core/estimate.h"
#include "core/random_gate.h"
#include "math/linalg.h"
#include "placement/placement.h"

namespace rgleak::core {

/// Exact tile-level statistics of an RG array partitioned into
/// tiles_x x tiles_y equal tiles. Requires the floorplan's cols/rows to be
/// divisible by tiles_x/tiles_y.
class RegionAnalysis {
 public:
  RegionAnalysis(const RandomGate* rg, placement::Floorplan floorplan, std::size_t tiles_x,
                 std::size_t tiles_y);

  std::size_t tiles_x() const { return tiles_x_; }
  std::size_t tiles_y() const { return tiles_y_; }
  /// Sites per tile.
  std::size_t tile_sites() const { return tile_cols_ * tile_rows_; }

  /// Leakage estimate of one tile (identical for all tiles of the regular
  /// tiling; exposed per-tile for API symmetry).
  LeakageEstimate tile_estimate() const;

  /// Exact covariance (nA^2) between the total leakages of tiles
  /// (tx1, ty1) and (tx2, ty2).
  double tile_covariance(std::size_t tx1, std::size_t ty1, std::size_t tx2,
                         std::size_t ty2) const;

  /// Correlation between two tiles' totals.
  double tile_correlation(std::size_t tx1, std::size_t ty1, std::size_t tx2,
                          std::size_t ty2) const;

  /// Full covariance matrix over tiles, row-major in (ty * tiles_x + tx).
  math::Matrix covariance_matrix() const;

  /// Chip-level estimate reassembled from the tile decomposition; equals the
  /// direct eq.-(17) estimate on the full floorplan (validated in tests).
  LeakageEstimate chip_estimate() const;

 private:
  const RandomGate* rg_;
  placement::Floorplan fp_;
  std::size_t tiles_x_, tiles_y_;
  std::size_t tile_cols_, tile_rows_;

  double pair_sum(long long col_offset_sites, long long row_offset_sites) const;
};

}  // namespace rgleak::core
