#include "core/signal_probability.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

namespace {

SignalProbabilityPoint rg_stats_at(const charlib::CharacterizedLibrary& chars,
                                   const netlist::UsageHistogram& usage, double p) {
  double mean = 0.0, second = 0.0;
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    if (usage.alphas[ci] == 0.0) continue;
    const std::vector<double> sp = chars.state_probabilities(ci, p);
    const charlib::EffectiveCellStats eff = chars.effective(ci, sp);
    mean += usage.alphas[ci] * eff.mean_na;
    second += usage.alphas[ci] * (eff.sigma_na * eff.sigma_na + eff.mean_na * eff.mean_na);
  }
  SignalProbabilityPoint pt;
  pt.p = p;
  pt.rg_mean_na = mean;
  const double var = second - mean * mean;
  pt.rg_sigma_na = var > 0.0 ? std::sqrt(var) : 0.0;
  return pt;
}

}  // namespace

std::vector<SignalProbabilityPoint> sweep_signal_probability(
    const charlib::CharacterizedLibrary& chars, const netlist::UsageHistogram& usage,
    std::size_t points) {
  RGLEAK_REQUIRE(points >= 2, "sweep needs at least two points");
  usage.validate();
  RGLEAK_REQUIRE(usage.alphas.size() == chars.size(), "histogram/library size mismatch");
  std::vector<SignalProbabilityPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points - 1);
    curve.push_back(rg_stats_at(chars, usage, p));
  }
  return curve;
}

double max_leakage_signal_probability(const charlib::CharacterizedLibrary& chars,
                                      const netlist::UsageHistogram& usage, std::size_t points) {
  const auto curve = sweep_signal_probability(chars, usage, points);
  double best_p = curve.front().p;
  double best_mean = curve.front().rg_mean_na;
  for (const auto& pt : curve) {
    if (pt.rg_mean_na > best_mean) {
      best_mean = pt.rg_mean_na;
      best_p = pt.p;
    }
  }
  return best_p;
}

}  // namespace rgleak::core
