#include "core/sensitivity.h"

#include <cmath>
#include <functional>

#include "charlib/characterize.h"
#include "core/estimators.h"
#include "core/random_gate.h"
#include "util/require.h"

namespace rgleak::core {

namespace {

LeakageEstimate estimate_at(const cells::StdCellLibrary& library,
                            const process::ProcessVariation& process,
                            const netlist::UsageHistogram& usage, std::size_t gate_count,
                            double pitch, double signal_probability) {
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);
  const RandomGate rg(chars, usage, signal_probability, CorrelationMode::kAnalytic);
  return estimate_linear(rg, placement::Floorplan::for_gate_count(gate_count, pitch, pitch));
}

}  // namespace

std::vector<SensitivityEntry> process_sensitivities(
    const cells::StdCellLibrary& library, const process::ProcessVariation& base,
    const netlist::UsageHistogram& usage, std::size_t gate_count, double site_pitch_nm,
    const SensitivityOptions& options) {
  RGLEAK_REQUIRE(options.step > 0.0 && options.step < 0.5, "step must be in (0, 0.5)");
  usage.validate();

  const double h = options.step;
  const double dlogx = std::log(1.0 + h) - std::log(1.0 - h);

  // Rebuilds a process with one knob scaled by `factor`.
  const std::string family = base.wid_correlation().name();
  const double base_scale = process::correlation_scale_nm(base.wid_correlation());
  const auto perturbed = [&](const std::string& knob,
                             double factor) -> process::ProcessVariation {
    process::LengthVariation len = base.length();
    double scale = base_scale;
    if (knob == "mean_l") len.mean_nm *= factor;
    if (knob == "sigma_d2d") len.sigma_d2d_nm *= factor;
    if (knob == "sigma_wid") len.sigma_wid_nm *= factor;
    if (knob == "corr_length") scale *= factor;
    return process::ProcessVariation(len, base.vt(),
                                     process::make_correlation(family, scale),
                                     base.anisotropy());
  };

  struct Knob {
    const char* name;
    double base_value;
  };
  const std::vector<Knob> knobs = {
      {"mean_l", base.length().mean_nm},
      {"sigma_d2d", base.length().sigma_d2d_nm},
      {"sigma_wid", base.length().sigma_wid_nm},
      {"corr_length", base_scale},
  };

  std::vector<SensitivityEntry> out;
  for (const Knob& knob : knobs) {
    if (knob.base_value == 0.0) continue;  // elasticity undefined
    const LeakageEstimate up = estimate_at(library, perturbed(knob.name, 1.0 + h), usage,
                                           gate_count, site_pitch_nm,
                                           options.signal_probability);
    const LeakageEstimate down = estimate_at(library, perturbed(knob.name, 1.0 - h), usage,
                                             gate_count, site_pitch_nm,
                                             options.signal_probability);
    SensitivityEntry e;
    e.parameter = knob.name;
    e.base_value = knob.base_value;
    e.mean_elasticity = (std::log(up.mean_na) - std::log(down.mean_na)) / dlogx;
    e.sigma_elasticity = (std::log(up.sigma_na) - std::log(down.sigma_na)) / dlogx;
    out.push_back(e);
  }
  return out;
}

}  // namespace rgleak::core
