#pragma once
// Top-level facade: the block diagram of Fig. 1. Given the process, the
// characterized library, and the high-level design characteristics —
// (expected or extracted) usage histogram, gate count, and layout dimensions
// — produce the full-chip leakage mean and sigma with the configured
// estimator.

#include <cstddef>
#include <optional>

#include "core/estimate.h"
#include "core/estimators.h"
#include "core/random_gate.h"
#include "core/signal_probability.h"

namespace rgleak::core {

/// The four high-level characteristics of section 2.2 (the library itself is
/// carried by the CharacterizedLibrary).
struct DesignCharacteristics {
  netlist::UsageHistogram usage;
  std::size_t gate_count = 0;
  double width_nm = 0.0;
  double height_nm = 0.0;
};

/// Which estimator evaluates the RG-array variance.
enum class EstimationMethod {
  kLinear,        ///< eq. (17), O(n)
  kIntegralRect,  ///< eq. (20), O(1)
  kIntegralPolar, ///< eqs (25)/(26), O(1)
  kAuto,          ///< linear below 10k gates, polar above (paper's suggestion)
};

struct EstimatorConfig {
  /// Fixed signal probability; ignored when maximize_signal_probability.
  double signal_probability = 0.5;
  /// Use the conservative max-mean setting of section 2.1.4.
  bool maximize_signal_probability = true;
  CorrelationMode correlation_mode = CorrelationMode::kAnalytic;
  EstimationMethod method = EstimationMethod::kAuto;
  /// Apply the random-Vt multiplicative mean correction.
  bool apply_vt_mean_factor = true;
};

/// Builds the k x m RG floorplan matching a design's gate count and layout
/// dimensions (rows/cols chosen so sites tile W x H and rows*cols >= n, as
/// close to n as possible).
placement::Floorplan floorplan_for_design(const DesignCharacteristics& design);

class LeakageEstimator {
 public:
  LeakageEstimator(const charlib::CharacterizedLibrary& chars, EstimatorConfig config = {});

  /// Full-chip mean/sigma for a candidate design (early or late mode).
  LeakageEstimate estimate(const DesignCharacteristics& design) const;

  /// The RG constructed for a design (exposed for validation/benchmarks).
  RandomGate make_random_gate(const netlist::UsageHistogram& usage) const;

  /// Signal probability that would be used for this usage distribution.
  double resolve_signal_probability(const netlist::UsageHistogram& usage) const;

  const EstimatorConfig& config() const { return config_; }

 private:
  const charlib::CharacterizedLibrary* chars_;
  EstimatorConfig config_;
};

}  // namespace rgleak::core
