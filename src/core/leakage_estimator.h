#pragma once
// Top-level facade: the block diagram of Fig. 1. Given the process, the
// characterized library, and the high-level design characteristics —
// (expected or extracted) usage histogram, gate count, and layout dimensions
// — produce the full-chip leakage mean and sigma with the configured
// estimator.

#include <cstddef>
#include <optional>

#include "core/estimate.h"
#include "core/estimators.h"
#include "core/method_cost.h"
#include "core/random_gate.h"
#include "core/signal_probability.h"
#include "util/run_control.h"

namespace rgleak::core {

/// The four high-level characteristics of section 2.2 (the library itself is
/// carried by the CharacterizedLibrary).
struct DesignCharacteristics {
  netlist::UsageHistogram usage;
  std::size_t gate_count = 0;
  double width_nm = 0.0;
  double height_nm = 0.0;
};

/// Which estimator evaluates the RG-array variance.
enum class EstimationMethod {
  kLinear,        ///< eq. (17), O(n)
  kIntegralRect,  ///< eq. (20), O(1)
  kIntegralPolar, ///< eqs (25)/(26), O(1)
  kAuto,          ///< linear below 10k gates, polar above (paper's suggestion)
};

struct EstimatorConfig {
  /// Fixed signal probability; ignored when maximize_signal_probability.
  double signal_probability = 0.5;
  /// Use the conservative max-mean setting of section 2.1.4.
  bool maximize_signal_probability = true;
  CorrelationMode correlation_mode = CorrelationMode::kAnalytic;
  EstimationMethod method = EstimationMethod::kAuto;
  /// Apply the random-Vt multiplicative mean correction.
  bool apply_vt_mean_factor = true;
  /// Wall-clock budget for one estimate() call, seconds; 0 = unlimited. With
  /// a budget set, the estimator walks the accuracy ladder downward
  /// (linear, eq. 17 → integral, eqs. 20/25) whenever `cost_model` predicts
  /// the requested rung would blow the budget — and a mispredicted rung is
  /// cancelled by the armed deadline and answered by the next one. The
  /// result records the rung that answered and why it degraded.
  double time_budget_s = 0.0;
  /// Cost models behind the budget decisions; calibrate from a bench record
  /// via CostModel::from_bench_json to pin them to the host.
  CostModel cost_model = CostModel::defaults();
  /// External stop source (SIGINT handler, batch watchdog): polled by the
  /// linear rung, and linked as the parent of the budgeted path's internal
  /// deadline, so an outer cancellation stops an estimate mid-rung.
  const util::RunControl* run = nullptr;
};

/// Builds the k x m RG floorplan matching a design's gate count and layout
/// dimensions (rows/cols chosen so sites tile W x H and rows*cols >= n, as
/// close to n as possible).
placement::Floorplan floorplan_for_design(const DesignCharacteristics& design);

class LeakageEstimator {
 public:
  LeakageEstimator(const charlib::CharacterizedLibrary& chars, EstimatorConfig config = {});

  /// Full-chip mean/sigma for a candidate design (early or late mode).
  LeakageEstimate estimate(const DesignCharacteristics& design) const;

  /// The RG constructed for a design (exposed for validation/benchmarks).
  RandomGate make_random_gate(const netlist::UsageHistogram& usage) const;

  /// Signal probability that would be used for this usage distribution.
  double resolve_signal_probability(const netlist::UsageHistogram& usage) const;

  const EstimatorConfig& config() const { return config_; }

 private:
  const charlib::CharacterizedLibrary* chars_;
  EstimatorConfig config_;

  LeakageEstimate estimate_budgeted(const placement::Floorplan& fp, const RandomGate& rg,
                                    EstimationMethod requested) const;
};

/// Budgeted estimate of a *placed* design: the full degradation ladder of the
/// paper. Runs the exact pairwise analysis (eq. 14/15, FFT or direct per
/// `opts`) when the cost model predicts it fits `budget_s`, else falls back
/// to the distance histogram (eq. 17), else to the integral forms
/// (eqs. 20/25). A rung that overruns its prediction is cancelled by the
/// armed deadline and the next rung answers; the last rung (O(1) integral)
/// always answers. The result names the rung and the degradation reason.
/// `parent`, when given, is linked as the parent of the ladder's internal
/// deadline control, so an external stop (SIGINT, a batch watchdog) cancels
/// the running rung; the ladder still answers with the O(1) integral.
LeakageEstimate estimate_placed_budgeted(const ExactEstimator& exact, const RandomGate& rg,
                                         const placement::Placement& placement, double budget_s,
                                         const CostModel& costs, ExactOptions opts = {},
                                         const util::RunControl* parent = nullptr);

}  // namespace rgleak::core
