#include "core/estimators.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

LeakageEstimate estimate_linear(const RandomGate& rg, const placement::Floorplan& fp) {
  const std::size_t k = fp.rows, m = fp.cols;
  const double n = static_cast<double>(fp.num_sites());
  double var = 0.0;
  // Signed offsets (i, j) folded to i, j >= 0 with multiplicity 2 per nonzero
  // axis; n_ij = (m - i)(k - j) occurrences per signed offset (eq. (16)).
  for (std::size_t i = 0; i < m; ++i) {
    const double wx = (i == 0 ? 1.0 : 2.0) * static_cast<double>(m - i);
    const double dx = static_cast<double>(i) * fp.site_w_nm;
    for (std::size_t j = 0; j < k; ++j) {
      const double wy = (j == 0 ? 1.0 : 2.0) * static_cast<double>(k - j);
      const double dy = static_cast<double>(j) * fp.site_h_nm;
      var += wx * wy * rg.covariance_at_offset(dx, dy);
    }
  }
  LeakageEstimate e;
  e.mean_na = n * rg.mean_na();
  e.sigma_na = std::sqrt(var);
  return e;
}

LeakageEstimate estimate_integral_rect(const RandomGate& rg, const placement::Floorplan& fp,
                                       const math::QuadratureOptions& opts) {
  const double w = fp.width_nm(), h = fp.height_nm();
  const double n = static_cast<double>(fp.num_sites());
  const double area = fp.area_nm2();
  // Eq. (20): 4 n^2/A^2 * int_0^W int_0^H (W-x)(H-y) C(sqrt(x^2+y^2)) dy dx,
  // with C(r) = sigma_XI^2 rho_XI(r) = F(rho_L(r)).
  const double integral = math::integrate_2d_adaptive(
      [&](double x, double y) { return (w - x) * (h - y) * rg.covariance_at_offset(x, y); },
      0.0, w, 0.0, h, opts);
  LeakageEstimate e;
  e.mean_na = n * rg.mean_na();
  e.sigma_na = std::sqrt(std::max(0.0, 4.0 * n * n / (area * area) * integral));
  return e;
}

LeakageEstimate estimate_integral_polar(const RandomGate& rg, const placement::Floorplan& fp,
                                        const math::QuadratureOptions& opts, bool* used_polar) {
  const double w = fp.width_nm(), h = fp.height_nm();
  const double d_max = rg.process().wid_correlation_range_nm();
  if (d_max >= std::min(w, h) || !rg.process().is_isotropic()) {
    // Validity conditions of section 3.2.2 not met (the polar reduction
    // additionally needs an isotropic kernel); use the 2-D form.
    if (used_polar != nullptr) *used_polar = false;
    return estimate_integral_rect(rg, fp, opts);
  }
  if (used_polar != nullptr) *used_polar = true;

  const double n = static_cast<double>(fp.num_sites());
  const double area = fp.area_nm2();
  const double c_floor = rg.covariance_floor_na2();

  // g(r) of eq. (24): the analytic angular integral.
  const auto g = [&](double r) { return 0.5 * r * r - (w + h) * r + 0.5 * M_PI * w * h; };
  // Eq. (26): split C(r) into a constant D2D part and a compact-support part.
  const double integral = math::integrate_adaptive(
      [&](double r) { return (rg.covariance_at_distance(r) - c_floor) * r * g(r); }, 0.0, d_max,
      opts);

  LeakageEstimate e;
  e.mean_na = n * rg.mean_na();
  const double var = 4.0 * n * n / (area * area) * integral + n * n * c_floor;
  e.sigma_na = std::sqrt(std::max(0.0, var));
  return e;
}

ExactEstimator::ExactEstimator(const charlib::CharacterizedLibrary& chars,
                               double signal_probability, CorrelationMode mode)
    : chars_(&chars), signal_probability_(signal_probability), mode_(mode) {
  num_types_ = chars.size();
  effective_.resize(num_types_);
  proc_sigma_.resize(num_types_);
  state_probs_.resize(num_types_);
  for (std::size_t i = 0; i < num_types_; ++i) {
    state_probs_[i] = chars.state_probabilities(i, signal_probability);
    effective_[i] = chars.effective(i, state_probs_[i]);
    // State-weighted process sigma: the component of spread that is shared
    // through L (state choice is independent across gates and must not enter
    // cross covariances; cf. eq. (10)).
    double ps = 0.0;
    for (std::size_t s = 0; s < state_probs_[i].size(); ++s)
      ps += state_probs_[i][s] * chars.cell(i).states[s].sigma_na;
    proc_sigma_[i] = ps;
  }
  if (mode_ == CorrelationMode::kAnalytic) {
    RGLEAK_REQUIRE(chars.has_models(),
                   "analytic correlation mode needs an analytically characterized library");
    pair_grid_.resize(num_types_ * num_types_);
  }
}

double ExactEstimator::exact_pair_covariance(std::size_t m, std::size_t n, double rho_l) const {
  const double mu_l = chars_->process().length().mean_nm;
  const double sigma_l = chars_->process().length().sigma_total_nm();
  const auto& cm = chars_->cell(m);
  const auto& cn = chars_->cell(n);
  double cov = 0.0;
  for (std::size_t sm = 0; sm < cm.states.size(); ++sm) {
    const double pm = state_probs_[m][sm];
    if (pm == 0.0) continue;
    for (std::size_t sn = 0; sn < cn.states.size(); ++sn) {
      const double pn = state_probs_[n][sn];
      if (pn == 0.0) continue;
      cov += pm * pn *
             (charlib::pair_product_expectation(*cm.states[sm].model, *cn.states[sn].model, mu_l,
                                                sigma_l, rho_l) -
              cm.states[sm].mean_na * cn.states[sn].mean_na);
    }
  }
  return cov;
}

const std::vector<double>& ExactEstimator::pair_grid(std::size_t m, std::size_t n) const {
  auto& slot = pair_grid_[m * num_types_ + n];
  if (!slot) {
    std::vector<double> grid(kRhoGrid);
    for (std::size_t i = 0; i < kRhoGrid; ++i) {
      const double rho = static_cast<double>(i) / static_cast<double>(kRhoGrid - 1);
      grid[i] = exact_pair_covariance(m, n, rho);
    }
    slot = std::move(grid);
    if (m != n) pair_grid_[n * num_types_ + m] = slot;  // symmetric
  }
  return *slot;
}

double ExactEstimator::type_covariance(std::size_t type_m, std::size_t type_n,
                                       double rho_l) const {
  RGLEAK_REQUIRE(type_m < num_types_ && type_n < num_types_, "cell type out of range");
  RGLEAK_REQUIRE(rho_l >= 0.0 && rho_l <= 1.0, "rho_L must be in [0, 1]");
  if (mode_ == CorrelationMode::kSimplified)
    return proc_sigma_[type_m] * proc_sigma_[type_n] * rho_l;
  const std::vector<double>& grid = pair_grid(type_m, type_n);
  const double pos = rho_l * static_cast<double>(kRhoGrid - 1);
  const auto idx = std::min(static_cast<std::size_t>(pos), kRhoGrid - 2);
  const double frac = pos - static_cast<double>(idx);
  return grid[idx] + frac * (grid[idx + 1] - grid[idx]);
}

LeakageEstimate ExactEstimator::estimate(const placement::Placement& placement) const {
  const netlist::Netlist& nl = placement.netlist();
  const std::size_t n = nl.size();
  const placement::Floorplan& fp = placement.floorplan();

  // Pre-resolve gate types and warm the pair grids for used types.
  std::vector<std::size_t> type(n);
  for (std::size_t i = 0; i < n; ++i) type[i] = nl.gate(i).cell_index;
  if (mode_ == CorrelationMode::kAnalytic) {
    std::vector<bool> used(num_types_, false);
    for (std::size_t t : type) used[t] = true;
    for (std::size_t a = 0; a < num_types_; ++a)
      for (std::size_t b = a; b < num_types_; ++b)
        if (used[a] && used[b]) (void)pair_grid(a, b);
  }

  // Per-offset length correlation: distances on the grid repeat, so compute
  // rho_L once per (|drow|, |dcol|) offset.
  const std::size_t k = fp.rows, m = fp.cols;
  std::vector<double> rho(k * m);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      rho[j * m + i] = chars_->process().total_length_correlation_xy(
          static_cast<double>(i) * fp.site_w_nm, static_cast<double>(j) * fp.site_h_nm);
    }

  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += effective_[type[i]].mean_na;
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t ra = a / m, ca = a % m;
    const double sa = effective_[type[a]].sigma_na;
    // Diagonal: same gate, same location -> its own variance.
    var += sa * sa;
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t rb = b / m, cb = b % m;
      const std::size_t dr = ra > rb ? ra - rb : rb - ra;
      const std::size_t dc = ca > cb ? ca - cb : cb - ca;
      var += 2.0 * type_covariance(type[a], type[b], rho[dr * m + dc]);
    }
  }
  LeakageEstimate e;
  e.mean_na = mean;
  e.sigma_na = std::sqrt(std::max(0.0, var));
  return e;
}

double vt_mean_factor(const process::VtVariation& vt, const device::TechnologyParams& tech) {
  const double n_vt = tech.subthreshold_n * tech.thermal_vt_v;
  const double z = vt.sigma_v / n_vt;
  return std::exp(0.5 * z * z);
}

}  // namespace rgleak::core
