#include "core/estimators.h"

#include <cmath>
#include <sstream>

#include "core/memory_cost.h"
#include "math/fft.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/memory.h"
#include "util/require.h"

namespace rgleak::core {

namespace {

// Shared post-condition for every estimator: mean and variance must be finite
// and the variance non-negative up to accumulated rounding. Tiny negative
// variances (cancellation in the pair sums) are clamped to zero downstream; a
// materially negative or non-finite result means the inputs are inconsistent
// and is reported instead of propagating NaN into reports.
LeakageEstimate checked_estimate(const char* estimator, const char* method, double mean,
                                 double var, std::size_t gates, const placement::Floorplan& fp) {
  constexpr double kVarSlack = 1e-6;
  if (!std::isfinite(mean) || !std::isfinite(var) || var < -kVarSlack * (mean * mean + 1.0)) {
    std::ostringstream os;
    os << estimator << ": non-physical result (mean " << mean << " nA, variance " << var
       << " nA^2) for " << gates << " gates on a " << fp.rows << "x" << fp.cols << " site grid ("
       << fp.width_nm() * 1e-3 << " x " << fp.height_nm() * 1e-3 << " um)";
    throw NumericalError(os.str());
  }
  LeakageEstimate e;
  e.mean_na = mean;
  e.sigma_na = std::sqrt(std::max(0.0, var));
  e.method = method;
  return e;
}

}  // namespace

LeakageEstimate estimate_linear(const RandomGate& rg, const placement::Floorplan& fp,
                                const util::RunControl* run) {
  // Per-rung wall-clock histograms: this is what attributes batch cost across
  // the paper's estimator ladder (exact -> linear -> integral). Instrument
  // references resolve once per process; after that each call is a scoped
  // steady_clock read plus one histogram observe.
  static util::metrics::Histogram& rung_ms =
      util::metrics::Registry::instance().histogram("estimator.linear_ms");
  const util::metrics::ScopedTimerMs timer(rung_ms);
  const std::size_t k = fp.rows, m = fp.cols;
  const double n = static_cast<double>(fp.num_sites());
  double var = 0.0;
  // Signed offsets (i, j) folded to i, j >= 0 with multiplicity 2 per nonzero
  // axis; n_ij = (m - i)(k - j) occurrences per signed offset (eq. (16)).
  for (std::size_t i = 0; i < m; ++i) {
    if (run != nullptr) run->poll("estimate_linear");
    const double wx = (i == 0 ? 1.0 : 2.0) * static_cast<double>(m - i);
    const double dx = static_cast<double>(i) * fp.site_w_nm;
    for (std::size_t j = 0; j < k; ++j) {
      const double wy = (j == 0 ? 1.0 : 2.0) * static_cast<double>(k - j);
      const double dy = static_cast<double>(j) * fp.site_h_nm;
      var += wx * wy * RGLEAK_FAILPOINT_DOUBLE("estimate.linear.cov", rg.covariance_at_offset(dx, dy));
    }
  }
  return checked_estimate("estimate_linear", "linear", n * rg.mean_na(), var, fp.num_sites(), fp);
}

LeakageEstimate estimate_integral_rect(const RandomGate& rg, const placement::Floorplan& fp,
                                       const math::QuadratureOptions& opts) {
  static util::metrics::Histogram& rung_ms =
      util::metrics::Registry::instance().histogram("estimator.integral_rect_ms");
  const util::metrics::ScopedTimerMs timer(rung_ms);
  const double w = fp.width_nm(), h = fp.height_nm();
  const double n = static_cast<double>(fp.num_sites());
  const double area = fp.area_nm2();
  // Eq. (20): 4 n^2/A^2 * int_0^W int_0^H (W-x)(H-y) C(sqrt(x^2+y^2)) dy dx,
  // with C(r) = sigma_XI^2 rho_XI(r) = F(rho_L(r)).
  const double integral = math::integrate_2d_adaptive(
      [&](double x, double y) { return (w - x) * (h - y) * rg.covariance_at_offset(x, y); },
      0.0, w, 0.0, h, opts);
  return checked_estimate("estimate_integral_rect", "integral_rect", n * rg.mean_na(),
                          4.0 * n * n / (area * area) * integral, fp.num_sites(), fp);
}

LeakageEstimate estimate_integral_polar(const RandomGate& rg, const placement::Floorplan& fp,
                                        const math::QuadratureOptions& opts, bool* used_polar) {
  static util::metrics::Histogram& rung_ms =
      util::metrics::Registry::instance().histogram("estimator.integral_polar_ms");
  const util::metrics::ScopedTimerMs timer(rung_ms);
  const double w = fp.width_nm(), h = fp.height_nm();
  const double d_max = rg.process().wid_correlation_range_nm();
  if (d_max >= std::min(w, h) || !rg.process().is_isotropic()) {
    // Validity conditions of section 3.2.2 not met (the polar reduction
    // additionally needs an isotropic kernel); use the 2-D form.
    if (used_polar != nullptr) *used_polar = false;
    return estimate_integral_rect(rg, fp, opts);
  }
  if (used_polar != nullptr) *used_polar = true;

  const double n = static_cast<double>(fp.num_sites());
  const double area = fp.area_nm2();
  const double c_floor = rg.covariance_floor_na2();

  // g(r) of eq. (24): the analytic angular integral.
  const auto g = [&](double r) { return 0.5 * r * r - (w + h) * r + 0.5 * M_PI * w * h; };
  // Eq. (26): split C(r) into a constant D2D part and a compact-support part.
  const double integral = math::integrate_adaptive(
      [&](double r) { return (rg.covariance_at_distance(r) - c_floor) * r * g(r); }, 0.0, d_max,
      opts);

  const double var = 4.0 * n * n / (area * area) * integral + n * n * c_floor;
  return checked_estimate("estimate_integral_polar", "integral_polar", n * rg.mean_na(), var,
                          fp.num_sites(), fp);
}

ExactEstimator::ExactEstimator(const charlib::CharacterizedLibrary& chars,
                               double signal_probability, CorrelationMode mode)
    : chars_(&chars),
      signal_probability_(signal_probability),
      mode_(mode),
      num_types_(chars.size()),
      pair_grid_(mode == CorrelationMode::kAnalytic ? chars.size() * chars.size() : 0) {
  effective_.resize(num_types_);
  proc_sigma_.resize(num_types_);
  state_probs_.resize(num_types_);
  for (std::size_t i = 0; i < num_types_; ++i) {
    state_probs_[i] = chars.state_probabilities(i, signal_probability);
    effective_[i] = chars.effective(i, state_probs_[i]);
    // State-weighted process sigma: the component of spread that is shared
    // through L (state choice is independent across gates and must not enter
    // cross covariances; cf. eq. (10)).
    double ps = 0.0;
    for (std::size_t s = 0; s < state_probs_[i].size(); ++s)
      ps += state_probs_[i][s] * chars.cell(i).states[s].sigma_na;
    proc_sigma_[i] = ps;
  }
  if (mode_ == CorrelationMode::kAnalytic) {
    RGLEAK_REQUIRE(chars.has_models(),
                   "analytic correlation mode needs an analytically characterized library");
  }
}

double ExactEstimator::exact_pair_covariance(std::size_t m, std::size_t n, double rho_l) const {
  const double mu_l = chars_->process().length().mean_nm;
  const double sigma_l = chars_->process().length().sigma_total_nm();
  const auto& cm = chars_->cell(m);
  const auto& cn = chars_->cell(n);
  double cov = 0.0;
  for (std::size_t sm = 0; sm < cm.states.size(); ++sm) {
    const double pm = state_probs_[m][sm];
    if (pm == 0.0) continue;
    for (std::size_t sn = 0; sn < cn.states.size(); ++sn) {
      const double pn = state_probs_[n][sn];
      if (pn == 0.0) continue;
      cov += pm * pn *
             (charlib::pair_product_expectation(*cm.states[sm].model, *cn.states[sn].model, mu_l,
                                                sigma_l, rho_l) -
              cm.states[sm].mean_na * cn.states[sn].mean_na);
    }
  }
  return cov;
}

const std::vector<double>& ExactEstimator::pair_grid(std::size_t m, std::size_t n) const {
  std::atomic<const std::vector<double>*>& slot = pair_grid_[m * num_types_ + n];
  if (const std::vector<double>* g = slot.load(std::memory_order_acquire)) return *g;

  std::lock_guard<std::mutex> lock(pair_grid_mutex_);
  if (const std::vector<double>* g = slot.load(std::memory_order_relaxed)) return *g;
  auto grid = std::make_unique<std::vector<double>>(kRhoGrid);
  for (std::size_t i = 0; i < kRhoGrid; ++i) {
    const double rho = static_cast<double>(i) / static_cast<double>(kRhoGrid - 1);
    (*grid)[i] = exact_pair_covariance(m, n, rho);
  }
  const std::vector<double>* ptr = grid.get();
  pair_grid_owned_.push_back(std::move(grid));
  if (m != n)
    pair_grid_[n * num_types_ + m].store(ptr, std::memory_order_release);  // symmetric
  slot.store(ptr, std::memory_order_release);
  return *ptr;
}

double ExactEstimator::type_covariance(std::size_t type_m, std::size_t type_n,
                                       double rho_l) const {
  RGLEAK_REQUIRE(type_m < num_types_ && type_n < num_types_, "cell type out of range");
  RGLEAK_REQUIRE(rho_l >= 0.0 && rho_l <= 1.0, "rho_L must be in [0, 1]");
  if (mode_ == CorrelationMode::kSimplified)
    return proc_sigma_[type_m] * proc_sigma_[type_n] * rho_l;
  const std::vector<double>& grid = pair_grid(type_m, type_n);
  const double pos = rho_l * static_cast<double>(kRhoGrid - 1);
  const auto idx = std::min(static_cast<std::size_t>(pos), kRhoGrid - 2);
  const double frac = pos - static_cast<double>(idx);
  return grid[idx] + frac * (grid[idx + 1] - grid[idx]);
}

std::vector<double> ExactEstimator::offset_rho(const placement::Floorplan& fp) const {
  // Per-offset length correlation: distances on the grid repeat, so compute
  // rho_L once per (|drow|, |dcol|) offset.
  const std::size_t k = fp.rows, m = fp.cols;
  std::vector<double> rho(k * m);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      rho[j * m + i] = chars_->process().total_length_correlation_xy(
          static_cast<double>(i) * fp.site_w_nm, static_cast<double>(j) * fp.site_h_nm);
    }
  return rho;
}

LeakageEstimate ExactEstimator::estimate(const placement::Placement& placement,
                                         const ExactOptions& options) const {
  ExactMethod method = options.method;
  if (method == ExactMethod::kAuto) {
    // The FFT transform wins everywhere except grids so small the padding
    // overhead dominates.
    method = placement.floorplan().num_sites() >= 64 ? ExactMethod::kFft : ExactMethod::kDirect;
  }
  util::ThreadPool& pool =
      options.pool ? *options.pool : util::ThreadPool::shared(options.threads);
  try {
    return method == ExactMethod::kFft ? estimate_fft(placement, pool, options.run)
                                       : estimate_direct(placement, pool, options.run);
  } catch (const std::bad_alloc&) {
    // Translate allocation failure (real or injected at the *.alloc
    // failpoints) into a located taxonomy error so a starved estimate fails
    // typed instead of crashing its process.
    std::ostringstream os;
    os << "ExactEstimator::estimate: out of memory on the "
       << (method == ExactMethod::kFft ? "fft" : "direct") << " path ("
       << placement.netlist().size() << " gates, " << placement.floorplan().rows << "x"
       << placement.floorplan().cols << " sites)";
    throw ResourceError(os.str());
  }
}

LeakageEstimate ExactEstimator::estimate_direct(const placement::Placement& placement,
                                                util::ThreadPool& pool,
                                                const util::RunControl* run) const {
  static util::metrics::Histogram& rung_ms =
      util::metrics::Registry::instance().histogram("estimator.exact_direct_ms");
  const util::metrics::ScopedTimerMs timer(rung_ms);
  const netlist::Netlist& nl = placement.netlist();
  const std::size_t n = nl.size();
  const placement::Floorplan& fp = placement.floorplan();
  const std::size_t m = fp.cols;

  // Charge this path's arenas (gate tables + offset grid + tile partials)
  // against the process memory budget for the duration of the estimate.
  RGLEAK_FAILPOINT("core.exact.direct.alloc");
  const util::MemoryReservation arena(
      MemoryCostModel::exact_direct_bytes(n, fp.rows, fp.cols), "core.exact.direct");

  // Pre-resolve gate types/coordinates and warm the pair grids for used
  // types, so the tiled loop below is read-only on shared state.
  std::vector<std::size_t> type(n), row(n), col(n);
  for (std::size_t i = 0; i < n; ++i) {
    type[i] = nl.gate(i).cell_index;
    const std::size_t site = placement.site_of(i);
    row[i] = site / m;
    col[i] = site % m;
  }
  if (mode_ == CorrelationMode::kAnalytic) {
    std::vector<bool> used(num_types_, false);
    for (std::size_t t : type) used[t] = true;
    for (std::size_t a = 0; a < num_types_; ++a)
      for (std::size_t b = a; b < num_types_; ++b)
        if (used[a] && used[b]) (void)pair_grid(a, b);
  }

  const std::vector<double> rho = offset_rho(fp);

  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += effective_[type[i]].mean_na;
  // Diagonal: same gate, same location -> its own variance.
  for (std::size_t i = 0; i < n; ++i) var += effective_[type[i]].sigma_na * effective_[type[i]].sigma_na;

  // Off-diagonal pairs, tiled over blocks of `a` rows. The tiling is fixed
  // (independent of the thread count) and the per-tile partial sums are
  // reduced in tile order, so the result is identical for any thread count.
  constexpr std::size_t kTile = 64;
  const std::size_t tiles = (n + kTile - 1) / kTile;
  std::vector<double> partial(tiles, 0.0);
  // `run` is polled before each tile claim: an armed deadline or stop cancels
  // the estimate within one tile (parallel_for drains and throws).
  pool.parallel_for(tiles, [&](std::size_t ti) {
    RGLEAK_FAILPOINT("exact.direct_tile");
    const std::size_t a_end = std::min(n, (ti + 1) * kTile);
    double s = 0.0;
    for (std::size_t a = ti * kTile; a < a_end; ++a) {
      const std::size_t ra = row[a], ca = col[a], ta = type[a];
      for (std::size_t b = a + 1; b < n; ++b) {
        const std::size_t dr = ra > row[b] ? ra - row[b] : row[b] - ra;
        const std::size_t dc = ca > col[b] ? ca - col[b] : col[b] - ca;
        s += type_covariance(ta, type[b], rho[dr * m + dc]);
      }
    }
    partial[ti] = s;
  }, run);
  for (std::size_t ti = 0; ti < tiles; ++ti) var += 2.0 * partial[ti];

  return checked_estimate("ExactEstimator::estimate_direct", "exact_direct", mean, var, n, fp);
}

LeakageEstimate ExactEstimator::estimate_fft(const placement::Placement& placement,
                                             util::ThreadPool& pool,
                                             const util::RunControl* run) const {
  static util::metrics::Histogram& rung_ms =
      util::metrics::Registry::instance().histogram("estimator.exact_fft_ms");
  const util::metrics::ScopedTimerMs timer(rung_ms);
  const netlist::Netlist& nl = placement.netlist();
  const std::size_t n = nl.size();
  const placement::Floorplan& fp = placement.floorplan();
  const std::size_t k = fp.rows, m = fp.cols;

  double mean = 0.0, diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& eff = effective_[nl.gate(i).cell_index];
    mean += eff.mean_na;
    diag += eff.sigma_na * eff.sigma_na;
  }

  // Conservative preflight charge: the per-type padded transforms dominate.
  // Distinct placed types are not known until the scan below, so charge for
  // the library's full type count (an upper bound; released at return).
  RGLEAK_FAILPOINT("core.exact.fft.alloc");
  const util::MemoryReservation arena(
      MemoryCostModel::exact_fft_bytes(k, m,
                                       mode_ == CorrelationMode::kSimplified ? 1 : num_types_),
      "core.exact.fft");

  const std::vector<double> rho = offset_rho(fp);
  const math::CrossCorrelator2D xcorr(k, m);
  const std::size_t out_cols = xcorr.out_cols();

  // Dot an offset-count map (signed offsets) against a per-|offset| weight
  // table, skipping (0, 0) — the self pairs are the `diag` term above.
  const auto fold_dot = [&](const std::vector<double>& counts,
                            const std::vector<double>& weight, bool integer_counts) {
    double s = 0.0;
    for (std::size_t r = 0; r < xcorr.out_rows(); ++r) {
      const std::size_t dr =
          r >= k - 1 ? r - (k - 1) : (k - 1) - r;  // |signed row offset|
      for (std::size_t c = 0; c < out_cols; ++c) {
        const std::size_t dc = c >= m - 1 ? c - (m - 1) : (m - 1) - c;
        if (dr == 0 && dc == 0) continue;
        // The FFT returns near-integers for indicator grids; snap them so the
        // histogram is exact and the path matches the direct sum to rounding.
        const double cnt =
            integer_counts ? std::round(counts[r * out_cols + c]) : counts[r * out_cols + c];
        if (cnt != 0.0) s += cnt * weight[dr * m + dc];
      }
    }
    return s;
  };

  double var = diag;
  if (run != nullptr) run->poll("exact.fft");
  if (mode_ == CorrelationMode::kSimplified) {
    // cov(t, u, rho) = ps_t ps_u rho separates, so a single autocorrelation
    // of the ps-weighted occupancy grid carries all type pairs at once.
    std::vector<double> weighted(k * m, 0.0);
    for (std::size_t g = 0; g < n; ++g)
      weighted[placement.site_of(g)] = proc_sigma_[nl.gate(g).cell_index];
    const auto ft = xcorr.transform(weighted);
    var += fold_dot(xcorr.correlate(ft, ft), rho, /*integer_counts=*/false);
  } else {
    // Local ids for the types actually present; one indicator grid each.
    std::vector<std::ptrdiff_t> local(num_types_, -1);
    std::vector<std::size_t> types;
    for (std::size_t g = 0; g < n; ++g) {
      const std::size_t t = nl.gate(g).cell_index;
      if (local[t] < 0) {
        local[t] = static_cast<std::ptrdiff_t>(types.size());
        types.push_back(t);
      }
    }
    std::vector<std::vector<double>> occupancy(types.size(),
                                               std::vector<double>(k * m, 0.0));
    for (std::size_t g = 0; g < n; ++g)
      occupancy[static_cast<std::size_t>(local[nl.gate(g).cell_index])]
                [placement.site_of(g)] = 1.0;

    std::vector<std::vector<std::complex<double>>> ft(types.size());
    pool.parallel_for(types.size(),
                      [&](std::size_t i) { ft[i] = xcorr.transform(occupancy[i]); }, run);

    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < types.size(); ++i)
      for (std::size_t j = i; j < types.size(); ++j) pairs.emplace_back(i, j);

    // Per-pair partials, reduced in fixed order (thread-count independent).
    std::vector<double> partial(pairs.size(), 0.0);
    pool.parallel_for(pairs.size(), [&](std::size_t p) {
      RGLEAK_FAILPOINT("exact.fft_pair");
      const auto [i, j] = pairs[p];
      std::vector<double> cov(k * m);
      for (std::size_t off = 0; off < k * m; ++off)
        cov[off] = type_covariance(types[i], types[j], rho[off]);
      // Ordered-pair counts for (i, j) summed over signed offsets equal those
      // for (j, i), so off-diagonal type pairs carry weight 2.
      partial[p] = (i == j ? 1.0 : 2.0) *
                   fold_dot(xcorr.correlate(ft[i], ft[j]), cov, /*integer_counts=*/true);
    }, run);
    for (double p : partial) var += p;
  }

  return checked_estimate("ExactEstimator::estimate_fft", "exact_fft", mean, var, n, fp);
}

double vt_mean_factor(const process::VtVariation& vt, const device::TechnologyParams& tech) {
  const double n_vt = tech.subthreshold_n * tech.thermal_vt_v;
  const double z = vt.sigma_v / n_vt;
  return std::exp(0.5 * z * z);
}

}  // namespace rgleak::core
