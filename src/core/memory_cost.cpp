#include "core/memory_cost.h"

#include <cerrno>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "math/fft.h"
#include "util/error.h"

namespace rgleak::core {

double MethodMemoryModel::basis_value(std::size_t sites) const {
  const double n = static_cast<double>(sites);
  switch (basis) {
    case Basis::kConstant: return 1.0;
    case Basis::kLinear: return n;
    case Basis::kNLogN: return n * std::log2(std::max(2.0, n));
    case Basis::kQuadratic: return n * n;
  }
  return 1.0;
}

MemoryCostModel MemoryCostModel::defaults() {
  // Bytes-per-basis coefficients, rounded up hard. The FFT rung's linear
  // coefficient must absorb the worst-case power-of-two padding (up to ~16x
  // the site count in padded cells) times 16-byte complex cells times a few
  // live buffers; MC likewise carries padded sampler grids per worker.
  MemoryCostModel m;
  m.rungs_["exact_direct"] = {{MethodMemoryModel::Basis::kLinear, 256.0}, 0.0};
  m.rungs_["exact_fft"] = {{MethodMemoryModel::Basis::kLinear, 8192.0}, 0.0};
  m.rungs_["linear"] = {{MethodMemoryModel::Basis::kConstant, 64 << 10}, 0.0};
  m.rungs_["integral_rect"] = {{MethodMemoryModel::Basis::kConstant, 32 << 10}, 0.0};
  m.rungs_["integral_polar"] = {{MethodMemoryModel::Basis::kConstant, 32 << 10}, 0.0};
  m.rungs_["mc"] = {{MethodMemoryModel::Basis::kLinear, 4096.0}, 0.0};
  return m;
}

void MemoryCostModel::calibrate(const std::string& method, std::size_t sites,
                                std::uint64_t bytes) {
  std::string rung = method;
  if (method == "direct_parallel") rung = "exact_direct";
  if (method == "fft") rung = "exact_fft";
  if (method == "direct_serial") return;
  const auto it = rungs_.find(rung);
  if (it == rungs_.end() || sites == 0 || bytes == 0) return;
  const double coeff = static_cast<double>(bytes) / it->second.model.basis_value(sites);
  if (coeff > it->second.calibrated_coeff_bytes) it->second.calibrated_coeff_bytes = coeff;
}

std::uint64_t MemoryCostModel::predict_bytes(const std::string& method,
                                             std::size_t sites) const {
  const auto it = rungs_.find(method);
  if (it == rungs_.end()) return std::numeric_limits<std::uint64_t>::max();
  const Entry& e = it->second;
  const double coeff =
      e.calibrated_coeff_bytes > 0.0 ? e.calibrated_coeff_bytes : e.model.coeff_bytes;
  return static_cast<std::uint64_t>(coeff * e.model.basis_value(sites));
}

std::uint64_t MemoryCostModel::exact_direct_bytes(std::size_t gates, std::size_t rows,
                                                  std::size_t cols) {
  const std::uint64_t n = gates;
  const std::uint64_t sites = static_cast<std::uint64_t>(rows) * cols;
  const std::uint64_t tiles = (n + 63) / 64;
  // type/row/col index vectors + offset-rho grid + tile partials.
  return 3 * n * sizeof(std::size_t) + sites * sizeof(double) + tiles * sizeof(double);
}

std::uint64_t MemoryCostModel::exact_fft_bytes(std::size_t rows, std::size_t cols,
                                               std::size_t types) {
  const std::uint64_t pad = static_cast<std::uint64_t>(math::next_pow2(2 * rows - 1)) *
                            math::next_pow2(2 * cols - 1);
  const std::uint64_t sites = static_cast<std::uint64_t>(rows) * cols;
  const std::uint64_t out = static_cast<std::uint64_t>(2 * rows - 1) * (2 * cols - 1);
  const std::uint64_t t = types > 0 ? types : 1;
  // Per type: occupancy grid + retained forward transform. Plus transform /
  // correlate scratch (two padded complex grids live at once), the
  // correlation output, and the per-offset rho and cov tables.
  return t * (sites * sizeof(double) + pad * sizeof(std::complex<double>)) +
         2 * pad * sizeof(std::complex<double>) + out * sizeof(double) +
         2 * sites * sizeof(double);
}

std::uint64_t MemoryCostModel::mc_worker_bytes(std::size_t padded_rows, std::size_t padded_cols,
                                               std::size_t rows, std::size_t cols,
                                               std::size_t gates) {
  const std::uint64_t pad = static_cast<std::uint64_t>(padded_rows) * padded_cols;
  const std::uint64_t sites = static_cast<std::uint64_t>(rows) * cols;
  const std::uint64_t g = gates;
  // Sampler copy: column-major sqrt-eigenvalue table + spare-field cache
  // (the FFT plan is shared between copies and charged once by the owner).
  const std::uint64_t sampler = pad * sizeof(double) + sites * sizeof(double);
  // FieldWorkspace: freq + scratch padded complex buffers.
  const std::uint64_t field_ws = 2 * pad * sizeof(std::complex<double>);
  // McWorkspace: wid field + per-gate table ids + bucket entries
  // (site u32 + weight f64), cursors/begins, gather/eval buffers.
  const std::uint64_t mc_ws = sites * sizeof(double) + g * sizeof(std::uint32_t) +
                              g * (sizeof(std::uint32_t) + sizeof(double)) +
                              2 * g * sizeof(std::uint32_t) + 2 * g * sizeof(double);
  return sampler + field_ws + mc_ws;
}

namespace {

bool scan_string_field(const std::string& obj, const std::string& key, std::string* out) {
  const auto k = obj.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  const auto q1 = obj.find('"', obj.find(':', k));
  if (q1 == std::string::npos) return false;
  const auto q2 = obj.find('"', q1 + 1);
  if (q2 == std::string::npos) return false;
  *out = obj.substr(q1 + 1, q2 - q1 - 1);
  return true;
}

bool scan_number_field(const std::string& obj, const std::string& key, double* out) {
  const auto k = obj.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  const auto colon = obj.find(':', k);
  if (colon == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(obj.c_str() + colon + 1, &end);
  if (errno != 0 || end == obj.c_str() + colon + 1) return false;
  *out = v;
  return true;
}

}  // namespace

MemoryCostModel MemoryCostModel::from_bench_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) throw IoError("read failed: " + path);
  const std::string text = buffer.str();

  MemoryCostModel model = defaults();
  const auto records = text.find("\"records\"");
  if (records == std::string::npos)
    throw ParseError(path, 1, 0, "bench record has no \"records\" array");
  std::size_t pos = records;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto close = text.find('}', pos);
    if (close == std::string::npos) throw ParseError(path, 1, 0, "unterminated record object");
    const std::string obj = text.substr(pos, close - pos + 1);
    pos = close + 1;
    std::string method;
    double sites = 0.0;
    if (!scan_string_field(obj, "method", &method) || !scan_number_field(obj, "sites", &sites))
      continue;  // shared files hold non-memory records too
    double bytes = 0.0, rss_kb = 0.0;
    if (scan_number_field(obj, "budget_peak_bytes", &bytes) && bytes > 0.0)
      model.calibrate(method, static_cast<std::size_t>(sites),
                      static_cast<std::uint64_t>(bytes));
    else if (scan_number_field(obj, "peak_rss_kb", &rss_kb) && rss_kb > 0.0)
      model.calibrate(method, static_cast<std::size_t>(sites),
                      static_cast<std::uint64_t>(rss_kb * 1024.0));
  }
  return model;
}

}  // namespace rgleak::core
