#include "core/floorplan_optimizer.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

FloorplanOptimizerResult optimize_floorplan(MultiBlockEstimator& estimator,
                                            const FloorplanOptimizerOptions& options) {
  RGLEAK_REQUIRE(options.iterations >= 1, "optimizer needs at least one iteration");
  RGLEAK_REQUIRE(options.initial_temperature > 0.0 &&
                     options.final_temperature > 0.0 &&
                     options.final_temperature <= options.initial_temperature,
                 "invalid annealing schedule");
  const std::size_t nb = estimator.num_blocks();

  // Swappable pairs: identical extents.
  std::vector<std::pair<std::size_t, std::size_t>> swappable;
  for (std::size_t i = 0; i < nb; ++i)
    for (std::size_t j = i + 1; j < nb; ++j)
      if (estimator.block(i).cols == estimator.block(j).cols &&
          estimator.block(i).rows == estimator.block(j).rows)
        swappable.emplace_back(i, j);
  RGLEAK_REQUIRE(!swappable.empty(),
                 "optimizer needs at least one pair of equal-extent blocks");

  const auto snapshot = [&] {
    std::vector<std::pair<std::size_t, std::size_t>> pos(nb);
    for (std::size_t b = 0; b < nb; ++b)
      pos[b] = {estimator.block(b).col0, estimator.block(b).row0};
    return pos;
  };

  math::Rng rng(options.seed);
  FloorplanOptimizerResult result;
  double sigma = estimator.chip_estimate().sigma_na;
  result.initial_sigma_na = sigma;
  double best_sigma = sigma;
  auto best_pos = snapshot();

  const double cool = std::pow(options.final_temperature / options.initial_temperature,
                               1.0 / static_cast<double>(options.iterations));
  double temperature = options.initial_temperature * result.initial_sigma_na;

  for (std::size_t it = 0; it < options.iterations; ++it, temperature *= cool) {
    const auto [a, b] = swappable[rng.uniform_index(swappable.size())];
    estimator.swap_block_positions(a, b);
    const double candidate = estimator.chip_estimate().sigma_na;
    const double delta = candidate - sigma;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      sigma = candidate;
      ++result.accepted_moves;
      if (sigma < best_sigma) {
        best_sigma = sigma;
        best_pos = snapshot();
      }
    } else {
      estimator.swap_block_positions(a, b);  // revert
    }
  }

  // Restore the best assignment found. Both the current and the best layouts
  // occupy the same slot set (only swaps were applied), so the restore is a
  // sequence of swaps — never a transiently-overlapping move.
  auto current = snapshot();
  for (std::size_t b = 0; b < nb; ++b) {
    if (current[b] == best_pos[b]) continue;
    for (std::size_t j = b + 1; j < nb; ++j) {
      if (current[j] == best_pos[b]) {
        estimator.swap_block_positions(b, j);
        std::swap(current[b], current[j]);
        break;
      }
    }
    RGLEAK_REQUIRE(current[b] == best_pos[b], "restore failed to realize best layout");
  }
  result.final_sigma_na = estimator.chip_estimate().sigma_na;
  result.positions = best_pos;
  return result;
}

}  // namespace rgleak::core
