#pragma once
// The Random Gate (RG) abstraction (section 2.2 of the paper).
//
// A RG is a probabilistic gate whose instances are library cells drawn with
// the design's frequency-of-use distribution (eq. (6)). Its leakage X_I is
// defined on the product of the gate-choice space and the process space;
// its statistics are the mixture moments of eqs (7)-(8), and the covariance
// between two RGs at distinct die locations is the usage-weighted mixture of
// pairwise gate covariances (eqs (9)-(11)).

#include <memory>

#include "charlib/correlation_map.h"
#include "netlist/netlist.h"
#include "process/variation.h"

namespace rgleak::core {

/// Which leakage-correlation mapping backs the RG covariance.
enum class CorrelationMode {
  kAnalytic,    ///< exact f_{m,n} from the fitted (a,b,c) triplets
  kSimplified,  ///< rho_{m,n} = rho_L (section 3.1.2; required for MC-characterized libraries)
};

/// Immutable Random Gate: leakage mean/variance and distance-dependent
/// covariance for a (library, usage, signal-probability) triple.
class RandomGate {
 public:
  RandomGate(const charlib::CharacterizedLibrary& chars, const netlist::UsageHistogram& usage,
             double signal_probability, CorrelationMode mode);

  /// mu_{X_I} (eq. (7)), nA.
  double mean_na() const { return cov_->mean(); }
  /// sigma^2_{X_I} (eq. (8)), nA^2.
  double variance_na2() const { return cov_->variance(); }
  double sigma_na() const;

  /// Leakage covariance of two RGs as a function of channel-length
  /// correlation: F(rho_L) of eq. (10). Distinct-location branch of eq. (11).
  double covariance_at_rho(double rho_l) const { return cov_->covariance(rho_l); }

  /// Leakage covariance of two RGs at centre distance d (eq. (11)): the
  /// variance when d == 0, F(rho_total(d)) otherwise. For anisotropic
  /// processes the separation is taken along the x axis.
  double covariance_at_distance(double d_nm) const;

  /// Leakage covariance for an (dx, dy) site offset; respects the process's
  /// correlation anisotropy. Equals covariance_at_distance(hypot(dx, dy))
  /// when isotropic.
  double covariance_at_offset(double dx_nm, double dy_nm) const;

  /// Leakage correlation at distance d: covariance_at_distance / variance.
  double correlation_at_distance(double d_nm) const;

  /// The constant (D2D) part of the leakage covariance: the large-distance
  /// limit F(rho_floor), used by the polar estimator's split (eq. (26)).
  double covariance_floor_na2() const { return covariance_floor_; }

  const process::ProcessVariation& process() const { return process_; }
  CorrelationMode mode() const { return mode_; }

 private:
  process::ProcessVariation process_;
  std::shared_ptr<const charlib::RgCovarianceModel> cov_;
  CorrelationMode mode_;
  double covariance_floor_ = 0.0;
};

}  // namespace rgleak::core
