#pragma once
// Dual-Vt leakage recovery analysis.
//
// The standard leakage knob: swap a fraction of the design's cells to
// high-Vt variants (exponentially lower leakage, slower). This module sweeps
// the HVT fraction and reports the full-chip leakage statistics alongside an
// alpha-power-law delay proxy, so a designer can read "swap fraction f buys
// X% leakage at Y% nominal-delay penalty" directly off the curve. Leakage is
// exact through the RG machinery; the delay proxy is a first-order model
// (delay ~ 1/(Vdd - Vt)^alpha), honest about being a proxy.

#include <vector>

#include "charlib/characterize.h"
#include "core/estimate.h"
#include "netlist/netlist.h"
#include "placement/placement.h"

namespace rgleak::core {

struct MultiVtPoint {
  double hvt_fraction = 0.0;
  LeakageEstimate estimate;
  /// Mean per-gate delay proxy relative to the all-SVT design (>= 1).
  double delay_penalty = 1.0;
};

struct MultiVtOptions {
  std::size_t steps = 11;       ///< sweep points over f in [0, 1]
  double signal_probability = 0.5;
  double alpha = 1.3;           ///< alpha-power-law exponent for the delay proxy
  std::string hvt_suffix = "_HVT";
};

/// Sweeps the fraction of cells swapped from their SVT master to the HVT
/// variant. `chars` must be a characterization of a multi-Vt library (every
/// cell named in `svt_usage` must have a `<name><hvt_suffix>` sibling).
/// `svt_usage` is the design histogram over SVT names (indices into the
/// multi-Vt library).
std::vector<MultiVtPoint> hvt_tradeoff(const charlib::CharacterizedLibrary& chars,
                                       const netlist::UsageHistogram& svt_usage,
                                       const placement::Floorplan& floorplan,
                                       double hvt_vt_shift_v,
                                       const MultiVtOptions& options = {});

/// Alpha-power-law delay ratio of a cell with Vt shifted by dvt relative to
/// the unshifted cell: ((Vdd - Vt0) / (Vdd - Vt0 - dvt... )) — i.e.
/// (Vdd - Vt)^alpha ratio. Exposed for tests.
double alpha_power_delay_ratio(const device::TechnologyParams& tech, double vt_shift_v,
                               double alpha);

}  // namespace rgleak::core
