#include "core/leakage_estimator.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

placement::Floorplan floorplan_for_design(const DesignCharacteristics& design) {
  RGLEAK_REQUIRE(design.gate_count >= 1, "design needs at least one gate");
  RGLEAK_REQUIRE(design.width_nm > 0.0 && design.height_nm > 0.0,
                 "design needs positive layout dimensions");
  const double n = static_cast<double>(design.gate_count);
  const double aspect = design.height_nm / design.width_nm;
  placement::Floorplan fp;
  fp.rows = static_cast<std::size_t>(std::max(1.0, std::round(std::sqrt(n * aspect))));
  fp.cols = (design.gate_count + fp.rows - 1) / fp.rows;
  fp.site_w_nm = design.width_nm / static_cast<double>(fp.cols);
  fp.site_h_nm = design.height_nm / static_cast<double>(fp.rows);
  return fp;
}

LeakageEstimator::LeakageEstimator(const charlib::CharacterizedLibrary& chars,
                                   EstimatorConfig config)
    : chars_(&chars), config_(config) {
  RGLEAK_REQUIRE(config_.signal_probability >= 0.0 && config_.signal_probability <= 1.0,
                 "signal probability must be in [0, 1]");
}

double LeakageEstimator::resolve_signal_probability(const netlist::UsageHistogram& usage) const {
  if (config_.maximize_signal_probability)
    return max_leakage_signal_probability(*chars_, usage);
  return config_.signal_probability;
}

RandomGate LeakageEstimator::make_random_gate(const netlist::UsageHistogram& usage) const {
  return RandomGate(*chars_, usage, resolve_signal_probability(usage),
                    config_.correlation_mode);
}

LeakageEstimate LeakageEstimator::estimate(const DesignCharacteristics& design) const {
  const placement::Floorplan fp = floorplan_for_design(design);
  const RandomGate rg = make_random_gate(design.usage);

  EstimationMethod method = config_.method;
  if (method == EstimationMethod::kAuto)
    method = design.gate_count <= 10000 ? EstimationMethod::kLinear
                                        : EstimationMethod::kIntegralPolar;

  LeakageEstimate e;
  switch (method) {
    case EstimationMethod::kLinear:
      e = estimate_linear(rg, fp);
      break;
    case EstimationMethod::kIntegralRect:
      e = estimate_integral_rect(rg, fp);
      break;
    case EstimationMethod::kIntegralPolar:
    case EstimationMethod::kAuto:
      e = estimate_integral_polar(rg, fp);
      break;
  }
  if (config_.apply_vt_mean_factor)
    e.mean_na *= vt_mean_factor(chars_->process().vt(), chars_->library().tech());
  return e;
}

}  // namespace rgleak::core
