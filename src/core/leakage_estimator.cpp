#include "core/leakage_estimator.h"

#include <cmath>
#include <sstream>

#include "util/require.h"

namespace rgleak::core {

namespace {

const char* rung_name(EstimationMethod m) {
  switch (m) {
    case EstimationMethod::kLinear: return "linear";
    case EstimationMethod::kIntegralRect: return "integral_rect";
    case EstimationMethod::kIntegralPolar: return "integral_polar";
    case EstimationMethod::kAuto: break;
  }
  return "integral_polar";
}

std::string over_budget_note(const char* rung, double predicted_ms, double remaining_ms) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << rung << " predicted " << predicted_ms << " ms > budget " << remaining_ms
     << " ms";
  return os.str();
}

std::string cancelled_note(const char* rung) {
  return std::string(rung) + " cancelled at deadline (cost misprediction)";
}

// A rung cancelled by the *budget deadline* degrades to the next rung; a rung
// cancelled by an *external stop* (SIGINT, a batch shutdown forwarded through
// the parent link) must propagate — the caller wants out, not a cheaper
// answer.
void rethrow_if_external(const util::RunControl& run) {
  if (run.reason() == util::StopReason::kCancelled) throw;
}

// Appends `next` to a semicolon-joined degradation trail.
void append_note(std::string* trail, const std::string& next) {
  if (!trail->empty()) *trail += "; ";
  *trail += next;
}

}  // namespace

placement::Floorplan floorplan_for_design(const DesignCharacteristics& design) {
  RGLEAK_REQUIRE(design.gate_count >= 1, "design needs at least one gate");
  RGLEAK_REQUIRE(design.width_nm > 0.0 && design.height_nm > 0.0,
                 "design needs positive layout dimensions");
  const double n = static_cast<double>(design.gate_count);
  const double aspect = design.height_nm / design.width_nm;
  placement::Floorplan fp;
  fp.rows = static_cast<std::size_t>(std::max(1.0, std::round(std::sqrt(n * aspect))));
  fp.cols = (design.gate_count + fp.rows - 1) / fp.rows;
  fp.site_w_nm = design.width_nm / static_cast<double>(fp.cols);
  fp.site_h_nm = design.height_nm / static_cast<double>(fp.rows);
  return fp;
}

LeakageEstimator::LeakageEstimator(const charlib::CharacterizedLibrary& chars,
                                   EstimatorConfig config)
    : chars_(&chars), config_(config) {
  RGLEAK_REQUIRE(config_.signal_probability >= 0.0 && config_.signal_probability <= 1.0,
                 "signal probability must be in [0, 1]");
}

double LeakageEstimator::resolve_signal_probability(const netlist::UsageHistogram& usage) const {
  if (config_.maximize_signal_probability)
    return max_leakage_signal_probability(*chars_, usage);
  return config_.signal_probability;
}

RandomGate LeakageEstimator::make_random_gate(const netlist::UsageHistogram& usage) const {
  return RandomGate(*chars_, usage, resolve_signal_probability(usage),
                    config_.correlation_mode);
}

LeakageEstimate LeakageEstimator::estimate(const DesignCharacteristics& design) const {
  const placement::Floorplan fp = floorplan_for_design(design);
  const RandomGate rg = make_random_gate(design.usage);

  EstimationMethod method = config_.method;
  if (method == EstimationMethod::kAuto)
    method = design.gate_count <= 10000 ? EstimationMethod::kLinear
                                        : EstimationMethod::kIntegralPolar;

  LeakageEstimate e;
  if (config_.time_budget_s > 0.0) {
    e = estimate_budgeted(fp, rg, method);
  } else {
    switch (method) {
      case EstimationMethod::kLinear:
        e = estimate_linear(rg, fp, config_.run);
        break;
      case EstimationMethod::kIntegralRect:
        e = estimate_integral_rect(rg, fp);
        break;
      case EstimationMethod::kIntegralPolar:
      case EstimationMethod::kAuto:
        e = estimate_integral_polar(rg, fp);
        break;
    }
  }
  if (config_.apply_vt_mean_factor)
    e.mean_na *= vt_mean_factor(chars_->process().vt(), chars_->library().tech());
  return e;
}

LeakageEstimate LeakageEstimator::estimate_budgeted(const placement::Floorplan& fp,
                                                    const RandomGate& rg,
                                                    EstimationMethod requested) const {
  util::RunControl run;
  run.set_parent(config_.run);
  run.arm_budget(config_.time_budget_s);
  const std::size_t sites = fp.num_sites();
  const CostModel& costs = config_.cost_model;
  std::string trail;

  // Rung 1: the requested method, if the model says it fits what is left.
  if (requested == EstimationMethod::kLinear) {
    const char* rung = rung_name(requested);
    const double predicted_ms = costs.predict_ms(rung, sites);
    const double remaining_ms = run.remaining_s() * 1e3;
    if (predicted_ms <= remaining_ms) {
      try {
        LeakageEstimate e = estimate_linear(rg, fp, &run);
        e.degradation = trail;
        return e;
      } catch (const DeadlineExceeded&) {
        rethrow_if_external(run);
        append_note(&trail, cancelled_note(rung));
      }
    } else {
      append_note(&trail, over_budget_note(rung, predicted_ms, remaining_ms));
    }
    requested = EstimationMethod::kIntegralPolar;
  }

  // Rung 2: the O(1) integral forms always answer, even past the deadline —
  // the caller asked for *an* estimate, and these cost microseconds. Rect is
  // honored when explicitly requested; otherwise polar (which itself falls
  // back to rect when its validity condition fails).
  LeakageEstimate e = requested == EstimationMethod::kIntegralRect
                          ? estimate_integral_rect(rg, fp)
                          : estimate_integral_polar(rg, fp);
  e.degradation = trail;
  return e;
}

LeakageEstimate estimate_placed_budgeted(const ExactEstimator& exact, const RandomGate& rg,
                                         const placement::Placement& placement, double budget_s,
                                         const CostModel& costs, ExactOptions opts,
                                         const util::RunControl* parent) {
  RGLEAK_REQUIRE(budget_s > 0.0, "budgeted estimate needs a positive time budget");
  util::RunControl run;
  run.set_parent(parent);
  run.arm_budget(budget_s);
  const placement::Floorplan& fp = placement.floorplan();
  const std::size_t sites = fp.num_sites();
  std::string trail;

  // Rung 1: exact pairwise analysis (eq. 14/15).
  ExactMethod method = opts.method;
  if (method == ExactMethod::kAuto)
    method = sites >= 64 ? ExactMethod::kFft : ExactMethod::kDirect;
  const char* exact_rung = method == ExactMethod::kFft ? "exact_fft" : "exact_direct";
  {
    const double predicted_ms = costs.predict_ms(exact_rung, sites);
    const double remaining_ms = run.remaining_s() * 1e3;
    if (predicted_ms <= remaining_ms) {
      try {
        opts.run = &run;
        LeakageEstimate e = exact.estimate(placement, opts);
        e.degradation = trail;
        return e;
      } catch (const DeadlineExceeded&) {
        rethrow_if_external(run);
        append_note(&trail, cancelled_note(exact_rung));
      }
    } else {
      append_note(&trail, over_budget_note(exact_rung, predicted_ms, remaining_ms));
    }
  }

  // Rung 2: distance histogram (eq. 17).
  {
    const double predicted_ms = costs.predict_ms("linear", sites);
    const double remaining_ms = run.remaining_s() * 1e3;
    if (predicted_ms <= remaining_ms) {
      try {
        LeakageEstimate e = estimate_linear(rg, fp, &run);
        e.degradation = trail;
        return e;
      } catch (const DeadlineExceeded&) {
        rethrow_if_external(run);
        append_note(&trail, cancelled_note("linear"));
      }
    } else {
      append_note(&trail, over_budget_note("linear", predicted_ms, remaining_ms));
    }
  }

  // Rung 3: the O(1) integral (eqs. 25/26, rect fallback inside) always
  // answers.
  LeakageEstimate e = estimate_integral_polar(rg, fp);
  e.degradation = trail;
  return e;
}

}  // namespace rgleak::core
