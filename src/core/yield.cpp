#include "core/yield.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double q) {
  RGLEAK_REQUIRE(q > 0.0 && q < 1.0, "quantile probability must be in (0, 1)");
  // Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1.0 - plow;
  double x;
  if (q < plow) {
    const double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= phigh) {
    const double u = q - 0.5;
    const double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  // Halley refinement against the exact CDF.
  const double e = normal_cdf(x) - q;
  const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
  const double u = e / pdf;
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

LeakageYieldModel::LeakageYieldModel(const LeakageEstimate& estimate,
                                     LeakageDistribution shape)
    : estimate_(estimate), shape_(shape) {
  RGLEAK_REQUIRE(estimate.mean_na > 0.0, "yield model needs positive mean leakage");
  RGLEAK_REQUIRE(estimate.sigma_na >= 0.0, "yield model needs non-negative sigma");
  // Log-normal moment matching: if X ~ LN(mu, s^2) then
  //   E X = exp(mu + s^2/2),  Var X = (exp(s^2) - 1) exp(2 mu + s^2).
  const double cv2 = estimate.cv() * estimate.cv();
  sigma_ln_ = std::sqrt(std::log1p(cv2));
  mu_ln_ = std::log(estimate.mean_na) - 0.5 * sigma_ln_ * sigma_ln_;
}

double LeakageYieldModel::cdf(double budget_na) const {
  if (budget_na <= 0.0) return 0.0;
  if (estimate_.sigma_na == 0.0) return budget_na >= estimate_.mean_na ? 1.0 : 0.0;
  if (shape_ == LeakageDistribution::kNormal)
    return normal_cdf((budget_na - estimate_.mean_na) / estimate_.sigma_na);
  return normal_cdf((std::log(budget_na) - mu_ln_) / sigma_ln_);
}

double LeakageYieldModel::quantile(double q) const {
  RGLEAK_REQUIRE(q > 0.0 && q < 1.0, "quantile probability must be in (0, 1)");
  if (estimate_.sigma_na == 0.0) return estimate_.mean_na;
  const double z = normal_quantile(q);
  if (shape_ == LeakageDistribution::kNormal)
    return estimate_.mean_na + z * estimate_.sigma_na;
  return std::exp(mu_ln_ + z * sigma_ln_);
}

}  // namespace rgleak::core
