#pragma once
// Multi-block floorplan estimation: the paper's early-mode story extended to
// block-level planning.
//
// A chip is rarely one homogeneous sea of gates — it is a floorplan of IP
// blocks, each with its own (expected) cell mix. Each block gets its own
// Random Gate; within-block variance follows eq. (17) on the block's
// rectangle, and covariance *between* blocks uses the cross-mixture map
// F_AB(rho_L) with the exact count of site pairs at each (dx, dy) offset
// between two rectangles (indicator cross-correlation, closed form). The
// chip total is assembled from the block covariance matrix.

#include <string>
#include <vector>

#include "core/estimate.h"
#include "core/random_gate.h"
#include "math/linalg.h"
#include "placement/placement.h"

namespace rgleak::core {

/// One floorplan block: a rectangle of sites on the chip grid plus the
/// block's expected cell-usage distribution.
struct BlockSpec {
  std::string name;
  netlist::UsageHistogram usage;
  std::size_t col0 = 0, row0 = 0;  ///< origin site of the rectangle
  std::size_t cols = 0, rows = 0;  ///< extent in sites

  std::size_t num_sites() const { return cols * rows; }
};

class MultiBlockEstimator {
 public:
  /// Blocks must lie inside the floorplan and must not overlap. Sites not
  /// covered by any block are whitespace (no leakage).
  MultiBlockEstimator(const charlib::CharacterizedLibrary& chars,
                      placement::Floorplan floorplan, std::vector<BlockSpec> blocks,
                      double signal_probability = 0.5,
                      CorrelationMode mode = CorrelationMode::kAnalytic);

  std::size_t num_blocks() const { return blocks_.size(); }
  const BlockSpec& block(std::size_t b) const;

  /// Leakage statistics of one block in isolation (eq. (17) on its rectangle).
  LeakageEstimate block_estimate(std::size_t b) const;

  /// Covariance (nA^2) between two blocks' totals (b1 == b2 gives the
  /// block's variance).
  double block_covariance(std::size_t b1, std::size_t b2) const;

  /// Correlation between two blocks' totals.
  double block_correlation(std::size_t b1, std::size_t b2) const;

  /// Block-total covariance matrix.
  math::Matrix covariance_matrix() const;

  /// Chip total: sum of block means, variance from the full block covariance
  /// matrix.
  LeakageEstimate chip_estimate() const;

  /// Moves block `b` to a new origin (same extent). Validates bounds and
  /// non-overlap against the other blocks. Mixture models are position-
  /// independent, so moves are cheap — the basis of the variance-aware
  /// floorplan optimizer.
  void set_block_position(std::size_t b, std::size_t col0, std::size_t row0);

  /// Swaps the origins of two blocks with identical extents (the occupied
  /// area is unchanged, so validity is preserved).
  void swap_block_positions(std::size_t b1, std::size_t b2);

 private:
  const charlib::CharacterizedLibrary* chars_;
  placement::Floorplan fp_;
  std::vector<BlockSpec> blocks_;
  CorrelationMode mode_;
  std::vector<RandomGate> rg_;  // one per block
  // Upper-triangular (including diagonal) cross-covariance models indexed
  // b1 * nblocks + b2 for b1 <= b2.
  std::vector<charlib::CrossRgCovariance> cross_;

  const charlib::CrossRgCovariance& cross(std::size_t b1, std::size_t b2) const;
  double rect_pair_sum(std::size_t b1, std::size_t b2) const;
};

}  // namespace rgleak::core
