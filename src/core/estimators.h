#pragma once
// The three full-chip estimators of section 3, plus the O(n^2) exact baseline:
//
//  * estimate_linear      — eq. (17): exact distance-histogram transformation
//                           of the pairwise sum; O(n) in the site count.
//  * estimate_integral_rect — eq. (20): 2-D rectangular-coordinate integral;
//                           O(1) in the site count.
//  * estimate_integral_polar — eqs (25)/(26): 1-D polar integral with the D2D
//                           constant split; O(1); requires the WID correlation
//                           range to fit inside min(W, H), else falls back to
//                           the 2-D form.
//  * ExactEstimator       — the "true leakage" of a specific placed design:
//                           the full pairwise covariance sum. This is the
//                           baseline the paper compares against (Table 1,
//                           Fig. 6). Two evaluation paths: the direct O(n^2)
//                           double loop (reference; thread-pool tiled), and
//                           an exact offset-histogram transform — pairs on
//                           the k x m grid are fully described by (cell-type
//                           pair, |drow|, |dcol|), so the sum collapses to
//                           sum_offsets sum_(t,u) count * cov, with the
//                           per-type-pair offset counts obtained by 2-D FFT
//                           cross-correlation of type-occupancy indicator
//                           grids in O(T^2 n log n).

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/estimate.h"
#include "core/random_gate.h"
#include "math/quadrature.h"
#include "placement/placement.h"
#include "util/run_control.h"
#include "util/thread_pool.h"

namespace rgleak::core {

/// Eq. (17): exact O(n) evaluation of the RG-array leakage variance over a
/// k x m floorplan; mean = n * mu_XI. `run`, when given, is polled once per
/// offset row, so a deadline cancels the sum at row granularity.
LeakageEstimate estimate_linear(const RandomGate& rg, const placement::Floorplan& fp,
                                const util::RunControl* run = nullptr);

/// Eq. (20): constant-time 2-D integral approximation (rectangular
/// coordinates). `opts` controls the quadrature tolerances.
LeakageEstimate estimate_integral_rect(const RandomGate& rg, const placement::Floorplan& fp,
                                       const math::QuadratureOptions& opts = {});

/// Eqs (25)-(26): constant-time 1-D polar integral with the D2D split. Falls
/// back to the rectangular form when D_max >= min(W, H) (the paper's validity
/// condition); `used_polar`, when given, reports which path ran.
LeakageEstimate estimate_integral_polar(const RandomGate& rg, const placement::Floorplan& fp,
                                        const math::QuadratureOptions& opts = {},
                                        bool* used_polar = nullptr);

/// Evaluation path for the exact pairwise sum.
enum class ExactMethod {
  kAuto,    ///< FFT for large grids, direct for tiny ones.
  kDirect,  ///< O(n^2) pairwise double loop (tiled over the thread pool).
  kFft,     ///< O(T^2 n log n) FFT offset histogram.
};

struct ExactOptions {
  ExactMethod method = ExactMethod::kAuto;
  /// Worker threads; 0 = hardware concurrency. Results are identical for
  /// every thread count (fixed tiling, fixed-order reduction). Pools are
  /// cached per thread count, so repeated estimates reuse workers.
  std::size_t threads = 0;
  /// Optional caller-provided pool; overrides `threads` when non-null.
  util::ThreadPool* pool = nullptr;
  /// Optional run control: polled between chunks (direct-path tiles, FFT
  /// transform/type-pair batches), so an armed deadline or a stop request
  /// cancels the estimate within one chunk (DeadlineExceeded). Unarmed cost
  /// is one relaxed atomic load per chunk.
  const util::RunControl* run = nullptr;
};

/// The "true leakage" of a placed design. The covariance between two placed
/// gates mixes the per-state pairwise covariances of their cell types under
/// the signal-probability state distribution; in analytic mode these come
/// from the f_{m,n} mapping (cached per type pair on a rho grid), in
/// simplified mode cov = sigma_m sigma_n rho_L(d). Thread-safe: concurrent
/// estimate() / type_covariance() calls are allowed.
class ExactEstimator {
 public:
  ExactEstimator(const charlib::CharacterizedLibrary& chars, double signal_probability,
                 CorrelationMode mode);

  ExactEstimator(const ExactEstimator&) = delete;
  ExactEstimator& operator=(const ExactEstimator&) = delete;

  /// Full pairwise estimate for a placed netlist.
  LeakageEstimate estimate(const placement::Placement& placement,
                           const ExactOptions& options = {}) const;

  /// Pairwise covariance of cell types (m, n) at length correlation rho_l
  /// (exposed for validation).
  double type_covariance(std::size_t type_m, std::size_t type_n, double rho_l) const;

 private:
  const charlib::CharacterizedLibrary* chars_;
  double signal_probability_;
  CorrelationMode mode_;
  std::vector<charlib::EffectiveCellStats> effective_;     // per library cell
  std::vector<double> proc_sigma_;                         // state-weighted process sigma
  std::vector<std::vector<double>> state_probs_;           // per library cell
  std::size_t num_types_ = 0;

  // Analytic mode: per type pair, covariance sampled on a uniform rho grid.
  // Lazily built, double-checked: a published slot is immutable, so the hot
  // path is a single acquire load; misses build under the mutex.
  static constexpr std::size_t kRhoGrid = 33;
  mutable std::vector<std::atomic<const std::vector<double>*>> pair_grid_;  // p*p slots
  mutable std::vector<std::unique_ptr<const std::vector<double>>> pair_grid_owned_;
  mutable std::mutex pair_grid_mutex_;

  const std::vector<double>& pair_grid(std::size_t m, std::size_t n) const;
  double exact_pair_covariance(std::size_t m, std::size_t n, double rho_l) const;

  /// rho_L per grid offset (|drow| * cols + |dcol|), shared by both paths.
  std::vector<double> offset_rho(const placement::Floorplan& fp) const;
  LeakageEstimate estimate_direct(const placement::Placement& placement,
                                  util::ThreadPool& pool, const util::RunControl* run) const;
  LeakageEstimate estimate_fft(const placement::Placement& placement,
                               util::ThreadPool& pool, const util::RunControl* run) const;
};

/// Multiplicative correction to the chip mean leakage from random Vt
/// variation (section 2.1): E[exp(-dVt/(n vT))] = exp(sigma_vt^2/(2 (n vT)^2))
/// for dVt ~ N(0, sigma_vt^2) — the log-normal mean term of [Rao'04/Helms'06].
double vt_mean_factor(const process::VtVariation& vt, const device::TechnologyParams& tech);

}  // namespace rgleak::core
