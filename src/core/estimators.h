#pragma once
// The three full-chip estimators of section 3, plus the O(n^2) exact baseline:
//
//  * estimate_linear      — eq. (17): exact distance-histogram transformation
//                           of the pairwise sum; O(n) in the site count.
//  * estimate_integral_rect — eq. (20): 2-D rectangular-coordinate integral;
//                           O(1) in the site count.
//  * estimate_integral_polar — eqs (25)/(26): 1-D polar integral with the D2D
//                           constant split; O(1); requires the WID correlation
//                           range to fit inside min(W, H), else falls back to
//                           the 2-D form.
//  * ExactEstimator       — the "true leakage" of a specific placed design:
//                           full pairwise covariance sum, O(n^2). This is the
//                           baseline the paper compares against (Table 1,
//                           Fig. 6).

#include <optional>
#include <vector>

#include "core/estimate.h"
#include "core/random_gate.h"
#include "math/quadrature.h"
#include "placement/placement.h"

namespace rgleak::core {

/// Eq. (17): exact O(n) evaluation of the RG-array leakage variance over a
/// k x m floorplan; mean = n * mu_XI.
LeakageEstimate estimate_linear(const RandomGate& rg, const placement::Floorplan& fp);

/// Eq. (20): constant-time 2-D integral approximation (rectangular
/// coordinates). `opts` controls the quadrature tolerances.
LeakageEstimate estimate_integral_rect(const RandomGate& rg, const placement::Floorplan& fp,
                                       const math::QuadratureOptions& opts = {});

/// Eqs (25)-(26): constant-time 1-D polar integral with the D2D split. Falls
/// back to the rectangular form when D_max >= min(W, H) (the paper's validity
/// condition); `used_polar`, when given, reports which path ran.
LeakageEstimate estimate_integral_polar(const RandomGate& rg, const placement::Floorplan& fp,
                                        const math::QuadratureOptions& opts = {},
                                        bool* used_polar = nullptr);

/// The O(n^2) "true leakage" of a placed design. The covariance between two
/// placed gates mixes the per-state pairwise covariances of their cell types
/// under the signal-probability state distribution; in analytic mode these
/// come from the f_{m,n} mapping (cached per type pair on a rho grid), in
/// simplified mode cov = sigma_m sigma_n rho_L(d).
class ExactEstimator {
 public:
  ExactEstimator(const charlib::CharacterizedLibrary& chars, double signal_probability,
                 CorrelationMode mode);

  /// Full pairwise estimate for a placed netlist.
  LeakageEstimate estimate(const placement::Placement& placement) const;

  /// Pairwise covariance of cell types (m, n) at length correlation rho_l
  /// (exposed for validation).
  double type_covariance(std::size_t type_m, std::size_t type_n, double rho_l) const;

 private:
  const charlib::CharacterizedLibrary* chars_;
  double signal_probability_;
  CorrelationMode mode_;
  std::vector<charlib::EffectiveCellStats> effective_;     // per library cell
  std::vector<double> proc_sigma_;                         // state-weighted process sigma
  std::vector<std::vector<double>> state_probs_;           // per library cell

  // Analytic mode: per type pair, covariance sampled on a uniform rho grid.
  static constexpr std::size_t kRhoGrid = 33;
  mutable std::vector<std::optional<std::vector<double>>> pair_grid_;  // p*p entries
  std::size_t num_types_ = 0;

  const std::vector<double>& pair_grid(std::size_t m, std::size_t n) const;
  double exact_pair_covariance(std::size_t m, std::size_t n, double rho_l) const;
};

/// Multiplicative correction to the chip mean leakage from random Vt
/// variation (section 2.1): E[exp(-dVt/(n vT))] = exp(sigma_vt^2/(2 (n vT)^2))
/// for dVt ~ N(0, sigma_vt^2) — the log-normal mean term of [Rao'04/Helms'06].
double vt_mean_factor(const process::VtVariation& vt, const device::TechnologyParams& tech);

}  // namespace rgleak::core
