#include "core/connectivity_estimator.h"

#include <cmath>

#include "charlib/correlation_map.h"
#include "util/require.h"

namespace rgleak::core {

ConnectivityAwareEstimator::ConnectivityAwareEstimator(
    const charlib::CharacterizedLibrary& chars, CorrelationMode mode)
    : chars_(&chars), mode_(mode) {
  if (mode_ == CorrelationMode::kAnalytic)
    RGLEAK_REQUIRE(chars.has_models(),
                   "analytic correlation mode needs an analytically characterized library");
}

const std::vector<double>& ConnectivityAwareEstimator::product_grid(
    std::size_t cell_a, std::uint32_t state_a, std::size_t cell_b,
    std::uint32_t state_b) const {
  // Symmetric in the two (cell, state) pairs; canonicalize the key.
  std::uint64_t ka = (static_cast<std::uint64_t>(cell_a) << 20) | state_a;
  std::uint64_t kb = (static_cast<std::uint64_t>(cell_b) << 20) | state_b;
  if (ka > kb) std::swap(ka, kb);
  const std::uint64_t key = (ka << 32) | kb;
  const auto it = product_grid_.find(key);
  if (it != product_grid_.end()) return it->second;

  const std::size_t ca = static_cast<std::size_t>(ka >> 20);
  const auto sa = static_cast<std::uint32_t>(ka & 0xfffffu);
  const std::size_t cb = static_cast<std::size_t>(kb >> 20);
  const auto sb = static_cast<std::uint32_t>(kb & 0xfffffu);
  const auto& ma = *chars_->cell(ca).states[sa].model;
  const auto& mb = *chars_->cell(cb).states[sb].model;
  const double mu = chars_->process().length().mean_nm;
  const double sigma = chars_->process().length().sigma_total_nm();

  std::vector<double> grid(kRhoGrid);
  for (std::size_t i = 0; i < kRhoGrid; ++i) {
    const double rho = static_cast<double>(i) / static_cast<double>(kRhoGrid - 1);
    grid[i] = charlib::pair_product_expectation(ma, mb, mu, sigma, rho);
  }
  return product_grid_.emplace(key, std::move(grid)).first->second;
}

LeakageEstimate ConnectivityAwareEstimator::estimate(const netlist::ConnectedNetlist& netlist,
                                                     const placement::Floorplan& fp,
                                                     double input_probability) const {
  const std::size_t n = netlist.size();
  RGLEAK_REQUIRE(fp.num_sites() >= n, "floorplan has fewer sites than gates");

  // Propagate probabilities and build per-gate pruned state distributions.
  const std::vector<double> net_probs =
      netlist::propagate_probabilities(netlist, input_probability);
  const auto gate_inputs = netlist::gate_input_probabilities(netlist, net_probs);

  struct GateDist {
    std::size_t cell = 0;
    std::vector<std::pair<std::uint32_t, double>> states;  // (state, prob), pruned
    double mean_na = 0.0;
    double sigma_na = 0.0;       // state-mixed total sigma (diagonal term)
    double proc_sigma_na = 0.0;  // state-weighted process sigma (rho_mn = rho_L model)
  };
  std::vector<GateDist> dist(n);
  for (std::size_t g = 0; g < n; ++g) {
    const std::size_t ci = netlist.gate(g).cell_index;
    const cells::Cell& cell = chars_->library().cell(ci);
    GateDist& d = dist[g];
    d.cell = ci;
    double mean = 0.0, second = 0.0, proc_sigma = 0.0;
    for (std::uint32_t s = 0; s < cell.num_states(); ++s) {
      double p = 1.0;
      for (int bit = 0; bit < cell.num_inputs(); ++bit)
        p *= ((s >> bit) & 1u) ? gate_inputs[g][static_cast<std::size_t>(bit)]
                               : 1.0 - gate_inputs[g][static_cast<std::size_t>(bit)];
      if (p < 1e-9) continue;
      const auto& st = chars_->cell(ci).states[s];
      d.states.emplace_back(s, p);
      mean += p * st.mean_na;
      second += p * (st.sigma_na * st.sigma_na + st.mean_na * st.mean_na);
      proc_sigma += p * st.sigma_na;
    }
    // Renormalize after pruning.
    double total_p = 0.0;
    for (auto& [s, p] : d.states) total_p += p;
    RGLEAK_REQUIRE(total_p > 0.0, "gate has empty state distribution");
    for (auto& [s, p] : d.states) p /= total_p;
    mean /= total_p;
    second /= total_p;
    proc_sigma /= total_p;
    d.mean_na = mean;
    const double var = second - mean * mean;
    d.sigma_na = var > 0.0 ? std::sqrt(var) : 0.0;
    d.proc_sigma_na = proc_sigma;
  }

  // rho_L per grid offset.
  const std::size_t k = fp.rows, m = fp.cols;
  std::vector<double> rho(k * m);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < m; ++i)
      rho[j * m + i] = chars_->process().total_length_correlation_xy(
          static_cast<double>(i) * fp.site_w_nm, static_cast<double>(j) * fp.site_h_nm);

  double mean = 0.0, var = 0.0;
  for (const auto& d : dist) {
    mean += d.mean_na;
    var += d.sigma_na * d.sigma_na;  // diagonal
  }

  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t ra = a / m, ca = a % m;
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::size_t rb = b / m, cb = b % m;
      const std::size_t dr = ra > rb ? ra - rb : rb - ra;
      const std::size_t dc = ca > cb ? ca - cb : cb - ca;
      const double r = rho[dr * m + dc];
      double cov;
      if (mode_ == CorrelationMode::kSimplified) {
        // rho_mn = rho_L applies to the process-variation component only —
        // state choice is independent across gates, so the state-mixing
        // spread must not enter the cross covariance (cf. eq. (10)).
        cov = dist[a].proc_sigma_na * dist[b].proc_sigma_na * r;
      } else {
        const double pos = r * static_cast<double>(kRhoGrid - 1);
        const auto idx = std::min(static_cast<std::size_t>(pos), kRhoGrid - 2);
        const double frac = pos - static_cast<double>(idx);
        cov = 0.0;
        for (const auto& [sa, pa] : dist[a].states) {
          for (const auto& [sb, pb] : dist[b].states) {
            const std::vector<double>& grid =
                product_grid(dist[a].cell, sa, dist[b].cell, sb);
            const double e12 = grid[idx] + frac * (grid[idx + 1] - grid[idx]);
            cov += pa * pb *
                   (e12 - chars_->cell(dist[a].cell).states[sa].mean_na *
                              chars_->cell(dist[b].cell).states[sb].mean_na);
          }
        }
      }
      var += 2.0 * cov;
    }
  }

  LeakageEstimate e;
  e.mean_na = mean;
  e.sigma_na = std::sqrt(std::max(0.0, var));
  return e;
}

}  // namespace rgleak::core
