#include "core/multi_vt.h"

#include <cmath>

#include "core/estimators.h"
#include "core/random_gate.h"
#include "util/require.h"

namespace rgleak::core {

double alpha_power_delay_ratio(const device::TechnologyParams& tech, double vt_shift_v,
                               double alpha) {
  const double drive_base = tech.vdd_v - tech.vt0_n_v;
  const double drive_shifted = tech.vdd_v - (tech.vt0_n_v + vt_shift_v);
  RGLEAK_REQUIRE(drive_base > 0.0 && drive_shifted > 0.0,
                 "Vt shift leaves no gate overdrive");
  return std::pow(drive_base / drive_shifted, alpha);
}

std::vector<MultiVtPoint> hvt_tradeoff(const charlib::CharacterizedLibrary& chars,
                                       const netlist::UsageHistogram& svt_usage,
                                       const placement::Floorplan& floorplan,
                                       double hvt_vt_shift_v, const MultiVtOptions& options) {
  RGLEAK_REQUIRE(options.steps >= 2, "tradeoff sweep needs at least two steps");
  svt_usage.validate();
  RGLEAK_REQUIRE(svt_usage.alphas.size() == chars.size(), "histogram/library size mismatch");

  const cells::StdCellLibrary& lib = chars.library();
  // Resolve every used SVT cell's HVT sibling once.
  std::vector<std::pair<std::size_t, std::size_t>> svt_to_hvt;  // (svt idx, hvt idx)
  for (std::size_t i = 0; i < svt_usage.alphas.size(); ++i) {
    if (svt_usage.alphas[i] == 0.0) continue;
    const std::string hvt_name = lib.cell(i).name() + options.hvt_suffix;
    RGLEAK_REQUIRE(lib.contains(hvt_name),
                   "no HVT sibling for cell " + lib.cell(i).name());
    svt_to_hvt.emplace_back(i, lib.index_of(hvt_name));
  }
  const double delay_ratio =
      alpha_power_delay_ratio(lib.tech(), hvt_vt_shift_v, options.alpha);

  std::vector<MultiVtPoint> curve;
  curve.reserve(options.steps);
  for (std::size_t s = 0; s < options.steps; ++s) {
    const double f = static_cast<double>(s) / static_cast<double>(options.steps - 1);
    netlist::UsageHistogram mixed;
    mixed.alphas.assign(chars.size(), 0.0);
    for (const auto& [svt, hvt] : svt_to_hvt) {
      mixed.alphas[svt] = svt_usage.alphas[svt] * (1.0 - f);
      mixed.alphas[hvt] = svt_usage.alphas[svt] * f;
    }
    const RandomGate rg(chars, mixed, options.signal_probability,
                        CorrelationMode::kAnalytic);
    MultiVtPoint pt;
    pt.hvt_fraction = f;
    pt.estimate = estimate_linear(rg, floorplan);
    // Mean delay proxy: swapped cells slow by delay_ratio, others unchanged.
    pt.delay_penalty = 1.0 + f * (delay_ratio - 1.0);
    curve.push_back(pt);
  }
  return curve;
}

}  // namespace rgleak::core
