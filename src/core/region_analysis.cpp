#include "core/region_analysis.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

RegionAnalysis::RegionAnalysis(const RandomGate* rg, placement::Floorplan floorplan,
                               std::size_t tiles_x, std::size_t tiles_y)
    : rg_(rg), fp_(floorplan), tiles_x_(tiles_x), tiles_y_(tiles_y) {
  RGLEAK_REQUIRE(rg_ != nullptr, "region analysis needs a random gate");
  RGLEAK_REQUIRE(tiles_x >= 1 && tiles_y >= 1, "need at least one tile per axis");
  RGLEAK_REQUIRE(fp_.cols % tiles_x == 0, "cols must divide evenly into tiles_x");
  RGLEAK_REQUIRE(fp_.rows % tiles_y == 0, "rows must divide evenly into tiles_y");
  tile_cols_ = fp_.cols / tiles_x;
  tile_rows_ = fp_.rows / tiles_y;
}

// Sum of covariances over all site pairs between two tile_cols_ x tile_rows_
// tiles whose origins differ by (col_offset_sites, row_offset_sites).
double RegionAnalysis::pair_sum(long long col_offset, long long row_offset) const {
  const auto mc = static_cast<long long>(tile_cols_);
  const auto mr = static_cast<long long>(tile_rows_);
  double total = 0.0;
  // Column-difference histogram: count(dc) = mc - |dc - col_offset| for
  // |dc - col_offset| < mc; likewise for rows.
  for (long long dc = col_offset - mc + 1; dc <= col_offset + mc - 1; ++dc) {
    const double wc = static_cast<double>(mc - std::llabs(dc - col_offset));
    const double dx = static_cast<double>(dc) * fp_.site_w_nm;
    for (long long dr = row_offset - mr + 1; dr <= row_offset + mr - 1; ++dr) {
      const double wr = static_cast<double>(mr - std::llabs(dr - row_offset));
      const double dy = static_cast<double>(dr) * fp_.site_h_nm;
      total += wc * wr * rg_->covariance_at_offset(dx, dy);
    }
  }
  return total;
}

LeakageEstimate RegionAnalysis::tile_estimate() const {
  LeakageEstimate e;
  e.mean_na = static_cast<double>(tile_sites()) * rg_->mean_na();
  e.sigma_na = std::sqrt(pair_sum(0, 0));
  return e;
}

double RegionAnalysis::tile_covariance(std::size_t tx1, std::size_t ty1, std::size_t tx2,
                                       std::size_t ty2) const {
  RGLEAK_REQUIRE(tx1 < tiles_x_ && tx2 < tiles_x_, "tile x index out of range");
  RGLEAK_REQUIRE(ty1 < tiles_y_ && ty2 < tiles_y_, "tile y index out of range");
  const long long dc = (static_cast<long long>(tx2) - static_cast<long long>(tx1)) *
                       static_cast<long long>(tile_cols_);
  const long long dr = (static_cast<long long>(ty2) - static_cast<long long>(ty1)) *
                       static_cast<long long>(tile_rows_);
  return pair_sum(dc, dr);
}

double RegionAnalysis::tile_correlation(std::size_t tx1, std::size_t ty1, std::size_t tx2,
                                        std::size_t ty2) const {
  const double var = pair_sum(0, 0);
  RGLEAK_REQUIRE(var > 0.0, "tile variance is zero");
  return tile_covariance(tx1, ty1, tx2, ty2) / var;
}

math::Matrix RegionAnalysis::covariance_matrix() const {
  const std::size_t t = tiles_x_ * tiles_y_;
  math::Matrix cov(t, t);
  for (std::size_t a = 0; a < t; ++a) {
    for (std::size_t b = a; b < t; ++b) {
      const double c = tile_covariance(a % tiles_x_, a / tiles_x_, b % tiles_x_, b / tiles_x_);
      cov(a, b) = cov(b, a) = c;
    }
  }
  return cov;
}

LeakageEstimate RegionAnalysis::chip_estimate() const {
  const math::Matrix cov = covariance_matrix();
  double var = 0.0;
  for (std::size_t a = 0; a < cov.rows(); ++a)
    for (std::size_t b = 0; b < cov.cols(); ++b) var += cov(a, b);
  LeakageEstimate e;
  e.mean_na = static_cast<double>(fp_.num_sites()) * rg_->mean_na();
  e.sigma_na = std::sqrt(var);
  return e;
}

}  // namespace rgleak::core
