#pragma once
// Result type shared by all full-chip leakage estimators.

#include <cmath>

namespace rgleak::core {

/// Mean and standard deviation of total chip leakage (nA).
struct LeakageEstimate {
  double mean_na = 0.0;
  double sigma_na = 0.0;

  double variance_na2() const { return sigma_na * sigma_na; }
  /// Coefficient of variation sigma/mean.
  double cv() const { return mean_na > 0.0 ? sigma_na / mean_na : 0.0; }
};

}  // namespace rgleak::core
