#pragma once
// Result type shared by all full-chip leakage estimators.

#include <cmath>
#include <string>

namespace rgleak::core {

/// Mean and standard deviation of total chip leakage (nA), plus provenance:
/// which estimator rung produced the numbers and, under a time budget,
/// whether (and why) the answer was degraded from the requested method.
struct LeakageEstimate {
  double mean_na = 0.0;
  double sigma_na = 0.0;

  /// Rung that produced this result: "linear", "integral_rect",
  /// "integral_polar", "exact_direct", or "exact_fft".
  std::string method;
  /// Empty when the requested method ran; otherwise why the budgeted
  /// estimator walked down the accuracy ladder (e.g. "linear predicted
  /// 120.0 ms > budget 50.0 ms").
  std::string degradation;

  double variance_na2() const { return sigma_na * sigma_na; }
  /// Coefficient of variation sigma/mean.
  double cv() const { return mean_na > 0.0 ? sigma_na / mean_na : 0.0; }
};

}  // namespace rgleak::core
