#include "core/multi_block.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::core {

namespace {

bool rectangles_overlap(const BlockSpec& a, const BlockSpec& b) {
  const bool x_disjoint = a.col0 + a.cols <= b.col0 || b.col0 + b.cols <= a.col0;
  const bool y_disjoint = a.row0 + a.rows <= b.row0 || b.row0 + b.rows <= a.row0;
  return !(x_disjoint || y_disjoint);
}

}  // namespace

MultiBlockEstimator::MultiBlockEstimator(const charlib::CharacterizedLibrary& chars,
                                         placement::Floorplan floorplan,
                                         std::vector<BlockSpec> blocks,
                                         double signal_probability, CorrelationMode mode)
    : chars_(&chars), fp_(floorplan), blocks_(std::move(blocks)), mode_(mode) {
  RGLEAK_REQUIRE(!blocks_.empty(), "multi-block estimator needs at least one block");
  for (const auto& b : blocks_) {
    RGLEAK_REQUIRE(b.cols >= 1 && b.rows >= 1, "block '" + b.name + "' is empty");
    RGLEAK_REQUIRE(b.col0 + b.cols <= fp_.cols && b.row0 + b.rows <= fp_.rows,
                   "block '" + b.name + "' exceeds the floorplan");
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    for (std::size_t j = i + 1; j < blocks_.size(); ++j)
      RGLEAK_REQUIRE(!rectangles_overlap(blocks_[i], blocks_[j]),
                     "blocks '" + blocks_[i].name + "' and '" + blocks_[j].name +
                         "' overlap");

  rg_.reserve(blocks_.size());
  std::vector<std::vector<charlib::RgComponent>> components;
  for (const auto& b : blocks_) {
    rg_.emplace_back(chars, b.usage, signal_probability, mode);
    components.push_back(
        charlib::make_rg_components(chars, b.usage.alphas, signal_probability));
  }

  const double mu = chars.process().length().mean_nm;
  const double sigma = chars.process().length().sigma_total_nm();
  cross_.reserve(blocks_.size() * blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = 0; j < blocks_.size(); ++j) {
      if (j < i) continue;  // store upper triangle in order
      if (mode == CorrelationMode::kAnalytic) {
        cross_.emplace_back(components[i], components[j], mu, sigma);
      } else {
        cross_.emplace_back(components[i], components[j], /*simplified=*/true);
      }
    }
  }
}

const BlockSpec& MultiBlockEstimator::block(std::size_t b) const {
  RGLEAK_REQUIRE(b < blocks_.size(), "block index out of range");
  return blocks_[b];
}

const charlib::CrossRgCovariance& MultiBlockEstimator::cross(std::size_t b1,
                                                             std::size_t b2) const {
  if (b1 > b2) std::swap(b1, b2);
  // Upper-triangular row-major layout: row i starts after sum of previous
  // row lengths (n - k for k < i).
  const std::size_t n = blocks_.size();
  const std::size_t row_start = b1 * n - b1 * (b1 + 1) / 2 + b1;  // == b1*(n) - ...
  return cross_[row_start + (b2 - b1)];
}

double MultiBlockEstimator::rect_pair_sum(std::size_t b1, std::size_t b2) const {
  const BlockSpec& a = blocks_[b1];
  const BlockSpec& b = blocks_[b2];
  const auto a0c = static_cast<long long>(a.col0), a0r = static_cast<long long>(a.row0);
  const auto b0c = static_cast<long long>(b.col0), b0r = static_cast<long long>(b.row0);
  const auto mac = static_cast<long long>(a.cols), mar = static_cast<long long>(a.rows);
  const auto mbc = static_cast<long long>(b.cols), mbr = static_cast<long long>(b.rows);

  const bool same = b1 == b2;
  const auto& cross_model = cross(b1, b2);
  const RandomGate& rg = rg_[b1];
  const process::ProcessVariation& process = chars_->process();

  double total = 0.0;
  // Column offset histogram: count of (c1 in A, c2 in B) with c2 - c1 = dc.
  for (long long dc = b0c - (a0c + mac) + 1; dc <= b0c + mbc - 1 - a0c; ++dc) {
    const long long lo = std::max(a0c, b0c - dc);
    const long long hi = std::min(a0c + mac, b0c + mbc - dc);
    if (hi <= lo) continue;
    const double wc = static_cast<double>(hi - lo);
    const double dx = static_cast<double>(dc) * fp_.site_w_nm;
    for (long long dr = b0r - (a0r + mar) + 1; dr <= b0r + mbr - 1 - a0r; ++dr) {
      const long long rlo = std::max(a0r, b0r - dr);
      const long long rhi = std::min(a0r + mar, b0r + mbr - dr);
      if (rhi <= rlo) continue;
      const double wr = static_cast<double>(rhi - rlo);
      const double dy = static_cast<double>(dr) * fp_.site_h_nm;
      double cov;
      if (same) {
        cov = rg.covariance_at_offset(dx, dy);  // handles the (0,0) diagonal
      } else {
        cov = cross_model.covariance(process.total_length_correlation_xy(dx, dy));
      }
      total += wc * wr * cov;
    }
  }
  return total;
}

LeakageEstimate MultiBlockEstimator::block_estimate(std::size_t b) const {
  RGLEAK_REQUIRE(b < blocks_.size(), "block index out of range");
  LeakageEstimate e;
  e.mean_na = static_cast<double>(blocks_[b].num_sites()) * rg_[b].mean_na();
  e.sigma_na = std::sqrt(rect_pair_sum(b, b));
  return e;
}

double MultiBlockEstimator::block_covariance(std::size_t b1, std::size_t b2) const {
  RGLEAK_REQUIRE(b1 < blocks_.size() && b2 < blocks_.size(), "block index out of range");
  return rect_pair_sum(b1, b2);
}

double MultiBlockEstimator::block_correlation(std::size_t b1, std::size_t b2) const {
  const double v1 = rect_pair_sum(b1, b1);
  const double v2 = rect_pair_sum(b2, b2);
  RGLEAK_REQUIRE(v1 > 0.0 && v2 > 0.0, "block variance is zero");
  return block_covariance(b1, b2) / std::sqrt(v1 * v2);
}

math::Matrix MultiBlockEstimator::covariance_matrix() const {
  const std::size_t n = blocks_.size();
  math::Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) cov(i, j) = cov(j, i) = block_covariance(i, j);
  return cov;
}

void MultiBlockEstimator::set_block_position(std::size_t b, std::size_t col0,
                                             std::size_t row0) {
  RGLEAK_REQUIRE(b < blocks_.size(), "block index out of range");
  BlockSpec moved = blocks_[b];
  moved.col0 = col0;
  moved.row0 = row0;
  RGLEAK_REQUIRE(moved.col0 + moved.cols <= fp_.cols && moved.row0 + moved.rows <= fp_.rows,
                 "moved block exceeds the floorplan");
  for (std::size_t j = 0; j < blocks_.size(); ++j)
    RGLEAK_REQUIRE(j == b || !rectangles_overlap(moved, blocks_[j]),
                   "moved block overlaps '" + blocks_[j].name + "'");
  blocks_[b].col0 = col0;
  blocks_[b].row0 = row0;
}

void MultiBlockEstimator::swap_block_positions(std::size_t b1, std::size_t b2) {
  RGLEAK_REQUIRE(b1 < blocks_.size() && b2 < blocks_.size(), "block index out of range");
  RGLEAK_REQUIRE(blocks_[b1].cols == blocks_[b2].cols && blocks_[b1].rows == blocks_[b2].rows,
                 "swap needs identical block extents");
  std::swap(blocks_[b1].col0, blocks_[b2].col0);
  std::swap(blocks_[b1].row0, blocks_[b2].row0);
}

LeakageEstimate MultiBlockEstimator::chip_estimate() const {
  const math::Matrix cov = covariance_matrix();
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    mean += static_cast<double>(blocks_[i].num_sites()) * rg_[i].mean_na();
  for (std::size_t i = 0; i < cov.rows(); ++i)
    for (std::size_t j = 0; j < cov.cols(); ++j) var += cov(i, j);
  LeakageEstimate e;
  e.mean_na = mean;
  e.sigma_na = std::sqrt(var);
  return e;
}

}  // namespace rgleak::core
