#pragma once
// Variance-aware floorplanning (an application the paper's framework makes
// cheap enough to embed in an optimization loop).
//
// The chip-total mean is placement-invariant, but the *variance* depends on
// block separations through the cross-block covariances: placing the
// highest-sigma blocks far apart decorrelates them and lowers the chip
// sigma (and therefore the mean+3sigma budget). The optimizer anneals over
// block-to-slot assignments with pairwise swap moves; every objective
// evaluation is an exact O(blocks^2 x block-perimeter) covariance sum — no
// Monte Carlo in the loop.

#include <vector>

#include "core/multi_block.h"
#include "math/rng.h"

namespace rgleak::core {

struct FloorplanOptimizerOptions {
  std::size_t iterations = 2000;
  double initial_temperature = 0.05;  ///< relative to the initial sigma
  double final_temperature = 1e-4;
  std::uint64_t seed = 1;
};

struct FloorplanOptimizerResult {
  double initial_sigma_na = 0.0;
  double final_sigma_na = 0.0;
  std::size_t accepted_moves = 0;
  /// Block origins after optimization, (col0, row0) per block.
  std::vector<std::pair<std::size_t, std::size_t>> positions;
};

/// Anneals the block placement of `estimator` in place (swap moves between
/// equal-extent blocks). Requires at least two blocks with identical extents
/// somewhere in the set (others stay fixed). Deterministic for a seed.
FloorplanOptimizerResult optimize_floorplan(MultiBlockEstimator& estimator,
                                            const FloorplanOptimizerOptions& options = {});

}  // namespace rgleak::core
