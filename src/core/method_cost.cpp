#include "core/method_cost.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace rgleak::core {

double MethodCostModel::basis_value(std::size_t sites) const {
  const double n = static_cast<double>(sites);
  switch (basis) {
    case Basis::kConstant: return 1.0;
    case Basis::kLinear: return n;
    case Basis::kNLogN: return n * std::log2(std::max(2.0, n));
    case Basis::kQuadratic: return n * n;
  }
  return 1.0;
}

CostModel CostModel::defaults() {
  // Coefficients are deliberately pessimistic (slow-core magnitudes): an
  // uncalibrated model should degrade too eagerly rather than blow a budget.
  CostModel m;
  m.rungs_["exact_direct"] = {{MethodCostModel::Basis::kQuadratic, 5e-5}, 0.0};
  m.rungs_["exact_fft"] = {{MethodCostModel::Basis::kNLogN, 5e-3}, 0.0};
  m.rungs_["linear"] = {{MethodCostModel::Basis::kLinear, 2e-3}, 0.0};
  m.rungs_["integral_rect"] = {{MethodCostModel::Basis::kConstant, 50.0}, 0.0};
  m.rungs_["integral_polar"] = {{MethodCostModel::Basis::kConstant, 5.0}, 0.0};
  return m;
}

void CostModel::calibrate(const std::string& method, std::size_t sites, double wall_ms) {
  // Bench records name the exact paths by implementation; fold them onto the
  // rung they predict. The serial direct row is a baseline, not a rung.
  std::string rung = method;
  if (method == "direct_parallel") rung = "exact_direct";
  if (method == "fft") rung = "exact_fft";
  if (method == "direct_serial") return;
  const auto it = rungs_.find(rung);
  if (it == rungs_.end() || sites == 0 || !(wall_ms >= 0.0)) return;
  const double coeff = wall_ms / it->second.model.basis_value(sites);
  if (coeff > it->second.calibrated_coeff_ms) it->second.calibrated_coeff_ms = coeff;
}

double CostModel::predict_ms(const std::string& method, std::size_t sites) const {
  const auto it = rungs_.find(method);
  if (it == rungs_.end()) return std::numeric_limits<double>::infinity();
  const Entry& e = it->second;
  const double coeff = e.calibrated_coeff_ms > 0.0 ? e.calibrated_coeff_ms : e.model.coeff_ms;
  return coeff * e.model.basis_value(sites);
}

namespace {

// Minimal field scanners for the flat one-record-per-object shape the bench
// writes; not a general JSON parser.
bool scan_string_field(const std::string& obj, const std::string& key, std::string* out) {
  const auto k = obj.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  const auto q1 = obj.find('"', obj.find(':', k));
  if (q1 == std::string::npos) return false;
  const auto q2 = obj.find('"', q1 + 1);
  if (q2 == std::string::npos) return false;
  *out = obj.substr(q1 + 1, q2 - q1 - 1);
  return true;
}

bool scan_number_field(const std::string& obj, const std::string& key, double* out) {
  const auto k = obj.find("\"" + key + "\"");
  if (k == std::string::npos) return false;
  const auto colon = obj.find(':', k);
  if (colon == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(obj.c_str() + colon + 1, &end);
  if (errno != 0 || end == obj.c_str() + colon + 1) return false;
  *out = v;
  return true;
}

}  // namespace

CostModel CostModel::from_bench_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) throw IoError("read failed: " + path);
  const std::string text = buffer.str();

  CostModel model = defaults();
  const auto records = text.find("\"records\"");
  if (records == std::string::npos)
    throw ParseError(path, 1, 0, "bench record has no \"records\" array");
  std::size_t pos = records;
  std::size_t parsed = 0;
  while ((pos = text.find('{', pos)) != std::string::npos) {
    const auto close = text.find('}', pos);
    if (close == std::string::npos)
      throw ParseError(path, 1, 0, "unterminated record object");
    const std::string obj = text.substr(pos, close - pos + 1);
    std::string method;
    double sites = 0.0, wall_ms = 0.0;
    if (!scan_string_field(obj, "method", &method) ||
        !scan_number_field(obj, "sites", &sites) ||
        !scan_number_field(obj, "wall_ms", &wall_ms))
      throw ParseError(path, 1, 0,
                       "record needs \"sites\", \"method\", and \"wall_ms\" fields", obj);
    model.calibrate(method, static_cast<std::size_t>(sites), wall_ms);
    ++parsed;
    pos = close + 1;
  }
  if (parsed == 0) throw ParseError(path, 1, 0, "bench record holds no records");
  return model;
}

}  // namespace rgleak::core
