#pragma once
// SPICE netlist export of the virtual library's transistor topologies.
//
// Each cell becomes a .subckt with explicit M devices; internal
// series-chain nodes are materialized so the deck is simulatable against any
// external BSIM model card (handy for cross-checking the built-in
// subthreshold solver against a real simulator, and for inspecting what the
// CellBuilder actually constructed).

#include <iosfwd>
#include <string>

#include "cells/library.h"

namespace rgleak::cells {

struct SpiceWriterOptions {
  std::string nmos_model = "nch";
  std::string pmos_model = "pch";
  double l_nm = 40.0;  ///< drawn channel length emitted on every device
};

/// Writes one cell as a .subckt (pins: A, B, ... VDD VSS plus OUT when the
/// cell has a primary output).
void write_spice_subckt(const Cell& cell, std::ostream& os,
                        const SpiceWriterOptions& options = {});

/// Writes the whole library as a deck of subcircuits.
void write_spice_library(const StdCellLibrary& library, std::ostream& os,
                         const SpiceWriterOptions& options = {});
void write_spice_library(const StdCellLibrary& library, const std::string& path,
                         const SpiceWriterOptions& options = {});

}  // namespace rgleak::cells
