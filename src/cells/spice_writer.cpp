#include "cells/spice_writer.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/require.h"

namespace rgleak::cells {

namespace {

struct Emitter {
  std::ostream& os;
  const Cell& cell;
  const SpiceWriterOptions& opts;
  int next_node = 0;
  int next_device = 0;

  std::string signal_node(int signal) const {
    if (signal < cell.num_inputs()) return std::string(1, static_cast<char>('A' + signal));
    if (signal == cell.gnd_signal()) return "VSS";
    if (signal == cell.vdd_signal()) return "VDD";
    return "n" + std::to_string(signal);
  }

  std::string fresh_node() { return "x" + std::to_string(next_node++); }

  void device_line(const device::NetworkDevice& d, const std::string& hi,
                   const std::string& lo) {
    // M<id> drain gate source bulk model W= L=
    const bool nmos = d.type == device::DeviceType::kNmos;
    os << "M" << next_device++ << ' ' << (nmos ? hi : lo) << ' '
       << signal_node(d.gate_signal) << ' ' << (nmos ? lo : hi) << ' '
       << (nmos ? "VSS" : "VDD") << ' ' << (nmos ? opts.nmos_model : opts.pmos_model)
       << " W=" << d.w_nm * 1e-3 << "u L=" << opts.l_nm * 1e-3 << "u\n";
  }

  // Emits the network between absolute nodes `hi` (higher potential side)
  // and `lo`.
  void emit(const device::Network& n, const std::string& hi, const std::string& lo) {
    switch (n.kind()) {
      case device::Network::Kind::kDevice:
        device_line(n.dev(), hi, lo);
        return;
      case device::Network::Kind::kParallel:
        for (const auto& c : n.children()) emit(c, hi, lo);
        return;
      case device::Network::Kind::kSeries: {
        std::string below = lo;
        for (std::size_t i = 0; i < n.children().size(); ++i) {
          const std::string above =
              i + 1 == n.children().size() ? hi : fresh_node();
          emit(n.children()[i], above, below);
          below = above;
        }
        return;
      }
    }
  }
};

}  // namespace

void write_spice_subckt(const Cell& cell, std::ostream& os, const SpiceWriterOptions& options) {
  os << "* " << cell.name() << ": " << cell.num_devices() << " devices\n";
  os << ".subckt " << cell.name();
  for (int i = 0; i < cell.num_inputs(); ++i) os << ' ' << static_cast<char>('A' + i);
  if (cell.has_primary_output()) os << " OUT";
  os << " VDD VSS\n";

  Emitter e{os, cell, options};
  int next_output = cell.num_inputs() + 2;
  for (const auto& stage : cell.stages()) {
    if (stage.rail_path) {
      e.emit(*stage.rail_path, "VDD", "VSS");
      continue;
    }
    const int out_sig = next_output++;
    const std::string out = e.signal_node(out_sig);
    e.emit(*stage.pdn, out, "VSS");
    e.emit(*stage.pun, "VDD", out);
  }
  if (cell.has_primary_output()) {
    // Alias the primary output's internal node to the OUT pin with a
    // zero-ohm tie (keeps the subckt pin list tool-friendly).
    os << "R0 OUT " << e.signal_node(cell.primary_output_signal()) << " 0\n";
  }
  os << ".ends " << cell.name() << "\n\n";
}

void write_spice_library(const StdCellLibrary& library, std::ostream& os,
                         const SpiceWriterOptions& options) {
  os << "* rgleak virtual 90 nm library — transistor-level leakage view\n";
  os << "* " << library.size() << " cells\n\n";
  for (std::size_t i = 0; i < library.size(); ++i)
    write_spice_subckt(library.cell(i), os, options);
}

void write_spice_library(const StdCellLibrary& library, const std::string& path,
                         const SpiceWriterOptions& options) {
  RGLEAK_FAILPOINT("cells.spice.write");
  util::atomic_write_file(
      path, [&](std::ostream& os) { write_spice_library(library, os, options); });
}

}  // namespace rgleak::cells
