#include "cells/cell.h"

#include "util/require.h"

namespace rgleak::cells {

std::vector<bool> Cell::resolve_signals(std::uint32_t state) const {
  RGLEAK_REQUIRE(state < num_states(), "input state out of range");
  std::vector<bool> signals(static_cast<std::size_t>(num_signals_), false);
  for (int i = 0; i < num_inputs_; ++i)
    signals[static_cast<std::size_t>(i)] = (state >> i) & 1u;
  signals[static_cast<std::size_t>(gnd_signal_)] = false;
  signals[static_cast<std::size_t>(vdd_signal_)] = true;
  int next_output = num_inputs_ + 2;  // inputs, then gnd/vdd, then stage outputs
  for (const auto& stage : stages_) {
    if (!stage.output) continue;
    // Expressions only reference signals defined earlier, so a single forward
    // pass resolves everything.
    const bool value = stage.output->invert ^ stage.output->expr.eval(signals);
    signals[static_cast<std::size_t>(next_output++)] = value;
  }
  return signals;
}

double Cell::leakage_na(std::uint32_t state, double l_nm, const device::TechnologyParams& tech,
                        std::span<const double> dvt_v) const {
  const std::vector<bool> signals = resolve_signals(state);
  std::vector<double> voltage(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) voltage[i] = signals[i] ? tech.vdd_v : 0.0;

  // Fold the systematic multi-Vt flavor offset into the per-device shifts.
  std::vector<double> dvt_combined;
  if (vt_offset_v_ != 0.0) {
    dvt_combined.assign(num_devices_, vt_offset_v_);
    for (std::size_t i = 0; i < dvt_v.size() && i < dvt_combined.size(); ++i)
      dvt_combined[i] += dvt_v[i];
  }

  device::NetworkEvalContext ctx;
  ctx.tech = &tech;
  ctx.gate_voltage_v = voltage;
  ctx.l_nm = l_nm;
  ctx.dvt_v = vt_offset_v_ != 0.0 ? std::span<const double>(dvt_combined) : dvt_v;

  double total = 0.0;
  int next_output = num_inputs_ + 2;
  for (const auto& stage : stages_) {
    if (stage.rail_path) {
      total += device::network_current(*stage.rail_path, ctx, 0.0, tech.vdd_v);
      continue;
    }
    // CMOS stage: the off network (opposite the output level) leaks under
    // full rail bias.
    const bool out_high = signals[static_cast<std::size_t>(next_output++)];
    const device::Network& off = out_high ? *stage.pdn : *stage.pun;
    total += device::network_current(off, ctx, 0.0, tech.vdd_v);
  }

  if (tech.gate_leak_na_per_um2 > 0.0) {
    // Gate-tunneling extension: a device whose channel is inverted (NMOS
    // gate high / PMOS gate low) tunnels across the full oxide bias.
    std::vector<const device::NetworkDevice*> devices;
    for (const auto& stage : stages_) {
      if (stage.pdn) stage.pdn->collect_devices(devices);
      if (stage.pun) stage.pun->collect_devices(devices);
      if (stage.rail_path) stage.rail_path->collect_devices(devices);
    }
    for (const auto* d : devices) {
      const bool gate_high = signals[static_cast<std::size_t>(d->gate_signal)];
      const bool inverted =
          d->type == device::DeviceType::kNmos ? gate_high : !gate_high;
      if (inverted) total += device::gate_tunneling_current(tech, d->w_nm, l_nm);
    }
  }
  return total;
}

CellBuilder::CellBuilder(std::string name, int num_inputs, Sizing sizing)
    : sizing_(sizing),
      next_signal_(num_inputs + 2),
      gnd_signal_(num_inputs),
      vdd_signal_(num_inputs + 1) {
  RGLEAK_REQUIRE(num_inputs >= 0 && num_inputs <= 8, "cells support 0..8 inputs");
  cell_.name_ = std::move(name);
  cell_.num_inputs_ = num_inputs;
  cell_.gnd_signal_ = gnd_signal_;
  cell_.vdd_signal_ = vdd_signal_;
}

int CellBuilder::input(int index) const {
  RGLEAK_REQUIRE(index >= 0 && index < cell_.num_inputs_, "input index out of range");
  return index;
}

int CellBuilder::add_inverting_gate(const Expr& f) {
  Stage stage;
  stage.pdn = build_pulldown(f, sizing_, next_dvt_);
  stage.pun = build_pullup(f, sizing_, next_dvt_);
  stage.output = Stage::Output{f, /*invert=*/true};
  cell_.stages_.push_back(std::move(stage));
  const int signal = next_signal_++;
  // Default primary output: the last logic stage (explicit set wins).
  if (!explicit_primary_) cell_.primary_output_ = signal;
  return signal;
}

int CellBuilder::add_inverter(int signal) { return add_inverting_gate(Expr::var(signal)); }

void CellBuilder::add_tgate_path(int gate_signal) {
  device::NetworkDevice n;
  n.type = device::DeviceType::kNmos;
  n.gate_signal = gate_signal;
  n.w_nm = sizing_.wn_nm * sizing_.drive;
  n.dvt_index = next_dvt_++;
  device::NetworkDevice p;
  p.type = device::DeviceType::kPmos;
  p.gate_signal = gate_signal;
  p.w_nm = sizing_.wp_nm * sizing_.drive;
  p.dvt_index = next_dvt_++;
  Stage stage;
  stage.rail_path =
      device::Network::series({device::Network::device(n), device::Network::device(p)});
  cell_.stages_.push_back(std::move(stage));
}

void CellBuilder::add_off_nmos_path(double width_multiplier) {
  device::NetworkDevice n;
  n.type = device::DeviceType::kNmos;
  n.gate_signal = gnd_signal_;
  n.w_nm = sizing_.wn_nm * sizing_.drive * width_multiplier;
  n.dvt_index = next_dvt_++;
  Stage stage;
  stage.rail_path = device::Network::device(n);
  cell_.stages_.push_back(std::move(stage));
}

Cell Cell::with_vt_flavor(const std::string& suffix, double vt_offset_v) const {
  RGLEAK_REQUIRE(!suffix.empty(), "flavor suffix must be non-empty");
  Cell flavored = *this;
  flavored.name_ = name_ + suffix;
  flavored.vt_offset_v_ = vt_offset_v_ + vt_offset_v;
  return flavored;
}

int Cell::primary_output_signal() const {
  RGLEAK_REQUIRE(primary_output_ >= 0, "cell has no primary output: " + name_);
  return primary_output_;
}

bool Cell::output_value(std::uint32_t state) const {
  RGLEAK_REQUIRE(primary_output_ >= 0, "cell has no primary output: " + name_);
  return resolve_signals(state)[static_cast<std::size_t>(primary_output_)];
}

double Cell::output_probability(const std::vector<double>& input_probs) const {
  RGLEAK_REQUIRE(static_cast<int>(input_probs.size()) == num_inputs_,
                 "input probability count mismatch");
  for (double p : input_probs)
    RGLEAK_REQUIRE(p >= 0.0 && p <= 1.0, "input probabilities must be in [0, 1]");
  double p_one = 0.0;
  for (std::uint32_t s = 0; s < num_states(); ++s) {
    double p = 1.0;
    for (int bit = 0; bit < num_inputs_; ++bit)
      p *= ((s >> bit) & 1u) ? input_probs[static_cast<std::size_t>(bit)]
                             : 1.0 - input_probs[static_cast<std::size_t>(bit)];
    if (p == 0.0) continue;
    if (output_value(s)) p_one += p;
  }
  return p_one;
}

void CellBuilder::set_primary_output(int signal) {
  RGLEAK_REQUIRE(signal >= cell_.num_inputs_ + 2 && signal < next_signal_,
                 "primary output must be a stage output signal");
  cell_.primary_output_ = signal;
  explicit_primary_ = true;
}

void CellBuilder::add_split_gate_stage(int nmos_gate, int pmos_gate) {
  device::NetworkDevice n;
  n.type = device::DeviceType::kNmos;
  n.gate_signal = nmos_gate;
  n.w_nm = sizing_.wn_nm * sizing_.drive;
  n.dvt_index = next_dvt_++;
  device::NetworkDevice p;
  p.type = device::DeviceType::kPmos;
  p.gate_signal = pmos_gate;
  p.w_nm = sizing_.wp_nm * sizing_.drive;
  p.dvt_index = next_dvt_++;
  Stage stage;
  stage.rail_path =
      device::Network::series({device::Network::device(n), device::Network::device(p)});
  cell_.stages_.push_back(std::move(stage));
}

Cell CellBuilder::build() && {
  RGLEAK_REQUIRE(!cell_.stages_.empty(), "cell has no stages");
  cell_.num_signals_ = next_signal_;
  std::size_t devices = 0;
  for (const auto& s : cell_.stages_) {
    if (s.pdn) devices += s.pdn->device_count();
    if (s.pun) devices += s.pun->device_count();
    if (s.rail_path) devices += s.rail_path->device_count();
  }
  cell_.num_devices_ = devices;
  // Footprint model: ~1.5 um^2 per transistor at 90 nm, scaled by drive.
  cell_.footprint_nm2_ = 1.5e6 * static_cast<double>(devices) * sizing_.drive;
  return std::move(cell_);
}

}  // namespace rgleak::cells
