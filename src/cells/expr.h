#pragma once
// Series/parallel boolean expressions over cell signals.
//
// A static CMOS gate computing out = !f(inputs) is built from a
// series/parallel expression of f: the pull-down network realizes f with NMOS
// (AND -> series, OR -> parallel) and the pull-up network realizes the dual
// with PMOS (AND -> parallel, OR -> series). This module provides the
// expression type, its boolean evaluation, and the dual-network construction
// with classic stack-aware sizing (series devices widened by stack depth).

#include <span>
#include <vector>

#include "device/network.h"

namespace rgleak::cells {

/// Boolean series/parallel expression over signal ids.
class Expr {
 public:
  enum class Kind { kVar, kAnd, kOr };

  static Expr var(int signal);
  static Expr all_of(std::vector<Expr> kids);  ///< AND
  static Expr any_of(std::vector<Expr> kids);  ///< OR

  Kind kind() const { return kind_; }
  int signal() const { return signal_; }
  const std::vector<Expr>& kids() const { return kids_; }

  /// Evaluates the expression over resolved signal values.
  bool eval(const std::vector<bool>& signals) const;

  /// Deepest series chain of the NMOS realization (used for sizing).
  int nmos_stack_depth() const;
  /// Deepest series chain of the PMOS (dual) realization.
  int pmos_stack_depth() const;

 private:
  Kind kind_ = Kind::kVar;
  int signal_ = 0;
  std::vector<Expr> kids_;
};

/// Per-gate transistor sizing.
struct Sizing {
  double wn_nm = 120.0;  ///< X1 NMOS width
  double wp_nm = 200.0;  ///< X1 PMOS width
  double drive = 1.0;    ///< drive-strength multiplier (X1, X2, ...)
};

/// Builds the NMOS pull-down network realizing `f`. `next_dvt` is a running
/// per-device index counter, advanced for every device created.
device::Network build_pulldown(const Expr& f, const Sizing& sizing, int& next_dvt);

/// Builds the PMOS pull-up network realizing the dual of `f` (conducts when f
/// is false).
device::Network build_pullup(const Expr& f, const Sizing& sizing, int& next_dvt);

}  // namespace rgleak::cells
