#pragma once
// The "virtual 90 nm" standard-cell library: 62 cells covering the classes the
// paper characterizes (logic gates of various topologies and drive strengths,
// complex AOI/OAI gates, muxes, adders, latches, flip-flops, tri-states, and
// an SRAM cell). Substitute for the commercial library (see DESIGN.md §2).

#include <cstddef>
#include <string>
#include <vector>

#include "cells/cell.h"
#include "device/subthreshold.h"

namespace rgleak::cells {

/// Immutable collection of cells plus the technology they are built in.
class StdCellLibrary {
 public:
  StdCellLibrary(device::TechnologyParams tech, std::vector<Cell> cells);

  const device::TechnologyParams& tech() const { return tech_; }
  std::size_t size() const { return cells_.size(); }
  const Cell& cell(std::size_t index) const;
  const std::vector<Cell>& cells() const { return cells_; }

  /// Index of the cell with the given name; throws if absent.
  std::size_t index_of(const std::string& name) const;
  bool contains(const std::string& name) const;

 private:
  device::TechnologyParams tech_;
  std::vector<Cell> cells_;
};

/// Builds the full 62-cell virtual 90 nm library.
StdCellLibrary build_virtual90_library(const device::TechnologyParams& tech = {});

/// Builds a small library (INV/NAND2/NOR2/NAND3/DFF-free) for fast tests.
StdCellLibrary build_mini_library(const device::TechnologyParams& tech = {});

/// Multi-Vt flavor offsets: systematic Vt shifts of the LVT (faster, leakier)
/// and HVT (slower, low-leakage) variants relative to the SVT masters.
struct MultiVtOffsets {
  double lvt_shift_v = -0.06;
  double hvt_shift_v = +0.08;
};

/// Builds the 186-cell multi-Vt library: every virtual 90 nm cell in SVT
/// (original name), LVT (`_LVT` suffix), and HVT (`_HVT` suffix) flavors.
StdCellLibrary build_virtual90_multivt_library(const device::TechnologyParams& tech = {},
                                               const MultiVtOffsets& offsets = {});

}  // namespace rgleak::cells
