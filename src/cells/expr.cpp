#include "cells/expr.h"

#include <algorithm>

#include "util/require.h"

namespace rgleak::cells {

Expr Expr::var(int signal) {
  RGLEAK_REQUIRE(signal >= 0, "signal id must be non-negative");
  Expr e;
  e.kind_ = Kind::kVar;
  e.signal_ = signal;
  return e;
}

Expr Expr::all_of(std::vector<Expr> kids) {
  RGLEAK_REQUIRE(!kids.empty(), "AND needs operands");
  if (kids.size() == 1) return std::move(kids.front());
  Expr e;
  e.kind_ = Kind::kAnd;
  e.kids_ = std::move(kids);
  return e;
}

Expr Expr::any_of(std::vector<Expr> kids) {
  RGLEAK_REQUIRE(!kids.empty(), "OR needs operands");
  if (kids.size() == 1) return std::move(kids.front());
  Expr e;
  e.kind_ = Kind::kOr;
  e.kids_ = std::move(kids);
  return e;
}

bool Expr::eval(const std::vector<bool>& signals) const {
  switch (kind_) {
    case Kind::kVar:
      RGLEAK_REQUIRE(static_cast<std::size_t>(signal_) < signals.size(),
                     "expression references unknown signal");
      return signals[static_cast<std::size_t>(signal_)];
    case Kind::kAnd:
      return std::all_of(kids_.begin(), kids_.end(),
                         [&](const Expr& k) { return k.eval(signals); });
    case Kind::kOr:
      return std::any_of(kids_.begin(), kids_.end(),
                         [&](const Expr& k) { return k.eval(signals); });
  }
  return false;  // unreachable
}

int Expr::nmos_stack_depth() const {
  switch (kind_) {
    case Kind::kVar:
      return 1;
    case Kind::kAnd: {  // series
      int d = 0;
      for (const auto& k : kids_) d += k.nmos_stack_depth();
      return d;
    }
    case Kind::kOr: {  // parallel
      int d = 0;
      for (const auto& k : kids_) d = std::max(d, k.nmos_stack_depth());
      return d;
    }
  }
  return 1;
}

int Expr::pmos_stack_depth() const {
  switch (kind_) {
    case Kind::kVar:
      return 1;
    case Kind::kAnd: {  // parallel in the dual
      int d = 0;
      for (const auto& k : kids_) d = std::max(d, k.pmos_stack_depth());
      return d;
    }
    case Kind::kOr: {  // series in the dual
      int d = 0;
      for (const auto& k : kids_) d += k.pmos_stack_depth();
      return d;
    }
  }
  return 1;
}

namespace {

device::Network build_impl(const Expr& f, const Sizing& sizing, int& next_dvt,
                           device::DeviceType type, int stack_depth) {
  using device::Network;
  const bool series_is_and = type == device::DeviceType::kNmos;
  switch (f.kind()) {
    case Expr::Kind::kVar: {
      device::NetworkDevice d;
      d.type = type;
      d.gate_signal = f.signal();
      const double base = type == device::DeviceType::kNmos ? sizing.wn_nm : sizing.wp_nm;
      d.w_nm = base * sizing.drive * static_cast<double>(stack_depth);
      d.dvt_index = next_dvt++;
      return Network::device(d);
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const bool series = (f.kind() == Expr::Kind::kAnd) == series_is_and;
      std::vector<Network> kids;
      kids.reserve(f.kids().size());
      for (const auto& k : f.kids())
        kids.push_back(build_impl(k, sizing, next_dvt, type, stack_depth));
      return series ? Network::series(std::move(kids)) : Network::parallel(std::move(kids));
    }
  }
  throw ContractViolation("build_impl: unreachable expression kind");
}

}  // namespace

device::Network build_pulldown(const Expr& f, const Sizing& sizing, int& next_dvt) {
  return build_impl(f, sizing, next_dvt, device::DeviceType::kNmos, f.nmos_stack_depth());
}

device::Network build_pullup(const Expr& f, const Sizing& sizing, int& next_dvt) {
  return build_impl(f, sizing, next_dvt, device::DeviceType::kPmos, f.pmos_stack_depth());
}

}  // namespace rgleak::cells
