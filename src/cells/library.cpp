#include "cells/library.h"

#include <algorithm>

#include "util/require.h"

namespace rgleak::cells {

StdCellLibrary::StdCellLibrary(device::TechnologyParams tech, std::vector<Cell> cells)
    : tech_(tech), cells_(std::move(cells)) {
  RGLEAK_REQUIRE(!cells_.empty(), "library must contain at least one cell");
  for (std::size_t i = 0; i < cells_.size(); ++i)
    for (std::size_t j = i + 1; j < cells_.size(); ++j)
      RGLEAK_REQUIRE(cells_[i].name() != cells_[j].name(),
                     "duplicate cell name: " + cells_[i].name());
}

const Cell& StdCellLibrary::cell(std::size_t index) const {
  RGLEAK_REQUIRE(index < cells_.size(), "cell index out of range");
  return cells_[index];
}

std::size_t StdCellLibrary::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].name() == name) return i;
  RGLEAK_REQUIRE(false, "no such cell: " + name);
  return 0;  // unreachable
}

bool StdCellLibrary::contains(const std::string& name) const {
  return std::any_of(cells_.begin(), cells_.end(),
                     [&](const Cell& c) { return c.name() == name; });
}

namespace {

Sizing sized(double drive) {
  Sizing s;
  s.drive = drive;
  return s;
}

Cell make_inv(const std::string& name, double drive) {
  CellBuilder b(name, 1, sized(drive));
  b.add_inverter(b.input(0));
  return std::move(b).build();
}

Cell make_buf(const std::string& name, double drive) {
  CellBuilder b(name, 1, sized(drive));
  const int n = b.add_inverter(b.input(0));
  b.add_inverter(n);
  return std::move(b).build();
}

// NAND / NOR of k inputs.
Cell make_nand(const std::string& name, int k, double drive) {
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> in;
  for (int i = 0; i < k; ++i) in.push_back(Expr::var(b.input(i)));
  b.add_inverting_gate(Expr::all_of(std::move(in)));
  return std::move(b).build();
}

Cell make_nor(const std::string& name, int k, double drive) {
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> in;
  for (int i = 0; i < k; ++i) in.push_back(Expr::var(b.input(i)));
  b.add_inverting_gate(Expr::any_of(std::move(in)));
  return std::move(b).build();
}

Cell make_and(const std::string& name, int k, double drive) {
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> in;
  for (int i = 0; i < k; ++i) in.push_back(Expr::var(b.input(i)));
  const int n = b.add_inverting_gate(Expr::all_of(std::move(in)));
  b.add_inverter(n);
  return std::move(b).build();
}

Cell make_or(const std::string& name, int k, double drive) {
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> in;
  for (int i = 0; i < k; ++i) in.push_back(Expr::var(b.input(i)));
  const int n = b.add_inverting_gate(Expr::any_of(std::move(in)));
  b.add_inverter(n);
  return std::move(b).build();
}

// XOR2 / XNOR2: two input inverters plus the 8T complex gate.
Cell make_xor2(const std::string& name, double drive, bool xnor) {
  CellBuilder b(name, 2, sized(drive));
  const int a = b.input(0), c = b.input(1);
  const int na = b.add_inverter(a);
  const int nc = b.add_inverter(c);
  // out = !(f); XOR: f = a*c + na*nc (pulls low when a == c).
  // XNOR: f = a*nc + na*c.
  const Expr f =
      xnor ? Expr::any_of({Expr::all_of({Expr::var(a), Expr::var(nc)}),
                           Expr::all_of({Expr::var(na), Expr::var(c)})})
           : Expr::any_of({Expr::all_of({Expr::var(a), Expr::var(c)}),
                           Expr::all_of({Expr::var(na), Expr::var(nc)})});
  b.add_inverting_gate(f);
  return std::move(b).build();
}

// AOI21: out = !(a*b + c); AOI22: !(a*b + c*d); AOI211: !(a*b + c + d).
Cell make_aoi(const std::string& name, int and_pairs, int singles, double drive) {
  const int k = 2 * and_pairs + singles;
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> terms;
  int next = 0;
  for (int p = 0; p < and_pairs; ++p) {
    terms.push_back(Expr::all_of({Expr::var(b.input(next)), Expr::var(b.input(next + 1))}));
    next += 2;
  }
  for (int s = 0; s < singles; ++s) terms.push_back(Expr::var(b.input(next++)));
  b.add_inverting_gate(Expr::any_of(std::move(terms)));
  return std::move(b).build();
}

// OAI21: out = !((a+b)*c); OAI22: !((a+b)*(c+d)); OAI211: !((a+b)*c*d).
Cell make_oai(const std::string& name, int or_pairs, int singles, double drive) {
  const int k = 2 * or_pairs + singles;
  CellBuilder b(name, k, sized(drive));
  std::vector<Expr> factors;
  int next = 0;
  for (int p = 0; p < or_pairs; ++p) {
    factors.push_back(Expr::any_of({Expr::var(b.input(next)), Expr::var(b.input(next + 1))}));
    next += 2;
  }
  for (int s = 0; s < singles; ++s) factors.push_back(Expr::var(b.input(next++)));
  b.add_inverting_gate(Expr::all_of(std::move(factors)));
  return std::move(b).build();
}

// MUX2: inputs (d0, d1, s); out = s ? d1 : d0, built as INV(s) + AOI-style
// complex gate + output inverter.
Cell make_mux2(const std::string& name, double drive) {
  CellBuilder b(name, 3, sized(drive));
  const int d0 = b.input(0), d1 = b.input(1), s = b.input(2);
  const int ns = b.add_inverter(s);
  const int nout = b.add_inverting_gate(
      Expr::any_of({Expr::all_of({Expr::var(s), Expr::var(d1)}),
                    Expr::all_of({Expr::var(ns), Expr::var(d0)})}));
  b.add_inverter(nout);
  return std::move(b).build();
}

// MUX4: inputs (d0..d3, s0, s1).
Cell make_mux4(const std::string& name, double drive) {
  CellBuilder b(name, 6, sized(drive));
  const int s0 = b.input(4), s1 = b.input(5);
  const int ns0 = b.add_inverter(s0);
  const int ns1 = b.add_inverter(s1);
  auto sel = [&](int i) {
    return Expr::all_of({Expr::var(i & 1 ? s0 : ns0), Expr::var(i & 2 ? s1 : ns1)});
  };
  std::vector<Expr> terms;
  for (int i = 0; i < 4; ++i)
    terms.push_back(Expr::all_of({sel(i), Expr::var(b.input(i))}));
  const int nout = b.add_inverting_gate(Expr::any_of(std::move(terms)));
  b.add_inverter(nout);
  return std::move(b).build();
}

// Half adder: sum = a ^ b, carry = a & b.
Cell make_ha(const std::string& name, double drive) {
  CellBuilder b(name, 2, sized(drive));
  const int a = b.input(0), c = b.input(1);
  const int na = b.add_inverter(a);
  const int nc = b.add_inverter(c);
  b.add_inverting_gate(Expr::any_of({Expr::all_of({Expr::var(a), Expr::var(c)}),
                                     Expr::all_of({Expr::var(na), Expr::var(nc)})}));  // sum
  const int nand_out = b.add_inverting_gate(Expr::all_of({Expr::var(a), Expr::var(c)}));
  b.add_inverter(nand_out);  // carry
  return std::move(b).build();
}

// Full adder: sum = a ^ b ^ cin, cout = MAJ(a, b, cin) via mirror-style gates.
Cell make_fa(const std::string& name, double drive) {
  CellBuilder b(name, 3, sized(drive));
  const int a = b.input(0), c = b.input(1), ci = b.input(2);
  // ncout = !(a*b + a*ci + b*ci)
  const int ncout = b.add_inverting_gate(
      Expr::any_of({Expr::all_of({Expr::var(a), Expr::var(c)}),
                    Expr::all_of({Expr::var(a), Expr::var(ci)}),
                    Expr::all_of({Expr::var(c), Expr::var(ci)})}));
  // nsum = !(a*b*ci + ncout*(a + b + ci))
  const int nsum = b.add_inverting_gate(Expr::any_of(
      {Expr::all_of({Expr::var(a), Expr::var(c), Expr::var(ci)}),
       Expr::all_of({Expr::var(ncout),
                     Expr::any_of({Expr::var(a), Expr::var(c), Expr::var(ci)})})}));
  b.add_inverter(nsum);   // sum
  b.add_inverter(ncout);  // cout
  return std::move(b).build();
}

// D flip-flop, inputs (d, clk): clock buffer, master/slave inverter loops and
// two off-transmission-gate leak paths (see cell.h for the approximation).
Cell make_dff(const std::string& name, double drive, bool with_set_or_reset, bool set) {
  const int num_inputs = with_set_or_reset ? 3 : 2;
  CellBuilder b(name, num_inputs, sized(drive));
  const int d = b.input(0), clk = b.input(1);
  const int nclk = b.add_inverter(clk);
  b.add_inverter(nclk);  // internal buffered clock
  const int nd = b.add_inverter(d);
  int m;
  if (with_set_or_reset) {
    const int sr = b.input(2);
    // Master latch node with asynchronous set/reset folded into a NAND/NOR.
    m = set ? b.add_inverting_gate(Expr::all_of({Expr::var(nd), Expr::var(sr)}))   // NAND
            : b.add_inverting_gate(Expr::any_of({Expr::var(nd), Expr::var(sr)}));  // NOR
  } else {
    m = b.add_inverter(nd);
  }
  const int nm = b.add_inverter(m);
  const int q = b.add_inverter(nm);
  b.add_inverter(q);  // feedback / QN driver
  b.set_primary_output(q);
  b.add_tgate_path(clk);
  b.add_tgate_path(nclk);
  return std::move(b).build();
}

// Level-sensitive latch, inputs (d, en).
Cell make_latch(const std::string& name, double drive, bool active_low) {
  CellBuilder b(name, 2, sized(drive));
  const int d = b.input(0), en = b.input(1);
  const int nen = b.add_inverter(en);
  const int nd = b.add_inverter(d);
  const int m = b.add_inverter(nd);
  b.add_inverter(m);  // feedback inverter
  b.set_primary_output(m);
  b.add_tgate_path(active_low ? nen : en);
  return std::move(b).build();
}

// 6T SRAM bit cell, input = stored value. Cross-coupled inverters plus one
// access transistor leaking from the precharged bitline into the low node.
Cell make_sram6t(const std::string& name) {
  CellBuilder b(name, 1, sized(1.0));
  const int d = b.input(0);
  const int nd = b.add_inverter(d);
  b.add_inverter(nd);
  b.add_off_nmos_path(/*width_multiplier=*/1.0);
  return std::move(b).build();
}

// Tri-state buffer, inputs (a, en): NAND + NOR predrivers and the output
// stage whose devices are gated by them (both off when disabled).
Cell make_tbuf(const std::string& name, double drive, bool inverting) {
  CellBuilder b(name, 2, sized(drive));
  const int a = b.input(0), en = b.input(1);
  const int nen = b.add_inverter(en);
  int src = a;
  if (inverting) src = b.add_inverter(a);
  const int g_p = b.add_inverting_gate(Expr::all_of({Expr::var(src), Expr::var(en)}));   // NAND
  const int g_n = b.add_inverting_gate(Expr::any_of({Expr::var(src), Expr::var(nen)}));  // NOR
  // Output stage: PDN = NMOS(g_n), PUN = PMOS(g_p); when disabled both are
  // off and the stage is a 2-stack leak path.
  b.add_split_gate_stage(g_n, g_p);
  return std::move(b).build();
}

// NAND2B / NOR2B: one inverted input.
Cell make_nand2b(const std::string& name, double drive) {
  CellBuilder b(name, 2, sized(drive));
  const int an = b.add_inverter(b.input(0));
  b.add_inverting_gate(Expr::all_of({Expr::var(an), Expr::var(b.input(1))}));
  return std::move(b).build();
}

Cell make_nor2b(const std::string& name, double drive) {
  CellBuilder b(name, 2, sized(drive));
  const int an = b.add_inverter(b.input(0));
  b.add_inverting_gate(Expr::any_of({Expr::var(an), Expr::var(b.input(1))}));
  return std::move(b).build();
}

}  // namespace

StdCellLibrary build_virtual90_library(const device::TechnologyParams& tech) {
  std::vector<Cell> cells;
  cells.reserve(62);

  cells.push_back(make_inv("INV_X1", 1));
  cells.push_back(make_inv("INV_X2", 2));
  cells.push_back(make_inv("INV_X4", 4));
  cells.push_back(make_inv("INV_X8", 8));
  cells.push_back(make_buf("BUF_X1", 1));
  cells.push_back(make_buf("BUF_X2", 2));
  cells.push_back(make_buf("BUF_X4", 4));
  cells.push_back(make_buf("CLKBUF_X1", 1.5));
  cells.push_back(make_buf("CLKBUF_X2", 3));
  cells.push_back(make_buf("CLKBUF_X4", 6));

  cells.push_back(make_nand("NAND2_X1", 2, 1));
  cells.push_back(make_nand("NAND2_X2", 2, 2));
  cells.push_back(make_nand("NAND3_X1", 3, 1));
  cells.push_back(make_nand("NAND3_X2", 3, 2));
  cells.push_back(make_nand("NAND4_X1", 4, 1));
  cells.push_back(make_nor("NOR2_X1", 2, 1));
  cells.push_back(make_nor("NOR2_X2", 2, 2));
  cells.push_back(make_nor("NOR3_X1", 3, 1));
  cells.push_back(make_nor("NOR3_X2", 3, 2));
  cells.push_back(make_nor("NOR4_X1", 4, 1));

  cells.push_back(make_and("AND2_X1", 2, 1));
  cells.push_back(make_and("AND2_X2", 2, 2));
  cells.push_back(make_and("AND3_X1", 3, 1));
  cells.push_back(make_and("AND4_X1", 4, 1));
  cells.push_back(make_or("OR2_X1", 2, 1));
  cells.push_back(make_or("OR2_X2", 2, 2));
  cells.push_back(make_or("OR3_X1", 3, 1));
  cells.push_back(make_or("OR4_X1", 4, 1));

  cells.push_back(make_xor2("XOR2_X1", 1, false));
  cells.push_back(make_xor2("XOR2_X2", 2, false));
  cells.push_back(make_xor2("XNOR2_X1", 1, true));
  cells.push_back(make_xor2("XNOR2_X2", 2, true));

  cells.push_back(make_aoi("AOI21_X1", 1, 1, 1));
  cells.push_back(make_aoi("AOI21_X2", 1, 1, 2));
  cells.push_back(make_aoi("AOI22_X1", 2, 0, 1));
  cells.push_back(make_aoi("AOI22_X2", 2, 0, 2));
  cells.push_back(make_aoi("AOI211_X1", 1, 2, 1));
  cells.push_back(make_oai("OAI21_X1", 1, 1, 1));
  cells.push_back(make_oai("OAI21_X2", 1, 1, 2));
  cells.push_back(make_oai("OAI22_X1", 2, 0, 1));
  cells.push_back(make_oai("OAI22_X2", 2, 0, 2));
  cells.push_back(make_oai("OAI211_X1", 1, 2, 1));

  cells.push_back(make_mux2("MUX2_X1", 1));
  cells.push_back(make_mux2("MUX2_X2", 2));
  cells.push_back(make_mux4("MUX4_X1", 1));

  cells.push_back(make_ha("HA_X1", 1));
  cells.push_back(make_fa("FA_X1", 1));
  cells.push_back(make_fa("FA_X2", 2));

  cells.push_back(make_dff("DFF_X1", 1, false, false));
  cells.push_back(make_dff("DFF_X2", 2, false, false));
  cells.push_back(make_dff("DFFR_X1", 1, true, false));
  cells.push_back(make_dff("DFFS_X1", 1, true, true));
  cells.push_back(make_latch("DLATCH_X1", 1, false));
  cells.push_back(make_latch("DLATCHN_X1", 1, true));
  cells.push_back(make_sram6t("SRAM6T"));

  cells.push_back(make_tbuf("TBUF_X1", 1, false));
  cells.push_back(make_tbuf("TBUF_X2", 2, false));
  cells.push_back(make_tbuf("TINV_X1", 1, true));

  cells.push_back(make_nand2b("NAND2B_X1", 1));
  cells.push_back(make_nor2b("NOR2B_X1", 1));
  cells.push_back(make_aoi("AOI222_X1", 3, 0, 1));
  cells.push_back(make_oai("OAI222_X1", 3, 0, 1));

  RGLEAK_REQUIRE(cells.size() == 62, "virtual90 library must have exactly 62 cells");
  return StdCellLibrary(tech, std::move(cells));
}

StdCellLibrary build_virtual90_multivt_library(const device::TechnologyParams& tech,
                                               const MultiVtOffsets& offsets) {
  RGLEAK_REQUIRE(offsets.lvt_shift_v < 0.0 && offsets.hvt_shift_v > 0.0,
                 "LVT must lower Vt and HVT must raise it");
  const StdCellLibrary base = build_virtual90_library(tech);
  std::vector<Cell> cells;
  cells.reserve(3 * base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    cells.push_back(base.cell(i));
    cells.push_back(base.cell(i).with_vt_flavor("_LVT", offsets.lvt_shift_v));
    cells.push_back(base.cell(i).with_vt_flavor("_HVT", offsets.hvt_shift_v));
  }
  return StdCellLibrary(tech, std::move(cells));
}

StdCellLibrary build_mini_library(const device::TechnologyParams& tech) {
  std::vector<Cell> cells;
  cells.push_back(make_inv("INV_X1", 1));
  cells.push_back(make_nand("NAND2_X1", 2, 1));
  cells.push_back(make_nor("NOR2_X1", 2, 1));
  cells.push_back(make_nand("NAND3_X1", 3, 1));
  cells.push_back(make_aoi("AOI21_X1", 1, 1, 1));
  return StdCellLibrary(tech, std::move(cells));
}

}  // namespace rgleak::cells
