#pragma once
// Standard cell: a collection of rail-to-rail leakage stages with resolved
// internal logic, evaluated per input state.
//
// A cell has `num_inputs` primary inputs; every stage either computes an
// internal signal (an inverting CMOS gate: network = series(PDN, PUN) between
// GND and VDD) or is a pure leak path (e.g. an off transmission gate or SRAM
// access device). Given an input state, the cell resolves all internal
// signals, maps them to rail voltages, and sums the stage currents — this is
// the per-state leakage the paper's pre-characterization measures.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cells/expr.h"
#include "device/network.h"
#include "device/subthreshold.h"

namespace rgleak::cells {

/// One leakage stage of a cell: either a static CMOS gate (pull-down +
/// pull-up + logic) or a raw rail-to-rail leak path (off transmission gate,
/// SRAM access device, tri-state output).
///
/// For a CMOS stage in a valid input state exactly one network conducts and
/// pins the output to a rail; the stage leakage is the subthreshold current
/// of the *off* network under full rail bias (the ON network's drop is
/// negligible — the standard leakage-analysis approximation, consistent with
/// the paper's per-state cell characterization).
struct Stage {
  /// Logic output produced by a CMOS stage: value = invert ^ expr(signals).
  struct Output {
    Expr expr;
    bool invert = true;  ///< static CMOS stages are inverting
  };

  std::optional<device::Network> pdn;        ///< CMOS: pull-down network
  std::optional<device::Network> pun;        ///< CMOS: pull-up network
  std::optional<device::Network> rail_path;  ///< leak-only path GND..VDD
  std::optional<Output> output;              ///< set for CMOS stages
};

/// An immutable standard cell. Build with CellBuilder.
class Cell {
 public:
  const std::string& name() const { return name_; }
  int num_inputs() const { return num_inputs_; }
  /// Number of distinct input states (2^num_inputs).
  std::uint32_t num_states() const { return 1u << num_inputs_; }
  /// Total transistor count.
  std::size_t num_devices() const { return num_devices_; }
  /// Approximate layout footprint (nm^2): transistor-count-proportional model.
  double footprint_nm2() const { return footprint_nm2_; }

  /// Leakage (nA) for the given input state, shared channel length l_nm, and
  /// optional per-device random Vt shifts (indexed by device dvt_index).
  double leakage_na(std::uint32_t state, double l_nm, const device::TechnologyParams& tech,
                    std::span<const double> dvt_v = {}) const;

  /// Resolves all signal booleans for a state (inputs, stage outputs,
  /// constants GND=false, VDD=true). Exposed for tests.
  std::vector<bool> resolve_signals(std::uint32_t state) const;

  /// Signal ids of the two constants.
  int gnd_signal() const { return gnd_signal_; }
  int vdd_signal() const { return vdd_signal_; }

  /// True when the cell declares a logic (primary) output.
  bool has_primary_output() const { return primary_output_ >= 0; }
  /// Signal id of the primary output. Requires has_primary_output().
  int primary_output_signal() const;

  /// Boolean value of the cell's primary output for an input state. The
  /// primary output defaults to the last logic stage's output; builders
  /// override it for multi-stage cells (e.g. DFF -> Q). Cells without logic
  /// outputs have no primary output (throws).
  bool output_value(std::uint32_t state) const;

  /// P(primary output = 1) when input i is independently 1 with probability
  /// input_probs[i]. Exact sum over the 2^k states.
  double output_probability(const std::vector<double>& input_probs) const;

  /// Systematic threshold-voltage offset of this cell's devices (multi-Vt
  /// flavor): added on top of any per-device random dVt at evaluation time.
  double vt_offset_v() const { return vt_offset_v_; }

  /// A renamed copy of this cell with a systematic Vt offset — how the
  /// multi-Vt library variants (LVT/HVT) are derived from the SVT masters.
  Cell with_vt_flavor(const std::string& suffix, double vt_offset_v) const;

  const std::vector<Stage>& stages() const { return stages_; }

 private:
  friend class CellBuilder;
  Cell() = default;

  std::string name_;
  int num_inputs_ = 0;
  std::vector<Stage> stages_;
  int num_signals_ = 0;  // inputs + stage outputs + 2 constants
  int gnd_signal_ = 0, vdd_signal_ = 0;
  int primary_output_ = -1;  // signal id, -1 when the cell has no logic output
  std::size_t num_devices_ = 0;
  double footprint_nm2_ = 0.0;
  double vt_offset_v_ = 0.0;
};

/// Incremental construction of a Cell. Signal ids: 0..num_inputs-1 are primary
/// inputs; each signal-producing stage appends one; gnd()/vdd() are constants.
class CellBuilder {
 public:
  CellBuilder(std::string name, int num_inputs, Sizing sizing);

  int input(int index) const;
  int gnd() const { return gnd_signal_; }
  int vdd() const { return vdd_signal_; }

  /// Adds an inverting static CMOS stage computing !f; returns the output
  /// signal id.
  int add_inverting_gate(const Expr& f);
  /// Convenience: inverter on one signal.
  int add_inverter(int signal);
  /// Adds a leak-only rail path built from the given boolean expression pair:
  /// an "off transmission-gate" proxy — series(NMOS(gate), PMOS(gate)) so that
  /// exactly one device is off for either gate value.
  void add_tgate_path(int gate_signal);
  /// Adds a single off-device rail path (e.g. an SRAM access transistor with
  /// the wordline low): NMOS with gate tied to GND.
  void add_off_nmos_path(double width_multiplier = 1.0);
  /// Adds a tri-state output stage: series(NMOS gated by `nmos_gate`, PMOS
  /// gated by `pmos_gate`) between the rails. Produces no logic output.
  void add_split_gate_stage(int nmos_gate, int pmos_gate);
  /// Marks `signal` (a stage output) as the cell's primary output.
  void set_primary_output(int signal);

  Cell build() &&;

 private:
  Cell cell_;
  Sizing sizing_;
  int next_signal_;
  int next_dvt_ = 0;
  int gnd_signal_, vdd_signal_;
  bool explicit_primary_ = false;
};

}  // namespace rgleak::cells
