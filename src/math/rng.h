#pragma once
// Deterministic random number generation for rgleak.
//
// All stochastic code in the library draws from rgleak::math::Rng, a
// xoshiro256++ engine seeded through SplitMix64. Keeping our own engine (rather
// than std::mt19937 + std::normal_distribution) guarantees bit-identical
// streams across standard libraries, which the test suite relies on.

#include <array>
#include <cstdint>
#include <vector>

namespace rgleak::math {

/// xoshiro256++ pseudo random generator (Blackman & Vigna). Deterministic for a
/// given seed across platforms. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via a 256-layer ziggurat: ~99% of draws cost one engine
  /// step plus a table compare, which keeps the MC field fill (~10^5 normals
  /// per trial draw) off the libm log/sqrt path.
  double normal();
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Vector of iid standard normals.
  std::vector<double> normal_vector(std::size_t n);
  /// Fills out[0..n) with iid standard normals — same stream as n calls to
  /// normal(), without allocating (the MC hot path's workspace fill).
  void normal_fill(double* out, std::size_t n);
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent stream (seeded from this stream's output); used to
  /// give parallel experiments decorrelated generators.
  Rng fork();

  /// Complete engine state. Restoring it resumes the stream bit-identically.
  /// The spare fields are kept for checkpoint-format compatibility with the
  /// historical polar-method generator (stored as an exact bit pattern so
  /// round-tripping through text is lossless); the ziggurat generator never
  /// sets them.
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t spare_bits = 0;
    bool has_spare = false;
  };
  State state() const;
  void set_state(const State& st);

 private:
  /// Slow ziggurat path for a draw that failed its layer's fast-accept test:
  /// wedge accept/reject or explicit tail sampling, redrawing until accepted.
  double normal_slow(std::uint64_t draw);

  std::array<std::uint64_t, 4> state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rgleak::math
