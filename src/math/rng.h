#pragma once
// Deterministic random number generation for rgleak.
//
// All stochastic code in the library draws from rgleak::math::Rng, a
// xoshiro256++ engine seeded through SplitMix64. Keeping our own engine (rather
// than std::mt19937 + std::normal_distribution) guarantees bit-identical
// streams across standard libraries, which the test suite relies on.

#include <array>
#include <cstdint>
#include <vector>

namespace rgleak::math {

/// xoshiro256++ pseudo random generator (Blackman & Vigna). Deterministic for a
/// given seed across platforms. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via the Marsaglia polar method (cached spare value).
  double normal();
  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);
  /// Vector of iid standard normals.
  std::vector<double> normal_vector(std::size_t n);
  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent stream (seeded from this stream's output); used to
  /// give parallel experiments decorrelated generators.
  Rng fork();

  /// Complete engine state. Restoring it resumes the stream bit-identically,
  /// including the cached Marsaglia spare (stored as its exact bit pattern so
  /// round-tripping through text is lossless).
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t spare_bits = 0;
    bool has_spare = false;
  };
  State state() const;
  void set_state(const State& st);

 private:
  std::array<std::uint64_t, 4> state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rgleak::math
