#pragma once
// Numerical integration used by the constant-time leakage estimators:
//  - adaptive Simpson in 1-D (polar form, eq. 25/26 of the paper),
//  - Gauss–Legendre panels in 2-D (rectangular form, eq. 20).

#include <cstddef>
#include <functional>
#include <vector>

namespace rgleak::math {

/// Options for the adaptive integrators.
struct QuadratureOptions {
  double abs_tol = 1e-10;
  double rel_tol = 1e-9;
  int max_depth = 40;  ///< maximum recursive bisection depth
};

/// Adaptive Simpson integration of f over [a, b]. Throws NumericalError when
/// the requested tolerance cannot be met within max_depth.
double integrate_adaptive(const std::function<double(double)>& f, double a, double b,
                          const QuadratureOptions& opts = {});

/// Nodes/weights of an n-point Gauss–Legendre rule on [-1, 1]
/// (computed by Newton iteration on the Legendre polynomial).
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};
GaussLegendreRule gauss_legendre(std::size_t n);

/// Fixed-order Gauss–Legendre integration of f over [a, b].
double integrate_gauss(const std::function<double(double)>& f, double a, double b,
                       std::size_t order);

/// 2-D integration of f(x, y) over [ax, bx] x [ay, by] using a tensor-product
/// Gauss–Legendre rule on a panels_x x panels_y subdivision. Deterministic cost:
/// panels_x * panels_y * order^2 evaluations.
double integrate_2d(const std::function<double(double, double)>& f, double ax, double bx,
                    double ay, double by, std::size_t order = 16, std::size_t panels_x = 8,
                    std::size_t panels_y = 8);

/// 2-D integration with automatic panel refinement: doubles the panel count
/// until two successive estimates agree to the given tolerances (or max_level
/// refinements have been performed).
double integrate_2d_adaptive(const std::function<double(double, double)>& f, double ax,
                             double bx, double ay, double by,
                             const QuadratureOptions& opts = {}, std::size_t order = 12,
                             std::size_t max_level = 6);

}  // namespace rgleak::math
