#include "math/fft.h"

#include <cmath>

#include "util/failpoint.h"
#include "util/require.h"

namespace rgleak::math {

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

std::size_t next_pow2(std::size_t n) {
  RGLEAK_REQUIRE(n >= 1, "next_pow2 needs n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  RGLEAK_REQUIRE(is_pow2(n), "fft size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

void fft2d(std::vector<std::complex<double>>& data, std::size_t rows, std::size_t cols,
           bool inverse) {
  RGLEAK_REQUIRE(data.size() == rows * cols, "fft2d: data size mismatch");
  RGLEAK_REQUIRE(is_pow2(rows) && is_pow2(cols), "fft2d dims must be powers of two");

  std::vector<std::complex<double>> scratch(std::max(rows, cols));
  // Rows.
  for (std::size_t r = 0; r < rows; ++r) {
    scratch.assign(data.begin() + static_cast<std::ptrdiff_t>(r * cols),
                   data.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    fft(scratch, inverse);
    std::copy(scratch.begin(), scratch.end(),
              data.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  // Columns.
  for (std::size_t c = 0; c < cols; ++c) {
    scratch.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) scratch[r] = data[r * cols + c];
    fft(scratch, inverse);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = scratch[r];
  }
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  RGLEAK_REQUIRE(is_pow2(n), "fft plan size must be a power of two");
  // The twiddle/bit-reversal tables are the plan's arena; an injected (or
  // real) bad_alloc here is translated to ResourceError by callers.
  RGLEAK_FAILPOINT("math.fft.plan.alloc");
  bitrev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
  if (n >= 2) {
    twiddle_.resize(n - 1);
    std::size_t off = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double ang = -2.0 * M_PI / static_cast<double>(len);
      for (std::size_t k = 0; k < len / 2; ++k)
        twiddle_[off + k] = std::polar(1.0, ang * static_cast<double>(k));
      off += len / 2;
    }
  }
}

template <bool Inverse>
void FftPlan::run_impl(std::complex<double>* a) const {
  const std::size_t n = n_;
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  std::size_t off = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::complex<double>* tw = twiddle_.data() + off;
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w = Inverse ? std::conj(tw[k]) : tw[k];
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + half] * w;
        a[i + k] = u + v;
        a[i + k + half] = u - v;
      }
    }
    off += half;
  }
  if (Inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv;
  }
}

void FftPlan::run(std::complex<double>* a, bool inverse) const {
  if (inverse)
    run_impl<true>(a);
  else
    run_impl<false>(a);
}

namespace {

/// Cache-blocked out-of-place transpose of a rows x cols row-major array,
/// writing only the first `dst_rows` rows of the transposed result (i.e. the
/// first dst_rows columns of src). The 2-D plans use it to turn strided
/// column transforms into contiguous row transforms — a power-of-two row
/// stride would otherwise map a whole column onto a handful of L1 sets — and
/// the output-pruned paths use dst_rows to skip the back-transpose of rows
/// nobody will read.
void blocked_transpose(const std::complex<double>* src, std::complex<double>* dst,
                       std::size_t rows, std::size_t cols, std::size_t dst_rows) {
  constexpr std::size_t kBlock = 16;
  const std::size_t jn = std::min(dst_rows, cols);
  for (std::size_t i0 = 0; i0 < rows; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, rows);
    for (std::size_t j0 = 0; j0 < jn; j0 += kBlock) {
      const std::size_t j1 = std::min(j0 + kBlock, jn);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j) dst[j * rows + i] = src[i * cols + j];
    }
  }
}

}  // namespace

FftPlan2D::FftPlan2D(std::size_t rows, std::size_t cols) : row_fft_(cols), col_fft_(rows) {}

void FftPlan2D::run(std::vector<std::complex<double>>& data, bool inverse,
                    std::vector<std::complex<double>>& scratch) const {
  run_top_rows(data, inverse, scratch, rows());
}

void FftPlan2D::run_top_rows(std::vector<std::complex<double>>& data, bool inverse,
                             std::vector<std::complex<double>>& scratch,
                             std::size_t keep_rows) const {
  const std::size_t r_n = rows(), c_n = cols();
  RGLEAK_REQUIRE(data.size() == r_n * c_n, "fft2d plan: data size mismatch");
  // Column pass first so the (possibly pruned) row pass is the final one:
  // output row r then depends only on intermediate row r.
  scratch.resize(r_n * c_n);
  blocked_transpose(data.data(), scratch.data(), r_n, c_n, c_n);
  run_top_rows_colmajor(scratch, inverse, data, keep_rows);
}

void FftPlan2D::run_top_rows_colmajor(std::vector<std::complex<double>>& data, bool inverse,
                                      std::vector<std::complex<double>>& out,
                                      std::size_t keep_rows) const {
  const std::size_t r_n = rows(), c_n = cols();
  RGLEAK_REQUIRE(data.size() == r_n * c_n, "fft2d plan: data size mismatch");
  out.resize(r_n * c_n);
  for (std::size_t c = 0; c < c_n; ++c) col_fft_.run(data.data() + c * r_n, inverse);
  const std::size_t kr = std::min(keep_rows, r_n);
  blocked_transpose(data.data(), out.data(), c_n, r_n, kr);
  for (std::size_t r = 0; r < kr; ++r) row_fft_.run(out.data() + r * c_n, inverse);
}

CrossCorrelator2D::CrossCorrelator2D(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      pad_rows_(next_pow2(2 * rows - 1)),
      pad_cols_(next_pow2(2 * cols - 1)) {
  RGLEAK_REQUIRE(rows >= 1 && cols >= 1, "cross-correlation needs a non-empty grid");
}

std::vector<std::complex<double>> CrossCorrelator2D::transform(
    const std::vector<double>& grid) const {
  RGLEAK_REQUIRE(grid.size() == rows_ * cols_, "cross-correlation: grid size mismatch");
  std::vector<std::complex<double>> padded(pad_rows_ * pad_cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) padded[r * pad_cols_ + c] = grid[r * cols_ + c];
  fft2d(padded, pad_rows_, pad_cols_, /*inverse=*/false);
  return padded;
}

std::vector<double> CrossCorrelator2D::correlate(
    const std::vector<std::complex<double>>& fa,
    const std::vector<std::complex<double>>& fb) const {
  RGLEAK_REQUIRE(fa.size() == pad_rows_ * pad_cols_ && fb.size() == fa.size(),
                 "cross-correlation: transform size mismatch");
  std::vector<std::complex<double>> prod(fa.size());
  for (std::size_t i = 0; i < fa.size(); ++i) prod[i] = std::conj(fa[i]) * fb[i];
  fft2d(prod, pad_rows_, pad_cols_, /*inverse=*/true);

  // Circular result: offset (dr, dc) lives at ((dr mod R), (dc mod C)); the
  // padding guarantees the residues of the valid offsets are distinct.
  std::vector<double> out(out_rows() * out_cols());
  for (std::ptrdiff_t dr = -(static_cast<std::ptrdiff_t>(rows_) - 1);
       dr < static_cast<std::ptrdiff_t>(rows_); ++dr) {
    const std::size_t src_r =
        static_cast<std::size_t>(dr + static_cast<std::ptrdiff_t>(pad_rows_)) % pad_rows_;
    for (std::ptrdiff_t dc = -(static_cast<std::ptrdiff_t>(cols_) - 1);
         dc < static_cast<std::ptrdiff_t>(cols_); ++dc) {
      const std::size_t src_c =
          static_cast<std::size_t>(dc + static_cast<std::ptrdiff_t>(pad_cols_)) % pad_cols_;
      out[static_cast<std::size_t>(dr + static_cast<std::ptrdiff_t>(rows_) - 1) * out_cols() +
          static_cast<std::size_t>(dc + static_cast<std::ptrdiff_t>(cols_) - 1)] =
          prod[src_r * pad_cols_ + src_c].real();
    }
  }
  return out;
}

}  // namespace rgleak::math
