#include "math/polyfit.h"

#include "math/linalg.h"
#include "util/require.h"

namespace rgleak::math {

std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            std::size_t degree, PolyfitInfo* info) {
  RGLEAK_REQUIRE(x.size() == y.size(), "polyfit needs equal-length x and y");
  RGLEAK_REQUIRE(x.size() >= degree + 1, "polyfit needs at least degree+1 samples");
  Matrix a(x.size(), degree + 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double p = 1.0;
    for (std::size_t j = 0; j <= degree; ++j) {
      a(i, j) = p;
      p *= x[i];
    }
  }
  LeastSquaresInfo ls_info;
  std::vector<double> coeffs = solve_least_squares(a, y, info ? &ls_info : nullptr);
  if (info) info->condition = ls_info.condition;
  return coeffs;
}

double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t j = coeffs.size(); j-- > 0;) acc = acc * x + coeffs[j];
  return acc;
}

}  // namespace rgleak::math
