#include "math/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/require.h"

namespace rgleak::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  RGLEAK_REQUIRE(a.cols() == b.rows(), "matrix product dimension mismatch");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  RGLEAK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "matrix sum dimension mismatch");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  RGLEAK_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "matrix diff dimension mismatch");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = a.data()[i] - b.data()[i];
  return out;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = s * a.data()[i];
  return out;
}

std::vector<double> operator*(const Matrix& a, const std::vector<double>& x) {
  RGLEAK_REQUIRE(a.cols() == x.size(), "matrix-vector dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Matrix cholesky(const Matrix& a) {
  RGLEAK_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      std::ostringstream os;
      os << "cholesky: " << n << "x" << n
         << " matrix is not positive definite (pivot " << j << " reduced to " << d
         << ", diagonal entry " << a(j, j) << ")";
      throw NumericalError(os.str());
    }
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

std::vector<double> forward_substitute(const Matrix& lower, const std::vector<double>& b) {
  RGLEAK_REQUIRE(lower.rows() == lower.cols() && lower.rows() == b.size(),
                 "forward_substitute dimension mismatch");
  const std::size_t n = b.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= lower(i, j) * y[j];
    y[i] = s / lower(i, i);
  }
  return y;
}

std::vector<double> backward_substitute_transposed(const Matrix& lower, const std::vector<double>& y) {
  RGLEAK_REQUIRE(lower.rows() == lower.cols() && lower.rows() == y.size(),
                 "backward_substitute dimension mismatch");
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lower(j, ii) * x[j];
    x[ii] = s / lower(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b) {
  const Matrix l = cholesky(a);
  return backward_substitute_transposed(l, forward_substitute(l, b));
}

std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b,
                                        LeastSquaresInfo* info) {
  RGLEAK_REQUIRE(a.rows() >= a.cols(), "least squares needs rows >= cols");
  RGLEAK_REQUIRE(a.rows() == b.size(), "least squares dimension mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  Matrix r = a;                 // reduced in place by Householder reflections
  std::vector<double> rhs = b;  // same reflections applied to the RHS

  double frob = 0.0;
  for (double v : a.data()) frob += v * v;
  frob = std::sqrt(frob);

  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm <= 1e-12 * frob)
      throw NumericalError("least squares: rank-deficient design matrix");
    const double alpha = r(k, k) > 0 ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 == 0.0) continue;

    auto reflect = [&](auto&& get, auto&& set) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * get(i);
      s *= 2.0 / vnorm2;
      for (std::size_t i = k; i < m; ++i) set(i, get(i) - s * v[i - k]);
    };
    for (std::size_t j = k; j < n; ++j)
      reflect([&](std::size_t i) { return r(i, j); },
              [&](std::size_t i, double x) { r(i, j) = x; });
    reflect([&](std::size_t i) { return rhs[i]; },
            [&](std::size_t i, double x) { rhs[i] = x; });
  }

  if (info) {
    double rmax = 0.0, rmin = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < n; ++k) {
      const double d = std::abs(r(k, k));
      rmax = std::max(rmax, d);
      rmin = std::min(rmin, d);
    }
    info->condition = rmin > 0.0 ? rmax / rmin : std::numeric_limits<double>::infinity();
  }

  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    if (r(ii, ii) == 0.0) throw NumericalError("least squares: singular R");
    x[ii] = s / r(ii, ii);
  }
  return x;
}

double det2(double a00, double a01, double a10, double a11) { return a00 * a11 - a01 * a10; }

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  RGLEAK_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace rgleak::math
