#include "math/quadrature.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::math {

namespace {

double simpson(double fa, double fm, double fb, double h) { return h / 6.0 * (fa + 4.0 * fm + fb); }

double adaptive_simpson_rec(const std::function<double(double)>& f, double a, double b, double fa,
                            double fm, double fb, double whole, double tol, int depth,
                            int max_depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth >= max_depth) {
    // Accept the refined estimate; the Richardson correction below bounds the
    // residual error, and the estimators never need more depth in practice.
    return left + right + delta / 15.0;
  }
  if (std::abs(delta) <= 15.0 * tol) return left + right + delta / 15.0;
  return adaptive_simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1, max_depth) +
         adaptive_simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1, max_depth);
}

}  // namespace

double integrate_adaptive(const std::function<double(double)>& f, double a, double b,
                          const QuadratureOptions& opts) {
  RGLEAK_REQUIRE(a <= b, "integrate_adaptive needs a <= b");
  if (a == b) return 0.0;
  // Seed with a fixed subdivision so periodic integrands cannot alias to zero
  // on the first Simpson stencil; each panel then refines adaptively.
  constexpr int kInitialPanels = 16;
  const double h = (b - a) / kInitialPanels;

  // First pass: coarse estimate to set the relative tolerance scale.
  double coarse = 0.0;
  for (int p = 0; p < kInitialPanels; ++p) {
    const double pa = a + p * h;
    coarse += simpson(f(pa), f(pa + 0.5 * h), f(pa + h), h);
  }
  const double tol =
      std::max(opts.abs_tol, opts.rel_tol * std::abs(coarse)) / kInitialPanels;

  double total = 0.0;
  for (int p = 0; p < kInitialPanels; ++p) {
    const double pa = a + p * h;
    const double pb = pa + h;
    const double fa = f(pa);
    const double fm = f(0.5 * (pa + pb));
    const double fb = f(pb);
    const double whole = simpson(fa, fm, fb, h);
    total += adaptive_simpson_rec(f, pa, pb, fa, fm, fb, whole, tol, 0, opts.max_depth);
  }
  return total;
}

GaussLegendreRule gauss_legendre(std::size_t n) {
  RGLEAK_REQUIRE(n >= 1, "gauss_legendre needs order >= 1");
  GaussLegendreRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    // Chebyshev-based initial guess for the i-th root of P_n.
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) / (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
      double p0 = 1.0, p1 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * static_cast<double>(j) + 1.0) * x * p1 - static_cast<double>(j) * p2) /
             (static_cast<double>(j) + 1.0);
      }
      pp = static_cast<double>(n) * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  return rule;
}

double integrate_gauss(const std::function<double(double)>& f, double a, double b,
                       std::size_t order) {
  const GaussLegendreRule rule = gauss_legendre(order);
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double s = 0.0;
  for (std::size_t i = 0; i < order; ++i) s += rule.weights[i] * f(c + h * rule.nodes[i]);
  return s * h;
}

double integrate_2d(const std::function<double(double, double)>& f, double ax, double bx,
                    double ay, double by, std::size_t order, std::size_t panels_x,
                    std::size_t panels_y) {
  RGLEAK_REQUIRE(ax <= bx && ay <= by, "integrate_2d needs a valid rectangle");
  RGLEAK_REQUIRE(panels_x >= 1 && panels_y >= 1, "integrate_2d needs >= 1 panel per axis");
  const GaussLegendreRule rule = gauss_legendre(order);
  const double px = (bx - ax) / static_cast<double>(panels_x);
  const double py = (by - ay) / static_cast<double>(panels_y);
  double total = 0.0;
  for (std::size_t ix = 0; ix < panels_x; ++ix) {
    const double cx = ax + (static_cast<double>(ix) + 0.5) * px;
    for (std::size_t iy = 0; iy < panels_y; ++iy) {
      const double cy = ay + (static_cast<double>(iy) + 0.5) * py;
      double s = 0.0;
      for (std::size_t i = 0; i < order; ++i) {
        const double x = cx + 0.5 * px * rule.nodes[i];
        double row = 0.0;
        for (std::size_t j = 0; j < order; ++j)
          row += rule.weights[j] * f(x, cy + 0.5 * py * rule.nodes[j]);
        s += rule.weights[i] * row;
      }
      total += s * 0.25 * px * py;
    }
  }
  return total;
}

double integrate_2d_adaptive(const std::function<double(double, double)>& f, double ax, double bx,
                             double ay, double by, const QuadratureOptions& opts,
                             std::size_t order, std::size_t max_level) {
  std::size_t panels = 2;
  double prev = integrate_2d(f, ax, bx, ay, by, order, panels, panels);
  for (std::size_t level = 0; level < max_level; ++level) {
    panels *= 2;
    const double cur = integrate_2d(f, ax, bx, ay, by, order, panels, panels);
    const double tol = std::max(opts.abs_tol, opts.rel_tol * std::abs(cur));
    if (std::abs(cur - prev) <= tol) return cur;
    prev = cur;
  }
  return prev;
}

}  // namespace rgleak::math
