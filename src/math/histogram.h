#pragma once
// Sample collection with percentile queries, used by the Monte-Carlo engines
// to report empirical quantiles (P50/P90/P99) next to mean/sigma. Keeps the
// raw samples (MC trial counts are small); percentile() interpolates between
// order statistics (type-7 quantile, the R/NumPy default).

#include <vector>

namespace rgleak::math {

class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Unbiased sample standard deviation (n-1). Requires count() >= 2.
  double stddev() const;
  /// Type-7 interpolated percentile, q in [0, 1]. Requires count() >= 1.
  double percentile(double q) const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily rebuilt cache
};

}  // namespace rgleak::math
