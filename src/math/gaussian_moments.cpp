#include "math/gaussian_moments.h"

#include <cmath>
#include <sstream>

#include "util/require.h"

namespace rgleak::math {

namespace {

// Inverse of an SPD matrix via its Cholesky factor, plus log-determinant.
struct SpdInverse {
  Matrix inverse;
  double log_det;
};

// exp() that refuses to overflow to inf: the expectation formulas work in log
// space, so a huge log_e means the inputs (not rounding) are unrepresentable.
double guarded_exp(double log_e, const char* where) {
  if (log_e > 700.0 || !std::isfinite(log_e)) {
    std::ostringstream os;
    os << where << ": log-expectation " << log_e << " overflows double";
    throw NumericalError(os.str());
  }
  return std::exp(log_e);
}

SpdInverse spd_inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  const Matrix l = cholesky(a);
  double log_det = 0.0;
  for (std::size_t i = 0; i < n; ++i) log_det += 2.0 * std::log(l(i, i));

  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    e.assign(n, 0.0);
    e[col] = 1.0;
    const std::vector<double> x = backward_substitute_transposed(l, forward_substitute(l, e));
    for (std::size_t r = 0; r < n; ++r) inv(r, col) = x[r];
  }
  return {inv, log_det};
}

}  // namespace

double expectation_exp_quadratic(const std::vector<double>& w, const Matrix& a,
                                 const std::vector<double>& mu, const Matrix& sigma) {
  const std::size_t n = mu.size();
  RGLEAK_REQUIRE(w.size() == n, "w dimension mismatch");
  RGLEAK_REQUIRE(a.rows() == n && a.cols() == n, "A dimension mismatch");
  RGLEAK_REQUIRE(sigma.rows() == n && sigma.cols() == n, "Sigma dimension mismatch");
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      RGLEAK_REQUIRE(std::abs(a(i, j) - a(j, i)) < 1e-12, "A must be symmetric");

  // E[exp(w'z + z'Az)] with z = mu + u, u ~ N(0, Sigma):
  //   = exp(w'mu + mu'A mu) * |Sigma|^{-1/2} |B|^{-1/2} exp(0.5 v'B^{-1} v)
  // with B = Sigma^{-1} - 2A (must be SPD) and v = w + 2 A mu.
  const SpdInverse si = spd_inverse(sigma);
  Matrix b = si.inverse;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) -= 2.0 * a(i, j);

  Matrix lb;
  try {
    lb = cholesky(b);
  } catch (const NumericalError&) {
    throw NumericalError(
        "expectation_exp_quadratic: I - 2*Sigma*A not positive definite; expectation diverges");
  }
  double log_det_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) log_det_b += 2.0 * std::log(lb(i, i));

  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = w[i];
    for (std::size_t j = 0; j < n; ++j) s += 2.0 * a(i, j) * mu[j];
    v[i] = s;
  }
  const std::vector<double> binv_v = backward_substitute_transposed(lb, forward_substitute(lb, v));

  double quad_mu = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) quad_mu += mu[i] * a(i, j) * mu[j];

  const double log_e = dot(w, mu) + quad_mu - 0.5 * (si.log_det + log_det_b) + 0.5 * dot(v, binv_v);
  return guarded_exp(log_e, "expectation_exp_quadratic");
}

double expectation_exp_quadratic_1d(double b, double c, double mu, double var) {
  RGLEAK_REQUIRE(var >= 0.0, "variance must be non-negative");
  if (var == 0.0) return std::exp(b * mu + c * mu * mu);
  const double denom = 1.0 - 2.0 * c * var;
  if (denom <= 0.0)
    throw NumericalError("expectation_exp_quadratic_1d: 1 - 2c*var <= 0; expectation diverges");
  const double v = b + 2.0 * c * mu;
  const double log_e = b * mu + c * mu * mu + 0.5 * v * v * var / denom - 0.5 * std::log(denom);
  return guarded_exp(log_e, "expectation_exp_quadratic_1d");
}

double expectation_exp_quadratic_2d(double b1, double c1, double b2, double c2, double mu,
                                    double var, double rho) {
  RGLEAK_REQUIRE(var >= 0.0, "variance must be non-negative");
  RGLEAK_REQUIRE(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1, 1]");
  if (var == 0.0) return std::exp((b1 + b2) * mu + (c1 + c2) * mu * mu);

  constexpr double kRhoDegenerate = 1.0 - 1e-9;
  if (rho >= kRhoDegenerate) {
    // z1 == z2: collapses to a single Gaussian.
    return expectation_exp_quadratic_1d(b1 + b2, c1 + c2, mu, var);
  }
  if (rho <= -kRhoDegenerate) {
    // z2 = 2*mu - z1 exactly: substitute and reduce to 1-D.
    const double lin = b1 - b2 - 4.0 * c2 * mu;
    const double quad = c1 + c2;
    const double constant = 2.0 * b2 * mu + 4.0 * c2 * mu * mu;
    return std::exp(constant) * expectation_exp_quadratic_1d(lin, quad, mu, var);
  }

  Matrix sigma(2, 2);
  sigma(0, 0) = sigma(1, 1) = var;
  sigma(0, 1) = sigma(1, 0) = rho * var;
  Matrix a(2, 2);
  a(0, 0) = c1;
  a(1, 1) = c2;
  return expectation_exp_quadratic({b1, b2}, a, {mu, mu}, sigma);
}

}  // namespace rgleak::math
