#pragma once
// Small dense linear algebra used by the characterization and sampling layers:
// row-major Matrix, Cholesky factorization, triangular solves, Householder-QR
// least squares, and 2x2 closed-form helpers for the bivariate Gaussian
// moment formulas.

#include <cstddef>
#include <vector>

namespace rgleak::math {

/// Dense row-major matrix of doubles. Value type; sized at construction.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Matrix transposed() const;

  /// Raw storage (row-major); used by performance-sensitive loops.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix operator*(double s, const Matrix& a);
std::vector<double> operator*(const Matrix& a, const std::vector<double>& x);

/// In-place lower Cholesky factorization of a symmetric positive-definite
/// matrix: returns L with A = L Lᵀ. Throws NumericalError if A is not
/// (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solves L y = b for lower-triangular L.
std::vector<double> forward_substitute(const Matrix& lower, const std::vector<double>& b);
/// Solves Lᵀ x = y for lower-triangular L.
std::vector<double> backward_substitute_transposed(const Matrix& lower, const std::vector<double>& y);

/// Solves the SPD system A x = b via Cholesky.
std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b);

/// Conditioning diagnostics from the QR factorization underlying a
/// least-squares solve. `condition` estimates cond(A) as max|r_ii| / min|r_ii|
/// over the R diagonal — cheap, and within a small factor of the true
/// 2-norm condition number for the Vandermonde systems we build.
struct LeastSquaresInfo {
  double condition = 0.0;
};

/// Least-squares solution of min ||A x - b||_2 via Householder QR.
/// Requires rows >= cols and full column rank. When `info` is non-null it
/// receives conditioning diagnostics.
std::vector<double> solve_least_squares(const Matrix& a, const std::vector<double>& b,
                                        LeastSquaresInfo* info = nullptr);

/// Determinant of a 2x2 matrix.
double det2(double a00, double a01, double a10, double a11);

/// Dot product. Sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace rgleak::math
