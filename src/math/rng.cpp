#include "math/rng.h"

#include <bit>
#include <cmath>

#include "util/require.h"

namespace rgleak::math {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RGLEAK_REQUIRE(lo <= hi, "uniform(lo,hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RGLEAK_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * f;
  has_spare_ = true;
  return u * f;
}

double Rng::normal(double mean, double sigma) {
  RGLEAK_REQUIRE(sigma >= 0.0, "normal() needs sigma >= 0");
  return mean + sigma * normal();
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  for (auto& x : out) x = normal();
  return out;
}

bool Rng::bernoulli(double p) {
  RGLEAK_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli needs p in [0,1]");
  return uniform() < p;
}

Rng Rng::fork() { return Rng((*this)()); }

Rng::State Rng::state() const {
  State st;
  st.s = state_;
  st.spare_bits = std::bit_cast<std::uint64_t>(spare_);
  st.has_spare = has_spare_;
  return st;
}

void Rng::set_state(const State& st) {
  state_ = st.s;
  spare_ = std::bit_cast<double>(st.spare_bits);
  has_spare_ = st.has_spare;
}

}  // namespace rgleak::math
