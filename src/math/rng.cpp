#include "math/rng.h"

#include <bit>
#include <cmath>

#include "util/require.h"

namespace rgleak::math {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// 256-layer ziggurat for the standard normal (Marsaglia & Tsang layout, 64-bit
// draws). One u64 supplies layer index, sign, and a 52-bit offset; ~99% of
// samples resolve with a single table compare and multiply, which is what makes
// the MC field fill (10^5 normals per trial draw) cheap. kZigR is the canonical
// base-strip edge for 256 layers: the layer recursion started there closes at
// the density peak.
constexpr int kZigLayers = 256;
constexpr double kZigR = 3.6541528853610088;
constexpr std::uint64_t kZigMantissaMask = (std::uint64_t{1} << 52) - 1;

struct ZigguratTables {
  std::array<std::uint64_t, kZigLayers> k;  // fast-accept thresholds on the 52-bit offset
  std::array<double, kZigLayers> w;         // offset -> x scale per layer
  std::array<double, kZigLayers + 1> f;     // exp(-x_i^2/2), ascending; f[256] = 1

  ZigguratTables() {
    const double fr = std::exp(-0.5 * kZigR * kZigR);
    // Common layer area: base rectangle plus the Gaussian tail beyond kZigR.
    const double v = kZigR * fr + std::sqrt(M_PI / 2.0) * std::erfc(kZigR / std::sqrt(2.0));
    std::array<double, kZigLayers + 1> x{};
    x[0] = v / fr;  // pseudo-width of the base strip (area v at height f(R))
    x[1] = kZigR;
    for (int i = 1; i + 1 < kZigLayers; ++i) {
      const double fi = std::exp(-0.5 * x[i] * x[i]);
      x[i + 1] = std::sqrt(-2.0 * std::log(fi + v / x[i]));
    }
    x[kZigLayers] = 0.0;
    for (int i = 0; i <= kZigLayers; ++i) f[i] = std::exp(-0.5 * x[i] * x[i]);
    for (int i = 0; i < kZigLayers; ++i) {
      const double edge = i == 0 ? kZigR : x[i + 1];
      k[i] = static_cast<std::uint64_t>(edge / x[i] * 0x1.0p52);
      w[i] = x[i] * 0x1.0p-52;
    }
  }
};

const ZigguratTables& zig() {
  static const ZigguratTables tables;
  return tables;
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RGLEAK_REQUIRE(lo <= hi, "uniform(lo,hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RGLEAK_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_spare_) {
    // Only reachable through set_state() on a state saved by the historical
    // polar-method generator; fresh streams never set the spare.
    has_spare_ = false;
    return spare_;
  }
  const ZigguratTables& t = zig();
  const std::uint64_t d = (*this)();
  const std::size_t idx = d & (kZigLayers - 1);
  const std::uint64_t off = (d >> 9) & kZigMantissaMask;
  if (off < t.k[idx]) {  // inside the layer's inscribed box (~99% of draws)
    const double x = static_cast<double>(off) * t.w[idx];
    return (d >> 8) & 1 ? -x : x;
  }
  return normal_slow(d);
}

double Rng::normal_slow(std::uint64_t d) {
  const ZigguratTables& t = zig();
  for (;;) {
    const std::size_t idx = d & (kZigLayers - 1);
    const bool neg = (d >> 8) & 1;
    const std::uint64_t off = (d >> 9) & kZigMantissaMask;
    const double x = static_cast<double>(off) * t.w[idx];
    if (off < t.k[idx]) return neg ? -x : x;  // retry landed in an inscribed box
    if (idx == 0) {
      // Base strip beyond kZigR: Marsaglia's exact tail sampler.
      double xx, yy;
      do {
        xx = -std::log(1.0 - uniform()) / kZigR;
        yy = -std::log(1.0 - uniform());
      } while (yy + yy < xx * xx);
      return neg ? -(kZigR + xx) : (kZigR + xx);
    }
    // Wedge between the inscribed box and the curve: exact accept/reject.
    const double y = t.f[idx] + uniform() * (t.f[idx + 1] - t.f[idx]);
    if (y < std::exp(-0.5 * x * x)) return neg ? -x : x;
    d = (*this)();
  }
}

double Rng::normal(double mean, double sigma) {
  RGLEAK_REQUIRE(sigma >= 0.0, "normal() needs sigma >= 0");
  return mean + sigma * normal();
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  normal_fill(out.data(), n);
  return out;
}

void Rng::normal_fill(double* out, std::size_t n) {
  // Identical stream to n calls of normal(); the ziggurat fast path is
  // inlined here so bulk fills (the MC field draw is ~10^5 normals) skip the
  // per-call function and table-guard overhead.
  std::size_t i = 0;
  if (has_spare_ && n > 0) {
    has_spare_ = false;
    out[i++] = spare_;
  }
  const ZigguratTables& t = zig();
  while (i < n) {
    const std::uint64_t d = (*this)();
    const std::size_t idx = d & (kZigLayers - 1);
    const std::uint64_t off = (d >> 9) & kZigMantissaMask;
    if (off < t.k[idx]) {
      const double x = static_cast<double>(off) * t.w[idx];
      out[i++] = (d >> 8) & 1 ? -x : x;
      continue;
    }
    out[i++] = normal_slow(d);
  }
}

bool Rng::bernoulli(double p) {
  RGLEAK_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli needs p in [0,1]");
  return uniform() < p;
}

Rng Rng::fork() { return Rng((*this)()); }

Rng::State Rng::state() const {
  State st;
  st.s = state_;
  st.spare_bits = std::bit_cast<std::uint64_t>(spare_);
  st.has_spare = has_spare_;
  return st;
}

void Rng::set_state(const State& st) {
  state_ = st.s;
  spare_ = std::bit_cast<double>(st.spare_bits);
  has_spare_ = st.has_spare;
}

}  // namespace rgleak::math
