#pragma once
// The paper's analytical cell-moment machinery (section 2.1.2, eqs (1)-(5)).
//
// A cell's leakage is modeled as X = a * exp(b L + c L^2) with channel length
// L ~ N(mu, sigma^2). Writing L = mu + sigma Z and completing the square,
//   Y = ln X = K1 * Q + K3,   Q = (Z + K2)^2,
// where Q is non-central chi-square with 1 dof and noncentrality K2^2, and
//   K1 = c sigma^2,  K2 = (b/(2c) + mu)/sigma,
//   K3 = ln a + b mu + c mu^2 - c (b/(2c) + mu)^2.
// The MGF of Y is then
//   M_Y(t) = (1 - 2 K1 t)^{-1/2} exp( K2^2 K1 t / (1 - 2 K1 t) + K3 t ),
// and the exact leakage moments are mu_X = M_Y(1), E[X^2] = M_Y(2).
//
// Note: eq. (3) of the paper prints the prefactor exponent as +1/2; the
// correct non-central-chi-square MGF has -1/2 (we verify against Monte Carlo
// in the test suite).

namespace rgleak::math {

/// Fitted functional form X = a * exp(b L + c L^2) for one cell/input-state.
struct LogQuadraticModel {
  double a = 0.0;  ///< scale (same unit as the leakage, nA)
  double b = 0.0;  ///< 1/nm
  double c = 0.0;  ///< 1/nm^2

  /// Evaluates the model at channel length l (nm).
  double operator()(double l) const;
};

/// Exact moments of a LogQuadraticModel under L ~ N(mu, sigma^2).
class LogQuadraticMoments {
 public:
  /// Requires sigma >= 0 and 1 - 4 c sigma^2 > 0 (else E[X^2] diverges).
  LogQuadraticMoments(const LogQuadraticModel& model, double mu_l, double sigma_l);

  /// The K-parameters of eqs (4)-(5). K2 is only defined for c != 0; when
  /// c == 0 the model degenerates to a log-normal and k2() throws.
  double k1() const { return k1_; }
  double k2() const;
  double k3() const { return k3_; }

  /// M_Y(t), the MGF of Y = ln X. Computed through the robust Gaussian
  /// quadratic-form expectation (valid for c == 0 too). Requires
  /// 1 - 2 K1 t > 0.
  double mgf_log(double t) const;

  /// M_Y(t) evaluated literally through eq. (3) (corrected -1/2 prefactor).
  /// Only defined for c != 0 and sigma > 0; equals mgf_log(t) there. Kept as
  /// the paper-faithful form for validation.
  double mgf_log_paper_form(double t) const;

  double mean() const { return mean_; }
  double second_moment() const { return second_; }
  double variance() const { return second_ - mean_ * mean_; }
  double stddev() const;

 private:
  double k1_, k3_;
  bool has_k2_;
  double k2_value_;
  double mean_, second_;
  double mu_l_, sigma_l_;
  LogQuadraticModel model_;
};

}  // namespace rgleak::math
