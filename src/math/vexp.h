#pragma once
// Batched exponential kernel for the Monte-Carlo hot path.
//
// std::exp is accurate but scalar: one call per table lookup keeps the
// full-chip MC trial loop from vectorizing. vexp() evaluates exp() over a
// contiguous array with a branch-free range-reduction + polynomial scheme
// (round-to-nearest power-of-two split, degree-13 Taylor on |r| <= ln2/2,
// exponent bit-stuffing) that compilers auto-vectorize. Accuracy is
// ULP-bounded against std::exp (see tests/math/test_vexp.cpp: <= 4 ULP over
// the leakage tables' whole log-range and beyond).
//
// Arguments outside [kVexpMinArg, kVexpMaxArg] are clamped to the interval
// ends before evaluation, so vexp never produces inf, 0, or denormals. The
// MC leakage tables live in roughly [-20, 40] in log space, far inside the
// window; the clamp only matters for callers feeding extreme arguments.

#include <cstddef>

namespace rgleak::math {

/// Largest argument vexp evaluates exactly; larger inputs clamp to it
/// (exp(709.08) ~ 8.2e307, still finite).
inline constexpr double kVexpMaxArg = 709.08;
/// Smallest argument vexp evaluates exactly; smaller inputs clamp to it
/// (exp(-708.39) ~ 2.3e-308, still a normal double).
inline constexpr double kVexpMinArg = -708.39;

/// out[i] = exp(x[i]) for i in [0, n). In-place operation (out == x) is
/// allowed; any other overlap is not.
void vexp(const double* x, double* out, std::size_t n);

}  // namespace rgleak::math
