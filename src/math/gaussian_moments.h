#pragma once
// Closed-form Gaussian expectations of exponential-quadratic forms.
//
// The analytical leakage machinery of the paper rests on two facts about a
// (multivariate) normal vector z ~ N(mu, Sigma):
//
//   E[exp(w'z + z' A z)] =
//     |I - 2 Sigma A|^{-1/2} *
//     exp( w'mu + mu'A mu + 0.5 * v' (I - 2 Sigma A)^{-1} Sigma v ),
//     with v = w + 2 A mu,
//
// valid when I - 2 Sigma A is positive definite. For a single cell this gives
// the exact mean/second-moment of X = a exp(bL + cL^2) (equivalently, the
// non-central chi-square MGF of eqs (1)-(5)); for a *pair* of cells it gives
// E[X_m X_n] under correlated lengths, which is the exact leakage-correlation
// mapping f_{m,n}(rho_L) of section 2.1.3.

#include "math/linalg.h"

namespace rgleak::math {

/// E[exp(w'z + z'Az)] for z ~ N(mu, Sigma). `a` must be symmetric. Throws
/// NumericalError when I - 2*Sigma*A is not positive definite (the expectation
/// diverges).
double expectation_exp_quadratic(const std::vector<double>& w, const Matrix& a,
                                 const std::vector<double>& mu, const Matrix& sigma);

/// Specialized 1-D case: E[exp(b z + c z^2)] for z ~ N(mu, var). Used for the
/// cell mean; requires 1 - 2*c*var > 0.
double expectation_exp_quadratic_1d(double b, double c, double mu, double var);

/// Specialized 2-D case used by the pairwise-leakage correlation map:
/// E[exp(b1 z1 + c1 z1^2 + b2 z2 + c2 z2^2)] where (z1, z2) are jointly normal
/// with common mean `mu`, common variance `var`, and correlation `rho`.
double expectation_exp_quadratic_2d(double b1, double c1, double b2, double c2, double mu,
                                    double var, double rho);

}  // namespace rgleak::math
