#include "math/stats.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rgleak::math {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::mean() const {
  RGLEAK_REQUIRE(n_ >= 1, "mean needs at least one sample");
  return mean_;
}

double RunningStats::variance() const {
  RGLEAK_REQUIRE(n_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  RGLEAK_REQUIRE(n_ >= 1, "min needs at least one sample");
  return min_;
}

double RunningStats::max() const {
  RGLEAK_REQUIRE(n_ >= 1, "max needs at least one sample");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += d * nb / nt;
  m2_ += other.m2_ + d * d * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningCovariance::add(double x, double y) {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mx_;
  const double dy = y - my_;
  mx_ += dx / n;
  my_ += dy / n;
  cxy_ += dx * (y - my_);
  cxx_ += dx * (x - mx_);
  cyy_ += dy * (y - my_);
}

double RunningCovariance::mean_x() const {
  RGLEAK_REQUIRE(n_ >= 1, "mean_x needs at least one sample");
  return mx_;
}

double RunningCovariance::mean_y() const {
  RGLEAK_REQUIRE(n_ >= 1, "mean_y needs at least one sample");
  return my_;
}

double RunningCovariance::covariance() const {
  RGLEAK_REQUIRE(n_ >= 2, "covariance needs at least two samples");
  return cxy_ / static_cast<double>(n_ - 1);
}

double RunningCovariance::correlation() const {
  RGLEAK_REQUIRE(n_ >= 2, "correlation needs at least two samples");
  RGLEAK_REQUIRE(cxx_ > 0.0 && cyy_ > 0.0, "correlation needs non-degenerate marginals");
  return cxy_ / std::sqrt(cxx_ * cyy_);
}

double mean(const std::vector<double>& v) {
  RGLEAK_REQUIRE(!v.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  RGLEAK_REQUIRE(v.size() >= 2, "variance needs at least two samples");
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  RGLEAK_REQUIRE(x.size() == y.size(), "correlation needs equal-length vectors");
  RunningCovariance c;
  for (std::size_t i = 0; i < x.size(); ++i) c.add(x[i], y[i]);
  return c.correlation();
}

double relative_error(double a, double b) {
  if (b == 0.0) return std::abs(a);
  return std::abs(a - b) / std::abs(b);
}

}  // namespace rgleak::math
