#include "math/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rgleak::math {

double SampleSet::mean() const {
  RGLEAK_REQUIRE(!samples_.empty(), "mean of empty sample set");
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  RGLEAK_REQUIRE(samples_.size() >= 2, "stddev needs at least two samples");
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::percentile(double q) const {
  RGLEAK_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  RGLEAK_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(idx);
  return sorted_[idx] + frac * (sorted_[idx + 1] - sorted_[idx]);
}

}  // namespace rgleak::math
