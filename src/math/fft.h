#pragma once
// Radix-2 complex FFT (1-D and 2-D). Substrate for the circulant-embedding
// sampler of spatially correlated channel-length fields (process module).

#include <complex>
#include <cstddef>
#include <vector>

namespace rgleak::math {

/// In-place iterative radix-2 Cooley–Tukey FFT. Size must be a power of two.
/// `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// 2-D FFT over a rows x cols row-major array; both dims must be powers of two.
void fft2d(std::vector<std::complex<double>>& data, std::size_t rows, std::size_t cols,
           bool inverse);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Linear (zero-padded, non-circular) 2-D cross-correlation of real
/// rows x cols grids via the FFT. Splitting the transform from the product
/// lets callers correlate T grids pairwise with T forward transforms instead
/// of one per pair (the exact-estimator offset histogram does exactly this).
class CrossCorrelator2D {
 public:
  CrossCorrelator2D(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Output dims: signed offsets dr in [-(rows-1), rows-1], dc likewise.
  std::size_t out_rows() const { return 2 * rows_ - 1; }
  std::size_t out_cols() const { return 2 * cols_ - 1; }

  /// Forward transform of a row-major rows x cols real grid, zero-padded to
  /// the internal power-of-two dims.
  std::vector<std::complex<double>> transform(const std::vector<double>& grid) const;

  /// Cross-correlation from two forward transforms:
  ///   out(dr, dc) = sum_{r,c} a(r, c) * b(r + dr, c + dc),
  /// returned row-major on an out_rows() x out_cols() grid with (0, 0) at
  /// index (rows()-1, cols()-1).
  std::vector<double> correlate(const std::vector<std::complex<double>>& fa,
                                const std::vector<std::complex<double>>& fb) const;

 private:
  std::size_t rows_, cols_;
  std::size_t pad_rows_, pad_cols_;
};

}  // namespace rgleak::math
