#pragma once
// Radix-2 complex FFT (1-D and 2-D). Substrate for the circulant-embedding
// sampler of spatially correlated channel-length fields (process module).

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rgleak::math {

/// In-place iterative radix-2 Cooley–Tukey FFT. Size must be a power of two.
/// `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// 2-D FFT over a rows x cols row-major array; both dims must be powers of two.
void fft2d(std::vector<std::complex<double>>& data, std::size_t rows, std::size_t cols,
           bool inverse);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Precomputed radix-2 FFT plan for one power-of-two length: the twiddle
/// factors and the bit-reversal permutation are hoisted out of the transform.
/// This removes the sequential `w *= w_len` recurrence from the butterfly
/// inner loop (a long dependency chain that also accumulates rounding error),
/// and makes run() allocation-free — the substrate for the Monte-Carlo
/// engine's per-worker FFT workspaces.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);  // n must be a power of two

  std::size_t size() const { return n_; }

  /// Bytes held by the precomputed tables (twiddles + bit-reversal). The
  /// memory cost model charges plans by this, not by transform length, so
  /// budget accounting matches what the plan actually pins.
  std::size_t plan_bytes() const {
    return bitrev_.capacity() * sizeof(std::uint32_t) +
           twiddle_.capacity() * sizeof(std::complex<double>);
  }

  /// In-place transform of `a[0..n)`. Same transform (and scaling convention)
  /// as fft(): `inverse` conjugates the twiddles and applies 1/N.
  void run(std::complex<double>* a, bool inverse) const;

 private:
  template <bool Inverse>
  void run_impl(std::complex<double>* a) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;
  /// Forward twiddles w_len^k, k < len/2, concatenated for len = 2, 4, ..., n;
  /// stage `len` starts at offset len/2 - 1.
  std::vector<std::complex<double>> twiddle_;
};

/// Precomputed 2-D FFT plan with caller-owned full-grid scratch: the same
/// transform as fft2d(), but zero allocations per call once `scratch` has
/// warmed up. Copyable (workers clone their sampler's plan with it).
///
/// The column pass runs as blocked transpose + contiguous row transforms +
/// blocked transpose back, instead of gathering each column with a
/// cache-hostile power-of-two stride (on a 128x128 grid the strided gather
/// maps every element of a column to a couple of L1 sets).
class FftPlan2D {
 public:
  FftPlan2D(std::size_t rows, std::size_t cols);  // both powers of two

  std::size_t rows() const { return col_fft_.size(); }
  std::size_t cols() const { return row_fft_.size(); }

  /// Bytes pinned by the two 1-D plans (see FftPlan::plan_bytes).
  std::size_t plan_bytes() const { return row_fft_.plan_bytes() + col_fft_.plan_bytes(); }

  /// Full 2-D transform; `scratch` grows to rows*cols and is reused.
  void run(std::vector<std::complex<double>>& data, bool inverse,
           std::vector<std::complex<double>>& scratch) const;

  /// Output-pruned transform: identical to run() on rows [0, keep_rows) of
  /// the output, but skips the back-transpose and final per-row transforms of
  /// the rest (rows >= keep_rows keep whatever `data` held on entry). The
  /// circulant field sampler reads only the top rows of its padded grid,
  /// which makes 5/8 of the last pass dead work at typical padding ratios.
  void run_top_rows(std::vector<std::complex<double>>& data, bool inverse,
                    std::vector<std::complex<double>>& scratch, std::size_t keep_rows) const;

  /// Column-major variant of run_top_rows for callers that can produce their
  /// input already transposed (`data[c * rows() + r]` holds grid point
  /// (r, c)): the column transforms then run contiguously in place with no
  /// input transpose at all. On return `out` is row-major with rows
  /// [0, keep_rows) transformed exactly as run() would leave them; rows >=
  /// keep_rows are untouched. `data` is consumed (holds column-pass
  /// intermediates).
  void run_top_rows_colmajor(std::vector<std::complex<double>>& data, bool inverse,
                             std::vector<std::complex<double>>& out, std::size_t keep_rows) const;

 private:
  FftPlan row_fft_;  // length-cols transform applied to each row
  FftPlan col_fft_;  // length-rows transform applied to each column
};

/// Linear (zero-padded, non-circular) 2-D cross-correlation of real
/// rows x cols grids via the FFT. Splitting the transform from the product
/// lets callers correlate T grids pairwise with T forward transforms instead
/// of one per pair (the exact-estimator offset histogram does exactly this).
class CrossCorrelator2D {
 public:
  CrossCorrelator2D(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Output dims: signed offsets dr in [-(rows-1), rows-1], dc likewise.
  std::size_t out_rows() const { return 2 * rows_ - 1; }
  std::size_t out_cols() const { return 2 * cols_ - 1; }

  /// Forward transform of a row-major rows x cols real grid, zero-padded to
  /// the internal power-of-two dims.
  std::vector<std::complex<double>> transform(const std::vector<double>& grid) const;

  /// Cross-correlation from two forward transforms:
  ///   out(dr, dc) = sum_{r,c} a(r, c) * b(r + dr, c + dc),
  /// returned row-major on an out_rows() x out_cols() grid with (0, 0) at
  /// index (rows()-1, cols()-1).
  std::vector<double> correlate(const std::vector<std::complex<double>>& fa,
                                const std::vector<std::complex<double>>& fb) const;

 private:
  std::size_t rows_, cols_;
  std::size_t pad_rows_, pad_cols_;
};

}  // namespace rgleak::math
