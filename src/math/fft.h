#pragma once
// Radix-2 complex FFT (1-D and 2-D). Substrate for the circulant-embedding
// sampler of spatially correlated channel-length fields (process module).

#include <complex>
#include <cstddef>
#include <vector>

namespace rgleak::math {

/// In-place iterative radix-2 Cooley–Tukey FFT. Size must be a power of two.
/// `inverse` applies the conjugate transform and 1/N scaling.
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// 2-D FFT over a rows x cols row-major array; both dims must be powers of two.
void fft2d(std::vector<std::complex<double>>& data, std::size_t rows, std::size_t cols,
           bool inverse);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace rgleak::math
