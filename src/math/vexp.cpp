#include "math/vexp.h"

#include <bit>
#include <cstdint>

namespace rgleak::math {

namespace {

// exp(x) = 2^k * exp(r) with k = round(x / ln2) and r = x - k*ln2, |r| <= ln2/2.
// ln2 is split hi/lo so the reduction is exact to well below 1 ULP of r even
// for |k| ~ 1000.
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
// Adding 1.5 * 2^52 forces round-to-nearest-even of the sum's fractional part;
// the rounded integer sits in the low mantissa bits of the result.
constexpr double kRoundMagic = 6755399441055744.0;  // 1.5 * 2^52

// Taylor coefficients of exp(r) on |r| <= ln2/2 ~ 0.3466; the degree-13 tail
// 0.3466^14/14! ~ 4e-18 is below double rounding, so the polynomial itself
// contributes < 1 ULP.
constexpr double kC2 = 1.0 / 2.0;
constexpr double kC3 = 1.0 / 6.0;
constexpr double kC4 = 1.0 / 24.0;
constexpr double kC5 = 1.0 / 120.0;
constexpr double kC6 = 1.0 / 720.0;
constexpr double kC7 = 1.0 / 5040.0;
constexpr double kC8 = 1.0 / 40320.0;
constexpr double kC9 = 1.0 / 362880.0;
constexpr double kC10 = 1.0 / 3628800.0;
constexpr double kC11 = 1.0 / 39916800.0;
constexpr double kC12 = 1.0 / 479001600.0;
constexpr double kC13 = 1.0 / 6227020800.0;

}  // namespace

void vexp(const double* x, double* out, std::size_t n) {
  // Branch-free per element so the loop auto-vectorizes: clamp, range-reduce,
  // Horner, scale by 2^k via exponent bit-stuffing. With x clamped to
  // [kVexpMinArg, kVexpMaxArg], k stays within [-1022, 1023] and the stuffed
  // exponent never wraps into inf/denormal territory.
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i];
    v = v > kVexpMaxArg ? kVexpMaxArg : v;
    v = v < kVexpMinArg ? kVexpMinArg : v;

    const double shifted = v * kLog2E + kRoundMagic;
    const double kd = shifted - kRoundMagic;
    const auto k = static_cast<std::int32_t>(std::bit_cast<std::uint64_t>(shifted));

    const double r = (v - kd * kLn2Hi) - kd * kLn2Lo;

    double p = kC13;
    p = p * r + kC12;
    p = p * r + kC11;
    p = p * r + kC10;
    p = p * r + kC9;
    p = p * r + kC8;
    p = p * r + kC7;
    p = p * r + kC6;
    p = p * r + kC5;
    p = p * r + kC4;
    p = p * r + kC3;
    p = p * r + kC2;
    p = p * r + 1.0;
    p = p * r + 1.0;

    const double scale = std::bit_cast<double>(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(k) + 1023) << 52);
    out[i] = p * scale;
  }
}

}  // namespace rgleak::math
