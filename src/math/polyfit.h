#pragma once
// Polynomial least-squares fitting (Vandermonde + Householder QR). Used by the
// analytical characterizer to fit ln(leakage) as a quadratic in channel length.

#include <vector>

namespace rgleak::math {

/// Fits y ~ c0 + c1 x + ... + c_degree x^degree in the least-squares sense.
/// Returns the coefficients lowest-order first. Requires at least degree+1
/// samples and distinct abscissae.
std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            std::size_t degree);

/// Evaluates a polynomial given coefficients lowest-order first (Horner).
double polyval(const std::vector<double>& coeffs, double x);

}  // namespace rgleak::math
