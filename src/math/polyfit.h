#pragma once
// Polynomial least-squares fitting (Vandermonde + Householder QR). Used by the
// analytical characterizer to fit ln(leakage) as a quadratic in channel length.

#include <vector>

namespace rgleak::math {

/// Conditioning diagnostics from a polyfit. `condition` is the estimated
/// condition number of the Vandermonde design matrix; values much above ~1e8
/// mean the returned coefficients carry few reliable digits.
struct PolyfitInfo {
  double condition = 0.0;
};

/// Fits y ~ c0 + c1 x + ... + c_degree x^degree in the least-squares sense.
/// Returns the coefficients lowest-order first. Requires at least degree+1
/// samples and distinct abscissae. When `info` is non-null it receives
/// conditioning diagnostics.
std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            std::size_t degree, PolyfitInfo* info = nullptr);

/// Evaluates a polynomial given coefficients lowest-order first (Horner).
double polyval(const std::vector<double>& coeffs, double x);

}  // namespace rgleak::math
