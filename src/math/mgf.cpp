#include "math/mgf.h"

#include <cmath>
#include <sstream>

#include "math/gaussian_moments.h"
#include "util/require.h"

namespace rgleak::math {

double LogQuadraticModel::operator()(double l) const {
  const double exponent = b * l + c * l * l;
  // exp overflows double near 709.8; refuse to return inf silently. Deep
  // underflow flushes to 0, which is physically sensible (no leakage).
  if (exponent > 700.0 || !std::isfinite(exponent)) {
    std::ostringstream os;
    os << "log-quadratic model overflows at L=" << l << " nm (a=" << a << ", b=" << b
       << ", c=" << c << ", exponent=" << exponent << ")";
    throw NumericalError(os.str());
  }
  if (exponent < -745.0) return 0.0;
  return a * std::exp(exponent);
}

LogQuadraticMoments::LogQuadraticMoments(const LogQuadraticModel& model, double mu_l,
                                         double sigma_l)
    : mu_l_(mu_l), sigma_l_(sigma_l), model_(model) {
  RGLEAK_REQUIRE(model.a > 0.0, "log-quadratic model needs a > 0");
  RGLEAK_REQUIRE(sigma_l >= 0.0, "sigma_l must be non-negative");
  const double var = sigma_l * sigma_l;
  k1_ = model.c * var;
  has_k2_ = model.c != 0.0 && sigma_l > 0.0;
  if (has_k2_) {
    const double shift = model.b / (2.0 * model.c) + mu_l;
    k2_value_ = shift / sigma_l;
    k3_ = std::log(model.a) + model.b * mu_l + model.c * mu_l * mu_l - model.c * shift * shift;
  } else {
    k2_value_ = 0.0;
    k3_ = std::log(model.a) + model.b * mu_l + model.c * mu_l * mu_l;
  }

  // Moments through the (robust, c == 0 safe) Gaussian quadratic-form
  // expectation; identical to M_Y(1), M_Y(2) when c != 0.
  mean_ = model.a * expectation_exp_quadratic_1d(model.b, model.c, mu_l, var);
  second_ =
      model.a * model.a * expectation_exp_quadratic_1d(2.0 * model.b, 2.0 * model.c, mu_l, var);
}

double LogQuadraticMoments::k2() const {
  RGLEAK_REQUIRE(has_k2_, "K2 is undefined for c == 0 or sigma == 0");
  return k2_value_;
}

double LogQuadraticMoments::mgf_log(double t) const {
  // M_Y(t) = E[X^t] = a^t * E[exp(t b L + t c L^2)].
  return std::exp(t * std::log(model_.a)) *
         expectation_exp_quadratic_1d(t * model_.b, t * model_.c, mu_l_, sigma_l_ * sigma_l_);
}

double LogQuadraticMoments::mgf_log_paper_form(double t) const {
  RGLEAK_REQUIRE(has_k2_, "paper-form MGF needs c != 0 and sigma > 0");
  const double denom = 1.0 - 2.0 * k1_ * t;
  if (denom <= 0.0) throw NumericalError("mgf_log: 1 - 2 K1 t <= 0; MGF diverges");
  const double noncentral = k2_value_ * k2_value_ * k1_ * t / denom;
  return std::pow(denom, -0.5) * std::exp(noncentral + k3_ * t);
}

double LogQuadraticMoments::stddev() const {
  const double v = variance();
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

}  // namespace rgleak::math
