#pragma once
// Streaming statistics used throughout the Monte-Carlo and validation code:
// Welford mean/variance, bivariate covariance/correlation accumulation, and
// simple summary helpers over vectors.

#include <cstddef>
#include <vector>

namespace rgleak::math {

/// Numerically-stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Streaming covariance/correlation of paired samples (x, y).
class RunningCovariance {
 public:
  void add(double x, double y);

  std::size_t count() const { return n_; }
  double mean_x() const;
  double mean_y() const;
  /// Unbiased sample covariance. Requires count() >= 2.
  double covariance() const;
  /// Pearson correlation. Requires both marginal variances > 0.
  double correlation() const;

 private:
  std::size_t n_ = 0;
  double mx_ = 0.0, my_ = 0.0;
  double cxy_ = 0.0, cxx_ = 0.0, cyy_ = 0.0;
};

/// Mean of a vector. Requires non-empty input.
double mean(const std::vector<double>& v);
/// Unbiased sample variance. Requires size >= 2.
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);
/// Pearson correlation of two equal-length vectors.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

/// Relative error |a - b| / |b| (guards b == 0 by absolute error).
double relative_error(double a, double b);

}  // namespace rgleak::math
