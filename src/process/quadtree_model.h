#pragma once
// Hierarchical (quadtree) WID variation model, Agarwal/Blaauw style — the
// main *competing* correlation abstraction in the SSTA literature (used by
// the paper's reference [4]).
//
// The die is recursively partitioned: level 0 is one region, level l has
// 2^l x 2^l regions; each region carries an independent N(0, sigma_l^2)
// component and a site's WID deviation is the sum of its regions' components
// down the tree. Correlation between two sites is the fraction of variance
// they share: sum of sigma_l^2 over the levels where they fall in the same
// region. This is NOT a function of distance alone (two sites straddling a
// high-level boundary decorrelate sharply), which makes the model the
// natural stress test for the paper's distance-based rho_L(d) assumption
// (bench_model_mismatch).

#include <cstddef>
#include <vector>

#include "math/rng.h"

namespace rgleak::process {

class QuadtreeModel {
 public:
  /// `level_sigmas[l]` is the sigma of level l's independent components
  /// (level 0 = whole-die region; deeper levels decorrelate shorter ranges).
  /// The die spans [0, width_nm] x [0, height_nm].
  QuadtreeModel(std::vector<double> level_sigmas, double width_nm, double height_nm);

  std::size_t levels() const { return sigmas_.size(); }
  /// Total WID sigma: sqrt(sum sigma_l^2).
  double total_sigma() const { return total_sigma_; }
  double width_nm() const { return width_; }
  double height_nm() const { return height_; }

  /// Exact correlation between two die locations: shared-variance fraction.
  double correlation(double x1_nm, double y1_nm, double x2_nm, double y2_nm) const;

  /// Samples the WID deviations at the given locations (one draw of the whole
  /// tree). Locations outside the die are rejected.
  std::vector<double> sample(const std::vector<std::pair<double, double>>& locations_nm,
                             math::Rng& rng) const;

  /// Convenience: samples a rows x cols site grid (row-major, site centres at
  /// pitch/2 offsets), pitch derived from the die dimensions.
  std::vector<double> sample_grid(std::size_t rows, std::size_t cols, math::Rng& rng) const;

 private:
  std::vector<double> sigmas_;
  double width_, height_;
  double total_sigma_;

  /// Region index of a location at level l.
  std::size_t region_index(std::size_t level, double x, double y) const;
};

}  // namespace rgleak::process
