#pragma once
// Within-die spatial correlation models rho_wid(d).
//
// The paper assumes the existence of a valid correlation function of distance
// [Xiong/Zolotov/He, ISPD'06]; we provide the standard families. All models
// satisfy rho(0) = 1, |rho| <= 1, and are non-increasing in distance.

#include <memory>
#include <string>

namespace rgleak::process {

/// Interface for an isotropic WID correlation function of distance (nm).
class SpatialCorrelation {
 public:
  virtual ~SpatialCorrelation() = default;

  /// Correlation at separation `distance_nm` >= 0.
  virtual double operator()(double distance_nm) const = 0;

  /// Distance at which the correlation is (effectively) zero; used by the
  /// polar-form estimator as the integration cutoff D_max. For models with
  /// infinite support this is the distance where rho drops below 1e-6.
  virtual double range_nm() const = 0;

  virtual std::string name() const = 0;
};

/// rho(d) = exp(-d / lc).
class ExponentialCorrelation final : public SpatialCorrelation {
 public:
  explicit ExponentialCorrelation(double correlation_length_nm);
  double operator()(double d) const override;
  double range_nm() const override;
  std::string name() const override { return "exponential"; }
  double correlation_length_nm() const { return lc_; }

 private:
  double lc_;
};

/// rho(d) = exp(-(d / lc)^2) (squared-exponential / Gaussian kernel).
class GaussianCorrelation final : public SpatialCorrelation {
 public:
  explicit GaussianCorrelation(double correlation_length_nm);
  double operator()(double d) const override;
  double range_nm() const override;
  std::string name() const override { return "gaussian"; }

 private:
  double lc_;
};

/// rho(d) = max(0, 1 - d / dmax): the linear taper with compact support often
/// used in SSTA grid models. Note: in 2-D this kernel is not positive
/// definite in the strict sense; the field sampler clamps the (slightly)
/// negative embedding eigenvalues it induces.
class LinearCorrelation final : public SpatialCorrelation {
 public:
  explicit LinearCorrelation(double dmax_nm);
  double operator()(double d) const override;
  double range_nm() const override { return dmax_; }
  std::string name() const override { return "linear"; }

 private:
  double dmax_;
};

/// Spherical model: rho(d) = 1 - 1.5 (d/D) + 0.5 (d/D)^3 for d < D, else 0.
/// Compactly supported and positive definite in up to 3 dimensions.
class SphericalCorrelation final : public SpatialCorrelation {
 public:
  explicit SphericalCorrelation(double dmax_nm);
  double operator()(double d) const override;
  double range_nm() const override { return dmax_; }
  std::string name() const override { return "spherical"; }

 private:
  double dmax_;
};

/// Matern nu=3/2: rho(d) = (1 + sqrt(3) d/lc) exp(-sqrt(3) d/lc). Smoother
/// than exponential at the origin, a common fit from silicon measurements
/// (robust-extraction flows a la Xiong/Zolotov/He).
class Matern32Correlation final : public SpatialCorrelation {
 public:
  explicit Matern32Correlation(double correlation_length_nm);
  double operator()(double d) const override;
  double range_nm() const override;
  std::string name() const override { return "matern32"; }

 private:
  double lc_;
};

/// Power-exponential family: rho(d) = exp(-(d/lc)^p), p in (0, 2]. p = 1 is
/// exponential, p = 2 Gaussian; fractional p fits heavy-tailed measured
/// correlations.
class PowerExponentialCorrelation final : public SpatialCorrelation {
 public:
  PowerExponentialCorrelation(double correlation_length_nm, double power);
  double operator()(double d) const override;
  double range_nm() const override;
  std::string name() const override { return "powerexp"; }
  double power() const { return p_; }

 private:
  double lc_, p_;
};

/// Factory by name ("exponential", "gaussian", "linear", "spherical",
/// "matern32") with a single scale parameter; used by examples/benches to
/// sweep model families. ("powerexp" needs its exponent and is constructed
/// directly.)
std::shared_ptr<const SpatialCorrelation> make_correlation(const std::string& name,
                                                           double scale_nm);

/// Recovers the scale parameter a factory family was built from: the support
/// radius for compact models, else the distance where rho = e^-1 (bisected).
/// Used by serialization and by sensitivity sweeps that rescale the model.
double correlation_scale_nm(const SpatialCorrelation& corr);

}  // namespace rgleak::process
