#include "process/correlation_fit.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace rgleak::process {

std::vector<CorrelogramBin> empirical_correlogram(
    const std::vector<std::vector<double>>& die_samples, std::size_t rows, std::size_t cols,
    double dx_nm, double dy_nm, std::size_t bins, double max_distance_nm) {
  RGLEAK_REQUIRE(die_samples.size() >= 2, "correlogram needs at least two dies");
  RGLEAK_REQUIRE(rows >= 2 && cols >= 2, "correlogram needs a 2-D grid");
  RGLEAK_REQUIRE(dx_nm > 0.0 && dy_nm > 0.0, "site pitch must be positive");
  RGLEAK_REQUIRE(bins >= 2, "correlogram needs at least two bins");
  const std::size_t n = rows * cols;
  for (const auto& die : die_samples)
    RGLEAK_REQUIRE(die.size() == n, "die sample size mismatch");

  if (max_distance_nm <= 0.0)
    max_distance_nm =
        0.5 * std::hypot(static_cast<double>(cols) * dx_nm, static_cast<double>(rows) * dy_nm);

  // Global (pooled) mean and variance under the stationarity assumption.
  double mean = 0.0;
  std::size_t count = 0;
  for (const auto& die : die_samples)
    for (double x : die) {
      mean += x;
      ++count;
    }
  mean /= static_cast<double>(count);
  double var = 0.0;
  for (const auto& die : die_samples)
    for (double x : die) var += (x - mean) * (x - mean);
  var /= static_cast<double>(count - 1);
  RGLEAK_REQUIRE(var > 0.0, "field samples are constant; no correlation to extract");

  struct BinAcc {
    double dist_weighted = 0.0;
    double rho_weighted = 0.0;
    std::size_t pairs = 0;
  };
  std::vector<BinAcc> acc(bins);
  const double bin_w = max_distance_nm / static_cast<double>(bins);

  // All unordered offsets: (di = 0, dj > 0) and (di > 0, any dj).
  const auto add_offset = [&](std::size_t di, long long dj) {
    const double d = std::hypot(static_cast<double>(dj) * dx_nm,
                                static_cast<double>(di) * dy_nm);
    if (d <= 0.0 || d >= max_distance_nm) return;
    double cov = 0.0;
    std::size_t pairs = 0;
    for (const auto& die : die_samples) {
      for (std::size_t r = 0; r + di < rows; ++r) {
        const std::size_t c_lo = dj < 0 ? static_cast<std::size_t>(-dj) : 0;
        const std::size_t c_hi = dj > 0 ? cols - static_cast<std::size_t>(dj) : cols;
        for (std::size_t c = c_lo; c < c_hi; ++c) {
          const double a = die[r * cols + c];
          const double b =
              die[(r + di) * cols + static_cast<std::size_t>(static_cast<long long>(c) + dj)];
          cov += (a - mean) * (b - mean);
          ++pairs;
        }
      }
    }
    if (pairs == 0) return;
    const double rho = cov / static_cast<double>(pairs) / var;
    auto bin = static_cast<std::size_t>(d / bin_w);
    bin = std::min(bin, bins - 1);
    acc[bin].dist_weighted += d * static_cast<double>(pairs);
    acc[bin].rho_weighted += rho * static_cast<double>(pairs);
    acc[bin].pairs += pairs;
  };
  for (long long dj = 1; dj < static_cast<long long>(cols); ++dj) add_offset(0, dj);
  for (std::size_t di = 1; di < rows; ++di)
    for (long long dj = -(static_cast<long long>(cols) - 1);
         dj < static_cast<long long>(cols); ++dj)
      add_offset(di, dj);

  std::vector<CorrelogramBin> out;
  for (const auto& b : acc) {
    if (b.pairs == 0) continue;
    CorrelogramBin bin;
    bin.distance_nm = b.dist_weighted / static_cast<double>(b.pairs);
    bin.correlation = b.rho_weighted / static_cast<double>(b.pairs);
    bin.pairs = b.pairs;
    out.push_back(bin);
  }
  RGLEAK_REQUIRE(out.size() >= 2, "correlogram has too few populated bins");
  return out;
}

namespace {

double fit_error(const std::vector<CorrelogramBin>& correlogram, const std::string& family,
                 double scale) {
  const auto model = make_correlation(family, scale);
  double se = 0.0, wsum = 0.0;
  for (const auto& bin : correlogram) {
    const double r = (*model)(bin.distance_nm) - bin.correlation;
    const double w = static_cast<double>(bin.pairs);
    se += w * r * r;
    wsum += w;
  }
  return std::sqrt(se / wsum);
}

}  // namespace

CorrelationFit fit_correlation_model(const std::vector<CorrelogramBin>& correlogram,
                                     const std::string& family) {
  RGLEAK_REQUIRE(correlogram.size() >= 2, "fit needs at least two correlogram bins");
  double d_min = correlogram.front().distance_nm, d_max = 0.0;
  for (const auto& b : correlogram) {
    d_min = std::min(d_min, b.distance_nm);
    d_max = std::max(d_max, b.distance_nm);
  }
  RGLEAK_REQUIRE(d_min > 0.0, "correlogram bins must have positive distance");

  // Coarse log-grid search, then golden-section refinement.
  const double lo0 = d_min / 8.0, hi0 = d_max * 32.0;
  double best_scale = lo0, best_err = fit_error(correlogram, family, lo0);
  const int kGrid = 64;
  for (int i = 1; i < kGrid; ++i) {
    const double s =
        lo0 * std::pow(hi0 / lo0, static_cast<double>(i) / static_cast<double>(kGrid - 1));
    const double e = fit_error(correlogram, family, s);
    if (e < best_err) {
      best_err = e;
      best_scale = s;
    }
  }
  double lo = best_scale / 2.0, hi = best_scale * 2.0;
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = hi - gr * (hi - lo), b = lo + gr * (hi - lo);
  double fa = fit_error(correlogram, family, a), fb = fit_error(correlogram, family, b);
  for (int it = 0; it < 60; ++it) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - gr * (hi - lo);
      fa = fit_error(correlogram, family, a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + gr * (hi - lo);
      fb = fit_error(correlogram, family, b);
    }
  }
  CorrelationFit fit;
  fit.family = family;
  fit.scale_nm = 0.5 * (lo + hi);
  fit.rms_error = fit_error(correlogram, family, fit.scale_nm);
  fit.model = make_correlation(family, fit.scale_nm);
  return fit;
}

std::vector<CorrelationFit> fit_all_families(const std::vector<CorrelogramBin>& correlogram) {
  std::vector<CorrelationFit> fits;
  for (const char* family : {"exponential", "gaussian", "linear", "spherical", "matern32"})
    fits.push_back(fit_correlation_model(correlogram, family));
  std::sort(fits.begin(), fits.end(),
            [](const CorrelationFit& a, const CorrelationFit& b) {
              return a.rms_error < b.rms_error;
            });
  return fits;
}

}  // namespace rgleak::process
