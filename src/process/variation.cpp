#include "process/variation.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::process {

double LengthVariation::sigma_total_nm() const {
  return std::sqrt(sigma_d2d_nm * sigma_d2d_nm + sigma_wid_nm * sigma_wid_nm);
}

double LengthVariation::d2d_variance_fraction() const {
  const double total = sigma_d2d_nm * sigma_d2d_nm + sigma_wid_nm * sigma_wid_nm;
  RGLEAK_REQUIRE(total > 0.0, "process has zero length variance");
  return sigma_d2d_nm * sigma_d2d_nm / total;
}

ProcessVariation::ProcessVariation(LengthVariation length, VtVariation vt,
                                   std::shared_ptr<const SpatialCorrelation> wid_correlation,
                                   CorrelationAnisotropy anisotropy)
    : length_(length), vt_(vt), wid_corr_(std::move(wid_correlation)), anisotropy_(anisotropy) {
  RGLEAK_REQUIRE(length_.mean_nm > 0.0, "nominal length must be positive");
  RGLEAK_REQUIRE(length_.sigma_d2d_nm >= 0.0 && length_.sigma_wid_nm >= 0.0,
                 "length sigmas must be non-negative");
  RGLEAK_REQUIRE(vt_.sigma_v >= 0.0, "Vt sigma must be non-negative");
  RGLEAK_REQUIRE(wid_corr_ != nullptr, "WID correlation model is required");
  RGLEAK_REQUIRE(anisotropy_.scale_x > 0.0 && anisotropy_.scale_y > 0.0,
                 "anisotropy scales must be positive");
}

double ProcessVariation::total_length_correlation(double distance_nm) const {
  return total_length_correlation_xy(distance_nm, 0.0);
}

double ProcessVariation::total_length_correlation_xy(double dx_nm, double dy_nm) const {
  const double d_eff = std::hypot(dx_nm / anisotropy_.scale_x, dy_nm / anisotropy_.scale_y);
  if (d_eff == 0.0) return 1.0;
  const double var_dd = length_.sigma_d2d_nm * length_.sigma_d2d_nm;
  const double var_wd = length_.sigma_wid_nm * length_.sigma_wid_nm;
  const double total = var_dd + var_wd;
  RGLEAK_REQUIRE(total > 0.0, "process has zero length variance");
  return (var_dd + var_wd * (*wid_corr_)(d_eff)) / total;
}

double ProcessVariation::wid_correlation_range_nm() const {
  return wid_corr_->range_nm() * std::max(anisotropy_.scale_x, anisotropy_.scale_y);
}

ProcessVariation default_process() {
  return ProcessVariation(LengthVariation{}, VtVariation{},
                          std::make_shared<ExponentialCorrelation>(5.0e5));  // 0.5 mm
}

}  // namespace rgleak::process
