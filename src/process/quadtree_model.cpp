#include "process/quadtree_model.h"

#include <cmath>
#include <unordered_map>

#include "util/require.h"

namespace rgleak::process {

QuadtreeModel::QuadtreeModel(std::vector<double> level_sigmas, double width_nm,
                             double height_nm)
    : sigmas_(std::move(level_sigmas)), width_(width_nm), height_(height_nm) {
  RGLEAK_REQUIRE(!sigmas_.empty(), "quadtree needs at least one level");
  RGLEAK_REQUIRE(sigmas_.size() <= 20, "quadtree depth capped at 20 levels");
  RGLEAK_REQUIRE(width_ > 0.0 && height_ > 0.0, "die dimensions must be positive");
  double var = 0.0;
  for (double s : sigmas_) {
    RGLEAK_REQUIRE(s >= 0.0, "level sigmas must be non-negative");
    var += s * s;
  }
  RGLEAK_REQUIRE(var > 0.0, "quadtree has zero total variance");
  total_sigma_ = std::sqrt(var);
}

std::size_t QuadtreeModel::region_index(std::size_t level, double x, double y) const {
  const auto cells = static_cast<std::size_t>(1) << level;  // 2^level per axis
  auto ix = static_cast<std::size_t>(x / width_ * static_cast<double>(cells));
  auto iy = static_cast<std::size_t>(y / height_ * static_cast<double>(cells));
  ix = std::min(ix, cells - 1);
  iy = std::min(iy, cells - 1);
  return iy * cells + ix;
}

double QuadtreeModel::correlation(double x1, double y1, double x2, double y2) const {
  RGLEAK_REQUIRE(x1 >= 0.0 && x1 <= width_ && x2 >= 0.0 && x2 <= width_ && y1 >= 0.0 &&
                     y1 <= height_ && y2 >= 0.0 && y2 <= height_,
                 "locations must lie on the die");
  double shared = 0.0;
  for (std::size_t l = 0; l < sigmas_.size(); ++l) {
    if (region_index(l, x1, y1) != region_index(l, x2, y2)) break;  // tree: once split, always split
    shared += sigmas_[l] * sigmas_[l];
  }
  return shared / (total_sigma_ * total_sigma_);
}

std::vector<double> QuadtreeModel::sample(
    const std::vector<std::pair<double, double>>& locations, math::Rng& rng) const {
  RGLEAK_REQUIRE(!locations.empty(), "sample needs at least one location");
  for (const auto& [x, y] : locations)
    RGLEAK_REQUIRE(x >= 0.0 && x <= width_ && y >= 0.0 && y <= height_,
                   "locations must lie on the die");

  std::vector<double> out(locations.size(), 0.0);
  // Draw region components lazily per level; regions are keyed by index.
  for (std::size_t l = 0; l < sigmas_.size(); ++l) {
    if (sigmas_[l] == 0.0) continue;
    std::unordered_map<std::size_t, double> draw;
    for (std::size_t i = 0; i < locations.size(); ++i) {
      const std::size_t region = region_index(l, locations[i].first, locations[i].second);
      auto it = draw.find(region);
      if (it == draw.end()) it = draw.emplace(region, rng.normal(0.0, sigmas_[l])).first;
      out[i] += it->second;
    }
  }
  return out;
}

std::vector<double> QuadtreeModel::sample_grid(std::size_t rows, std::size_t cols,
                                               math::Rng& rng) const {
  RGLEAK_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
  const double px = width_ / static_cast<double>(cols);
  const double py = height_ / static_cast<double>(rows);
  std::vector<std::pair<double, double>> locations;
  locations.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      locations.emplace_back((static_cast<double>(c) + 0.5) * px,
                             (static_cast<double>(r) + 0.5) * py);
  return sample(locations, rng);
}

}  // namespace rgleak::process
