#pragma once
// Process-variation description (section 2 of the paper).
//
// A parameter such as channel length L has a die-to-die (D2D) component shared
// by every device on a die and a within-die (WID) component that varies across
// the die with spatial correlation:
//   sigma^2 = sigma_dd^2 + sigma_wd^2,
//   rho_total(d) = (sigma_dd^2 + sigma_wd^2 * rho_wid(d)) / sigma^2.
// Vt variation (random dopant fluctuation) is purely random across the die and
// therefore only enters the *mean* of full-chip leakage.

#include <memory>

#include "process/spatial_correlation.h"

namespace rgleak::process {

/// Statistical description of the channel-length parameter (nm).
struct LengthVariation {
  double mean_nm = 40.0;      ///< nominal effective channel length
  double sigma_d2d_nm = 1.77; ///< die-to-die standard deviation
  double sigma_wid_nm = 1.77; ///< within-die standard deviation

  /// Total standard deviation: sqrt(sigma_dd^2 + sigma_wd^2).
  double sigma_total_nm() const;
  /// Fraction of variance that is D2D (the `rho_C` constant of eq. (26)).
  double d2d_variance_fraction() const;
};

/// Random (spatially independent) threshold-voltage variation, V.
struct VtVariation {
  double sigma_v = 0.02;  ///< per-minimum-device sigma of random dopant dVt
};

/// Anisotropy of the WID correlation: offsets are scaled per axis before the
/// isotropic model is evaluated, rho_wid(hypot(dx/scale_x, dy/scale_y)).
/// scale > 1 stretches the correlation along that axis (lithography-induced
/// x/y asymmetry). (1, 1) is isotropic.
struct CorrelationAnisotropy {
  double scale_x = 1.0;
  double scale_y = 1.0;

  bool is_isotropic() const { return scale_x == scale_y; }
};

/// Full process description used by the estimators: length statistics, Vt
/// statistics, and the WID spatial correlation model.
class ProcessVariation {
 public:
  ProcessVariation(LengthVariation length, VtVariation vt,
                   std::shared_ptr<const SpatialCorrelation> wid_correlation,
                   CorrelationAnisotropy anisotropy = {});

  const LengthVariation& length() const { return length_; }
  const VtVariation& vt() const { return vt_; }
  const SpatialCorrelation& wid_correlation() const { return *wid_corr_; }
  std::shared_ptr<const SpatialCorrelation> wid_correlation_ptr() const { return wid_corr_; }

  /// Total channel-length correlation between two devices separated by
  /// distance d (nm), combining D2D (constant) and WID (distance-dependent)
  /// components. rho_total(0) == 1. For anisotropic processes this treats the
  /// separation as lying along the x axis; prefer the (dx, dy) overload.
  double total_length_correlation(double distance_nm) const;

  /// Total channel-length correlation for an (dx, dy) separation, applying
  /// the anisotropy scaling. Equals the distance form when isotropic.
  double total_length_correlation_xy(double dx_nm, double dy_nm) const;

  const CorrelationAnisotropy& anisotropy() const { return anisotropy_; }
  bool is_isotropic() const { return anisotropy_.is_isotropic(); }

  /// Distance beyond which the WID component of the correlation is considered
  /// zero (D_max of section 3.2.2); taken from the correlation model, scaled
  /// by the larger anisotropy axis.
  double wid_correlation_range_nm() const;

 private:
  LengthVariation length_;
  VtVariation vt_;
  std::shared_ptr<const SpatialCorrelation> wid_corr_;
  CorrelationAnisotropy anisotropy_;
};

/// A reasonable "virtual 90 nm" default: exponential WID correlation with a
/// 0.5 mm correlation length, equal D2D/WID variance split.
ProcessVariation default_process();

}  // namespace rgleak::process
