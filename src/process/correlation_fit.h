#pragma once
// Robust extraction of the WID spatial-correlation model from measured (or
// simulated) parameter fields — the calibration step the paper delegates to
// Xiong/Zolotov/He [ISPD'06]. Given per-die samples of a parameter on a site
// grid, compute the empirical correlogram (average correlation per lag
// distance) and fit a chosen valid correlation family's scale to it, so that
// the fitted model is positive definite by construction.

#include <memory>
#include <string>
#include <vector>

#include "process/spatial_correlation.h"

namespace rgleak::process {

/// One point of the empirical correlogram.
struct CorrelogramBin {
  double distance_nm = 0.0;
  double correlation = 0.0;
  std::size_t pairs = 0;  ///< site pairs averaged into this bin
};

/// Computes the empirical correlogram of per-die field samples on a
/// rows x cols grid (row-major, one vector per die). Lags are binned by
/// centre distance into `bins` equal-width bins up to `max_distance_nm`
/// (default: half the grid diagonal). Requires >= 2 dies.
std::vector<CorrelogramBin> empirical_correlogram(
    const std::vector<std::vector<double>>& die_samples, std::size_t rows, std::size_t cols,
    double dx_nm, double dy_nm, std::size_t bins = 24, double max_distance_nm = 0.0);

/// Result of a correlation-model fit.
struct CorrelationFit {
  std::string family;
  double scale_nm = 0.0;
  double rms_error = 0.0;  ///< RMS residual of rho over the correlogram bins
  std::shared_ptr<const SpatialCorrelation> model;
};

/// Fits one factory family ("exponential", "gaussian", "linear", "spherical",
/// "matern32") to a correlogram by golden-section search on the scale
/// (pair-count-weighted least squares).
CorrelationFit fit_correlation_model(const std::vector<CorrelogramBin>& correlogram,
                                     const std::string& family);

/// Fits all factory families and returns them sorted by ascending RMS error
/// (best first) — "pick the family the silicon actually follows".
std::vector<CorrelationFit> fit_all_families(const std::vector<CorrelogramBin>& correlogram);

}  // namespace rgleak::process
