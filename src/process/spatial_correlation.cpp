#include "process/spatial_correlation.h"

#include <cmath>

#include "util/require.h"

namespace rgleak::process {

namespace {
constexpr double kNegligible = 1e-6;

void check_distance(double d) { RGLEAK_REQUIRE(d >= 0.0, "distance must be non-negative"); }
}  // namespace

ExponentialCorrelation::ExponentialCorrelation(double correlation_length_nm)
    : lc_(correlation_length_nm) {
  RGLEAK_REQUIRE(lc_ > 0.0, "correlation length must be positive");
}

double ExponentialCorrelation::operator()(double d) const {
  check_distance(d);
  return std::exp(-d / lc_);
}

double ExponentialCorrelation::range_nm() const { return -lc_ * std::log(kNegligible); }

GaussianCorrelation::GaussianCorrelation(double correlation_length_nm)
    : lc_(correlation_length_nm) {
  RGLEAK_REQUIRE(lc_ > 0.0, "correlation length must be positive");
}

double GaussianCorrelation::operator()(double d) const {
  check_distance(d);
  const double r = d / lc_;
  return std::exp(-r * r);
}

double GaussianCorrelation::range_nm() const { return lc_ * std::sqrt(-std::log(kNegligible)); }

LinearCorrelation::LinearCorrelation(double dmax_nm) : dmax_(dmax_nm) {
  RGLEAK_REQUIRE(dmax_ > 0.0, "dmax must be positive");
}

double LinearCorrelation::operator()(double d) const {
  check_distance(d);
  return d >= dmax_ ? 0.0 : 1.0 - d / dmax_;
}

SphericalCorrelation::SphericalCorrelation(double dmax_nm) : dmax_(dmax_nm) {
  RGLEAK_REQUIRE(dmax_ > 0.0, "dmax must be positive");
}

double SphericalCorrelation::operator()(double d) const {
  check_distance(d);
  if (d >= dmax_) return 0.0;
  const double r = d / dmax_;
  return 1.0 - 1.5 * r + 0.5 * r * r * r;
}

Matern32Correlation::Matern32Correlation(double correlation_length_nm)
    : lc_(correlation_length_nm) {
  RGLEAK_REQUIRE(lc_ > 0.0, "correlation length must be positive");
}

double Matern32Correlation::operator()(double d) const {
  check_distance(d);
  const double r = std::sqrt(3.0) * d / lc_;
  return (1.0 + r) * std::exp(-r);
}

double Matern32Correlation::range_nm() const {
  // Solve (1 + r) e^-r = kNegligible by bisection.
  double lo = 0.0, hi = 100.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if ((1.0 + mid) * std::exp(-mid) > kNegligible) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi) * lc_ / std::sqrt(3.0);
}

PowerExponentialCorrelation::PowerExponentialCorrelation(double correlation_length_nm,
                                                         double power)
    : lc_(correlation_length_nm), p_(power) {
  RGLEAK_REQUIRE(lc_ > 0.0, "correlation length must be positive");
  RGLEAK_REQUIRE(p_ > 0.0 && p_ <= 2.0, "power-exponential exponent must be in (0, 2]");
}

double PowerExponentialCorrelation::operator()(double d) const {
  check_distance(d);
  return std::exp(-std::pow(d / lc_, p_));
}

double PowerExponentialCorrelation::range_nm() const {
  return lc_ * std::pow(-std::log(kNegligible), 1.0 / p_);
}

double correlation_scale_nm(const SpatialCorrelation& corr) {
  const std::string name = corr.name();
  if (name == "linear" || name == "spherical") return corr.range_nm();
  double lo = 0.0, hi = corr.range_nm();
  const double target = std::exp(-1.0);
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (corr(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::shared_ptr<const SpatialCorrelation> make_correlation(const std::string& name,
                                                           double scale_nm) {
  if (name == "exponential") return std::make_shared<ExponentialCorrelation>(scale_nm);
  if (name == "gaussian") return std::make_shared<GaussianCorrelation>(scale_nm);
  if (name == "linear") return std::make_shared<LinearCorrelation>(scale_nm);
  if (name == "spherical") return std::make_shared<SphericalCorrelation>(scale_nm);
  if (name == "matern32") return std::make_shared<Matern32Correlation>(scale_nm);
  // Typically fed from user input (CLI flag, .rgchar file): a configuration
  // error, not a caller bug.
  throw ConfigError("unknown correlation model: " + name);
}

}  // namespace rgleak::process
