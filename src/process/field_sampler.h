#pragma once
// Sampling of spatially correlated within-die parameter fields.
//
// The full-chip Monte-Carlo validator needs draws of the WID channel-length
// deviation at every placement site with covariance
//   cov(s1, s2) = sigma_wid^2 * rho_wid(||s1 - s2||).
// For regular grids we use circulant embedding (Dietrich & Newsam): embed the
// stationary covariance in a periodic domain, diagonalize it with a 2-D FFT,
// and color white noise — exact (up to eigenvalue clamping) and
// O(N log N). For small irregular site sets a dense Cholesky factorization of
// the covariance matrix is provided.

#include <cstddef>
#include <memory>
#include <vector>

#include "math/fft.h"
#include "math/linalg.h"
#include "math/rng.h"
#include "process/spatial_correlation.h"
#include "process/variation.h"

namespace rgleak::process {

/// Caller-owned scratch for the samplers' allocation-free sample_into()
/// paths. One workspace per worker/stream; buffers grow to the sampler's
/// padded dimensions on first use and are reused afterwards, so the
/// steady-state sampling loop performs zero heap allocations.
struct FieldWorkspace {
  std::vector<std::complex<double>> freq;     ///< padded-grid FFT buffer
  std::vector<std::complex<double>> scratch;  ///< 1-D line scratch for the FFT
  std::vector<double> normals;                ///< dense-sampler white noise
};

/// Samples zero-mean stationary Gaussian fields on a k x m grid of sites with
/// spacing (dx, dy) nm, covariance sigma^2 * rho(effective distance), where
/// the effective distance applies the optional per-axis anisotropy scaling.
class GridFieldSampler {
 public:
  GridFieldSampler(std::size_t rows, std::size_t cols, double dx_nm, double dy_nm,
                   const SpatialCorrelation& rho, double sigma,
                   CorrelationAnisotropy anisotropy = {});

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Padded periodic embedding dims (powers of two >= rows/cols); the FFT
  /// buffers and eigenvalue table are this size, so they dominate footprint.
  std::size_t padded_rows() const { return prow_; }
  std::size_t padded_cols() const { return pcol_; }

  /// The padded dimension the constructor would choose for `n` sites at
  /// `pitch_nm` spacing under a kernel of range `range_nm` — exposed so the
  /// memory cost model can preflight footprints without building a sampler.
  static std::size_t padded_dim(std::size_t n, double pitch_nm, double range_nm);

  /// Bytes pinned by this sampler instance for its lifetime: the eigenvalue
  /// table, the spare-field cache, and this copy's share of the (shared,
  /// immutable) FFT plan. Per-draw FFT scratch lives in FieldWorkspace and is
  /// charged by the owner of the workspace instead.
  std::size_t footprint_bytes() const;

  /// Bytes a FieldWorkspace grows to when used with this sampler (freq +
  /// scratch buffers at the padded dims).
  std::size_t workspace_bytes() const {
    return 2 * prow_ * pcol_ * sizeof(std::complex<double>);
  }

  /// One field sample, row-major rows() x cols(). Each call consumes fresh
  /// randomness; successive samples are independent.
  std::vector<double> sample(math::Rng& rng);

  /// Allocation-free variant: writes the field into `out` (resized to
  /// rows()*cols()) using `ws` for FFT scratch. Draws the same values in the
  /// same order as sample() for an identical RNG state. After the first call
  /// with a given workspace, the steady state performs zero heap allocations.
  void sample_into(math::Rng& rng, FieldWorkspace& ws, std::vector<double>& out);

  /// Largest negative embedding eigenvalue that was clamped to zero, as a
  /// fraction of the largest eigenvalue (0 when the embedding was exactly
  /// non-negative). Diagnostic for kernel validity.
  double clamped_eigenvalue_fraction() const { return clamped_fraction_; }

  /// Checkpoint access to the spare-field cache: each FFT yields two
  /// independent fields, and the second is held for the next sample() call.
  /// A resumed run must restore this cache or its stream diverges from the
  /// uninterrupted one.
  bool has_cached_field() const { return has_cached_; }
  const std::vector<double>& cached_field() const { return cached_; }
  /// Restores a cache captured by cached_field(); size must be rows*cols.
  void set_cached_field(std::vector<double> field);

 private:
  std::size_t rows_, cols_;      // requested grid
  std::size_t prow_, pcol_;      // padded periodic grid (powers of two)
  /// Sqrt of embedding eigenvalues, stored COLUMN-major (index c * prow_ + r):
  /// the white-noise buffer is filled and colored directly in the transposed
  /// layout the FFT's contiguous column pass wants, which removes the input
  /// transpose from every draw.
  std::vector<double> sqrt_eig_;
  /// Twiddle/bit-reversal plan for the prow_ x pcol_ transforms; shared
  /// between per-worker copies of the sampler (immutable after construction).
  std::shared_ptr<const math::FftPlan2D> plan_;
  double clamped_fraction_ = 0.0;
  std::vector<double> cached_;   // second independent field from the last FFT
  bool has_cached_ = false;
};

/// Dense sampler for arbitrary site locations: factorizes the n x n covariance
/// once (O(n^3)) and produces samples in O(n^2). Intended for n up to a few
/// thousand.
class DenseFieldSampler {
 public:
  struct Site {
    double x_nm = 0.0;
    double y_nm = 0.0;
  };

  DenseFieldSampler(std::vector<Site> sites, const SpatialCorrelation& rho, double sigma);

  std::size_t size() const { return sites_.size(); }
  std::vector<double> sample(math::Rng& rng) const;

  /// Allocation-free variant mirroring GridFieldSampler::sample_into: the
  /// white-noise draw lands in `ws.normals`, the colored field in `out`
  /// (resized to size()). Same stream as sample() for an identical RNG state.
  void sample_into(math::Rng& rng, FieldWorkspace& ws, std::vector<double>& out) const;

 private:
  std::vector<Site> sites_;
  math::Matrix chol_;
};

}  // namespace rgleak::process
