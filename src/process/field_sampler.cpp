#include "process/field_sampler.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <sstream>

#include "math/fft.h"
#include "util/failpoint.h"
#include "util/require.h"

namespace rgleak::process {

std::size_t GridFieldSampler::padded_dim(std::size_t n, double pitch_nm, double range_nm) {
  const double range_sites = range_nm / pitch_nm;
  const double want =
      static_cast<double>(n) + std::min(range_sites, 4.0 * static_cast<double>(n));
  return math::next_pow2(std::max<std::size_t>(static_cast<std::size_t>(std::ceil(want)), 2));
}

std::size_t GridFieldSampler::footprint_bytes() const {
  return sqrt_eig_.capacity() * sizeof(double) + cached_.capacity() * sizeof(double) +
         (plan_ != nullptr ? plan_->plan_bytes() : 0);
}

GridFieldSampler::GridFieldSampler(std::size_t rows, std::size_t cols, double dx_nm, double dy_nm,
                                   const SpatialCorrelation& rho, double sigma,
                                   CorrelationAnisotropy anisotropy)
    : rows_(rows), cols_(cols) {
  RGLEAK_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
  RGLEAK_REQUIRE(dx_nm > 0.0 && dy_nm > 0.0, "site pitch must be positive");
  RGLEAK_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  RGLEAK_REQUIRE(anisotropy.scale_x > 0.0 && anisotropy.scale_y > 0.0,
                 "anisotropy scales must be positive");
  // Fold the anisotropy into effective pitches: rho is evaluated at
  // hypot(dx/ax, dy/ay).
  dx_nm /= anisotropy.scale_x;
  dy_nm /= anisotropy.scale_y;

  // Periodic embedding (powers of two for the FFT). The embedding is exact
  // when the padded half-domain exceeds the kernel range (no wrap-around
  // correlation); pad up to that point, capped at 4x the grid to bound
  // memory for very long-range kernels (the residual shows up in
  // clamped_eigenvalue_fraction()).
  prow_ = padded_dim(rows, dy_nm, rho.range_nm());
  pcol_ = padded_dim(cols, dx_nm, rho.range_nm());

  // The big arena of this constructor: the padded kernel grid, the FFT plan,
  // and the eigenvalue table all scale with prow_*pcol_. An injected (or
  // real) bad_alloc here is translated to ResourceError by callers.
  RGLEAK_FAILPOINT("process.sampler.alloc");

  // First row of the block-circulant covariance: wrap-around distances.
  std::vector<std::complex<double>> kernel(prow_ * pcol_);
  const double var = sigma * sigma;
  for (std::size_t r = 0; r < prow_; ++r) {
    const std::size_t wr = std::min(r, prow_ - r);
    const double dyv = static_cast<double>(wr) * dy_nm;
    for (std::size_t c = 0; c < pcol_; ++c) {
      const std::size_t wc = std::min(c, pcol_ - c);
      const double dxv = static_cast<double>(wc) * dx_nm;
      const double d = std::hypot(dxv, dyv);
      kernel[r * pcol_ + c] = var * rho(d);
    }
  }

  math::fft2d(kernel, prow_, pcol_, /*inverse=*/false);
  plan_ = std::make_shared<const math::FftPlan2D>(prow_, pcol_);

  sqrt_eig_.resize(prow_ * pcol_);
  double max_eig = 0.0, worst_neg = 0.0;
  for (std::size_t r = 0; r < prow_; ++r)
    for (std::size_t c = 0; c < pcol_; ++c) {
      const double lambda = kernel[r * pcol_ + c].real();  // imaginary parts are FFT noise
      max_eig = std::max(max_eig, lambda);
      worst_neg = std::min(worst_neg, lambda);
      // Column-major: matches the transposed noise layout of sample_into.
      sqrt_eig_[c * prow_ + r] = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    }
  clamped_fraction_ = max_eig > 0.0 ? -worst_neg / max_eig : 0.0;

  // Mild clamping (imperfect embedding of a valid kernel) is expected —
  // LinearCorrelation sits around a few percent. A large fraction means the
  // correlation function itself is not positive semi-definite and the sampled
  // fields would not have the requested covariance.
  constexpr double kMaxClampedFraction = 0.25;
  if (clamped_fraction_ > kMaxClampedFraction) {
    std::ostringstream os;
    os << "grid field sampler: correlation '" << rho.name()
       << "' is not positive semi-definite on the " << prow_ << "x" << pcol_
       << " periodic embedding (most negative eigenvalue " << worst_neg << ", largest " << max_eig
       << ", clamped fraction " << clamped_fraction_ << " > " << kMaxClampedFraction << ")";
    throw NumericalError(os.str());
  }
}

std::vector<double> GridFieldSampler::sample(math::Rng& rng) {
  FieldWorkspace ws;
  std::vector<double> field;
  sample_into(rng, ws, field);
  return field;
}

void GridFieldSampler::sample_into(math::Rng& rng, FieldWorkspace& ws, std::vector<double>& out) {
  out.resize(rows_ * cols_);
  if (has_cached_) {
    // Consume the spare field from the last FFT. The cache buffer keeps its
    // capacity for the next FFT round — no allocation churn.
    has_cached_ = false;
    std::copy(cached_.begin(), cached_.end(), out.begin());
    return;
  }
  const std::size_t np = prow_ * pcol_;
  ws.scratch.resize(np);
  // White noise straight into the transposed (column-major) layout the FFT's
  // column pass consumes, colored by the matching column-major eigenvalue
  // roots: no input transpose. A complex array is layout-compatible with
  // (re, im) double pairs, so the bulk normal_fill draws the same stream as
  // elementwise {normal(), normal()} fills.
  rng.normal_fill(reinterpret_cast<double*>(ws.scratch.data()), 2 * np);
  for (std::size_t i = 0; i < np; ++i) ws.scratch[i] *= sqrt_eig_[i];
  // Only the top rows_ rows of the padded grid are unpacked below; prune the
  // back-transpose and final FFT pass to them.
  plan_->run_top_rows_colmajor(ws.scratch, /*inverse=*/true, ws.freq, rows_);

  // y = sqrt(N) * IFFT(sqrt(lambda) .* eps) has E[Re(y) Re(y)^T] = C; the
  // imaginary part is a second independent sample that we cache.
  const double scale = std::sqrt(static_cast<double>(np));
  cached_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) {
      const auto v = ws.freq[r * pcol_ + c] * scale;
      out[r * cols_ + c] = v.real();
      cached_[r * cols_ + c] = v.imag();
    }
  has_cached_ = true;
}

void GridFieldSampler::set_cached_field(std::vector<double> field) {
  RGLEAK_REQUIRE(field.size() == rows_ * cols_,
                 "cached field must match the sampler grid");
  cached_ = std::move(field);
  has_cached_ = true;
}

DenseFieldSampler::DenseFieldSampler(std::vector<Site> sites, const SpatialCorrelation& rho,
                                     double sigma)
    : sites_(std::move(sites)) {
  RGLEAK_REQUIRE(!sites_.empty(), "dense sampler needs at least one site");
  RGLEAK_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  const std::size_t n = sites_.size();
  math::Matrix cov(n, n);
  const double var = sigma * sigma;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double d = std::hypot(sites_[i].x_nm - sites_[j].x_nm, sites_[i].y_nm - sites_[j].y_nm);
      double v = var * rho(d);
      if (i == j) v += var * 1e-10;  // jitter to keep coincident sites factorizable
      cov(i, j) = cov(j, i) = v;
    }
  }
  try {
    chol_ = math::cholesky(cov);
  } catch (const NumericalError& e) {
    // Gershgorin bound: every eigenvalue lies in some [a_ii - R_i, a_ii + R_i]
    // with R_i the off-diagonal row sum; the minimum left endpoint bounds the
    // smallest eigenvalue from below and tells the caller how indefinite the
    // correlation function is over these sites.
    double gersh_lo = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      double radius = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) radius += std::abs(cov(i, j));
      gersh_lo = std::min(gersh_lo, cov(i, i) - radius);
    }
    std::ostringstream os;
    os << "dense field sampler: covariance from correlation '" << rho.name() << "' over " << n
       << " sites is not positive definite (Gershgorin eigenvalue lower bound " << gersh_lo
       << "); " << e.what();
    throw NumericalError(os.str());
  }
}

std::vector<double> DenseFieldSampler::sample(math::Rng& rng) const {
  FieldWorkspace ws;
  std::vector<double> y;
  sample_into(rng, ws, y);
  return y;
}

void DenseFieldSampler::sample_into(math::Rng& rng, FieldWorkspace& ws,
                                    std::vector<double>& out) const {
  const std::size_t n = sites_.size();
  ws.normals.resize(n);
  rng.normal_fill(ws.normals.data(), n);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * ws.normals[j];
    out[i] = s;
  }
}

}  // namespace rgleak::process
