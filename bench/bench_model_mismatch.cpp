// Model-mismatch ablation: how wrong is the paper's distance-only rho_L(d)
// when the silicon actually follows a hierarchical (quadtree) correlation
// structure (the competing abstraction of reference [4])?
//
// Protocol: a quadtree model is the hidden truth. (1) Compute the placed
// design's TRUE leakage sigma with exact per-pair quadtree correlations.
// (2) Play the calibration flow: sample measurement dies from the quadtree,
// extract a distance-based correlogram, fit the best family, and run the
// paper's RG estimate with it. The gap is the price of the distance-only
// assumption.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "process/correlation_fit.h"
#include "process/quadtree_model.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Distance-only correlation vs quadtree truth", "model-mismatch ablation");

  const auto& lib = bench::library();
  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.4;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;

  const std::size_t side = 50;  // 2500 gates
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const double sigma_wid = 2.5;

  util::Table t({"quadtree profile", "fitted family", "fitted scale (um)", "fit RMS",
                 "true sigma (uA)", "RG sigma (uA)", "err %"});

  math::Rng rng(777);
  const std::vector<std::pair<std::string, std::vector<double>>> profiles = {
      {"top-heavy (die-dominated)", {0.8, 0.4, 0.3, 0.2}},
      {"balanced", {0.5, 0.5, 0.5, 0.5}},
      {"bottom-heavy (local)", {0.2, 0.3, 0.4, 0.8}},
  };

  for (const auto& [name, weights] : profiles) {
    // Normalize level sigmas to the target WID sigma.
    double wsum2 = 0.0;
    for (double w : weights) wsum2 += w * w;
    std::vector<double> sigmas;
    for (double w : weights) sigmas.push_back(w * sigma_wid / std::sqrt(wsum2));
    const process::QuadtreeModel truth(sigmas, fp.width_nm(), fp.height_nm());

    // WID-only process shell for the characterization (total sigma matches).
    process::LengthVariation len;
    len.mean_nm = 40.0;
    len.sigma_d2d_nm = 0.0;
    len.sigma_wid_nm = sigma_wid;
    const process::ProcessVariation shell(
        len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(1.0e5));
    const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, shell);

    // Placed design + TRUE sigma under quadtree correlations (exact pairwise,
    // reusing the per-type covariance grids of the exact estimator).
    const netlist::Netlist nl =
        netlist::generate_random_circuit(lib, usage, side * side, rng);
    const core::ExactEstimator exact(chars, 0.5, core::CorrelationMode::kAnalytic);
    std::vector<std::pair<double, double>> pos(nl.size());
    for (std::size_t g = 0; g < nl.size(); ++g)
      pos[g] = {(static_cast<double>(g % side) + 0.5) * fp.site_w_nm,
                (static_cast<double>(g / side) + 0.5) * fp.site_h_nm};
    double var = 0.0, mean = 0.0;
    for (std::size_t a = 0; a < nl.size(); ++a) {
      var += exact.type_covariance(nl.gate(a).cell_index, nl.gate(a).cell_index, 1.0);
      for (std::size_t b = a + 1; b < nl.size(); ++b) {
        const double rho = truth.correlation(pos[a].first, pos[a].second, pos[b].first,
                                             pos[b].second);
        var += 2.0 * exact.type_covariance(nl.gate(a).cell_index, nl.gate(b).cell_index, rho);
      }
      (void)mean;
    }
    const double true_sigma = std::sqrt(var);

    // Calibration flow: measure, fit a distance model, estimate.
    std::vector<std::vector<double>> dies;
    for (int d = 0; d < 200; ++d) dies.push_back(truth.sample_grid(20, 20, rng));
    const auto cg = process::empirical_correlogram(dies, 20, 20, fp.width_nm() / 20.0,
                                                   fp.height_nm() / 20.0, 14);
    const auto best = process::fit_all_families(cg).front();
    const process::ProcessVariation fitted(len, process::VtVariation{}, best.model);
    const charlib::CharacterizedLibrary chars_fit =
        charlib::characterize_analytic(lib, fitted);
    const core::RandomGate rg(chars_fit, usage, 0.5, core::CorrelationMode::kAnalytic);
    const double rg_sigma = core::estimate_linear(rg, fp).sigma_na;

    t.row()
        .cell(name)
        .cell(best.family)
        .cell(best.scale_nm * 1e-3, 4)
        .cell(best.rms_error, 3)
        .cell(true_sigma * 1e-3, 5)
        .cell(rg_sigma * 1e-3, 5)
        .cell(100.0 * std::abs(rg_sigma - true_sigma) / true_sigma, 3);
  }
  t.print(std::cout);
  std::cout << "\ntakeaway: when long-range (die-level) components dominate, the distance-only\n"
               "abstraction is nearly exact; as variance shifts into local quadtree levels\n"
               "the boundary discontinuities that rho(d) cannot represent cost an\n"
               "increasing sigma underestimate (~1% -> ~16% across these profiles) —\n"
               "a concrete domain-of-validity boundary for the paper's assumption\n";
  return 0;
}
