// Figure 2: leakage correlation vs channel-length correlation for gate
// pairs, computed (a) by Monte-Carlo sampling of correlated lengths and
// (b) by the analytical f_{m,n} mapping from the fitted (a,b,c) triplets.
//
// Paper reference: both curves hug the y = x line; the analytical technique
// matches MC closely for all pairs.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "charlib/correlation_map.h"
#include "charlib/leakage_table.h"
#include "math/rng.h"
#include "math/stats.h"
#include "util/table.h"

namespace {

// MC estimate of the leakage correlation of two (cell, state) pairs at length
// correlation rho.
double mc_leakage_correlation(const rgleak::charlib::LeakageTable& ta,
                              const rgleak::charlib::LeakageTable& tb, double mu, double sigma,
                              double rho, rgleak::math::Rng& rng) {
  rgleak::math::RunningCovariance cov;
  for (int i = 0; i < 200000; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1.0 - rho * rho) * rng.normal();
    cov.add(ta.eval_na(mu + sigma * z1), tb.eval_na(mu + sigma * z2));
  }
  return cov.correlation();
}

}  // namespace

int main() {
  using namespace rgleak;
  bench::banner("Leakage correlation vs length correlation", "Figure 2");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();
  const auto process = bench::bench_process();
  const double mu = process.length().mean_nm;
  const double sigma = process.length().sigma_total_nm();

  struct Pair {
    const char* cell_a;
    std::uint32_t state_a;
    const char* cell_b;
    std::uint32_t state_b;
  };
  const std::vector<Pair> pairs = {
      {"INV_X1", 0, "INV_X1", 0},
      {"INV_X1", 1, "NAND2_X1", 0},
      {"NAND4_X1", 0, "NOR2_X1", 3},
      {"XOR2_X1", 1, "AOI22_X1", 5},
  };

  math::Rng rng(2024);
  math::RunningStats map_vs_mc, map_vs_identity;
  for (const auto& p : pairs) {
    const auto& ca = lib.cell(lib.index_of(p.cell_a));
    const auto& cb = lib.cell(lib.index_of(p.cell_b));
    const auto ma = *chars.cell(lib.index_of(p.cell_a)).states[p.state_a].model;
    const auto mb = *chars.cell(lib.index_of(p.cell_b)).states[p.state_b].model;
    const charlib::LeakageTable ta(ca, p.state_a, lib.tech(), mu - 8 * sigma, mu + 8 * sigma);
    const charlib::LeakageTable tb(cb, p.state_b, lib.tech(), mu - 8 * sigma, mu + 8 * sigma);

    std::cout << p.cell_a << "[s" << p.state_a << "] vs " << p.cell_b << "[s" << p.state_b
              << "]\n";
    util::Table t({"rho_L", "rho_leak (MC)", "rho_leak (analytic)", "|analytic-MC|"});
    for (double rho = 0.0; rho <= 1.0001; rho += 0.125) {
      const double r = std::min(rho, 1.0);
      const double mc = mc_leakage_correlation(ta, tb, mu, sigma, r, rng);
      const double an = charlib::pair_leakage_correlation(ma, mb, mu, sigma, r);
      map_vs_mc.add(std::abs(an - mc));
      map_vs_identity.add(std::abs(an - r));
      t.row().cell(r, 3).cell(mc, 4).cell(an, 4).cell(std::abs(an - mc), 3);
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "avg |analytic - MC|        : " << map_vs_mc.mean() << "  (max "
            << map_vs_mc.max() << ")\n";
  std::cout << "avg |analytic - y=x line|  : " << map_vs_identity.mean() << "  (max "
            << map_vs_identity.max() << ")\n";
  std::cout << "paper reference            : analytic ~= MC; both near the y = x line\n";
  return 0;
}
