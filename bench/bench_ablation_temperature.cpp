// Ablation (DESIGN.md): junction-temperature dependence of the full-chip
// leakage statistics. Subthreshold leakage is the classic thermal-runaway
// contributor; the estimator chain (device model -> characterization -> RG)
// propagates the temperature corner end to end.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Temperature ablation", "DESIGN.md ablation index");

  const auto process = bench::bench_process();
  netlist::UsageHistogram usage;

  placement::Floorplan fp;
  fp.rows = fp.cols = 100;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  util::Table t({"T (C)", "RG mean (nA/gate)", "chip mean (uA)", "chip sigma (uA)",
                 "sigma/mean %"});
  double mean25 = 0.0;
  for (const double t_c : {0.0, 25.0, 50.0, 85.0, 110.0, 125.0}) {
    const device::TechnologyParams tech =
        device::at_temperature(device::TechnologyParams{}, t_c + 273.15);
    const cells::StdCellLibrary lib = cells::build_virtual90_library(tech);
    const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);
    if (usage.alphas.empty()) {
      usage.alphas.assign(lib.size(), 0.0);
      usage.alphas[lib.index_of("INV_X1")] = 0.4;
      usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
      usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
    }
    const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);
    const core::LeakageEstimate e = core::estimate_linear(rg, fp);
    if (t_c == 25.0) mean25 = e.mean_na;
    t.row()
        .cell(t_c, 4)
        .cell(rg.mean_na(), 5)
        .cell(e.mean_na * 1e-3, 5)
        .cell(e.sigma_na * 1e-3, 5)
        .cell(100.0 * e.cv(), 4);
  }
  t.print(std::cout);
  std::cout << "\nmean leakage growth 25C -> 110C: "
            << "see table (expect several-x; sigma/mean stays roughly constant because\n"
               "temperature scales every cell's leakage almost uniformly)\n";
  (void)mean25;
  return 0;
}
