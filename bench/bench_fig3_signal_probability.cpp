// Figure 3: effect of signal probability on large-circuit mean leakage, for
// several cell-usage mixes.
//
// Paper reference: the per-gate spread across input states can be ~10x, but
// after mixing over a realistic usage distribution the mean-leakage-vs-p
// curve is shallow; the conservative policy picks the curve's maximum.

#include <iostream>

#include "bench_util.h"
#include "core/signal_probability.h"
#include "util/table.h"

namespace {

rgleak::netlist::UsageHistogram make_usage(
    const rgleak::cells::StdCellLibrary& lib,
    const std::vector<std::pair<std::string, double>>& mix) {
  rgleak::netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  for (const auto& [name, a] : mix) u.alphas[lib.index_of(name)] = a;
  return u;
}

}  // namespace

int main() {
  using namespace rgleak;
  bench::banner("Mean leakage vs signal probability", "Figure 3");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();

  const std::vector<std::pair<std::string, netlist::UsageHistogram>> designs = {
      {"logic-heavy", make_usage(lib, {{"NAND2_X1", 0.35},
                                       {"NOR2_X1", 0.2},
                                       {"INV_X1", 0.25},
                                       {"AOI21_X1", 0.1},
                                       {"XOR2_X1", 0.1}})},
      {"datapath", make_usage(lib, {{"FA_X1", 0.3},
                                    {"XOR2_X1", 0.2},
                                    {"MUX2_X1", 0.2},
                                    {"INV_X2", 0.15},
                                    {"BUF_X2", 0.15}})},
      {"register-heavy", make_usage(lib, {{"DFF_X1", 0.45},
                                          {"NAND2_X1", 0.2},
                                          {"INV_X1", 0.2},
                                          {"CLKBUF_X2", 0.15}})},
  };

  util::Table t({"p", "logic-heavy (nA/gate)", "datapath (nA/gate)",
                 "register-heavy (nA/gate)"});
  std::vector<std::vector<core::SignalProbabilityPoint>> curves;
  for (const auto& [name, usage] : designs)
    curves.push_back(core::sweep_signal_probability(chars, usage, 21));
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    t.row().cell(curves[0][i].p, 3);
    for (const auto& curve : curves) t.cell(curve[i].rg_mean_na, 5);
  }
  t.print(std::cout);

  std::cout << "\n";
  for (std::size_t d = 0; d < designs.size(); ++d) {
    double lo = 1e300, hi = 0.0;
    for (const auto& pt : curves[d]) {
      lo = std::min(lo, pt.rg_mean_na);
      hi = std::max(hi, pt.rg_mean_na);
    }
    const double p_max = core::max_leakage_signal_probability(chars, designs[d].second);
    std::cout << designs[d].first << ": max/min over p = " << hi / lo
              << ", conservative p* = " << p_max << "\n";
  }
  std::cout << "paper reference: curves are shallow (single-gate state spread can be ~10x);\n"
               "                 the max-mean p* is used as the conservative setting\n";
  return 0;
}
