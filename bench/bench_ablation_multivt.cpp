// Ablation (DESIGN.md): dual-Vt leakage recovery through the RG machinery.
// Sweep the fraction of cells swapped to HVT variants and report full-chip
// mean/sigma next to the alpha-power delay proxy — the curve a leakage-
// recovery flow walks. Also shows the LVT penalty for context.

#include <iostream>

#include "bench_util.h"
#include "core/multi_vt.h"
#include "core/yield.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Dual-Vt leakage recovery", "DESIGN.md ablation index");

  const cells::MultiVtOffsets offsets;
  const cells::StdCellLibrary lib = cells::build_virtual90_multivt_library({}, offsets);
  const auto process = bench::bench_process();
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);

  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.3;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.3;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
  usage.alphas[lib.index_of("DFF_X1")] = 0.2;

  placement::Floorplan fp;
  fp.rows = fp.cols = 100;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  const auto curve = core::hvt_tradeoff(chars, usage, fp, offsets.hvt_shift_v);
  const double base_mean = curve.front().estimate.mean_na;

  util::Table t({"HVT fraction", "mean (uA)", "sigma (uA)", "leakage saved %",
                 "delay penalty x", "P99 (uA)"});
  for (const auto& pt : curve) {
    const core::LeakageYieldModel yield(pt.estimate);
    t.row()
        .cell(pt.hvt_fraction, 3)
        .cell(pt.estimate.mean_na * 1e-3, 5)
        .cell(pt.estimate.sigma_na * 1e-3, 5)
        .cell(100.0 * (base_mean - pt.estimate.mean_na) / base_mean, 4)
        .cell(pt.delay_penalty, 5)
        .cell(yield.quantile(0.99) * 1e-3, 5);
  }
  t.print(std::cout);

  const double svt = lib.cell(lib.index_of("INV_X1")).leakage_na(0, 40.0, lib.tech());
  const double lvt = lib.cell(lib.index_of("INV_X1_LVT")).leakage_na(0, 40.0, lib.tech());
  std::cout << "\nLVT context: per-cell LVT/SVT leakage ratio = " << lvt / svt
            << ", speed gain "
            << 1.0 / core::alpha_power_delay_ratio(lib.tech(), offsets.lvt_shift_v, 1.3)
            << "x\n";
  std::cout << "takeaway: swapping the full design to HVT buys ~" << std::fixed
            << 100.0 * (base_mean - curve.back().estimate.mean_na) / base_mean
            << "% leakage at ~" << curve.back().delay_penalty
            << "x the alpha-power delay proxy; the curve is linear in the swap\n"
               "fraction because the RG mean is a mixture — the knob is budgeting,\n"
               "not prediction\n";
  return 0;
}
