// Complexity claims of section 3: runtime scaling of the three estimators —
// O(n^2) exact pairwise baseline, O(n) distance-histogram (eq. 17), and O(1)
// integration (eqs 20/25) — using google-benchmark.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"

namespace {

using namespace rgleak;

netlist::UsageHistogram bench_usage() {
  const auto& lib = bench::library();
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  u.alphas[lib.index_of("INV_X1")] = 0.4;
  u.alphas[lib.index_of("NAND2_X1")] = 0.4;
  u.alphas[lib.index_of("NOR2_X1")] = 0.2;
  return u;
}

const core::RandomGate& bench_rg() {
  static const core::RandomGate rg(bench::chars_analytic(), bench_usage(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  return rg;
}

placement::Floorplan square(std::size_t side) {
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return fp;
}

void BM_ExactPairwise(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  math::Rng rng(1);
  const netlist::Netlist nl = netlist::generate_random_circuit(
      bench::library(), bench_usage(), side * side, rng);
  const placement::Placement pl(&nl, square(side));
  const core::ExactEstimator exact(bench::chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  for (auto _ : state) benchmark::DoNotOptimize(exact.estimate(pl));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_ExactPairwise)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_LinearHistogram(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state) benchmark::DoNotOptimize(core::estimate_linear(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_LinearHistogram)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_IntegralRect(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::estimate_integral_rect(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_IntegralRect)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

void BM_IntegralPolar(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::estimate_integral_polar(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_IntegralPolar)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

void BM_Characterization(benchmark::State& state) {
  // Cost of the one-time analytic characterization of the full library.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_analytic(bench::library(), bench::bench_process()));
  }
}
BENCHMARK(BM_Characterization)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
