// Complexity claims of section 3: runtime scaling of the estimators —
// O(n^2) exact pairwise baseline (serial and thread-pool tiled), the
// O(T^2 n log n) FFT offset-histogram exact path, O(n) distance-histogram
// (eq. 17), and O(1) integration (eqs 20/25) — using google-benchmark.
//
// `bench_scaling --exact-json[=PATH]` skips google-benchmark and instead
// records the exact-estimator perf trajectory (sites, method, wall_ms,
// speedup vs the serial direct baseline, peak RSS, and the per-method
// MemoryBudget high-water mark used by `rgleak batch --mem-model`) to
// BENCH_exact_estimator.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"

namespace {

using namespace rgleak;

netlist::UsageHistogram bench_usage() {
  const auto& lib = bench::library();
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  u.alphas[lib.index_of("INV_X1")] = 0.4;
  u.alphas[lib.index_of("NAND2_X1")] = 0.4;
  u.alphas[lib.index_of("NOR2_X1")] = 0.2;
  return u;
}

const core::RandomGate& bench_rg() {
  static const core::RandomGate rg(bench::chars_analytic(), bench_usage(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  return rg;
}

placement::Floorplan square(std::size_t side) {
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return fp;
}

netlist::Netlist bench_netlist(std::size_t side) {
  math::Rng rng(1);
  return netlist::generate_random_circuit(bench::library(), bench_usage(), side * side, rng);
}

void BM_ExactPairwise(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const netlist::Netlist nl = bench_netlist(side);
  const placement::Placement pl(&nl, square(side));
  const core::ExactEstimator exact(bench::chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::ExactOptions opts{core::ExactMethod::kDirect, 1};
  for (auto _ : state) benchmark::DoNotOptimize(exact.estimate(pl, opts));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_ExactPairwise)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_ExactPairwiseParallel(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const netlist::Netlist nl = bench_netlist(side);
  const placement::Placement pl(&nl, square(side));
  const core::ExactEstimator exact(bench::chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::ExactOptions opts{core::ExactMethod::kDirect, 0};  // hardware threads
  for (auto _ : state) benchmark::DoNotOptimize(exact.estimate(pl, opts));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_ExactPairwiseParallel)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_ExactFft(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const netlist::Netlist nl = bench_netlist(side);
  const placement::Placement pl(&nl, square(side));
  const core::ExactEstimator exact(bench::chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::ExactOptions opts{core::ExactMethod::kFft, 0};
  for (auto _ : state) benchmark::DoNotOptimize(exact.estimate(pl, opts));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_ExactFft)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_LinearHistogram(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state) benchmark::DoNotOptimize(core::estimate_linear(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_LinearHistogram)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_IntegralRect(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::estimate_integral_rect(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_IntegralRect)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

void BM_IntegralPolar(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const placement::Floorplan fp = square(side);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::estimate_integral_polar(bench_rg(), fp));
  state.SetComplexityN(static_cast<long long>(side * side));
}
BENCHMARK(BM_IntegralPolar)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

void BM_Characterization(benchmark::State& state) {
  // Cost of the one-time analytic characterization of the full library.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charlib::characterize_analytic(bench::library(), bench::bench_process()));
  }
}
BENCHMARK(BM_Characterization)->Unit(benchmark::kMillisecond)->Iterations(1);

// --- the exact-estimator perf record ---------------------------------------

double wall_ms(const std::function<core::LeakageEstimate()>& run, int reps,
               core::LeakageEstimate* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = run();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

int exact_bench_json(const std::string& path) {
  const core::ExactEstimator exact(bench::chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"exact_estimator\",\n  \"records\": [\n");
  bool first = true;
  for (const std::size_t side : {16, 32, 64, 128}) {
    const netlist::Netlist nl = bench_netlist(side);
    const placement::Placement pl(&nl, square(side));
    const std::size_t n = side * side;
    const int reps = n <= 4096 ? 3 : 1;

    // reset_peak between methods: the exact estimators release their arena
    // charges after each run, so the per-method high-water mark isolates
    // that method's footprint for --mem-model calibration.
    auto& budget = util::MemoryBudget::process();
    core::LeakageEstimate serial, parallel, fft;
    budget.reset_peak();
    const double t_serial = wall_ms(
        [&] { return exact.estimate(pl, {core::ExactMethod::kDirect, 1}); }, reps, &serial);
    const std::uint64_t b_serial = budget.peak();
    budget.reset_peak();
    const double t_parallel = wall_ms(
        [&] { return exact.estimate(pl, {core::ExactMethod::kDirect, 0}); }, reps, &parallel);
    const std::uint64_t b_parallel = budget.peak();
    budget.reset_peak();
    const double t_fft = wall_ms(
        [&] { return exact.estimate(pl, {core::ExactMethod::kFft, 0}); }, reps, &fft);
    const std::uint64_t b_fft = budget.peak();

    const double rel_err = std::abs(fft.sigma_na - serial.sigma_na) / serial.sigma_na;
    const struct {
      const char* method;
      double ms;
      double sigma_rel_err;
      std::uint64_t budget_bytes;
    } rows[] = {{"direct_serial", t_serial, 0.0, b_serial},
                {"direct_parallel", t_parallel,
                 std::abs(parallel.sigma_na - serial.sigma_na) / serial.sigma_na, b_parallel},
                {"fft", t_fft, rel_err, b_fft}};
    for (const auto& r : rows) {
      std::fprintf(f, "%s    {\"sites\": %zu, \"method\": \"%s\", \"wall_ms\": %.4f, "
                      "\"speedup\": %.2f, \"sigma_rel_err\": %.3e, "
                      "\"peak_rss_kb\": %.0f, \"budget_peak_bytes\": %llu}",
                   first ? "" : ",\n", n, r.method, r.ms, t_serial / r.ms, r.sigma_rel_err,
                   bench::peak_rss_kb(), static_cast<unsigned long long>(r.budget_bytes));
      first = false;
    }
    std::printf("sites %6zu  direct %10.2f ms  parallel %10.2f ms (%.1fx)  "
                "fft %8.2f ms (%.1fx)  fft rel err %.2e\n",
                n, t_serial, t_parallel, t_serial / t_parallel, t_fft, t_serial / t_fft,
                rel_err);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--exact-json", 0) == 0) {
      std::string path = "BENCH_exact_estimator.json";
      if (const auto eq = arg.find('='); eq != std::string::npos) path = arg.substr(eq + 1);
      return exact_bench_json(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
