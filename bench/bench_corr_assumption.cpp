// Section 3.1.2: cost of the simplified correlation assumption
// (rho_{m,n} = rho_L, required when the library is MC-characterized and no
// (a,b,c) triplets exist). Compare full-chip sigma under the simplified map
// against the exact analytical f_{m,n} mapping, with WID-only variation and
// with combined WID + D2D variation.
//
// Paper reference: the error stays below 2.8% in both cases.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Simplified correlation assumption (rho_mn = rho_L)", "section 3.1.2 (text)");

  const auto& lib = bench::library();

  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.3;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.25;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.15;
  usage.alphas[lib.index_of("DFF_X1")] = 0.2;
  usage.alphas[lib.index_of("XOR2_X1")] = 0.1;

  util::Table t({"variation", "n", "sigma exact map (uA)", "sigma simplified (uA)", "err %"});
  double worst = 0.0;
  for (const double d2d_share : {0.0, 0.5}) {
    const process::ProcessVariation process = bench::bench_process(1.0e5, d2d_share);
    const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);
    for (std::size_t side : {30u, 100u}) {
      placement::Floorplan fp;
      fp.rows = fp.cols = side;
      fp.site_w_nm = fp.site_h_nm = 1500.0;
      const core::RandomGate exact_rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);
      const core::RandomGate simp_rg(chars, usage, 0.5, core::CorrelationMode::kSimplified);
      const double s_exact = core::estimate_linear(exact_rg, fp).sigma_na;
      const double s_simp = core::estimate_linear(simp_rg, fp).sigma_na;
      const double err = 100.0 * std::abs(s_simp - s_exact) / s_exact;
      worst = std::max(worst, err);
      t.row()
          .cell(d2d_share == 0.0 ? "WID only" : "WID + D2D")
          .cell(static_cast<long long>(side * side))
          .cell(s_exact * 1e-3, 5)
          .cell(s_simp * 1e-3, 5)
          .cell(err, 3);
    }
  }
  t.print(std::cout);
  std::cout << "\nworst error      : " << worst << "%\n";
  std::cout << "paper reference  : below 2.8% with or without D2D\n";
  return 0;
}
