// Ablation (DESIGN.md): the constant-time estimator's internal choices —
// rectangular-2D vs polar-1D form, and quadrature resolution — accuracy vs
// cost against the exact O(n) reference on a large die.

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  using clock = std::chrono::steady_clock;
  bench::banner("Integration-method ablation", "DESIGN.md ablation index");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();
  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.5;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.5;
  const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);

  placement::Floorplan fp;
  fp.rows = fp.cols = 1000;  // 1M gates, 1.5 mm die
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  const core::LeakageEstimate ref = core::estimate_linear(rg, fp);
  std::cout << "reference (O(n), 1M gates): sigma = " << ref.sigma_na * 1e-3 << " uA\n\n";

  util::Table t({"method", "tolerance", "sigma (uA)", "err vs O(n) %", "time (ms)"});
  for (const double rel_tol : {1e-3, 1e-6, 1e-9}) {
    math::QuadratureOptions opts;
    opts.rel_tol = rel_tol;
    opts.abs_tol = 0.0;

    auto t0 = clock::now();
    const core::LeakageEstimate rect = core::estimate_integral_rect(rg, fp, opts);
    auto t1 = clock::now();
    bool used_polar = false;
    const core::LeakageEstimate polar = core::estimate_integral_polar(rg, fp, opts, &used_polar);
    auto t2 = clock::now();

    t.row()
        .cell("rect-2D")
        .cell(rel_tol, 1)
        .cell(rect.sigma_na * 1e-3, 6)
        .cell(100.0 * std::abs(rect.sigma_na - ref.sigma_na) / ref.sigma_na, 3)
        .cell(std::chrono::duration<double, std::milli>(t1 - t0).count(), 3);
    t.row()
        .cell(used_polar ? "polar-1D" : "polar(->rect)")
        .cell(rel_tol, 1)
        .cell(polar.sigma_na * 1e-3, 6)
        .cell(100.0 * std::abs(polar.sigma_na - ref.sigma_na) / ref.sigma_na, 3)
        .cell(std::chrono::duration<double, std::milli>(t2 - t1).count(), 3);
  }
  t.print(std::cout);
  std::cout << "\ntakeaway: the polar 1-D form reaches the same accuracy at a fraction of the\n"
               "2-D quadrature cost whenever D_max < min(W, H) (the paper's condition)\n";
  return 0;
}
