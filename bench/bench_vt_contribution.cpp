// Section 2.1 quantified: random (independent) Vt variation matters for the
// *mean* of full-chip leakage but not for its *variance*. Independent
// per-device contributions add as n while correlated-L contributions add as
// ~n^2, so the Vt share of chip sigma collapses with circuit size.
//
// Paper reference (argument in text): "for large chips, the variance of chip
// leakage due to Vt variations is negligible compared to that due to L";
// the mean effect is a multiplicative log-normal factor.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "charlib/vt_statistics.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Vt variation: mean factor and vanishing variance share",
                "section 2.1 (text)");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();
  const auto process = bench::bench_process();

  // Cell-level Vt statistics for the usage mix.
  const std::vector<std::pair<std::string, double>> mix = {
      {"INV_X1", 0.4}, {"NAND2_X1", 0.4}, {"NOR2_X1", 0.2}};
  math::Rng rng(42);

  util::Table cell_table({"cell", "state", "nominal (nA)", "Vt mean inflation",
                          "Vt sigma/mean %"});
  double avg_vt_var = 0.0;   // usage-weighted per-gate variance due to Vt
  double avg_inflation = 0.0;
  for (const auto& [name, alpha] : mix) {
    const auto& cell = lib.cell(lib.index_of(name));
    // State 0 and the all-ones state as representatives.
    for (std::uint32_t s : {0u, cell.num_states() - 1}) {
      const charlib::VtCellStats st =
          charlib::vt_cell_statistics(cell, s, lib.tech(), process.vt(), rng, 20000);
      cell_table.row()
          .cell(name)
          .cell(static_cast<long long>(s))
          .cell(st.nominal_na, 4)
          .cell(st.mean_inflation, 5)
          .cell(100.0 * st.sigma_na / st.mean_na, 4);
      avg_vt_var += 0.5 * alpha * st.sigma_na * st.sigma_na;
      avg_inflation += 0.5 * alpha * st.mean_inflation;
    }
  }
  cell_table.print(std::cout);
  const double analytic_factor = core::vt_mean_factor(process.vt(), lib.tech());
  std::cout << "\nusage-weighted mean inflation (MC): " << avg_inflation
            << "   analytic log-normal factor: " << analytic_factor << "\n\n";

  // Chip level: sigma share from Vt (independent, ~sqrt(n)) vs from L
  // (correlated, ~n).
  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  for (const auto& [name, alpha] : mix) usage.alphas[lib.index_of(name)] = alpha;
  const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);

  util::Table chip_table({"n", "sigma_L (uA)", "sigma_Vt (uA)", "Vt share of variance %"});
  for (std::size_t side : {10u, 32u, 100u, 316u, 1000u}) {
    placement::Floorplan fp;
    fp.rows = fp.cols = side;
    fp.site_w_nm = fp.site_h_nm = 1500.0;
    const double n = static_cast<double>(side) * side;
    const double sigma_l = core::estimate_linear(rg, fp).sigma_na;
    const double sigma_vt = std::sqrt(n * avg_vt_var);
    chip_table.row()
        .cell(static_cast<long long>(side * side))
        .cell(sigma_l * 1e-3, 5)
        .cell(sigma_vt * 1e-3, 5)
        .cell(100.0 * sigma_vt * sigma_vt / (sigma_vt * sigma_vt + sigma_l * sigma_l), 3);
  }
  chip_table.print(std::cout);
  std::cout << "\npaper reference: Vt contributes a multiplicative mean factor only; its\n"
               "variance share vanishes as n grows (variance ~n vs ~n^2 scaling)\n";
  return 0;
}
