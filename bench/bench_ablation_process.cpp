// Ablation (DESIGN.md): sensitivity of full-chip leakage statistics to the
// process-variation structure — the WID correlation model family, the
// correlation length, and the D2D/WID variance split. These are the knobs a
// foundry hands you; the table shows how each moves the chip-level sigma.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

namespace {

using namespace rgleak;

double chip_sigma(const process::ProcessVariation& process, std::size_t side) {
  const auto& lib = bench::library();
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);
  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.4;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
  const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const core::LeakageEstimate e = core::estimate_linear(rg, fp);
  return e.sigma_na / e.mean_na;  // report sigma/mean
}

}  // namespace

int main() {
  bench::banner("Process-structure ablation", "DESIGN.md ablation index");
  const std::size_t side = 100;  // 10k gates, 150 um die

  {
    util::Table t({"WID correlation model", "scale (um)", "sigma/mean %"});
    for (const char* model : {"exponential", "gaussian", "linear", "spherical"}) {
      for (const double scale_um : {30.0, 100.0, 300.0}) {
        process::LengthVariation len;
        len.mean_nm = 40.0;
        len.sigma_d2d_nm = len.sigma_wid_nm = 2.5 / std::sqrt(2.0);
        const process::ProcessVariation p(
            len, process::VtVariation{},
            process::make_correlation(model, scale_um * 1000.0));
        t.row().cell(model).cell(scale_um, 4).cell(100.0 * chip_sigma(p, side), 4);
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  {
    util::Table t({"D2D share of variance %", "sigma/mean %"});
    for (const double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      t.row()
          .cell(100.0 * share, 4)
          .cell(100.0 * chip_sigma(bench::bench_process(1.0e5, share), side), 4);
    }
    t.print(std::cout);
  }

  std::cout << "\ntakeaway: chip-level sigma is dominated by the non-averaging components —\n"
               "the D2D share and the long-range tail of the WID correlation — exactly the\n"
               "reason the paper treats random (independent) Vt as mean-only\n";
  return 0;
}
