// Ablation (DESIGN.md): robustness of the log-quadratic abstraction to a
// gate-tunneling component. The paper models subthreshold leakage only; gate
// leakage is linear (not exponential) in L, so turning it on perturbs the
// a*exp(bL+cL^2) fit. This experiment sweeps the tunneling density and
// reports (a) how much total leakage shifts and (b) how far the analytic
// characterization drifts from Monte-Carlo — i.e. when the paper's
// abstraction starts to crack.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "math/stats.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Gate-leakage extension ablation", "DESIGN.md ablation index");

  const auto process = bench::bench_process();
  placement::Floorplan fp;
  fp.rows = fp.cols = 60;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  util::Table t({"j_gate (nA/um^2)", "chip mean (uA)", "chip sigma (uA)",
                 "fit-vs-MC mean err % (max)", "fit-vs-MC sigma err % (max)"});
  for (const double j : {0.0, 2.0, 10.0, 50.0}) {
    device::TechnologyParams tech;
    tech.gate_leak_na_per_um2 = j;
    const cells::StdCellLibrary lib = cells::build_virtual90_library(tech);
    const charlib::CharacterizedLibrary fit = charlib::characterize_analytic(lib, process);
    charlib::McCharOptions mc_opts;
    mc_opts.samples = 8000;
    const charlib::CharacterizedLibrary mc =
        charlib::characterize_monte_carlo(lib, process, mc_opts);

    double worst_mean = 0.0, worst_sigma = 0.0;
    for (std::size_t ci = 0; ci < lib.size(); ++ci) {
      for (std::size_t s = 0; s < fit.cell(ci).states.size(); ++s) {
        worst_mean = std::max(worst_mean,
                              100.0 * math::relative_error(fit.cell(ci).states[s].mean_na,
                                                           mc.cell(ci).states[s].mean_na));
        worst_sigma = std::max(worst_sigma,
                               100.0 * math::relative_error(fit.cell(ci).states[s].sigma_na,
                                                            mc.cell(ci).states[s].sigma_na));
      }
    }

    netlist::UsageHistogram usage;
    usage.alphas.assign(lib.size(), 0.0);
    usage.alphas[lib.index_of("INV_X1")] = 0.4;
    usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
    usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
    const core::RandomGate rg(fit, usage, 0.5, core::CorrelationMode::kAnalytic);
    const core::LeakageEstimate e = core::estimate_linear(rg, fp);

    t.row()
        .cell(j, 4)
        .cell(e.mean_na * 1e-3, 5)
        .cell(e.sigma_na * 1e-3, 5)
        .cell(worst_mean, 3)
        .cell(worst_sigma, 3);
  }
  t.print(std::cout);
  std::cout << "\ntakeaway: moderate gate tunneling adds a weakly-L-dependent pedestal that\n"
               "the log-quadratic fit absorbs with modest extra error; at large densities\n"
               "the subthreshold-only abstraction of the paper would need a two-component\n"
               "model (its stated scope excludes this regime)\n";
  return 0;
}
