#pragma once
// Shared setup for the experiment harness: the benchmark process corner and
// cached characterized libraries. Every bench binary regenerates one table or
// figure of the paper (see DESIGN.md §4) and prints the corresponding rows.

#include <cmath>
#include <cstdint>
#include <iostream>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

#include "cells/library.h"
#include "charlib/characterize.h"
#include "process/variation.h"
#include "util/memory.h"

namespace rgleak::bench {

/// The benchmark process corner: L = 40 +/- 2.5 nm total (even D2D/WID
/// split), exponential WID correlation with a 0.1 mm correlation length —
/// so that benchmark-sized dies (tens of um to mm) span the correlation
/// decay.
inline process::ProcessVariation bench_process(double corr_length_nm = 1.0e5,
                                               double d2d_share = 0.5) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  const double total_var = 2.5 * 2.5;
  len.sigma_d2d_nm = std::sqrt(total_var * d2d_share);
  len.sigma_wid_nm = std::sqrt(total_var * (1.0 - d2d_share));
  process::VtVariation vt;
  vt.sigma_v = 0.02;
  return process::ProcessVariation(
      len, vt, std::make_shared<process::ExponentialCorrelation>(corr_length_nm));
}

inline const cells::StdCellLibrary& library() {
  static const cells::StdCellLibrary lib = cells::build_virtual90_library();
  return lib;
}

/// Analytically characterized full library at the default bench corner.
inline const charlib::CharacterizedLibrary& chars_analytic() {
  static const charlib::CharacterizedLibrary chars =
      charlib::characterize_analytic(library(), bench_process());
  return chars;
}

/// MC-characterized full library (heavier; built on first use).
inline const charlib::CharacterizedLibrary& chars_mc() {
  static const charlib::CharacterizedLibrary chars = [] {
    charlib::McCharOptions opts;
    opts.samples = 30000;
    return charlib::characterize_monte_carlo(library(), bench_process(), opts);
  }();
  return chars;
}

/// Peak resident set size of this process in KiB (0 where unavailable).
/// Monotone over the process lifetime — per-record deltas are not meaningful,
/// but the high-water mark is exactly what memory-model calibration wants.
inline double peak_rss_kb() {
#if defined(_WIN32)
  return 0.0;
#else
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss);  // Linux reports KiB
#endif
}

/// High-water mark of bytes charged against the process MemoryBudget by the
/// tracked arenas (FFT plans, sampler caches, MC worker workspaces). With no
/// limit set, charging is pure bookkeeping — this is the number
/// MemoryCostModel::from_bench_json calibrates admission control from.
inline std::uint64_t budget_peak_bytes() {
  return util::MemoryBudget::process().peak();
}

inline void banner(const char* title, const char* paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace rgleak::bench
