#pragma once
// Shared setup for the experiment harness: the benchmark process corner and
// cached characterized libraries. Every bench binary regenerates one table or
// figure of the paper (see DESIGN.md §4) and prints the corresponding rows.

#include <cmath>
#include <iostream>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "process/variation.h"

namespace rgleak::bench {

/// The benchmark process corner: L = 40 +/- 2.5 nm total (even D2D/WID
/// split), exponential WID correlation with a 0.1 mm correlation length —
/// so that benchmark-sized dies (tens of um to mm) span the correlation
/// decay.
inline process::ProcessVariation bench_process(double corr_length_nm = 1.0e5,
                                               double d2d_share = 0.5) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  const double total_var = 2.5 * 2.5;
  len.sigma_d2d_nm = std::sqrt(total_var * d2d_share);
  len.sigma_wid_nm = std::sqrt(total_var * (1.0 - d2d_share));
  process::VtVariation vt;
  vt.sigma_v = 0.02;
  return process::ProcessVariation(
      len, vt, std::make_shared<process::ExponentialCorrelation>(corr_length_nm));
}

inline const cells::StdCellLibrary& library() {
  static const cells::StdCellLibrary lib = cells::build_virtual90_library();
  return lib;
}

/// Analytically characterized full library at the default bench corner.
inline const charlib::CharacterizedLibrary& chars_analytic() {
  static const charlib::CharacterizedLibrary chars =
      charlib::characterize_analytic(library(), bench_process());
  return chars;
}

/// MC-characterized full library (heavier; built on first use).
inline const charlib::CharacterizedLibrary& chars_mc() {
  static const charlib::CharacterizedLibrary chars = [] {
    charlib::McCharOptions opts;
    opts.samples = 30000;
    return charlib::characterize_monte_carlo(library(), bench_process(), opts);
  }();
  return chars;
}

inline void banner(const char* title, const char* paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace rgleak::bench
