// Extension of the Table-1 protocol to sequential (flip-flop-heavy) designs:
// the ISCAS89 benchmarks. Flip-flops are multi-stage cells with
// transmission-gate leak paths and clock-dependent states — a stress test of
// the per-state characterization that the combinational ISCAS85 set never
// exercises. The comparison is the same: RG estimate from extracted
// high-level characteristics vs the exact O(n^2) pairwise analysis.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/iscas89.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("ISCAS89 sequential late-mode sigma accuracy",
                "Table-1 protocol extension (DESIGN.md)");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();
  const double p = 0.5;
  const core::ExactEstimator exact(chars, p, core::CorrelationMode::kAnalytic);

  util::Table t({"circuit", "gates", "FF share %", "true sigma (uA)", "RG sigma (uA)",
                 "sigma err %"});
  math::Rng rng(89);
  double worst = 0.0;
  for (const auto& desc : netlist::iscas89_descriptors()) {
    const netlist::Netlist seed = netlist::make_iscas89(desc, lib, rng);
    const placement::Floorplan fp = placement::Floorplan::for_gate_count(seed.size());
    const netlist::Netlist nl = netlist::generate_random_circuit(
        lib, netlist::extract_usage(seed), fp.num_sites(), rng,
        netlist::UsageMatch::kExact, desc.name);
    const placement::Placement pl(&nl, fp);

    const core::LeakageEstimate truth = exact.estimate(pl);
    const netlist::UsageHistogram usage = netlist::extract_usage(nl);
    const core::RandomGate rg(chars, usage, p, core::CorrelationMode::kAnalytic);
    const core::LeakageEstimate est = core::estimate_linear(rg, fp);

    const double err = 100.0 * std::abs(est.sigma_na - truth.sigma_na) / truth.sigma_na;
    worst = std::max(worst, err);
    t.row()
        .cell(desc.name)
        .cell(static_cast<long long>(nl.size()))
        .cell(100.0 * usage.alphas[lib.index_of("DFF_X1")], 3)
        .cell(truth.sigma_na * 1e-3, 5)
        .cell(est.sigma_na * 1e-3, 5)
        .cell(err, 3);
  }
  t.print(std::cout);
  std::cout << "\nworst sigma error: " << worst
            << "%\nexpectation: same sub-1.5% band as the combinational Table 1 — the RG\n"
               "abstraction does not care whether the mixture contains sequential cells\n";
  return 0;
}
