// Calibration loop (the paper's input path, ref [5]): the WID correlation
// function is *extracted from silicon*, not known a priori. This bench
// simulates that flow end to end:
//   1. "silicon": a hidden true process generates L-measurement fields on a
//      test-structure grid (several hundred dies);
//   2. extraction: empirical correlogram + family selection + scale fit;
//   3. estimation: full-chip sigma with the fitted model vs with the truth.
// The question: how much chip-sigma error does a realistic extraction step
// inject into the paper's estimator?

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "process/correlation_fit.h"
#include "process/field_sampler.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Correlation-extraction calibration loop", "input path, paper ref [5]");

  const auto& lib = bench::library();
  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.4;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;

  placement::Floorplan fp;
  fp.rows = fp.cols = 100;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  util::Table t({"true family", "true scale (um)", "dies", "fitted family",
                 "fitted scale (um)", "fit RMS", "chip sigma err %"});

  math::Rng rng(555);
  for (const auto& [family, scale_um] :
       std::vector<std::pair<std::string, double>>{
           {"exponential", 60.0}, {"gaussian", 80.0}, {"matern32", 50.0}}) {
    for (const std::size_t dies : {50u, 400u}) {
      // Hidden truth (WID only, so the extraction sees pure spatial decay).
      process::LengthVariation len;
      len.mean_nm = 40.0;
      len.sigma_d2d_nm = 0.0;
      len.sigma_wid_nm = 2.5;
      const auto truth_model = process::make_correlation(family, scale_um * 1000.0);
      const process::ProcessVariation truth(len, process::VtVariation{}, truth_model);

      // 1. Test-structure measurements: 20x20 sites at 10 um pitch.
      process::GridFieldSampler sampler(20, 20, 1.0e4, 1.0e4, *truth_model,
                                        len.sigma_wid_nm);
      std::vector<std::vector<double>> samples;
      samples.reserve(dies);
      for (std::size_t d = 0; d < dies; ++d) samples.push_back(sampler.sample(rng));

      // 2. Extraction.
      const auto cg = process::empirical_correlogram(samples, 20, 20, 1.0e4, 1.0e4, 16);
      const auto fits = process::fit_all_families(cg);
      const process::CorrelationFit& best = fits.front();
      const process::ProcessVariation fitted(len, process::VtVariation{}, best.model);

      // 3. Chip sigma with truth vs fitted.
      const charlib::CharacterizedLibrary chars_true =
          charlib::characterize_analytic(lib, truth);
      const charlib::CharacterizedLibrary chars_fit =
          charlib::characterize_analytic(lib, fitted);
      const core::RandomGate rg_true(chars_true, usage, 0.5,
                                     core::CorrelationMode::kAnalytic);
      const core::RandomGate rg_fit(chars_fit, usage, 0.5, core::CorrelationMode::kAnalytic);
      const double s_true = core::estimate_linear(rg_true, fp).sigma_na;
      const double s_fit = core::estimate_linear(rg_fit, fp).sigma_na;

      t.row()
          .cell(family)
          .cell(scale_um, 4)
          .cell(static_cast<long long>(dies))
          .cell(best.family)
          .cell(best.scale_nm * 1e-3, 4)
          .cell(best.rms_error, 3)
          .cell(100.0 * std::abs(s_fit - s_true) / s_true, 3);
    }
  }
  t.print(std::cout);
  std::cout << "\ntakeaway: with a few hundred measured dies, the extraction step adds only\n"
               "a few percent of chip-sigma error — the estimator's inputs are obtainable\n";
  return 0;
}
