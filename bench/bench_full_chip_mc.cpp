// Monte-Carlo engine throughput and run-control overhead: trials/s of the
// full-chip MC reference serial and threaded, the cost of periodic
// checkpointing, and the cost of carrying an unarmed RunControl token
// (acceptance: <= 2% — one relaxed atomic load per trial).
//
// `bench_full_chip_mc --mc-json[=PATH]` writes the records to
// BENCH_full_chip_mc.json in addition to the stdout table.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mc/full_chip_mc.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/run_control.h"

namespace {

using namespace rgleak;

netlist::UsageHistogram bench_usage() {
  const auto& lib = bench::library();
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  u.alphas[lib.index_of("INV_X1")] = 0.4;
  u.alphas[lib.index_of("NAND2_X1")] = 0.4;
  u.alphas[lib.index_of("NOR2_X1")] = 0.2;
  return u;
}

struct McRecord {
  std::string config;
  std::size_t trials = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double trials_per_s = 0.0;
  /// Wall-clock overhead vs. the matching baseline config, in percent.
  double overhead_pct = 0.0;
};

double run_once(const placement::Placement& pl, const mc::FullChipMcOptions& opts) {
  mc::FullChipMonteCarlo engine(pl, bench::chars_analytic(), opts);
  const auto t0 = std::chrono::steady_clock::now();
  const mc::FullChipMcResult r = engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r.trials != opts.trials) std::fprintf(stderr, "short run: %zu trials\n", r.trials);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-reps wall time for each option set, interleaved round-robin so
/// slow drift in machine load lands on every configuration equally rather
/// than biasing whichever ran last.
std::vector<double> best_of_interleaved(const placement::Placement& pl,
                                        const std::vector<mc::FullChipMcOptions>& variants,
                                        int reps) {
  std::vector<double> best(variants.size(), 1e300);
  for (int r = 0; r < reps; ++r)
    for (std::size_t v = 0; v < variants.size(); ++v)
      best[v] = std::min(best[v], run_once(pl, variants[v]));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mc-json", 0) == 0) {
      json_path = "BENCH_full_chip_mc.json";
      if (const auto eq = arg.find('='); eq != std::string::npos) json_path = arg.substr(eq + 1);
    }
  }

  bench::banner("Full-chip MC throughput and run-control overhead", "run control");

  const std::size_t side = 48;
  math::Rng gen(1);
  const netlist::Netlist nl =
      netlist::generate_random_circuit(bench::library(), bench_usage(), side * side, gen);
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const placement::Placement pl(&nl, fp);

  const std::size_t kTrials = 240;
  const int kReps = 5;
  // A fixed pool size keeps the threaded configuration comparable across
  // machines (threads=0 would degenerate to serial on single-CPU runners).
  const std::size_t kThreaded = 4;
  const std::string ckpt = "bench_mc_checkpoint.tmp";

  mc::FullChipMcOptions base;
  base.trials = kTrials;
  base.seed = 2024;
  base.resample_states_per_trial = true;

  std::vector<McRecord> records;
  const auto record = [&](const char* config, std::size_t threads, double ms,
                          double baseline_ms) {
    McRecord r;
    r.config = config;
    r.trials = kTrials;
    r.threads = threads;
    r.wall_ms = ms;
    r.trials_per_s = 1000.0 * static_cast<double>(kTrials) / ms;
    r.overhead_pct = baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms : 0.0;
    records.push_back(r);
    std::printf("%-28s threads %zu  %9.2f ms  %9.1f trials/s  overhead %+6.2f%%\n", config,
                threads, ms, r.trials_per_s, r.overhead_pct);
    return ms;
  };

  util::RunControl unarmed;  // attached but never armed: the fast path
  for (const std::size_t threads : {std::size_t{1}, kThreaded}) {
    mc::FullChipMcOptions plain = base;
    plain.threads = threads;
    run_once(pl, plain);  // warm the shared pool and table caches

    mc::FullChipMcOptions token = plain;
    token.run = &unarmed;
    mc::FullChipMcOptions ckpting = plain;
    ckpting.checkpoint_path = ckpt;
    ckpting.checkpoint_every = kTrials / 8;

    const std::vector<double> t = best_of_interleaved(pl, {plain, token, ckpting}, kReps);
    const char* prefix = threads == 1 ? "serial" : "threaded";
    record(threads == 1 ? "serial" : "threaded", threads, t[0], 0.0);
    record((std::string(prefix) + "+unarmed-token").c_str(), threads, t[1], t[0]);
    record((std::string(prefix) + "+checkpoints").c_str(), threads, t[2], t[0]);
    std::remove(ckpt.c_str());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"full_chip_mc\",\n  \"records\": [\n");
    for (std::size_t i = 0; i < records.size(); ++i) {
      const McRecord& r = records[i];
      std::fprintf(f,
                   "%s    {\"config\": \"%s\", \"trials\": %zu, \"threads\": %zu, "
                   "\"wall_ms\": %.4f, \"trials_per_s\": %.2f, \"overhead_pct\": %.3f}",
                   i == 0 ? "" : ",\n", r.config.c_str(), r.trials, r.threads, r.wall_ms,
                   r.trials_per_s, r.overhead_pct);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
