// Monte-Carlo engine throughput and run-control overhead: trials/s of the
// full-chip MC reference across a thread-scaling sweep (1/2/4/8 workers),
// the bucketed vs per-gate evaluation paths, the cost of periodic
// checkpointing, the cost of carrying an unarmed RunControl token, the cost
// of the always-on metrics instrumentation (the mc.trials counter: one
// relaxed fetch_add per trial; asserted <= 2% by --smoke, see DESIGN.md
// "Observability"), and the
// cost of running the same work through the batch service layer's queue /
// retry / watchdog machinery with nothing armed (acceptance: <= 2% for the
// token, checkpoint, and metrics configurations — a handful of relaxed atomic loads
// per trial plus one buffered state stream per cadence).
//
// `bench_full_chip_mc --mc-json[=PATH]` writes the records to
// BENCH_full_chip_mc.json in addition to the stdout table. The JSON carries
// the runner's CPU count (thread-scaling numbers are only meaningful
// relative to it — a 1-CPU container cannot show wall-clock speedup) plus
// each record's peak RSS and MemoryBudget high-water mark, which
// `rgleak batch --mem-model` reads to calibrate admission control.
//
// `bench_full_chip_mc --smoke` runs a tiny CI-sized configuration and exits
// non-zero if threaded throughput falls below serial — the regression guard
// for the worker-round restructuring. The check is skipped (with a loud
// notice) when the runner exposes fewer than four CPUs, where the 4-worker
// configuration cannot show a real speedup.

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "mc/full_chip_mc.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "service/batch_runner.h"
#include "util/run_control.h"

namespace {

using namespace rgleak;

netlist::UsageHistogram bench_usage() {
  const auto& lib = bench::library();
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  u.alphas[lib.index_of("INV_X1")] = 0.4;
  u.alphas[lib.index_of("NAND2_X1")] = 0.4;
  u.alphas[lib.index_of("NOR2_X1")] = 0.2;
  return u;
}

struct McRecord {
  std::string config;
  std::string eval;  // "bucketed" or "per-gate"
  std::size_t trials = 0;
  std::size_t threads = 0;
  std::size_t sites = 0;
  double wall_ms = 0.0;
  double trials_per_s = 0.0;
  /// Wall-clock overhead vs. the matching baseline config, in percent.
  double overhead_pct = 0.0;
  /// Process peak RSS (KiB) and MemoryBudget high-water mark (bytes) when
  /// the record was taken. Both are process-lifetime monotone; `--mem-model`
  /// calibration reads the largest per-site coefficient, so that is fine.
  double peak_rss_kb = 0.0;
  std::uint64_t budget_peak_bytes = 0;
};

// Process CPU milliseconds: the measurement clock for same-work A/B pairs on
// shared runners, where wall clock carries scheduler preemption and epoch-
// scale load drift that dwarf a 2% signal. CPU time counts only cycles this
// process actually executed.
double cpu_ms_now() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) * 1e-6;
}

// One engine run timed on both clocks at once: wall (first) and process CPU
// (second).
std::pair<double, double> run_once_both(const placement::Placement& pl,
                                        const mc::FullChipMcOptions& opts) {
  mc::FullChipMonteCarlo engine(pl, bench::chars_analytic(), opts);
  const auto w0 = std::chrono::steady_clock::now();
  const double c0 = cpu_ms_now();
  const mc::FullChipMcResult r = engine.run();
  const double cpu = cpu_ms_now() - c0;
  const double wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - w0)
                          .count();
  if (r.trials != opts.trials) std::fprintf(stderr, "short run: %zu trials\n", r.trials);
  return {wall, cpu};
}

double run_once(const placement::Placement& pl, const mc::FullChipMcOptions& opts) {
  mc::FullChipMonteCarlo engine(pl, bench::chars_analytic(), opts);
  const auto t0 = std::chrono::steady_clock::now();
  const mc::FullChipMcResult r = engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (r.trials != opts.trials) std::fprintf(stderr, "short run: %zu trials\n", r.trials);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-reps wall time for each option set, interleaved round-robin so
/// slow drift in machine load lands on every configuration equally rather
/// than biasing whichever ran last.
std::vector<double> best_of_interleaved(const placement::Placement& pl,
                                        const std::vector<mc::FullChipMcOptions>& variants,
                                        int reps) {
  std::vector<double> best(variants.size(), 1e300);
  for (int r = 0; r < reps; ++r)
    for (std::size_t v = 0; v < variants.size(); ++v)
      best[v] = std::min(best[v], run_once(pl, variants[v]));
  return best;
}

/// Runs the engine once per option set, directly (no orchestration).
double run_jobs_direct(const placement::Placement& pl,
                       const std::vector<mc::FullChipMcOptions>& jobs) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const mc::FullChipMcOptions& opts : jobs) {
    mc::FullChipMonteCarlo engine(pl, bench::chars_analytic(), opts);
    (void)engine.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// The same engine runs, but marshalled through run_batch: bounded queue,
/// per-job watchdog RunControl (parent-linked, no deadline), retry loop and
/// backoff state all in place but never armed. Measures pure orchestration
/// overhead per job.
class McJobExecutor : public service::Executor {
 public:
  McJobExecutor(const placement::Placement& pl, const std::vector<mc::FullChipMcOptions>& jobs)
      : pl_(&pl), jobs_(&jobs) {}

  service::JobOutput execute(const service::JobSpec& job, const util::RunControl* watchdog,
                             int) override {
    mc::FullChipMcOptions opts = (*jobs_)[static_cast<std::size_t>(std::stoul(job.id))];
    opts.run = watchdog;
    mc::FullChipMonteCarlo engine(*pl_, bench::chars_analytic(), opts);
    const mc::FullChipMcResult r = engine.run();
    service::JobOutput out;
    out.mean_na = r.mean_na;
    out.sigma_na = r.sigma_na;
    out.method = "mc";
    return out;
  }

 private:
  const placement::Placement* pl_;
  const std::vector<mc::FullChipMcOptions>* jobs_;
};

double run_jobs_batched(const placement::Placement& pl,
                        const std::vector<mc::FullChipMcOptions>& jobs) {
  std::vector<service::JobSpec> specs(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    specs[i].id = std::to_string(i);
    specs[i].kind = "mc";
  }
  McJobExecutor executor(pl, jobs);
  service::BatchOptions opts;
  opts.workers = 1;  // same serial work as the direct loop
  const auto t0 = std::chrono::steady_clock::now();
  service::Journal journal = service::Journal::open("");
  const service::BatchSummary s = service::run_batch(specs, executor, journal, opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (s.succeeded != jobs.size()) std::fprintf(stderr, "batch: %zu/%zu ok\n", s.succeeded, jobs.size());
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

placement::Placement make_placement(const netlist::Netlist& nl, std::size_t side) {
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return placement::Placement(&nl, fp);
}

unsigned cpu_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// CI regression guard: tiny run, serial vs 4 threads, both eval paths.
/// Exits non-zero when threaded throughput regresses below serial on a
/// multi-CPU runner.
int run_smoke() {
  const std::size_t side = 16;
  math::Rng gen(1);
  const netlist::Netlist nl =
      netlist::generate_random_circuit(bench::library(), bench_usage(), side * side, gen);
  const placement::Placement pl = make_placement(nl, side);

  mc::FullChipMcOptions base;
  base.trials = 64;
  base.seed = 2024;
  base.resample_states_per_trial = true;

  mc::FullChipMcOptions serial = base;
  mc::FullChipMcOptions threaded = base;
  threaded.threads = 4;
  mc::FullChipMcOptions per_gate = base;
  per_gate.eval_path = mc::McEvalPath::kPerGate;

  mc::FullChipMcOptions metrics_off = base;
  metrics_off.metrics = false;

  run_once(pl, threaded);  // warm the shared pool and table caches
  const std::vector<double> t = best_of_interleaved(pl, {serial, threaded, per_gate}, 3);
  const double serial_tps = 1000.0 * static_cast<double>(base.trials) / t[0];
  const double threaded_tps = 1000.0 * static_cast<double>(base.trials) / t[1];
  const double per_gate_tps = 1000.0 * static_cast<double>(base.trials) / t[2];
  std::printf("smoke: serial %.1f trials/s, threaded(4) %.1f trials/s, per-gate %.1f trials/s, "
              "cpus %u\n",
              serial_tps, threaded_tps, per_gate_tps, cpu_count());

  // Observability budget: metrics-armed (the default config) vs metrics-off,
  // same seed and trial stream. The real cost is one relaxed fetch_add per
  // ~0.2ms trial (≈0.005%), so what this guards against is a regression that
  // drags heavy work into the loop. On a shared 1-CPU runner every single
  // clock is noisy — wall time carries scheduler preemption and epoch-scale
  // load drift (±5% and worse), and even process CPU time shows rare
  // multi-run excursions — so the estimate is the MINIMUM over two
  // independent estimators: best-of-N wall and best-of-N CPU, interleaved,
  // on 4x-length runs. A real regression inflates both clocks at once;
  // noise essentially never does.
  mc::FullChipMcOptions metrics_on_long = serial;
  metrics_on_long.trials = base.trials * 4;
  mc::FullChipMcOptions metrics_off_long = metrics_off;
  metrics_off_long.trials = base.trials * 4;
  double on_wall = 1e300, on_cpu = 1e300, off_wall = 1e300, off_cpu = 1e300;
  for (int r = 0; r < 9; ++r) {
    const auto [w_on, c_on] = run_once_both(pl, metrics_on_long);
    const auto [w_off, c_off] = run_once_both(pl, metrics_off_long);
    on_wall = std::min(on_wall, w_on);
    on_cpu = std::min(on_cpu, c_on);
    off_wall = std::min(off_wall, w_off);
    off_cpu = std::min(off_cpu, c_off);
  }
  const double wall_pct = 100.0 * (on_wall - off_wall) / off_wall;
  const double cpu_pct = 100.0 * (on_cpu - off_cpu) / off_cpu;
  const double metrics_overhead_pct = std::min(wall_pct, cpu_pct);
  std::printf("smoke: metrics overhead %+.2f%% (wall %+.2f%%, cpu %+.2f%%, best-of-9; "
              "armed %.2f ms vs off %.2f ms cpu-time, budget 2%%)\n",
              metrics_overhead_pct, wall_pct, cpu_pct, on_cpu, off_cpu);
  if (metrics_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "smoke FAIL: metrics instrumentation costs %.2f%% of the MC trial loop, "
                 "budget is 2%%\n",
                 metrics_overhead_pct);
    return 1;
  }

  if (cpu_count() < 4) {
    // The threaded configuration runs 4 workers; on fewer cores the result
    // is scheduler noise, not a scaling signal. Skip LOUDLY so CI logs show
    // the gate was bypassed rather than silently green.
    std::printf("smoke: SKIPPED thread-scaling assertion (%u CPUs < 4 required for a "
                "meaningful 4-worker comparison)\n",
                cpu_count());
    return 0;
  }
  if (threaded_tps < serial_tps) {
    std::fprintf(stderr,
                 "smoke FAIL: threaded throughput %.1f trials/s below serial %.1f trials/s "
                 "on a %u-CPU runner\n",
                 threaded_tps, serial_tps, cpu_count());
    return 1;
  }
  std::printf("smoke: PASS (threaded >= serial)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mc-json", 0) == 0) {
      json_path = "BENCH_full_chip_mc.json";
      if (const auto eq = arg.find('='); eq != std::string::npos) json_path = arg.substr(eq + 1);
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }
  if (smoke) return run_smoke();

  bench::banner("Full-chip MC throughput and run-control overhead", "run control");

  const std::size_t side = 48;
  math::Rng gen(1);
  const netlist::Netlist nl =
      netlist::generate_random_circuit(bench::library(), bench_usage(), side * side, gen);
  const placement::Placement pl = make_placement(nl, side);

  const std::size_t kTrials = 240;
  const int kReps = 5;
  // A fixed pool size keeps the threaded configuration comparable across
  // machines (threads=0 would degenerate to serial on single-CPU runners).
  const std::size_t kThreaded = 4;
  const std::string ckpt = "bench_mc_checkpoint.tmp";

  mc::FullChipMcOptions base;
  base.trials = kTrials;
  base.seed = 2024;
  base.resample_states_per_trial = true;

  std::vector<McRecord> records;
  const auto record = [&](const std::string& config, const mc::FullChipMcOptions& opts,
                          double ms, double baseline_ms) {
    McRecord r;
    r.config = config;
    r.eval = opts.eval_path == mc::McEvalPath::kBucketed ? "bucketed" : "per-gate";
    r.trials = kTrials;
    r.threads = opts.threads;
    r.sites = side * side;
    r.wall_ms = ms;
    r.trials_per_s = 1000.0 * static_cast<double>(kTrials) / ms;
    r.overhead_pct = baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms : 0.0;
    r.peak_rss_kb = bench::peak_rss_kb();
    r.budget_peak_bytes = bench::budget_peak_bytes();
    records.push_back(r);
    std::printf("%-28s threads %zu  %-9s %9.2f ms  %9.1f trials/s  overhead %+6.2f%%\n",
                config.c_str(), opts.threads, r.eval.c_str(), ms, r.trials_per_s,
                r.overhead_pct);
    return ms;
  };

  // Thread-scaling sweep and the bucketed / per-gate A/B, interleaved so
  // machine-load drift hits every configuration equally.
  {
    std::vector<mc::FullChipMcOptions> sweep;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
      mc::FullChipMcOptions o = base;
      o.threads = threads;
      sweep.push_back(o);
    }
    mc::FullChipMcOptions serial_per_gate = base;
    serial_per_gate.threads = 1;
    serial_per_gate.eval_path = mc::McEvalPath::kPerGate;
    sweep.push_back(serial_per_gate);
    mc::FullChipMcOptions threaded_per_gate = serial_per_gate;
    threaded_per_gate.threads = kThreaded;
    sweep.push_back(threaded_per_gate);

    run_once(pl, sweep[3]);  // warm the shared pool (8 workers) and caches
    const std::vector<double> t = best_of_interleaved(pl, sweep, kReps);
    record("serial", sweep[0], t[0], 0.0);
    record("threads-2", sweep[1], t[1], 0.0);
    record("threads-4", sweep[2], t[2], 0.0);
    record("threads-8", sweep[3], t[3], 0.0);
    record("serial-per-gate", sweep[4], t[4], t[0]);
    record("threads-4-per-gate", sweep[5], t[5], t[2]);
  }

  util::RunControl unarmed;  // attached but never armed: the fast path
  for (const std::size_t threads : {std::size_t{1}, kThreaded}) {
    mc::FullChipMcOptions plain = base;
    plain.threads = threads;

    mc::FullChipMcOptions token = plain;
    token.run = &unarmed;
    mc::FullChipMcOptions ckpting = plain;
    ckpting.checkpoint_path = ckpt;
    ckpting.checkpoint_every = kTrials / 8;
    // Observability A/B: `plain` runs with the default-armed mc.trials
    // counter; this strips it. The delta is the full instrumentation cost of
    // the trial loop (budget: <= 2%, asserted by --smoke).
    mc::FullChipMcOptions metrics_off = plain;
    metrics_off.metrics = false;

    const std::vector<double> t =
        best_of_interleaved(pl, {plain, token, ckpting, metrics_off}, kReps);
    const char* prefix = threads == 1 ? "serial" : "threaded";
    record(prefix, plain, t[0], 0.0);
    record(std::string(prefix) + "+unarmed-token", token, t[1], t[0]);
    record(std::string(prefix) + "+checkpoints", ckpting, t[2], t[0]);
    record(std::string(prefix) + "-metrics-off", metrics_off, t[3], 0.0);
    // The armed config relative to the stripped one — the number the 2%
    // budget is written against.
    record(std::string(prefix) + "+metrics-armed", plain, t[0], t[3]);
    std::remove(ckpt.c_str());
  }

  // Batch service layer overhead: the same kTrials of serial MC work, split
  // into 8 jobs, run directly vs. marshalled through run_batch (queue +
  // watchdog + retry machinery in place, nothing armed).
  {
    const std::size_t kJobs = 8;
    std::vector<mc::FullChipMcOptions> jobs(kJobs, base);
    for (std::size_t i = 0; i < kJobs; ++i) {
      jobs[i].threads = 1;
      jobs[i].trials = kTrials / kJobs;
      jobs[i].seed = base.seed + i;
    }
    run_jobs_batched(pl, jobs);  // warm-up
    double direct_ms = 1e300, batched_ms = 1e300;
    for (int r = 0; r < kReps; ++r) {
      direct_ms = std::min(direct_ms, run_jobs_direct(pl, jobs));
      batched_ms = std::min(batched_ms, run_jobs_batched(pl, jobs));
    }
    mc::FullChipMcOptions serial1 = base;
    record("serial-8jobs-direct", serial1, direct_ms, 0.0);
    record("serial-8jobs-batch-service", serial1, batched_ms, direct_ms);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"full_chip_mc\",\n  \"cpus\": %u,\n  \"records\": [\n",
                 cpu_count());
    for (std::size_t i = 0; i < records.size(); ++i) {
      const McRecord& r = records[i];
      std::fprintf(f,
                   "%s    {\"config\": \"%s\", \"method\": \"mc\", \"eval\": \"%s\", "
                   "\"trials\": %zu, \"threads\": %zu, \"sites\": %zu, \"wall_ms\": %.4f, "
                   "\"trials_per_s\": %.2f, \"overhead_pct\": %.3f, "
                   "\"peak_rss_kb\": %.0f, \"budget_peak_bytes\": %llu}",
                   i == 0 ? "" : ",\n", r.config.c_str(), r.eval.c_str(), r.trials, r.threads,
                   r.sites, r.wall_ms, r.trials_per_s, r.overhead_pct, r.peak_rss_kb,
                   static_cast<unsigned long long>(r.budget_peak_bytes));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
