// Section 2.1.2 validation: accuracy of the analytical cell model
// (fit to a*exp(bL+cL^2) + exact MGF moments) against Monte-Carlo
// characterization, over all 62 cells and all input states.
//
// Paper reference numbers: mean error < 2% for all gates (average |error|
// 0.44%); sigma average |error| 3.1%, max ~10%.

#include <iostream>

#include "bench_util.h"
#include "math/stats.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Analytical vs Monte-Carlo cell moments", "section 2.1.2 (text)");

  const auto& a = bench::chars_analytic();
  const auto& m = bench::chars_mc();
  const auto& lib = bench::library();

  math::RunningStats mean_err, sigma_err;
  util::Table worst({"cell", "state", "mean MC (nA)", "mean fit (nA)", "mean err %",
                     "sigma err %"});
  double worst_mean_err = 0.0, worst_sigma_err = 0.0;
  std::string worst_mean_cell, worst_sigma_cell;

  for (std::size_t ci = 0; ci < lib.size(); ++ci) {
    for (std::size_t s = 0; s < a.cell(ci).states.size(); ++s) {
      const auto& sa = a.cell(ci).states[s];
      const auto& sm = m.cell(ci).states[s];
      const double me = 100.0 * math::relative_error(sa.mean_na, sm.mean_na);
      const double se = 100.0 * math::relative_error(sa.sigma_na, sm.sigma_na);
      mean_err.add(me);
      sigma_err.add(se);
      if (me > worst_mean_err) {
        worst_mean_err = me;
        worst_mean_cell = lib.cell(ci).name();
      }
      if (se > worst_sigma_err) {
        worst_sigma_err = se;
        worst_sigma_cell = lib.cell(ci).name();
      }
      if (me > 1.0 || se > 6.0) {
        worst.row()
            .cell(lib.cell(ci).name())
            .cell(static_cast<long long>(s))
            .cell(sm.mean_na)
            .cell(sa.mean_na)
            .cell(me, 3)
            .cell(se, 3);
      }
    }
  }

  std::cout << "cells x states compared : " << mean_err.count() << "\n";
  std::cout << "mean  |err|  avg / max  : " << mean_err.mean() << "% / " << worst_mean_err
            << "%  (worst: " << worst_mean_cell << ")\n";
  std::cout << "sigma |err|  avg / max  : " << sigma_err.mean() << "% / " << worst_sigma_err
            << "%  (worst: " << worst_sigma_cell << ")\n";
  std::cout << "paper reference         : mean avg 0.44% (max < 2%), sigma avg 3.1% (max ~10%)\n";
  if (worst.num_rows() > 0) {
    std::cout << "\nstates with mean err > 1% or sigma err > 6%:\n";
    worst.print(std::cout);
  }
  return 0;
}
