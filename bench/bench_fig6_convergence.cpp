// Figure 6: convergence of specific random designs to the Random-Gate model
// prediction. For each circuit size n, generate an ensemble of random designs
// matching the target usage distribution (i.i.d. sampling, as in a real
// synthesis outcome), compute each design's true (O(n^2)) leakage statistics,
// and report the maximum positive/negative deviation from the RG estimate.
//
// Paper reference: deviations shrink with n; at 11,236 gates the maximum
// difference is ~2.2%.

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Random-design convergence to the RG estimate", "Figure 6");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();

  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.3;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.3;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
  usage.alphas[lib.index_of("NAND3_X1")] = 0.1;
  usage.alphas[lib.index_of("XOR2_X1")] = 0.1;

  const double p = 0.5;
  const core::ExactEstimator exact(chars, p, core::CorrelationMode::kAnalytic);
  const core::RandomGate rg(chars, usage, p, core::CorrelationMode::kAnalytic);

  const std::vector<std::size_t> sizes = {100, 400, 1600, 4096, 11236};
  const int kInstances = 8;

  util::Table t({"n", "mean err+ %", "mean err- %", "sigma err+ %", "sigma err- %",
                 "max |err| %"});
  math::Rng rng(606);
  for (std::size_t n : sizes) {
    const placement::Floorplan fp = placement::Floorplan::for_gate_count(n);
    const core::LeakageEstimate model = core::estimate_linear(rg, fp);

    double mean_pos = 0.0, mean_neg = 0.0, sig_pos = 0.0, sig_neg = 0.0;
    for (int inst = 0; inst < kInstances; ++inst) {
      const netlist::Netlist nl = netlist::generate_random_circuit(
          lib, usage, n, rng, netlist::UsageMatch::kIid);
      const placement::Placement pl(&nl, fp);
      const core::LeakageEstimate e = exact.estimate(pl);
      const double me = 100.0 * (e.mean_na - model.mean_na) / model.mean_na;
      const double se = 100.0 * (e.sigma_na - model.sigma_na) / model.sigma_na;
      mean_pos = std::max(mean_pos, me);
      mean_neg = std::min(mean_neg, me);
      sig_pos = std::max(sig_pos, se);
      sig_neg = std::min(sig_neg, se);
    }
    const double worst = std::max({mean_pos, -mean_neg, sig_pos, -sig_neg});
    t.row()
        .cell(static_cast<long long>(n))
        .cell(mean_pos, 3)
        .cell(mean_neg, 3)
        .cell(sig_pos, 3)
        .cell(sig_neg, 3)
        .cell(worst, 3);
  }
  t.print(std::cout);
  std::cout << "\npaper reference: max |difference| -> 0 as n grows; ~2.2% at 11,236 gates\n";
  return 0;
}
