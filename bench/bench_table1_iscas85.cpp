// Table 1: late-mode estimation on the ISCAS85 benchmarks. For each circuit,
// extract the high-level characteristics (usage histogram, gate count, layout
// dims) from the placed netlist, estimate sigma with the RG model, and compare
// against the circuit's true (O(n^2) pairwise) leakage sigma.
//
// Paper reference errors: c499 1.04%, c1355 0.41%, c432 1.14%, c1908 0.36%,
// c880 0.74%, c2670 0.52%, c5315 0.23%, c7552 0.34%, c6288 1.38% (all < 1.4%).

#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "netlist/iscas85.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("ISCAS85 late-mode sigma accuracy", "Table 1");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();
  const double p = 0.5;
  const core::ExactEstimator exact(chars, p, core::CorrelationMode::kAnalytic);

  util::Table t({"circuit", "gates", "true sigma (uA)", "RG sigma (uA)", "sigma err %",
                 "mean err %"});
  math::Rng rng(85);
  double worst = 0.0;
  for (const auto& desc : netlist::iscas85_descriptors()) {
    const netlist::Netlist seed = netlist::make_iscas85(desc, lib, rng);
    // The RG array is a full k x m grid; instantiate the benchmark's
    // histogram onto the whole grid (pads by at most one partial row, < 1%).
    const placement::Floorplan fp = placement::Floorplan::for_gate_count(seed.size());
    const netlist::Netlist nl = netlist::generate_random_circuit(
        lib, netlist::extract_usage(seed), fp.num_sites(), rng,
        netlist::UsageMatch::kExact, desc.name);
    const placement::Placement pl(&nl, fp);

    // True leakage of the placed design.
    const core::LeakageEstimate truth = exact.estimate(pl);

    // Late-mode extraction -> RG estimate.
    const netlist::UsageHistogram usage = netlist::extract_usage(nl);
    const core::RandomGate rg(chars, usage, p, core::CorrelationMode::kAnalytic);
    const core::LeakageEstimate est = core::estimate_linear(rg, fp);

    const double sig_err = 100.0 * std::abs(est.sigma_na - truth.sigma_na) / truth.sigma_na;
    const double mean_err = 100.0 * std::abs(est.mean_na - truth.mean_na) / truth.mean_na;
    worst = std::max(worst, sig_err);
    t.row()
        .cell(desc.name)
        .cell(static_cast<long long>(nl.size()))
        .cell(truth.sigma_na * 1e-3, 5)
        .cell(est.sigma_na * 1e-3, 5)
        .cell(sig_err, 3)
        .cell(mean_err, 3);
  }
  t.print(std::cout);
  std::cout << "\nworst sigma error: " << worst << "%\n";
  std::cout << "paper reference  : 0.23% .. 1.38% across the nine circuits\n";
  return 0;
}
