// Figure 7: % error between the constant-time numerical-integration estimate
// (eq. 20) and the exact linear-time distance-histogram sum (eq. 17), as a
// function of gate count.
//
// Paper reference: > 1% below ~100 gates (site granularity), < 0.1% for
// large designs, < 0.01% above ten thousand gates.

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/estimators.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  using clock = std::chrono::steady_clock;
  bench::banner("Integration error vs gate count", "Figure 7");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();

  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.4;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.4;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
  const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);

  util::Table t({"n", "sigma O(n) (uA)", "sigma O(1) rect (uA)", "error %", "polar?",
                 "t_linear (ms)", "t_integral (ms)"});
  for (std::size_t side : {3u, 5u, 10u, 18u, 32u, 56u, 100u, 178u, 316u, 562u, 1000u}) {
    const std::size_t n = side * side;
    placement::Floorplan fp;
    fp.rows = fp.cols = side;
    fp.site_w_nm = fp.site_h_nm = 1500.0;

    const auto t0 = clock::now();
    const core::LeakageEstimate lin = core::estimate_linear(rg, fp);
    const auto t1 = clock::now();
    bool used_polar = false;
    const core::LeakageEstimate integ = core::estimate_integral_polar(rg, fp, {}, &used_polar);
    const auto t2 = clock::now();

    const double err = 100.0 * std::abs(integ.sigma_na - lin.sigma_na) / lin.sigma_na;
    t.row()
        .cell(static_cast<long long>(n))
        .cell(lin.sigma_na * 1e-3, 5)
        .cell(integ.sigma_na * 1e-3, 5)
        .cell(err, 3)
        .cell(used_polar ? "yes" : "rect")
        .cell(std::chrono::duration<double, std::milli>(t1 - t0).count(), 3)
        .cell(std::chrono::duration<double, std::milli>(t2 - t1).count(), 3);
  }
  t.print(std::cout);
  std::cout << "\npaper reference: error > 1% below ~100 gates, < 0.1% for large designs,\n"
               "                 < 0.01% above 10^4 gates; integral cost is O(1) while the\n"
               "                 linear method grows with n\n";
  return 0;
}
