// Extension of the Fig.-3 discussion: what does the paper's global-p
// ball-park actually cost against propagated per-gate signal probabilities?
// Random DAGs over the virtual library are evaluated three ways: the global
// ExactEstimator at p = 0.5, at the conservative max-mean p*, and the
// connectivity-aware estimator with exact per-gate state distributions.

#include <iostream>

#include "bench_util.h"
#include "core/connectivity_estimator.h"
#include "core/estimators.h"
#include "core/signal_probability.h"
#include "netlist/connectivity.h"
#include "placement/placement.h"
#include "util/table.h"

int main() {
  using namespace rgleak;
  bench::banner("Global signal probability vs netlist propagation",
                "Fig. 3 follow-up (DESIGN.md)");

  const auto& lib = bench::library();
  const auto& chars = bench::chars_analytic();

  netlist::UsageHistogram usage;
  usage.alphas.assign(lib.size(), 0.0);
  usage.alphas[lib.index_of("INV_X1")] = 0.25;
  usage.alphas[lib.index_of("NAND2_X1")] = 0.3;
  usage.alphas[lib.index_of("NOR2_X1")] = 0.2;
  usage.alphas[lib.index_of("XOR2_X1")] = 0.1;
  usage.alphas[lib.index_of("AOI21_X1")] = 0.15;

  const double p_star = core::max_leakage_signal_probability(chars, usage);
  const core::ExactEstimator global_half(chars, 0.5, core::CorrelationMode::kAnalytic);
  const core::ExactEstimator global_star(chars, p_star, core::CorrelationMode::kAnalytic);
  const core::ConnectivityAwareEstimator aware(chars, core::CorrelationMode::kAnalytic);

  util::Table t({"n", "mean p=0.5 (uA)", "mean p*=max (uA)", "mean propagated (uA)",
                 "mean err p=0.5 %", "sigma err p=0.5 %"});
  math::Rng rng(314);
  for (std::size_t side : {10u, 16u, 24u, 32u}) {
    const std::size_t n = side * side;
    const netlist::ConnectedNetlist nl =
        netlist::generate_random_dag(lib, usage, n, 32, rng);
    placement::Floorplan fp;
    fp.rows = fp.cols = side;
    fp.site_w_nm = fp.site_h_nm = 1500.0;

    const core::LeakageEstimate ref = aware.estimate(nl, fp, 0.5);
    const netlist::Netlist flat = nl.flatten();
    const placement::Placement pl(&flat, fp);
    const core::LeakageEstimate at_half = global_half.estimate(pl);
    const core::LeakageEstimate at_star = global_star.estimate(pl);

    t.row()
        .cell(static_cast<long long>(n))
        .cell(at_half.mean_na * 1e-3, 5)
        .cell(at_star.mean_na * 1e-3, 5)
        .cell(ref.mean_na * 1e-3, 5)
        .cell(100.0 * (at_half.mean_na - ref.mean_na) / ref.mean_na, 3)
        .cell(100.0 * (at_half.sigma_na - ref.sigma_na) / ref.sigma_na, 3);
  }
  t.print(std::cout);
  std::cout << "\nconservative p* for this mix: " << p_star
            << "\ntakeaway: the global-p approximation lands within a few percent of the\n"
               "propagated reference (the paper's 'not pronounced' claim), and the\n"
               "max-mean p* upper-bounds it\n";
  return 0;
}
