#include "mc/full_chip_mc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::mc {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.6;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.4;
  return u;
}

placement::Floorplan grid(std::size_t rows, std::size_t cols, double pitch = 1500.0) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = pitch;
  fp.site_h_nm = pitch;
  return fp;
}

TEST(FullChipMc, MatchesAnalyticEstimateOnPlacedDesign) {
  // End-to-end: MC total-leakage statistics of a placed design must match
  // the O(n^2) exact analytical estimate within sampling error.
  const std::size_t rows = 16, cols = 16;
  math::Rng gen(21);
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl(&nl, grid(rows, cols));

  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate analytic = exact.estimate(pl);

  FullChipMcOptions opts;
  opts.trials = 3000;
  opts.resample_states_per_trial = true;  // the analytic estimate mixes states
  FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
  const FullChipMcResult r = mc.run();

  // Mean: MC standard error ~ sigma/sqrt(T).
  const double mean_se = analytic.sigma_na / std::sqrt(3000.0);
  EXPECT_NEAR(r.mean_na, analytic.mean_na, 5.0 * mean_se);
  // Sigma: sampling error of a stddev estimate is ~ sigma/sqrt(2T) but the
  // total is not Gaussian; allow several percent.
  EXPECT_NEAR(r.sigma_na, analytic.sigma_na, 0.12 * analytic.sigma_na);
}

TEST(FullChipMc, FixedStatesReduceVariance) {
  // With frozen input states, workload variability is removed; sigma must
  // not exceed the resampled-state sigma (within noise).
  const std::size_t rows = 12, cols = 12;
  math::Rng gen(23);
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl(&nl, grid(rows, cols));

  FullChipMcOptions frozen;
  frozen.trials = 1500;
  frozen.resample_states_per_trial = false;
  FullChipMcOptions resampled = frozen;
  resampled.resample_states_per_trial = true;

  const FullChipMcResult rf = FullChipMonteCarlo(pl, mini_chars_analytic(), frozen).run();
  const FullChipMcResult rr =
      FullChipMonteCarlo(pl, mini_chars_analytic(), resampled).run();
  EXPECT_LT(rf.sigma_na, rr.sigma_na * 1.15);
}

TEST(FullChipMc, DeterministicForSeed) {
  const std::size_t rows = 6, cols = 6;
  math::Rng gen(29);
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl(&nl, grid(rows, cols));
  FullChipMcOptions opts;
  opts.trials = 50;
  opts.seed = 999;
  const FullChipMcResult a = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  const FullChipMcResult b = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  EXPECT_DOUBLE_EQ(a.mean_na, b.mean_na);
  EXPECT_DOUBLE_EQ(a.sigma_na, b.sigma_na);
}

TEST(FullChipMc, TotalsArePositiveAndScaleWithSize) {
  math::Rng gen(31);
  const netlist::Netlist small_nl =
      generate_random_circuit(mini_library(), test_usage(), 36, gen);
  const netlist::Netlist big_nl =
      generate_random_circuit(mini_library(), test_usage(), 144, gen);
  const placement::Placement small_pl(&small_nl, grid(6, 6));
  const placement::Placement big_pl(&big_nl, grid(12, 12));
  FullChipMcOptions opts;
  opts.trials = 200;
  const FullChipMcResult rs = FullChipMonteCarlo(small_pl, mini_chars_analytic(), opts).run();
  const FullChipMcResult rb = FullChipMonteCarlo(big_pl, mini_chars_analytic(), opts).run();
  EXPECT_GT(rs.mean_na, 0.0);
  EXPECT_NEAR(rb.mean_na / rs.mean_na, 4.0, 0.5);
}

TEST(FullChipMc, ThreadedRunMatchesStatistics) {
  math::Rng gen(41);
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), 100, gen);
  const placement::Placement pl(&nl, grid(10, 10));
  FullChipMcOptions serial;
  serial.trials = 1200;
  FullChipMcOptions threaded = serial;
  threaded.threads = 4;
  const FullChipMcResult rs = FullChipMonteCarlo(pl, mini_chars_analytic(), serial).run();
  const FullChipMcResult rt = FullChipMonteCarlo(pl, mini_chars_analytic(), threaded).run();
  // Different sample streams, same distribution: agree within MC error.
  EXPECT_NEAR(rt.mean_na, rs.mean_na, 0.1 * rs.mean_na);
  EXPECT_NEAR(rt.sigma_na, rs.sigma_na, 0.25 * rs.sigma_na);
}

TEST(FullChipMc, ThreadedRunDeterministicForSeedAndThreads) {
  math::Rng gen(43);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 36, gen);
  const placement::Placement pl(&nl, grid(6, 6));
  FullChipMcOptions opts;
  opts.trials = 200;
  opts.threads = 3;
  const FullChipMcResult a = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  const FullChipMcResult b = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  EXPECT_DOUBLE_EQ(a.mean_na, b.mean_na);
  EXPECT_DOUBLE_EQ(a.sigma_na, b.sigma_na);
  EXPECT_DOUBLE_EQ(a.p99_na, b.p99_na);
}

TEST(FullChipMc, ThreadedStateResamplingMatchesSerialStatistics) {
  // Per-trial state resampling used to force threads = 1; workers now draw
  // states into thread-local tables, so the threaded run must reproduce the
  // serial distribution within MC error.
  math::Rng gen(47);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 100, gen);
  const placement::Placement pl(&nl, grid(10, 10));
  FullChipMcOptions serial;
  serial.trials = 1200;
  serial.resample_states_per_trial = true;
  FullChipMcOptions threaded = serial;
  threaded.threads = 4;
  const FullChipMcResult rs = FullChipMonteCarlo(pl, mini_chars_analytic(), serial).run();
  const FullChipMcResult rt = FullChipMonteCarlo(pl, mini_chars_analytic(), threaded).run();
  EXPECT_NEAR(rt.mean_na, rs.mean_na, 0.1 * rs.mean_na);
  EXPECT_NEAR(rt.sigma_na, rs.sigma_na, 0.25 * rs.sigma_na);
}

TEST(FullChipMc, ThreadedStateResamplingDeterministic) {
  math::Rng gen(53);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 36, gen);
  const placement::Placement pl(&nl, grid(6, 6));
  FullChipMcOptions opts;
  opts.trials = 200;
  opts.threads = 3;
  opts.resample_states_per_trial = true;
  const FullChipMcResult a = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  const FullChipMcResult b = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  EXPECT_DOUBLE_EQ(a.mean_na, b.mean_na);
  EXPECT_DOUBLE_EQ(a.sigma_na, b.sigma_na);
  EXPECT_DOUBLE_EQ(a.p99_na, b.p99_na);
}

TEST(FullChipMc, PercentilesAreOrderedAndBracketMean) {
  math::Rng gen(49);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 64, gen);
  const placement::Placement pl(&nl, grid(8, 8));
  FullChipMcOptions opts;
  opts.trials = 800;
  const FullChipMcResult r = FullChipMonteCarlo(pl, mini_chars_analytic(), opts).run();
  EXPECT_LT(r.p50_na, r.p90_na);
  EXPECT_LT(r.p90_na, r.p99_na);
  // Right-skewed: median below mean.
  EXPECT_LT(r.p50_na, r.mean_na * 1.02);
}

TEST(FullChipMc, RejectsTooFewTrials) {
  math::Rng gen(37);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 4, gen);
  const placement::Placement pl(&nl, grid(2, 2));
  FullChipMcOptions opts;
  opts.trials = 1;
  EXPECT_THROW(FullChipMonteCarlo(pl, mini_chars_analytic(), opts), ContractViolation);
}

}  // namespace
}  // namespace rgleak::mc
