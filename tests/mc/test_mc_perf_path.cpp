// Contracts of the performance-oriented MC trial path (DESIGN.md "MC
// performance"): the bucketed evaluation must agree with the per-gate
// reference to compensated-summation tolerance on the identical RNG stream,
// and the steady-state trial loop must never allocate.

#include "mc/full_chip_mc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/alloc_count.h"
#include "math/rng.h"
#include "netlist/random_circuit.h"

namespace rgleak::mc {
namespace {

using rgleak::testing::allocation_count;
using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.6;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.4;
  return u;
}

placement::Floorplan grid(std::size_t rows, std::size_t cols) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = 1500.0;
  fp.site_h_nm = 1500.0;
  return fp;
}

// Both paths draw the same states and fields from the same stream; the only
// divergence is evaluation order and the batched exp kernel. With Neumaier
// summation on both sides, per-trial totals agree far tighter than this.
constexpr double kPathRelTol = 1e-11;

TEST(McPerfPath, BucketedMatchesPerGatePerTrial) {
  math::Rng gen(61);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 144, gen);
  const placement::Placement pl(&nl, grid(12, 12));

  for (const bool resample : {false, true}) {
    FullChipMcOptions bucketed;
    bucketed.resample_states_per_trial = resample;
    bucketed.eval_path = McEvalPath::kBucketed;
    FullChipMcOptions per_gate = bucketed;
    per_gate.eval_path = McEvalPath::kPerGate;

    FullChipMonteCarlo a(pl, mini_chars_analytic(), bucketed);
    FullChipMonteCarlo b(pl, mini_chars_analytic(), per_gate);
    math::Rng ra(12345), rb(12345);
    for (int t = 0; t < 40; ++t) {
      const double va = a.sample_total_na(ra);
      const double vb = b.sample_total_na(rb);
      EXPECT_NEAR(va, vb, kPathRelTol * vb) << "trial " << t << " resample=" << resample;
    }
  }
}

TEST(McPerfPath, BucketedMatchesPerGateRunStatistics) {
  math::Rng gen(67);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 100, gen);
  const placement::Placement pl(&nl, grid(10, 10));
  FullChipMcOptions bucketed;
  bucketed.trials = 300;
  bucketed.seed = 4242;
  FullChipMcOptions per_gate = bucketed;
  per_gate.eval_path = McEvalPath::kPerGate;
  const FullChipMcResult rb = FullChipMonteCarlo(pl, mini_chars_analytic(), bucketed).run();
  const FullChipMcResult rp = FullChipMonteCarlo(pl, mini_chars_analytic(), per_gate).run();
  EXPECT_NEAR(rb.mean_na, rp.mean_na, kPathRelTol * rp.mean_na);
  EXPECT_NEAR(rb.sigma_na, rp.sigma_na, kPathRelTol * rp.mean_na);
  EXPECT_NEAR(rb.p99_na, rp.p99_na, kPathRelTol * rp.p99_na);
}

TEST(McPerfPath, ThreadedBucketedMatchesThreadedPerGate) {
  // Thread-count changes reorder the RNG streams, but for a fixed (seed,
  // threads) the two evaluation paths still see identical draws. The name
  // carries "Threaded" so scripts/tsan_check.sh races the restructured
  // worker rounds under TSan.
  math::Rng gen(71);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 100, gen);
  const placement::Placement pl(&nl, grid(10, 10));
  FullChipMcOptions bucketed;
  bucketed.trials = 240;
  bucketed.seed = 4243;
  bucketed.threads = 4;
  bucketed.resample_states_per_trial = true;
  FullChipMcOptions per_gate = bucketed;
  per_gate.eval_path = McEvalPath::kPerGate;
  const FullChipMcResult rb = FullChipMonteCarlo(pl, mini_chars_analytic(), bucketed).run();
  const FullChipMcResult rp = FullChipMonteCarlo(pl, mini_chars_analytic(), per_gate).run();
  EXPECT_NEAR(rb.mean_na, rp.mean_na, kPathRelTol * rp.mean_na);
  EXPECT_NEAR(rb.sigma_na, rp.sigma_na, kPathRelTol * rp.mean_na);
}

TEST(McPerfPath, ThreadedCheckpointedRunIsAllocationLean) {
  // The threaded checkpoint path must stream state through the reused writer
  // buffer instead of deep-copying worker slices: allocations per checkpoint
  // cadence stay bounded by file-I/O setup, independent of sample volume.
  // (An absolute zero is not asserted here — ofstream construction and the
  // thread-pool round trip legitimately allocate a handful of blocks.)
  math::Rng gen(73);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 64, gen);
  const placement::Placement pl(&nl, grid(8, 8));
  FullChipMcOptions opts;
  opts.trials = 400;
  opts.threads = 2;
  opts.checkpoint_every = 40;
  opts.checkpoint_path = ::testing::TempDir() + "mc_perf_alloc.ckpt";
  FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
  const FullChipMcResult r = mc.run();
  EXPECT_EQ(r.trials, 400u);
}

TEST(McPerfPath, SteadyStateTrialLoopDoesNotAllocateFixedStates) {
  math::Rng gen(79);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 144, gen);
  const placement::Placement pl(&nl, grid(12, 12));
  FullChipMcOptions opts;  // fixed states, bucketed
  FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
  math::Rng rng(5150);
  double sink = 0.0;
  for (int t = 0; t < 5; ++t) sink += mc.sample_total_na(rng);  // warm the workspace

  const std::size_t before = allocation_count();
  for (int t = 0; t < 100; ++t) sink += mc.sample_total_na(rng);
  const std::size_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "steady-state trials allocated";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(McPerfPath, SteadyStateTrialLoopDoesNotAllocateResampledStates) {
  // Per-trial state resampling rebuilds the buckets every trial; all bucket
  // arrays must reuse their capacity.
  math::Rng gen(83);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 144, gen);
  const placement::Placement pl(&nl, grid(12, 12));
  FullChipMcOptions opts;
  opts.resample_states_per_trial = true;
  FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
  math::Rng rng(5151);
  double sink = 0.0;
  // Warm-up also has to visit every (cell, state) pair so the lazy table
  // cache is fully populated before the measured region.
  for (int t = 0; t < 40; ++t) sink += mc.sample_total_na(rng);

  const std::size_t before = allocation_count();
  for (int t = 0; t < 100; ++t) sink += mc.sample_total_na(rng);
  const std::size_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "steady-state resampled trials allocated";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(McPerfPath, PerGateSteadyStateAlsoDoesNotAllocate) {
  math::Rng gen(89);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 64, gen);
  const placement::Placement pl(&nl, grid(8, 8));
  FullChipMcOptions opts;
  opts.eval_path = McEvalPath::kPerGate;
  FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
  math::Rng rng(5152);
  double sink = 0.0;
  for (int t = 0; t < 5; ++t) sink += mc.sample_total_na(rng);

  const std::size_t before = allocation_count();
  for (int t = 0; t < 50; ++t) sink += mc.sample_total_na(rng);
  EXPECT_EQ(allocation_count() - before, 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

}  // namespace
}  // namespace rgleak::mc
