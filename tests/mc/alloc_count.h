#pragma once
// Process-wide heap-allocation counter for zero-allocation assertions.
//
// Linking alloc_count.cpp into a test binary replaces the global operator
// new/delete family with counting wrappers. Tests snapshot allocation_count()
// before and after a measured region and assert on the delta; the MC perf
// tests use this to prove the steady-state trial loop never touches the heap.
// The counter covers every thread in the process, so measured regions must
// not run concurrently with other allocating work.

#include <cstddef>

namespace rgleak::testing {

/// Number of global allocation calls (all operator new variants) since
/// process start, across all threads.
std::size_t allocation_count();

}  // namespace rgleak::testing
