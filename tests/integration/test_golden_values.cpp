// Golden-value regression pins: exact reference numbers for the
// deterministic chain (device model -> cell -> characterization -> RG ->
// estimator) at the test process corner. A refactor that silently changes
// the physics or the numerics trips these before anything else does.
// Tolerances are tight (1e-6 relative) but allow for benign floating-point
// reassociation.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/estimators.h"

namespace rgleak {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

constexpr double kTol = 1e-6;

TEST(GoldenValues, CellLeakageAtNominal) {
  const auto& lib = mini_library();
  EXPECT_NEAR(lib.cell(lib.index_of("INV_X1")).leakage_na(0, 40.0, lib.tech()),
              19.0840830751, kTol * 19.08);
  EXPECT_NEAR(lib.cell(lib.index_of("NAND2_X1")).leakage_na(3, 40.0, lib.tech()),
              28.6261246127, kTol * 28.63);
  EXPECT_NEAR(lib.cell(lib.index_of("AOI21_X1")).leakage_na(5, 36.5, lib.tech()),
              42.3501450063, kTol * 42.35);
}

TEST(GoldenValues, CharacterizedMoments) {
  const auto& chars = mini_chars_analytic();
  const std::size_t inv = mini_library().index_of("INV_X1");
  EXPECT_NEAR(chars.cell(inv).states[0].mean_na, 19.9471005274, kTol * 19.95);
  EXPECT_NEAR(chars.cell(inv).states[0].sigma_na, 5.40231992021, kTol * 5.40);
}

TEST(GoldenValues, RandomGateAndChipEstimate) {
  const auto& lib = mini_library();
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  u.alphas[lib.index_of("INV_X1")] = 0.5;
  u.alphas[lib.index_of("NAND2_X1")] = 0.5;
  const core::RandomGate rg(mini_chars_analytic(), u, 0.5,
                            core::CorrelationMode::kAnalytic);
  EXPECT_NEAR(rg.mean_na(), 22.3179321393, kTol * 22.32);
  EXPECT_NEAR(rg.variance_na2(), 161.556660174, 1e-5 * 161.56);

  placement::Floorplan fp;
  fp.rows = fp.cols = 20;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const core::LeakageEstimate e = core::estimate_linear(rg, fp);
  EXPECT_NEAR(e.mean_na, 8927.17285574, kTol * 8927.0);
  EXPECT_NEAR(e.sigma_na, 2083.09120923, 1e-5 * 2083.0);
}

}  // namespace
}  // namespace rgleak
