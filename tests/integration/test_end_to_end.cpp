// End-to-end integration tests over the FULL 62-cell library: the complete
// flow the paper describes — characterize, build the RG, estimate, and
// validate against the exact pairwise analysis and full-chip Monte Carlo —
// plus the early-mode/late-mode consistency and the yield model against
// empirical percentiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "core/leakage_estimator.h"
#include "core/yield.h"
#include "mc/full_chip_mc.h"
#include "netlist/iscas85.h"
#include "netlist/random_circuit.h"

namespace rgleak {
namespace {

using rgleak::testing::full_chars_analytic;
using rgleak::testing::full_library;

netlist::UsageHistogram soc_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(full_library().size(), 0.0);
  u.alphas[full_library().index_of("INV_X1")] = 0.2;
  u.alphas[full_library().index_of("NAND2_X1")] = 0.2;
  u.alphas[full_library().index_of("NOR2_X1")] = 0.1;
  u.alphas[full_library().index_of("XOR2_X1")] = 0.1;
  u.alphas[full_library().index_of("AOI21_X1")] = 0.1;
  u.alphas[full_library().index_of("DFF_X1")] = 0.2;
  u.alphas[full_library().index_of("BUF_X2")] = 0.1;
  return u;
}

placement::Floorplan grid(std::size_t side) {
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return fp;
}

TEST(EndToEnd, EarlyModeEqualsLateModeForMatchingDesign) {
  // Early mode: expected characteristics. Late mode: extract from a netlist
  // that realizes them exactly. The estimates must agree to rounding.
  const netlist::UsageHistogram usage = soc_usage();
  const std::size_t side = 40;
  const core::RandomGate early_rg(full_chars_analytic(), usage, 0.5,
                                  core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate early = core::estimate_linear(early_rg, grid(side));

  math::Rng rng(404);
  const netlist::Netlist nl = netlist::generate_random_circuit(
      full_library(), usage, side * side, rng, netlist::UsageMatch::kExact);
  const netlist::UsageHistogram extracted = netlist::extract_usage(nl);
  const core::RandomGate late_rg(full_chars_analytic(), extracted, 0.5,
                                 core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate late = core::estimate_linear(late_rg, grid(side));

  EXPECT_NEAR(early.mean_na, late.mean_na, 1e-6 * early.mean_na);
  EXPECT_NEAR(early.sigma_na, late.sigma_na, 1e-4 * early.sigma_na);
}

TEST(EndToEnd, RgEstimateTracksExactForFullLibraryDesign) {
  const netlist::UsageHistogram usage = soc_usage();
  const std::size_t side = 30;
  math::Rng rng(405);
  const netlist::Netlist nl = netlist::generate_random_circuit(
      full_library(), usage, side * side, rng, netlist::UsageMatch::kExact);
  const placement::Placement pl(&nl, grid(side));

  const core::ExactEstimator exact(full_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate truth = exact.estimate(pl);
  const core::RandomGate rg(full_chars_analytic(), usage, 0.5,
                            core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate est = core::estimate_linear(rg, grid(side));

  EXPECT_NEAR(est.mean_na, truth.mean_na, 0.01 * truth.mean_na);
  EXPECT_NEAR(est.sigma_na, truth.sigma_na, 0.02 * truth.sigma_na);
}

TEST(EndToEnd, MonteCarloConfirmsEstimateAndYieldTail) {
  const netlist::UsageHistogram usage = soc_usage();
  const std::size_t side = 20;
  math::Rng rng(406);
  const netlist::Netlist nl = netlist::generate_random_circuit(
      full_library(), usage, side * side, rng, netlist::UsageMatch::kExact);
  const placement::Placement pl(&nl, grid(side));

  const core::RandomGate rg(full_chars_analytic(), usage, 0.5,
                            core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate est = core::estimate_linear(rg, grid(side));

  mc::FullChipMcOptions opts;
  opts.trials = 4000;
  opts.resample_states_per_trial = true;
  mc::FullChipMonteCarlo sim(pl, full_chars_analytic(), opts);

  // Collect the raw totals for percentile checks.
  std::vector<double> totals(opts.trials);
  math::Rng mc_rng(777);
  for (auto& t : totals) t = sim.sample_total_na(mc_rng);
  std::sort(totals.begin(), totals.end());
  const double mc_mean = math::mean(totals);
  const double mc_sigma = math::stddev(totals);

  EXPECT_NEAR(est.mean_na, mc_mean, 0.05 * mc_mean);
  EXPECT_NEAR(est.sigma_na, mc_sigma, 0.12 * mc_sigma);

  // Yield model: the log-normal P90/P99 should be near the empirical ones.
  const core::LeakageYieldModel yield(est);
  const double p90_emp = totals[static_cast<std::size_t>(0.90 * opts.trials)];
  const double p99_emp = totals[static_cast<std::size_t>(0.99 * opts.trials)];
  EXPECT_NEAR(yield.quantile(0.90), p90_emp, 0.10 * p90_emp);
  EXPECT_NEAR(yield.quantile(0.99), p99_emp, 0.15 * p99_emp);
}

TEST(EndToEnd, Iscas85LateModeUnderOnePercentSigmaError) {
  // Table-1-style check as a regression test on the two largest circuits.
  const core::ExactEstimator exact(full_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  math::Rng rng(85);
  const auto& descriptors = netlist::iscas85_descriptors();
  for (std::size_t idx : {7u, 8u}) {  // c6288, c7552
    const netlist::Netlist seed = netlist::make_iscas85(descriptors[idx], full_library(), rng);
    const placement::Floorplan fp = placement::Floorplan::for_gate_count(seed.size());
    const netlist::Netlist nl = netlist::generate_random_circuit(
        full_library(), netlist::extract_usage(seed), fp.num_sites(), rng,
        netlist::UsageMatch::kExact, seed.name());
    const placement::Placement pl(&nl, fp);
    const core::LeakageEstimate truth = exact.estimate(pl);
    const core::RandomGate rg(full_chars_analytic(), netlist::extract_usage(nl), 0.5,
                              core::CorrelationMode::kAnalytic);
    const core::LeakageEstimate est = core::estimate_linear(rg, fp);
    const double err = std::abs(est.sigma_na - truth.sigma_na) / truth.sigma_na;
    EXPECT_LT(err, 0.014) << descriptors[idx].name;  // paper's worst case is 1.38%
  }
}

TEST(EndToEnd, ConstantTimeMethodsAgreeAtScale) {
  const netlist::UsageHistogram usage = soc_usage();
  const core::RandomGate rg(full_chars_analytic(), usage, 0.5,
                            core::CorrelationMode::kAnalytic);
  const placement::Floorplan fp = grid(300);  // 90k gates
  const core::LeakageEstimate lin = core::estimate_linear(rg, fp);
  const core::LeakageEstimate rect = core::estimate_integral_rect(rg, fp);
  const core::LeakageEstimate polar = core::estimate_integral_polar(rg, fp);
  EXPECT_NEAR(rect.sigma_na, lin.sigma_na, 0.002 * lin.sigma_na);
  EXPECT_NEAR(polar.sigma_na, lin.sigma_na, 0.002 * lin.sigma_na);
}

}  // namespace
}  // namespace rgleak
