#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "process/field_sampler.h"
#include "process/variation.h"
#include "util/require.h"

namespace rgleak::process {
namespace {

ProcessVariation aniso_process(double ax, double ay, double lc = 1000.0) {
  LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = 1.0;
  len.sigma_wid_nm = 1.0;
  CorrelationAnisotropy an;
  an.scale_x = ax;
  an.scale_y = ay;
  return ProcessVariation(len, VtVariation{}, std::make_shared<ExponentialCorrelation>(lc),
                          an);
}

TEST(Anisotropy, IsotropicByDefault) {
  const ProcessVariation p = aniso_process(1.0, 1.0);
  EXPECT_TRUE(p.is_isotropic());
  EXPECT_DOUBLE_EQ(p.total_length_correlation_xy(300.0, 400.0),
                   p.total_length_correlation(500.0));
}

TEST(Anisotropy, StretchedAxisStaysCorrelatedLonger) {
  const ProcessVariation p = aniso_process(4.0, 1.0);
  EXPECT_FALSE(p.is_isotropic());
  // At the same physical separation, x-offsets keep more correlation.
  EXPECT_GT(p.total_length_correlation_xy(2000.0, 0.0),
            p.total_length_correlation_xy(0.0, 2000.0));
  // And the x-axis correlation matches an isotropic model with a 4x longer
  // correlation length.
  const ProcessVariation iso = aniso_process(1.0, 1.0, 4000.0);
  EXPECT_NEAR(p.total_length_correlation_xy(2000.0, 0.0),
              iso.total_length_correlation(2000.0), 1e-12);
}

TEST(Anisotropy, UniformScaleIsStillIsotropic) {
  const ProcessVariation p = aniso_process(2.0, 2.0);
  EXPECT_TRUE(p.is_isotropic());
  // Equivalent to doubling the correlation length.
  const ProcessVariation iso = aniso_process(1.0, 1.0, 2000.0);
  EXPECT_NEAR(p.total_length_correlation_xy(700.0, 300.0),
              iso.total_length_correlation_xy(700.0, 300.0), 1e-12);
}

TEST(Anisotropy, RangeUsesLargerAxis) {
  const ProcessVariation p = aniso_process(3.0, 1.0);
  const ProcessVariation iso = aniso_process(1.0, 1.0);
  EXPECT_NEAR(p.wid_correlation_range_nm(), 3.0 * iso.wid_correlation_range_nm(), 1e-6);
}

TEST(Anisotropy, RejectsNonPositiveScales) {
  CorrelationAnisotropy bad;
  bad.scale_x = 0.0;
  EXPECT_THROW(ProcessVariation(LengthVariation{}, VtVariation{},
                                std::make_shared<ExponentialCorrelation>(1.0), bad),
               ContractViolation);
}

TEST(Anisotropy, FieldSamplerMatchesAnisotropicKernel) {
  const ExponentialCorrelation rho(400.0);
  CorrelationAnisotropy an;
  an.scale_x = 3.0;
  an.scale_y = 1.0;
  GridFieldSampler sampler(6, 6, 150.0, 150.0, rho, 1.0, an);
  math::Rng rng(17);
  math::RunningCovariance x_lag, y_lag;
  for (int t = 0; t < 40000; ++t) {
    const auto f = sampler.sample(rng);
    x_lag.add(f[0], f[2]);       // dx = 300
    y_lag.add(f[0], f[2 * 6]);   // dy = 300
  }
  EXPECT_NEAR(x_lag.correlation(), rho(300.0 / 3.0), 0.02);
  EXPECT_NEAR(y_lag.correlation(), rho(300.0), 0.02);
  EXPECT_GT(x_lag.correlation(), y_lag.correlation());
}

}  // namespace
}  // namespace rgleak::process
