#include "process/variation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace rgleak::process {
namespace {

ProcessVariation make(double sdd, double swid, double lc = 1000.0) {
  LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = sdd;
  len.sigma_wid_nm = swid;
  return ProcessVariation(len, VtVariation{}, std::make_shared<ExponentialCorrelation>(lc));
}

TEST(LengthVariation, TotalSigmaQuadrature) {
  LengthVariation len;
  len.sigma_d2d_nm = 3.0;
  len.sigma_wid_nm = 4.0;
  EXPECT_NEAR(len.sigma_total_nm(), 5.0, 1e-12);
  EXPECT_NEAR(len.d2d_variance_fraction(), 9.0 / 25.0, 1e-12);
}

TEST(ProcessVariation, TotalCorrelationAtZeroIsOne) {
  EXPECT_DOUBLE_EQ(make(1.0, 2.0).total_length_correlation(0.0), 1.0);
}

TEST(ProcessVariation, TotalCorrelationFloorsAtD2dFraction) {
  const auto p = make(1.0, 1.0, 100.0);
  // Far beyond the WID range, only the D2D share remains: 0.5 here.
  EXPECT_NEAR(p.total_length_correlation(1e9), 0.5, 1e-6);
}

TEST(ProcessVariation, NormalizationBlendsWidCorrelation) {
  const auto p = make(1.0, 1.0, 1000.0);
  const double d = std::log(2.0) * 1000.0;  // rho_wid = 0.5 exactly
  EXPECT_NEAR(p.total_length_correlation(d), (1.0 + 0.5) / 2.0, 1e-12);
}

TEST(ProcessVariation, PureWidMatchesModel) {
  const auto p = make(0.0, 2.0, 500.0);
  EXPECT_NEAR(p.total_length_correlation(500.0), std::exp(-1.0), 1e-12);
}

TEST(ProcessVariation, PureD2dIsAlwaysOne) {
  const auto p = make(2.0, 0.0);
  EXPECT_NEAR(p.total_length_correlation(12345.0), 1.0, 1e-12);
}

TEST(ProcessVariation, MonotoneNonIncreasing) {
  const auto p = make(0.8, 1.7, 300.0);
  double prev = 1.0;
  for (double d = 0.0; d < 3000.0; d += 25.0) {
    const double r = p.total_length_correlation(d);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(ProcessVariation, ConstructionContracts) {
  LengthVariation len;
  len.mean_nm = -1.0;
  EXPECT_THROW(
      ProcessVariation(len, VtVariation{}, std::make_shared<ExponentialCorrelation>(1.0)),
      ContractViolation);
  EXPECT_THROW(ProcessVariation(LengthVariation{}, VtVariation{}, nullptr), ContractViolation);
  LengthVariation bad;
  bad.sigma_d2d_nm = -0.1;
  EXPECT_THROW(
      ProcessVariation(bad, VtVariation{}, std::make_shared<ExponentialCorrelation>(1.0)),
      ContractViolation);
}

TEST(ProcessVariation, DefaultProcessIsSane) {
  const ProcessVariation p = default_process();
  EXPECT_GT(p.length().mean_nm, 0.0);
  EXPECT_GT(p.length().sigma_total_nm(), 0.0);
  EXPECT_DOUBLE_EQ(p.total_length_correlation(0.0), 1.0);
  EXPECT_GT(p.wid_correlation_range_nm(), 0.0);
}

TEST(ProcessVariation, ZeroVarianceCorrelationThrows) {
  const auto p = make(0.0, 0.0);
  EXPECT_THROW(p.total_length_correlation(1.0), ContractViolation);
}

}  // namespace
}  // namespace rgleak::process
