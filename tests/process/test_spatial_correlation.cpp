#include "process/spatial_correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace rgleak::process {
namespace {

class CorrelationModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorrelationModelTest, BasicProperties) {
  const auto model = make_correlation(GetParam(), 1000.0);
  // rho(0) = 1 and rho bounded in [0, 1].
  EXPECT_DOUBLE_EQ((*model)(0.0), 1.0);
  double prev = 1.0;
  for (double d = 0.0; d <= 5000.0; d += 50.0) {
    const double r = (*model)(d);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    EXPECT_LE(r, prev + 1e-12) << "not monotone at d=" << d;
    prev = r;
  }
}

TEST_P(CorrelationModelTest, NegligibleBeyondRange) {
  const auto model = make_correlation(GetParam(), 1000.0);
  EXPECT_LE((*model)(model->range_nm()), 1.1e-6);
}

TEST_P(CorrelationModelTest, RejectsNegativeDistance) {
  const auto model = make_correlation(GetParam(), 1000.0);
  EXPECT_THROW((*model)(-1.0), ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CorrelationModelTest,
                         ::testing::Values("exponential", "gaussian", "linear", "spherical",
                                           "matern32"));

TEST(ExponentialCorrelation, KnownValues) {
  const ExponentialCorrelation rho(100.0);
  EXPECT_NEAR(rho(100.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(rho(250.0), std::exp(-2.5), 1e-12);
}

TEST(GaussianCorrelation, KnownValues) {
  const GaussianCorrelation rho(100.0);
  EXPECT_NEAR(rho(100.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(rho(200.0), std::exp(-4.0), 1e-12);
}

TEST(LinearCorrelation, CompactSupport) {
  const LinearCorrelation rho(100.0);
  EXPECT_NEAR(rho(50.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(rho(100.0), 0.0);
  EXPECT_DOUBLE_EQ(rho(200.0), 0.0);
  EXPECT_DOUBLE_EQ(rho.range_nm(), 100.0);
}

TEST(SphericalCorrelation, CompactSupportAndShape) {
  const SphericalCorrelation rho(100.0);
  EXPECT_DOUBLE_EQ(rho(100.0), 0.0);
  EXPECT_DOUBLE_EQ(rho(150.0), 0.0);
  EXPECT_NEAR(rho(50.0), 1.0 - 0.75 + 0.0625, 1e-12);
}

TEST(Matern32Correlation, SmoothAtOriginAndKnownShape) {
  const Matern32Correlation rho(1000.0);
  // Matern 3/2 has zero derivative at the origin (smoother than exponential).
  EXPECT_GT(rho(1.0), 0.999997);  // 1 - O((d/lc)^2), vs 0.99827 for exponential
  const double r = std::sqrt(3.0);
  EXPECT_NEAR(rho(1000.0), (1.0 + r) * std::exp(-r), 1e-12);
}

TEST(PowerExponentialCorrelation, InterpolatesExponentialAndGaussian) {
  const PowerExponentialCorrelation p1(500.0, 1.0);
  const ExponentialCorrelation e(500.0);
  EXPECT_NEAR(p1(700.0), e(700.0), 1e-12);
  const PowerExponentialCorrelation p2(500.0, 2.0);
  const GaussianCorrelation g(500.0);
  EXPECT_NEAR(p2(700.0), g(700.0), 1e-12);
  // Fractional exponent sits between the two at moderate distance... heavier
  // tail than both at large distance when p < 1.
  const PowerExponentialCorrelation ph(500.0, 0.5);
  EXPECT_GT(ph(5000.0), e(5000.0));
  EXPECT_LE(ph(ph.range_nm()), 1.1e-6);
}

TEST(PowerExponentialCorrelation, RejectsBadExponent) {
  EXPECT_THROW(PowerExponentialCorrelation(500.0, 0.0), ContractViolation);
  EXPECT_THROW(PowerExponentialCorrelation(500.0, 2.5), ContractViolation);
}

TEST(Factory, RejectsUnknownModelAndBadScale) {
  EXPECT_THROW(make_correlation("nope", 1.0), ConfigError);
  EXPECT_THROW(make_correlation("exponential", 0.0), ContractViolation);
  EXPECT_THROW(make_correlation("linear", -1.0), ContractViolation);
}

}  // namespace
}  // namespace rgleak::process
