#include "process/field_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "util/require.h"

namespace rgleak::process {
namespace {

TEST(GridFieldSampler, MarginalMomentsMatch) {
  const ExponentialCorrelation rho(500.0);
  GridFieldSampler sampler(8, 8, 100.0, 100.0, rho, 2.0);
  math::Rng rng(1);
  math::RunningStats acc;
  for (int t = 0; t < 2000; ++t)
    for (double v : sampler.sample(rng)) acc.add(v);
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(GridFieldSampler, LagCorrelationMatchesKernel) {
  const ExponentialCorrelation rho(300.0);
  const std::size_t k = 6, m = 6;
  const double pitch = 100.0;
  GridFieldSampler sampler(k, m, pitch, pitch, rho, 1.0);
  math::Rng rng(2);

  // Accumulate correlation between site (0,0) and several offsets.
  math::RunningCovariance lag_x1, lag_x3, lag_diag;
  for (int t = 0; t < 30000; ++t) {
    const auto f = sampler.sample(rng);
    lag_x1.add(f[0], f[1]);
    lag_x3.add(f[0], f[3]);
    lag_diag.add(f[0], f[2 * m + 2]);
  }
  EXPECT_NEAR(lag_x1.correlation(), rho(pitch), 0.02);
  EXPECT_NEAR(lag_x3.correlation(), rho(3 * pitch), 0.02);
  EXPECT_NEAR(lag_diag.correlation(), rho(std::hypot(2 * pitch, 2 * pitch)), 0.02);
}

TEST(GridFieldSampler, GaussianKernelCorrelation) {
  const GaussianCorrelation rho(400.0);
  GridFieldSampler sampler(4, 4, 150.0, 150.0, rho, 1.5);
  math::Rng rng(3);
  math::RunningCovariance lag;
  math::RunningStats var;
  for (int t = 0; t < 30000; ++t) {
    const auto f = sampler.sample(rng);
    lag.add(f[0], f[2]);
    var.add(f[5]);
  }
  EXPECT_NEAR(lag.correlation(), rho(300.0), 0.02);
  EXPECT_NEAR(var.variance(), 2.25, 0.1);
}

TEST(GridFieldSampler, AnisotropicPitch) {
  const ExponentialCorrelation rho(300.0);
  GridFieldSampler sampler(4, 4, 100.0, 200.0, rho, 1.0);
  math::Rng rng(4);
  math::RunningCovariance row_neighbor, col_neighbor;
  for (int t = 0; t < 30000; ++t) {
    const auto f = sampler.sample(rng);
    row_neighbor.add(f[0], f[1]);      // dx = 100
    col_neighbor.add(f[0], f[4]);      // dy = 200
  }
  EXPECT_NEAR(row_neighbor.correlation(), rho(100.0), 0.02);
  EXPECT_NEAR(col_neighbor.correlation(), rho(200.0), 0.02);
}

TEST(GridFieldSampler, EigenvalueClampIsSmallForValidKernels) {
  const ExponentialCorrelation rho(500.0);
  const GridFieldSampler sampler(16, 16, 100.0, 100.0, rho, 1.0);
  EXPECT_LT(sampler.clamped_eigenvalue_fraction(), 1e-6);
}

TEST(GridFieldSampler, SuccessiveSamplesIndependent) {
  const ExponentialCorrelation rho(300.0);
  GridFieldSampler sampler(4, 4, 100.0, 100.0, rho, 1.0);
  math::Rng rng(5);
  math::RunningCovariance c;
  std::vector<double> prev = sampler.sample(rng);
  for (int t = 0; t < 20000; ++t) {
    const auto cur = sampler.sample(rng);
    c.add(prev[0], cur[0]);
    prev = cur;
  }
  EXPECT_NEAR(c.correlation(), 0.0, 0.03);
}

TEST(GridFieldSampler, SampleIntoMatchesSampleStream) {
  // sample_into is the allocation-free spelling of sample(): same RNG
  // consumption, bit-identical fields (including the cached second field of
  // each complex FFT draw).
  const ExponentialCorrelation rho(300.0);
  GridFieldSampler a(6, 5, 100.0, 100.0, rho, 1.7);
  GridFieldSampler b(6, 5, 100.0, 100.0, rho, 1.7);
  math::Rng ra(11), rb(11);
  FieldWorkspace ws;
  std::vector<double> out;
  for (int t = 0; t < 9; ++t) {  // odd count exercises the cached-field path
    const std::vector<double> ref = a.sample(ra);
    b.sample_into(rb, ws, out);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(out[i], ref[i]) << "t=" << t;
  }
  EXPECT_EQ(ra(), rb());  // streams stayed in lockstep
}

TEST(DenseFieldSampler, SampleIntoMatchesSampleStream) {
  const ExponentialCorrelation rho(250.0);
  std::vector<DenseFieldSampler::Site> sites = {
      {0.0, 0.0}, {100.0, 0.0}, {0.0, 300.0}, {400.0, 400.0}, {50.0, 60.0}};
  const DenseFieldSampler a(sites, rho, 1.2);
  math::Rng ra(12), rb(12);
  FieldWorkspace ws;
  std::vector<double> out;
  for (int t = 0; t < 6; ++t) {
    const std::vector<double> ref = a.sample(ra);
    a.sample_into(rb, ws, out);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(out[i], ref[i]);
  }
  EXPECT_EQ(ra(), rb());
}

TEST(GridFieldSampler, ContractChecks) {
  const ExponentialCorrelation rho(100.0);
  EXPECT_THROW(GridFieldSampler(0, 4, 1.0, 1.0, rho, 1.0), ContractViolation);
  EXPECT_THROW(GridFieldSampler(4, 4, 0.0, 1.0, rho, 1.0), ContractViolation);
  EXPECT_THROW(GridFieldSampler(4, 4, 1.0, 1.0, rho, -1.0), ContractViolation);
}

TEST(DenseFieldSampler, MatchesKernelCovariance) {
  const ExponentialCorrelation rho(250.0);
  std::vector<DenseFieldSampler::Site> sites = {
      {0.0, 0.0}, {100.0, 0.0}, {0.0, 300.0}, {400.0, 400.0}};
  const DenseFieldSampler sampler(sites, rho, 1.3);
  math::Rng rng(6);
  math::RunningCovariance c01, c02;
  math::RunningStats v0;
  for (int t = 0; t < 40000; ++t) {
    const auto f = sampler.sample(rng);
    c01.add(f[0], f[1]);
    c02.add(f[0], f[2]);
    v0.add(f[0]);
  }
  EXPECT_NEAR(v0.variance(), 1.69, 0.05);
  EXPECT_NEAR(c01.correlation(), rho(100.0), 0.02);
  EXPECT_NEAR(c02.correlation(), rho(300.0), 0.02);
}

TEST(DenseFieldSampler, HandlesCoincidentSites) {
  const ExponentialCorrelation rho(100.0);
  std::vector<DenseFieldSampler::Site> sites = {{0.0, 0.0}, {0.0, 0.0}};
  const DenseFieldSampler sampler(sites, rho, 1.0);  // jitter keeps it SPD
  math::Rng rng(7);
  math::RunningCovariance c;
  for (int t = 0; t < 5000; ++t) {
    const auto f = sampler.sample(rng);
    c.add(f[0], f[1]);
  }
  EXPECT_GT(c.correlation(), 0.99);
}

TEST(DenseFieldSampler, RejectsEmptySites) {
  const ExponentialCorrelation rho(100.0);
  EXPECT_THROW(DenseFieldSampler({}, rho, 1.0), ContractViolation);
}

TEST(GridVsDense, AgreeOnSmallGrid) {
  // Both samplers target the same covariance; compare lag-1 correlations.
  const ExponentialCorrelation rho(200.0);
  GridFieldSampler grid(3, 3, 100.0, 100.0, rho, 1.0);
  std::vector<DenseFieldSampler::Site> sites;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      sites.push_back({(c + 0.5) * 100.0, (r + 0.5) * 100.0});
  const DenseFieldSampler dense(sites, rho, 1.0);

  math::Rng rng(8);
  math::RunningCovariance g, d;
  for (int t = 0; t < 30000; ++t) {
    const auto fg = grid.sample(rng);
    const auto fd = dense.sample(rng);
    g.add(fg[0], fg[4]);
    d.add(fd[0], fd[4]);
  }
  EXPECT_NEAR(g.correlation(), d.correlation(), 0.03);
}

}  // namespace
}  // namespace rgleak::process
