#include "process/quadtree_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "util/require.h"

namespace rgleak::process {
namespace {

QuadtreeModel model3() {
  // Three levels: die-wide, quadrant, sixteenth.
  return QuadtreeModel({1.0, 1.0, 1.0}, 1.0e5, 1.0e5);
}

TEST(QuadtreeModel, ConstructionContracts) {
  EXPECT_THROW(QuadtreeModel({}, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(QuadtreeModel({1.0}, 0.0, 1.0), ContractViolation);
  EXPECT_THROW(QuadtreeModel({-1.0}, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(QuadtreeModel({0.0, 0.0}, 1.0, 1.0), ContractViolation);
  EXPECT_NEAR(model3().total_sigma(), std::sqrt(3.0), 1e-12);
}

TEST(QuadtreeModel, CorrelationStructure) {
  const QuadtreeModel m = model3();
  // Same location: 1.
  EXPECT_NEAR(m.correlation(1e4, 1e4, 1e4, 1e4), 1.0, 1e-12);
  // Same deepest (4x4) cell: all three levels shared.
  EXPECT_NEAR(m.correlation(1e3, 1e3, 2e4, 2e4), 1.0, 1e-12);
  // Same quadrant, different sixteenth: 2/3.
  EXPECT_NEAR(m.correlation(1e4, 1e4, 4e4, 4e4), 2.0 / 3.0, 1e-12);
  // Different quadrants: only the die level shared: 1/3.
  EXPECT_NEAR(m.correlation(4.9e4, 4.9e4, 5.1e4, 5.1e4), 1.0 / 3.0, 1e-12);
  EXPECT_THROW(m.correlation(-1.0, 0.0, 0.0, 0.0), ContractViolation);
}

TEST(QuadtreeModel, BoundaryDiscontinuityBreaksDistanceOnlyAssumption) {
  // Two pairs at the SAME physical distance, very different correlation —
  // the property that distance-based rho(d) cannot represent.
  const QuadtreeModel m = model3();
  const double d = 2.0e3;
  const double inside = m.correlation(2.0e4, 2.0e4, 2.0e4 + d, 2.0e4);   // same cell
  const double straddle = m.correlation(5.0e4 - d / 2, 2.0e4, 5.0e4 + d / 2, 2.0e4);
  EXPECT_NEAR(inside, 1.0, 1e-12);
  EXPECT_NEAR(straddle, 1.0 / 3.0, 1e-12);
}

TEST(QuadtreeModel, SamplerMatchesAnalyticCorrelation) {
  const QuadtreeModel m = model3();
  const std::vector<std::pair<double, double>> locs = {
      {1.0e4, 1.0e4}, {2.0e4, 2.0e4}, {4.0e4, 4.0e4}, {9.0e4, 9.0e4}};
  math::Rng rng(3);
  math::RunningCovariance c01, c02, c03;
  math::RunningStats v0;
  for (int t = 0; t < 40000; ++t) {
    const auto f = m.sample(locs, rng);
    v0.add(f[0]);
    c01.add(f[0], f[1]);
    c02.add(f[0], f[2]);
    c03.add(f[0], f[3]);
  }
  EXPECT_NEAR(v0.stddev(), m.total_sigma(), 0.03 * m.total_sigma());
  EXPECT_NEAR(c01.correlation(), m.correlation(1e4, 1e4, 2e4, 2e4), 0.02);
  EXPECT_NEAR(c02.correlation(), m.correlation(1e4, 1e4, 4e4, 4e4), 0.02);
  EXPECT_NEAR(c03.correlation(), m.correlation(1e4, 1e4, 9e4, 9e4), 0.02);
}

TEST(QuadtreeModel, GridSamplerShapeAndMoments) {
  const QuadtreeModel m({1.5, 0.5}, 6.0e4, 3.0e4);
  math::Rng rng(5);
  math::RunningStats acc;
  for (int t = 0; t < 3000; ++t)
    for (double v : m.sample_grid(6, 12, rng)) acc.add(v);
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), m.total_sigma(), 0.03 * m.total_sigma());
}

TEST(QuadtreeModel, DeeperLevelsShortenCorrelationRange) {
  // Bottom-heavy variance decorrelates faster with distance on average.
  const QuadtreeModel top_heavy({2.0, 0.5, 0.5}, 1.0e5, 1.0e5);
  const QuadtreeModel bottom_heavy({0.5, 0.5, 2.0}, 1.0e5, 1.0e5);
  // Average correlation at a mid-range separation over several pair positions.
  double avg_top = 0.0, avg_bottom = 0.0;
  int count = 0;
  for (double x = 5e3; x < 7e4; x += 7.3e3) {
    avg_top += top_heavy.correlation(x, 3e4, x + 2.5e4, 3e4);
    avg_bottom += bottom_heavy.correlation(x, 3e4, x + 2.5e4, 3e4);
    ++count;
  }
  EXPECT_GT(avg_top / count, avg_bottom / count);
}

}  // namespace
}  // namespace rgleak::process
