#include "process/correlation_fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "process/field_sampler.h"
#include "util/require.h"

namespace rgleak::process {
namespace {

std::vector<std::vector<double>> sample_dies(const SpatialCorrelation& rho, std::size_t dies,
                                             std::size_t rows, std::size_t cols, double pitch,
                                             std::uint64_t seed) {
  GridFieldSampler sampler(rows, cols, pitch, pitch, rho, 1.0);
  math::Rng rng(seed);
  std::vector<std::vector<double>> out;
  out.reserve(dies);
  for (std::size_t d = 0; d < dies; ++d) out.push_back(sampler.sample(rng));
  return out;
}

TEST(Correlogram, MatchesGeneratingKernel) {
  const ExponentialCorrelation rho(5000.0);
  const auto dies = sample_dies(rho, 150, 16, 16, 1000.0, 1);
  const auto cg = empirical_correlogram(dies, 16, 16, 1000.0, 1000.0, 12);
  ASSERT_GE(cg.size(), 6u);
  for (const auto& bin : cg) {
    EXPECT_NEAR(bin.correlation, rho(bin.distance_nm), 0.06)
        << "d=" << bin.distance_nm;
    EXPECT_GT(bin.pairs, 0u);
  }
  // Monotone-ish decay of the binned correlations.
  EXPECT_GT(cg.front().correlation, cg.back().correlation);
}

TEST(CorrelationFit, RecoversExponentialScale) {
  const ExponentialCorrelation rho(5000.0);
  const auto dies = sample_dies(rho, 200, 16, 16, 1000.0, 2);
  const auto cg = empirical_correlogram(dies, 16, 16, 1000.0, 1000.0, 12);
  const CorrelationFit fit = fit_correlation_model(cg, "exponential");
  EXPECT_NEAR(fit.scale_nm, 5000.0, 0.2 * 5000.0);
  EXPECT_LT(fit.rms_error, 0.05);
}

TEST(CorrelationFit, RecoversGaussianScale) {
  const GaussianCorrelation rho(6000.0);
  const auto dies = sample_dies(rho, 200, 16, 16, 1000.0, 3);
  const auto cg = empirical_correlogram(dies, 16, 16, 1000.0, 1000.0, 12);
  const CorrelationFit fit = fit_correlation_model(cg, "gaussian");
  EXPECT_NEAR(fit.scale_nm, 6000.0, 0.2 * 6000.0);
}

TEST(CorrelationFit, FamilySelectionPrefersGeneratingFamily) {
  // Data from a Gaussian kernel: the Gaussian family should beat the
  // exponential in RMS (their shapes differ most near the origin).
  const GaussianCorrelation rho(6000.0);
  const auto dies = sample_dies(rho, 250, 16, 16, 1000.0, 4);
  const auto cg = empirical_correlogram(dies, 16, 16, 1000.0, 1000.0, 12);
  const auto fits = fit_all_families(cg);
  ASSERT_EQ(fits.size(), 5u);
  // Sorted by error: first is best.
  EXPECT_LT(fits.front().rms_error, fits.back().rms_error);
  double gaussian_err = 0.0, exponential_err = 0.0;
  for (const auto& f : fits) {
    if (f.family == "gaussian") gaussian_err = f.rms_error;
    if (f.family == "exponential") exponential_err = f.rms_error;
  }
  EXPECT_LT(gaussian_err, exponential_err);
}

TEST(CorrelationFit, RoundTripThroughEstimator) {
  // Extraction loop: sample fields from a known process, fit, and check the
  // fitted model reproduces correlations within a few percent everywhere.
  const ExponentialCorrelation truth(8000.0);
  const auto dies = sample_dies(truth, 300, 20, 20, 1500.0, 5);
  const auto cg = empirical_correlogram(dies, 20, 20, 1500.0, 1500.0, 16);
  const CorrelationFit fit = fit_correlation_model(cg, "exponential");
  for (double d = 1000.0; d <= 15000.0; d += 1000.0)
    EXPECT_NEAR((*fit.model)(d), truth(d), 0.08) << "d=" << d;
}

TEST(Correlogram, ContractChecks) {
  const std::vector<std::vector<double>> one_die(1, std::vector<double>(16, 0.0));
  EXPECT_THROW(empirical_correlogram(one_die, 4, 4, 1.0, 1.0), ContractViolation);
  std::vector<std::vector<double>> flat(3, std::vector<double>(16, 1.0));
  EXPECT_THROW(empirical_correlogram(flat, 4, 4, 1.0, 1.0), ContractViolation);
  std::vector<std::vector<double>> bad(3, std::vector<double>(15, 0.0));
  EXPECT_THROW(empirical_correlogram(bad, 4, 4, 1.0, 1.0), ContractViolation);
  EXPECT_THROW(fit_correlation_model({}, "exponential"), ContractViolation);
}

}  // namespace
}  // namespace rgleak::process
