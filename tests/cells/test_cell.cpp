#include "cells/cell.h"

#include <gtest/gtest.h>

#include "cells/library.h"
#include "util/require.h"

namespace rgleak::cells {
namespace {

const device::TechnologyParams kTech{};

Cell make_test_inv() {
  CellBuilder b("INV_T", 1, Sizing{});
  b.add_inverter(b.input(0));
  return std::move(b).build();
}

TEST(CellBuilder, InverterStructure) {
  const Cell inv = make_test_inv();
  EXPECT_EQ(inv.num_inputs(), 1);
  EXPECT_EQ(inv.num_states(), 2u);
  EXPECT_EQ(inv.num_devices(), 2u);
  EXPECT_EQ(inv.stages().size(), 1u);
  EXPECT_GT(inv.footprint_nm2(), 0.0);
}

TEST(Cell, InverterSignalResolution) {
  const Cell inv = make_test_inv();
  // signals: [in, gnd, vdd, out]
  const auto s0 = inv.resolve_signals(0);
  ASSERT_EQ(s0.size(), 4u);
  EXPECT_FALSE(s0[0]);
  EXPECT_FALSE(s0[1]);  // gnd
  EXPECT_TRUE(s0[2]);   // vdd
  EXPECT_TRUE(s0[3]);   // out = !0
  const auto s1 = inv.resolve_signals(1);
  EXPECT_TRUE(s1[0]);
  EXPECT_FALSE(s1[3]);
}

TEST(Cell, InverterLeakagePositiveBothStates) {
  const Cell inv = make_test_inv();
  const double i0 = inv.leakage_na(0, 40.0, kTech);
  const double i1 = inv.leakage_na(1, 40.0, kTech);
  EXPECT_GT(i0, 0.0);
  EXPECT_GT(i1, 0.0);
  // input 0 -> output high -> NMOS (stronger per square) leaks; input 1 ->
  // PMOS leaks. With default sizing the two differ.
  EXPECT_NE(i0, i1);
}

TEST(Cell, LeakageDecreasesWithLength) {
  const Cell inv = make_test_inv();
  double prev = inv.leakage_na(0, 34.0, kTech);
  for (double l = 36.0; l <= 48.0; l += 2.0) {
    const double i = inv.leakage_na(0, l, kTech);
    EXPECT_LT(i, prev);
    prev = i;
  }
}

TEST(Cell, Nand2TruthTableAndStackEffect) {
  CellBuilder b("NAND2_T", 2, Sizing{});
  b.add_inverting_gate(Expr::all_of({Expr::var(0), Expr::var(1)}));
  const Cell nand = std::move(b).build();

  // Output = !(a & b).
  EXPECT_TRUE(nand.resolve_signals(0)[4]);
  EXPECT_TRUE(nand.resolve_signals(1)[4]);
  EXPECT_TRUE(nand.resolve_signals(2)[4]);
  EXPECT_FALSE(nand.resolve_signals(3)[4]);

  // State 00 has a full OFF 2-stack in the PDN -> lowest leakage of the
  // output-high states.
  const double i00 = nand.leakage_na(0, 40.0, kTech);
  const double i01 = nand.leakage_na(1, 40.0, kTech);
  const double i10 = nand.leakage_na(2, 40.0, kTech);
  EXPECT_LT(i00, i01);
  EXPECT_LT(i00, i10);
}

TEST(Cell, Nand2StateSpreadIsLarge) {
  CellBuilder b("NAND2_T", 2, Sizing{});
  b.add_inverting_gate(Expr::all_of({Expr::var(0), Expr::var(1)}));
  const Cell nand = std::move(b).build();
  double lo = 1e300, hi = 0.0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const double i = nand.leakage_na(s, 40.0, kTech);
    lo = std::min(lo, i);
    hi = std::max(hi, i);
  }
  EXPECT_GT(hi / lo, 2.0);  // states matter
}

TEST(Cell, MultiStageSignalPropagation) {
  // AND2 = NAND2 + INV: out = a & b.
  CellBuilder b("AND2_T", 2, Sizing{});
  const int n = b.add_inverting_gate(Expr::all_of({Expr::var(0), Expr::var(1)}));
  b.add_inverter(n);
  const Cell and2 = std::move(b).build();
  // signals: [a, b, gnd, vdd, nand_out, and_out]
  EXPECT_FALSE(and2.resolve_signals(0)[5]);
  EXPECT_FALSE(and2.resolve_signals(1)[5]);
  EXPECT_FALSE(and2.resolve_signals(2)[5]);
  EXPECT_TRUE(and2.resolve_signals(3)[5]);
}

TEST(Cell, RailPathsLeakIndependently) {
  CellBuilder b("PATHS_T", 1, Sizing{});
  b.add_inverter(b.input(0));
  b.add_off_nmos_path();
  const Cell c = std::move(b).build();
  CellBuilder b2("INV_T", 1, Sizing{});
  b2.add_inverter(b2.input(0));
  const Cell inv = std::move(b2).build();
  // The off-NMOS path adds strictly positive leakage on top of the inverter.
  EXPECT_GT(c.leakage_na(0, 40.0, kTech), inv.leakage_na(0, 40.0, kTech));
}

TEST(Cell, TgatePathLeaksForBothGateValues) {
  CellBuilder b("TG_T", 1, Sizing{});
  b.add_inverter(b.input(0));  // need at least one logic stage
  b.add_tgate_path(b.input(0));
  const Cell c = std::move(b).build();
  EXPECT_GT(c.leakage_na(0, 40.0, kTech), 0.0);
  EXPECT_GT(c.leakage_na(1, 40.0, kTech), 0.0);
}

TEST(Cell, SplitGateStageLeaksWhenBothOff) {
  CellBuilder b("TRI_T", 2, Sizing{});
  // PDN gate = in0 (off when 0), PUN gate = in1 (off when 1).
  b.add_inverter(b.input(0));
  b.add_split_gate_stage(b.input(0), b.input(1));
  const Cell c = std::move(b).build();
  // State (0, 1): both output devices off -> 2-stack leak.
  const double i = c.leakage_na(2, 40.0, kTech);  // bit0=0, bit1=1
  EXPECT_GT(i, 0.0);
}

TEST(Cell, StateOutOfRangeThrows) {
  const Cell inv = make_test_inv();
  EXPECT_THROW(inv.leakage_na(2, 40.0, kTech), ContractViolation);
  EXPECT_THROW(inv.resolve_signals(5), ContractViolation);
}

TEST(CellBuilder, ContractChecks) {
  EXPECT_THROW(CellBuilder("X", -1, Sizing{}), ContractViolation);
  EXPECT_THROW(CellBuilder("X", 9, Sizing{}), ContractViolation);
  CellBuilder b("X", 1, Sizing{});
  EXPECT_THROW(b.input(1), ContractViolation);
  EXPECT_THROW(std::move(b).build(), ContractViolation);  // no stages
}

TEST(Cell, GateLeakageOffByDefault) {
  const Cell inv = make_test_inv();
  device::TechnologyParams tech;
  const double base = inv.leakage_na(0, 40.0, tech);
  tech.gate_leak_na_per_um2 = 0.0;
  EXPECT_DOUBLE_EQ(inv.leakage_na(0, 40.0, tech), base);
}

TEST(Cell, GateLeakageAddsAreaTerm) {
  const Cell inv = make_test_inv();
  device::TechnologyParams tech;
  const double base = inv.leakage_na(1, 40.0, tech);
  tech.gate_leak_na_per_um2 = 100.0;
  const double with_gate = inv.leakage_na(1, 40.0, tech);
  // Input high: the NMOS (W=120) channel is inverted -> j * W * L.
  const double expected = 100.0 * (120.0 * 40.0) * 1e-6;
  EXPECT_NEAR(with_gate - base, expected, 1e-9 * with_gate);
}

TEST(Cell, GateLeakageTracksInvertedDevices) {
  // For the inverter, input low inverts the PMOS (W=200) instead.
  const Cell inv = make_test_inv();
  device::TechnologyParams tech;
  tech.gate_leak_na_per_um2 = 100.0;
  device::TechnologyParams off = tech;
  off.gate_leak_na_per_um2 = 0.0;
  const double add_low = inv.leakage_na(0, 40.0, tech) - inv.leakage_na(0, 40.0, off);
  const double add_high = inv.leakage_na(1, 40.0, tech) - inv.leakage_na(1, 40.0, off);
  EXPECT_NEAR(add_low, 100.0 * (200.0 * 40.0) * 1e-6, 1e-9);
  EXPECT_NEAR(add_high, 100.0 * (120.0 * 40.0) * 1e-6, 1e-9);
}

TEST(Cell, PerDeviceVtIndicesAreDense) {
  CellBuilder b("XOR_T", 2, Sizing{});
  const int na = b.add_inverter(b.input(0));
  const int nb = b.add_inverter(b.input(1));
  b.add_inverting_gate(Expr::any_of({Expr::all_of({Expr::var(0), Expr::var(1)}),
                                     Expr::all_of({Expr::var(na), Expr::var(nb)})}));
  const Cell c = std::move(b).build();
  std::vector<const device::NetworkDevice*> devs;
  for (const auto& st : c.stages()) {
    if (st.pdn) st.pdn->collect_devices(devs);
    if (st.pun) st.pun->collect_devices(devs);
    if (st.rail_path) st.rail_path->collect_devices(devs);
  }
  ASSERT_EQ(devs.size(), c.num_devices());
  std::vector<bool> seen(devs.size(), false);
  for (const auto* d : devs) {
    ASSERT_GE(d->dvt_index, 0);
    ASSERT_LT(static_cast<std::size_t>(d->dvt_index), devs.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(d->dvt_index)]) << "duplicate dvt index";
    seen[static_cast<std::size_t>(d->dvt_index)] = true;
  }
}

}  // namespace
}  // namespace rgleak::cells
