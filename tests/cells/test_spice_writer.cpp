#include "cells/spice_writer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cells/library.h"
#include "util/require.h"

namespace rgleak::cells {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = build_virtual90_library();
  return l;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + 1))
    ++n;
  return n;
}

TEST(SpiceWriter, InverterSubckt) {
  std::stringstream buf;
  write_spice_subckt(lib().cell(lib().index_of("INV_X1")), buf);
  const std::string s = buf.str();
  EXPECT_NE(s.find(".subckt INV_X1 A OUT VDD VSS"), std::string::npos) << s;
  EXPECT_EQ(count_occurrences(s, "\nM"), 2u);  // one NMOS, one PMOS
  EXPECT_NE(s.find("nch"), std::string::npos);
  EXPECT_NE(s.find("pch"), std::string::npos);
  EXPECT_NE(s.find(".ends INV_X1"), std::string::npos);
  EXPECT_NE(s.find("R0 OUT"), std::string::npos);
}

TEST(SpiceWriter, DeviceCountMatchesCell) {
  for (const char* name : {"NAND3_X1", "AOI22_X1", "XOR2_X1", "DFF_X1", "SRAM6T"}) {
    const Cell& cell = lib().cell(lib().index_of(name));
    std::stringstream buf;
    write_spice_subckt(cell, buf);
    EXPECT_EQ(count_occurrences(buf.str(), "\nM"), cell.num_devices()) << name;
  }
}

TEST(SpiceWriter, SeriesChainsCreateInternalNodes) {
  // NAND3's 3-deep PDN needs two internal chain nodes.
  std::stringstream buf;
  write_spice_subckt(lib().cell(lib().index_of("NAND3_X1")), buf);
  const std::string s = buf.str();
  EXPECT_NE(s.find("x0"), std::string::npos);
  EXPECT_NE(s.find("x1"), std::string::npos);
}

TEST(SpiceWriter, NmosBulkToVssPmosToVdd) {
  std::stringstream buf;
  write_spice_subckt(lib().cell(lib().index_of("INV_X1")), buf);
  std::string line;
  bool saw_nmos = false, saw_pmos = false;
  while (std::getline(buf, line)) {
    if (line.rfind("M", 0) != 0) continue;
    if (line.find("nch") != std::string::npos) {
      EXPECT_NE(line.find(" VSS nch"), std::string::npos) << line;
      saw_nmos = true;
    }
    if (line.find("pch") != std::string::npos) {
      EXPECT_NE(line.find(" VDD pch"), std::string::npos) << line;
      saw_pmos = true;
    }
  }
  EXPECT_TRUE(saw_nmos);
  EXPECT_TRUE(saw_pmos);
}

TEST(SpiceWriter, FullLibraryDeck) {
  std::stringstream buf;
  write_spice_library(lib(), buf);
  const std::string s = buf.str();
  EXPECT_EQ(count_occurrences(s, ".subckt "), lib().size());
  EXPECT_EQ(count_occurrences(s, ".ends "), lib().size());
  std::size_t devices = 0;
  for (std::size_t i = 0; i < lib().size(); ++i) devices += lib().cell(i).num_devices();
  EXPECT_EQ(count_occurrences(s, "\nM"), devices);
}

}  // namespace
}  // namespace rgleak::cells
