#include "cells/expr.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace rgleak::cells {
namespace {

TEST(Expr, VarEvaluation) {
  const Expr e = Expr::var(1);
  EXPECT_FALSE(e.eval({false, false}));
  EXPECT_TRUE(e.eval({false, true}));
}

TEST(Expr, AndOrEvaluation) {
  const Expr f = Expr::all_of({Expr::var(0), Expr::var(1)});
  EXPECT_TRUE(f.eval({true, true}));
  EXPECT_FALSE(f.eval({true, false}));
  const Expr g = Expr::any_of({Expr::var(0), Expr::var(1)});
  EXPECT_TRUE(g.eval({true, false}));
  EXPECT_FALSE(g.eval({false, false}));
}

TEST(Expr, NestedAoi) {
  // f = a*b + c.
  const Expr f = Expr::any_of({Expr::all_of({Expr::var(0), Expr::var(1)}), Expr::var(2)});
  EXPECT_TRUE(f.eval({true, true, false}));
  EXPECT_TRUE(f.eval({false, false, true}));
  EXPECT_FALSE(f.eval({true, false, false}));
}

TEST(Expr, SingleOperandCollapses) {
  const Expr e = Expr::all_of({Expr::var(3)});
  EXPECT_EQ(e.kind(), Expr::Kind::kVar);
  EXPECT_EQ(e.signal(), 3);
}

TEST(Expr, StackDepths) {
  // NAND3 expression: nmos depth 3, pmos depth 1.
  const Expr nand3 = Expr::all_of({Expr::var(0), Expr::var(1), Expr::var(2)});
  EXPECT_EQ(nand3.nmos_stack_depth(), 3);
  EXPECT_EQ(nand3.pmos_stack_depth(), 1);
  // NOR2: nmos 1, pmos 2.
  const Expr nor2 = Expr::any_of({Expr::var(0), Expr::var(1)});
  EXPECT_EQ(nor2.nmos_stack_depth(), 1);
  EXPECT_EQ(nor2.pmos_stack_depth(), 2);
  // AOI21 (a*b + c): nmos 2, pmos 2.
  const Expr aoi = Expr::any_of({Expr::all_of({Expr::var(0), Expr::var(1)}), Expr::var(2)});
  EXPECT_EQ(aoi.nmos_stack_depth(), 2);
  EXPECT_EQ(aoi.pmos_stack_depth(), 2);
}

TEST(Expr, ContractChecks) {
  EXPECT_THROW(Expr::var(-1), ContractViolation);
  EXPECT_THROW(Expr::all_of({}), ContractViolation);
  EXPECT_THROW(Expr::any_of({}), ContractViolation);
  EXPECT_THROW(Expr::var(3).eval({false}), ContractViolation);
}

TEST(BuildNetworks, PulldownSeriesForAnd) {
  int dvt = 0;
  const Expr nand2 = Expr::all_of({Expr::var(0), Expr::var(1)});
  const auto pdn = build_pulldown(nand2, Sizing{}, dvt);
  EXPECT_EQ(pdn.kind(), device::Network::Kind::kSeries);
  EXPECT_EQ(pdn.device_count(), 2u);
  EXPECT_EQ(dvt, 2);
  const auto pun = build_pullup(nand2, Sizing{}, dvt);
  EXPECT_EQ(pun.kind(), device::Network::Kind::kParallel);
  EXPECT_EQ(dvt, 4);
}

TEST(BuildNetworks, DeviceTypesCorrect) {
  int dvt = 0;
  const Expr e = Expr::var(0);
  const auto pdn = build_pulldown(e, Sizing{}, dvt);
  EXPECT_EQ(pdn.dev().type, device::DeviceType::kNmos);
  const auto pun = build_pullup(e, Sizing{}, dvt);
  EXPECT_EQ(pun.dev().type, device::DeviceType::kPmos);
}

TEST(BuildNetworks, StackSizingWidensSeriesDevices) {
  int dvt = 0;
  Sizing s;
  const Expr nand3 = Expr::all_of({Expr::var(0), Expr::var(1), Expr::var(2)});
  const auto pdn = build_pulldown(nand3, s, dvt);
  std::vector<const device::NetworkDevice*> devs;
  pdn.collect_devices(devs);
  for (const auto* d : devs) EXPECT_DOUBLE_EQ(d->w_nm, s.wn_nm * 3.0);
  // Pull-up of NAND3 is parallel: depth 1 widths.
  const auto pun = build_pullup(nand3, s, dvt);
  devs.clear();
  pun.collect_devices(devs);
  for (const auto* d : devs) EXPECT_DOUBLE_EQ(d->w_nm, s.wp_nm * 1.0);
}

TEST(BuildNetworks, DriveScalesWidths) {
  int dvt = 0;
  Sizing s;
  s.drive = 4.0;
  const auto pdn = build_pulldown(Expr::var(0), s, dvt);
  EXPECT_DOUBLE_EQ(pdn.dev().w_nm, s.wn_nm * 4.0);
}

}  // namespace
}  // namespace rgleak::cells
