// Fuzz-style property test for the stack solver and cell machinery: build
// cells from random series/parallel expressions and assert the invariants
// that every valid CMOS topology must satisfy — all states solve to positive
// finite leakage, leakage decreases monotonically with channel length, the
// logic output matches direct expression evaluation, and output
// probabilities are consistent with state enumeration.

#include <gtest/gtest.h>

#include <cmath>

#include "cells/cell.h"
#include "cells/library.h"
#include "math/rng.h"
#include "util/require.h"

namespace rgleak::cells {
namespace {

const device::TechnologyParams kTech{};

// Random series/parallel expression over `num_vars` inputs, depth-bounded.
Expr random_expr(math::Rng& rng, int num_vars, int depth) {
  if (depth == 0 || rng.uniform() < 0.35) {
    return Expr::var(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_vars))));
  }
  const std::size_t kids = 2 + rng.uniform_index(2);  // 2..3 operands
  std::vector<Expr> sub;
  for (std::size_t i = 0; i < kids; ++i) sub.push_back(random_expr(rng, num_vars, depth - 1));
  return rng.bernoulli(0.5) ? Expr::all_of(std::move(sub)) : Expr::any_of(std::move(sub));
}

class RandomCellTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCellTest, InvariantsHold) {
  math::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int num_vars = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4 inputs
  const Expr f = random_expr(rng, num_vars, 2);

  CellBuilder b("FUZZ", num_vars, Sizing{});
  b.add_inverting_gate(f);
  const Cell cell = std::move(b).build();

  for (std::uint32_t s = 0; s < cell.num_states(); ++s) {
    // 1. All states solve positive and finite.
    const double i40 = cell.leakage_na(s, 40.0, kTech);
    ASSERT_TRUE(std::isfinite(i40)) << "state " << s;
    ASSERT_GT(i40, 0.0) << "state " << s;
    ASSERT_LT(i40, 1e6) << "state " << s;

    // 2. Monotone decreasing in L.
    const double i36 = cell.leakage_na(s, 36.0, kTech);
    const double i44 = cell.leakage_na(s, 44.0, kTech);
    ASSERT_GT(i36, i40) << "state " << s;
    ASSERT_GT(i40, i44) << "state " << s;

    // 3. Logic output equals the direct expression evaluation (inverted).
    std::vector<bool> inputs(static_cast<std::size_t>(num_vars) + 16, false);
    for (int bit = 0; bit < num_vars; ++bit)
      inputs[static_cast<std::size_t>(bit)] = (s >> bit) & 1u;
    ASSERT_EQ(cell.output_value(s), !f.eval(inputs)) << "state " << s;
  }

  // 4. Output probability at p = 0.5 equals (#states with out=1) / 2^k.
  std::size_t ones = 0;
  for (std::uint32_t s = 0; s < cell.num_states(); ++s)
    if (cell.output_value(s)) ++ones;
  const std::vector<double> half(static_cast<std::size_t>(num_vars), 0.5);
  EXPECT_NEAR(cell.output_probability(half),
              static_cast<double>(ones) / cell.num_states(), 1e-12);

  // 5. Vt shifts on all devices suppress leakage monotonically.
  std::vector<double> dvt(cell.num_devices(), 0.03);
  EXPECT_LT(cell.leakage_na(0, 40.0, kTech, dvt), cell.leakage_na(0, 40.0, kTech));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomCellTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace rgleak::cells
