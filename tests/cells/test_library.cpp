#include "cells/library.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace rgleak::cells {
namespace {

const device::TechnologyParams kTech{};

const StdCellLibrary& lib() {
  static const StdCellLibrary l = build_virtual90_library();
  return l;
}

TEST(Library, HasExactly62Cells) { EXPECT_EQ(lib().size(), 62u); }

TEST(Library, IndexOfAndContains) {
  EXPECT_TRUE(lib().contains("INV_X1"));
  EXPECT_TRUE(lib().contains("SRAM6T"));
  EXPECT_FALSE(lib().contains("NOPE_X1"));
  EXPECT_EQ(lib().cell(lib().index_of("NAND2_X1")).name(), "NAND2_X1");
  EXPECT_THROW(lib().index_of("NOPE_X1"), ContractViolation);
  EXPECT_THROW(lib().cell(62), ContractViolation);
}

TEST(Library, MiniLibraryIsSubsetStyle) {
  const StdCellLibrary mini = build_mini_library();
  EXPECT_GE(mini.size(), 3u);
  EXPECT_TRUE(mini.contains("INV_X1"));
  EXPECT_TRUE(mini.contains("NAND2_X1"));
}

TEST(Library, RejectsDuplicateNames) {
  std::vector<Cell> cells;
  {
    CellBuilder b1("A", 1, Sizing{});
    b1.add_inverter(b1.input(0));
    cells.push_back(std::move(b1).build());
  }
  {
    CellBuilder b2("A", 1, Sizing{});
    b2.add_inverter(b2.input(0));
    cells.push_back(std::move(b2).build());
  }
  EXPECT_THROW(StdCellLibrary(kTech, std::move(cells)), ContractViolation);
}

TEST(Library, DriveStrengthScalesLeakage) {
  const Cell& x1 = lib().cell(lib().index_of("INV_X1"));
  const Cell& x4 = lib().cell(lib().index_of("INV_X4"));
  const double i1 = x1.leakage_na(0, 40.0, kTech);
  const double i4 = x4.leakage_na(0, 40.0, kTech);
  EXPECT_NEAR(i4 / i1, 4.0, 0.1);
}

TEST(Library, StackedGatesLeakLessThanInverter) {
  // NAND4 in its best state (all inputs 0, 4-stack) leaks far less per
  // rail path than an inverter.
  const Cell& inv = lib().cell(lib().index_of("INV_X1"));
  const Cell& nand4 = lib().cell(lib().index_of("NAND4_X1"));
  const double i_inv = inv.leakage_na(0, 40.0, kTech);
  const double i_nand4 = nand4.leakage_na(0, 40.0, kTech);
  // The 4-stack (even with 4x widths) still suppresses leakage.
  EXPECT_LT(i_nand4, 4.0 * i_inv);
}

TEST(Library, XorUsesInternalInverters) {
  const Cell& x = lib().cell(lib().index_of("XOR2_X1"));
  EXPECT_EQ(x.num_inputs(), 2);
  // 2 inverters (4T) + complex gate (8T).
  EXPECT_EQ(x.num_devices(), 12u);
}

TEST(Library, SramHasAccessPath) {
  const Cell& s = lib().cell(lib().index_of("SRAM6T"));
  EXPECT_EQ(s.num_inputs(), 1);
  EXPECT_EQ(s.num_devices(), 5u);  // 2 inverters + 1 access device modeled
  EXPECT_GT(s.leakage_na(0, 40.0, kTech), 0.0);
  EXPECT_GT(s.leakage_na(1, 40.0, kTech), 0.0);
}

TEST(Library, DffLeakageDependsOnClockAndData) {
  const Cell& dff = lib().cell(lib().index_of("DFF_X1"));
  EXPECT_EQ(dff.num_inputs(), 2);
  std::vector<double> leaks;
  for (std::uint32_t s = 0; s < 4; ++s) leaks.push_back(dff.leakage_na(s, 40.0, kTech));
  // All positive and not all identical.
  double lo = 1e300, hi = 0.0;
  for (double v : leaks) {
    EXPECT_GT(v, 0.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1.001);
}

// Parameterized sweep: every cell, every input state must produce positive,
// finite leakage that decreases with channel length.
class AllCellsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllCellsTest, AllStatesSolvePositive) {
  const Cell& c = lib().cell(GetParam());
  for (std::uint32_t s = 0; s < c.num_states(); ++s) {
    const double i = c.leakage_na(s, 40.0, kTech);
    ASSERT_TRUE(std::isfinite(i)) << c.name() << " state " << s;
    ASSERT_GT(i, 0.0) << c.name() << " state " << s;
    ASSERT_LT(i, 1e6) << c.name() << " state " << s;  // < 1 mA per cell
  }
}

TEST_P(AllCellsTest, LeakageMonotoneInLength) {
  const Cell& c = lib().cell(GetParam());
  // Check the all-zero state across the +-3 sigma length window.
  double prev = c.leakage_na(0, 32.0, kTech);
  for (double l = 34.0; l <= 48.0; l += 2.0) {
    const double i = c.leakage_na(0, l, kTech);
    ASSERT_LT(i, prev) << c.name() << " at L=" << l;
    prev = i;
  }
}

TEST_P(AllCellsTest, LogLeakageIsNearlyQuadraticInLength) {
  // The substitution contract: ln I(L) must be well-approximated by a
  // quadratic over +-3 sigma (that is what makes the paper's (a,b,c) fit
  // work). Check the worst state-0 fit residual.
  const Cell& c = lib().cell(GetParam());
  std::vector<double> ls, logs;
  for (double l = 32.5; l <= 47.5; l += 1.5) {
    ls.push_back(l - 40.0);
    logs.push_back(std::log(c.leakage_na(0, l, kTech)));
  }
  // Fit quadratic by normal equations on centered data.
  // (Use the simple 3-term design; smallness of residual is what matters.)
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0, t0 = 0, t1 = 0, t2 = 0;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const double x = ls[i], y = logs[i];
    s0 += 1;
    s1 += x;
    s2 += x * x;
    s3 += x * x * x;
    s4 += x * x * x * x;
    t0 += y;
    t1 += x * y;
    t2 += x * x * y;
  }
  // Solve 3x3 normal equations (Cramer).
  const double det = s0 * (s2 * s4 - s3 * s3) - s1 * (s1 * s4 - s3 * s2) +
                     s2 * (s1 * s3 - s2 * s2);
  ASSERT_NE(det, 0.0);
  const double c0 = (t0 * (s2 * s4 - s3 * s3) - s1 * (t1 * s4 - s3 * t2) +
                     s2 * (t1 * s3 - s2 * t2)) /
                    det;
  const double c1 = (s0 * (t1 * s4 - t2 * s3) - t0 * (s1 * s4 - s3 * s2) +
                     s2 * (s1 * t2 - t1 * s2)) /
                    det;
  const double c2 = (s0 * (s2 * t2 - s3 * t1) - s1 * (s1 * t2 - t1 * s2) +
                     t0 * (s1 * s3 - s2 * s2)) /
                    det;
  double max_resid = 0.0;
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const double fit = c0 + c1 * ls[i] + c2 * ls[i] * ls[i];
    max_resid = std::max(max_resid, std::abs(fit - logs[i]));
  }
  // ln-domain residual below 0.05 -> < ~5% pointwise leakage error.
  EXPECT_LT(max_resid, 0.05) << c.name();
}

INSTANTIATE_TEST_SUITE_P(Virtual90, AllCellsTest,
                         ::testing::Range<std::size_t>(0, 62),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return lib().cell(info.param).name();
                         });

}  // namespace
}  // namespace rgleak::cells
