// Parameterized physical-property sweeps of the stack solver: for every
// stack depth and temperature corner, the solved currents must respect the
// orderings device physics dictates.

#include <gtest/gtest.h>

#include <cmath>

#include "device/network.h"
#include "util/require.h"

namespace rgleak::device {
namespace {

NetworkDevice nmos(int gate, double w = 120.0) {
  NetworkDevice d;
  d.type = DeviceType::kNmos;
  d.gate_signal = gate;
  d.w_nm = w;
  return d;
}

Network off_stack(int depth) {
  std::vector<Network> chain;
  for (int i = 0; i < depth; ++i) chain.push_back(Network::device(nmos(0)));
  return Network::series(std::move(chain));
}

struct StackCase {
  int depth;
  double temperature_k;
};

class StackPropertyTest : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackPropertyTest, StackCurrentOrderingAndScaling) {
  const auto [depth, t_k] = GetParam();
  const TechnologyParams tech = at_temperature(TechnologyParams{}, t_k);
  std::vector<double> volts = {0.0, tech.vdd_v};
  NetworkEvalContext ctx;
  ctx.tech = &tech;
  ctx.gate_voltage_v = volts;
  ctx.l_nm = 40.0;

  const double i_this = network_current(off_stack(depth), ctx, 0.0, tech.vdd_v);
  ASSERT_GT(i_this, 0.0);
  ASSERT_TRUE(std::isfinite(i_this));

  if (depth > 1) {
    // Deeper stacks leak strictly less.
    const double i_shallower = network_current(off_stack(depth - 1), ctx, 0.0, tech.vdd_v);
    EXPECT_LT(i_this, i_shallower);
    // But not absurdly less: each extra device costs at most ~20x.
    EXPECT_GT(i_this, i_shallower / 20.0);
  }

  // Doubling all widths doubles the stack current (exactly, by scaling).
  std::vector<Network> wide_chain;
  for (int i = 0; i < depth; ++i) wide_chain.push_back(Network::device(nmos(0, 240.0)));
  const double i_wide =
      network_current(Network::series(std::move(wide_chain)), ctx, 0.0, tech.vdd_v);
  EXPECT_NEAR(i_wide, 2.0 * i_this, 2e-5 * i_wide);

  // Halving the supply reduces the current.
  const double i_half = network_current(off_stack(depth), ctx, 0.0, 0.5 * tech.vdd_v);
  EXPECT_LT(i_half, i_this);
}

TEST_P(StackPropertyTest, CurrentContinuityAcrossChainSplit) {
  // The chain current equals the current of any prefix evaluated against the
  // solved internal node: verify via the equivalent 2-element grouping.
  const auto [depth, t_k] = GetParam();
  if (depth < 2) GTEST_SKIP();
  const TechnologyParams tech = at_temperature(TechnologyParams{}, t_k);
  std::vector<double> volts = {0.0, tech.vdd_v};
  NetworkEvalContext ctx;
  ctx.tech = &tech;
  ctx.gate_voltage_v = volts;
  ctx.l_nm = 40.0;

  // Group the same devices as series(series(k-1), device): must solve to the
  // same current as the flat chain (flattening makes them identical trees,
  // so this checks the flattening invariant).
  std::vector<Network> grouped;
  grouped.push_back(off_stack(depth - 1));
  grouped.push_back(Network::device(nmos(0)));
  const double i_grouped =
      network_current(Network::series(std::move(grouped)), ctx, 0.0, tech.vdd_v);
  const double i_flat = network_current(off_stack(depth), ctx, 0.0, tech.vdd_v);
  EXPECT_NEAR(i_grouped, i_flat, 1e-9 * i_flat);
}

INSTANTIATE_TEST_SUITE_P(
    DepthTemperature, StackPropertyTest,
    ::testing::Values(StackCase{1, 300.0}, StackCase{2, 300.0}, StackCase{3, 300.0},
                      StackCase{4, 300.0}, StackCase{2, 258.0}, StackCase{3, 258.0},
                      StackCase{2, 358.0}, StackCase{3, 358.0}, StackCase{4, 398.0}),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      return "depth" + std::to_string(info.param.depth) + "_T" +
             std::to_string(static_cast<int>(info.param.temperature_k));
    });

}  // namespace
}  // namespace rgleak::device
