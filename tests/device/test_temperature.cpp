#include <gtest/gtest.h>

#include <cmath>

#include "cells/library.h"
#include "device/subthreshold.h"
#include "util/require.h"

namespace rgleak::device {
namespace {

const TechnologyParams kRef{};

TEST(Temperature, ReferenceIsIdentity) {
  const TechnologyParams t = at_temperature(kRef, kRef.temperature_k);
  EXPECT_DOUBLE_EQ(t.thermal_vt_v, kRef.thermal_vt_v);
  EXPECT_DOUBLE_EQ(t.vt0_n_v, kRef.vt0_n_v);
  EXPECT_DOUBLE_EQ(t.i0_na, kRef.i0_na);
}

TEST(Temperature, ThermalVoltageScalesLinearly) {
  const TechnologyParams hot = at_temperature(kRef, 400.0);
  EXPECT_NEAR(hot.thermal_vt_v, kRef.thermal_vt_v * 400.0 / 300.0, 1e-12);
}

TEST(Temperature, VtDropsWithTemperature) {
  const TechnologyParams hot = at_temperature(kRef, 400.0);
  EXPECT_NEAR(hot.vt0_n_v, kRef.vt0_n_v - 100.0 * kRef.vt_tempco_v_per_k, 1e-12);
  const TechnologyParams cold = at_temperature(kRef, 250.0);
  EXPECT_GT(cold.vt0_n_v, kRef.vt0_n_v);
}

TEST(Temperature, LeakageRisesStronglyWithTemperature) {
  // Classic behaviour: subthreshold leakage grows super-linearly with T;
  // 25C -> 110C should raise it by at least several x.
  const double i25 =
      subthreshold_current(at_temperature(kRef, 298.0), DeviceType::kNmos, 120, 40, 0.0, 1.0,
                           0.0);
  const double i85 =
      subthreshold_current(at_temperature(kRef, 358.0), DeviceType::kNmos, 120, 40, 0.0, 1.0,
                           0.0);
  const double i110 =
      subthreshold_current(at_temperature(kRef, 383.0), DeviceType::kNmos, 120, 40, 0.0, 1.0,
                           0.0);
  EXPECT_GT(i85 / i25, 2.0);
  EXPECT_GT(i110 / i85, 1.2);
  EXPECT_LT(i110 / i25, 1000.0);  // sane magnitude
}

TEST(Temperature, CellLeakageMonotoneInTemperature) {
  const cells::StdCellLibrary lib = cells::build_mini_library();
  const auto& nand = lib.cell(lib.index_of("NAND2_X1"));
  double prev = 0.0;
  for (double t_k = 260.0; t_k <= 400.0; t_k += 20.0) {
    const double i = nand.leakage_na(0, 40.0, at_temperature(kRef, t_k));
    EXPECT_GT(i, prev) << "T=" << t_k;
    prev = i;
  }
}

TEST(Temperature, RejectsNonPositiveKelvin) {
  EXPECT_THROW(at_temperature(kRef, 0.0), ContractViolation);
  EXPECT_THROW(at_temperature(kRef, -10.0), ContractViolation);
}

}  // namespace
}  // namespace rgleak::device
