#include "device/network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/require.h"

namespace rgleak::device {
namespace {

const TechnologyParams kTech{};

NetworkDevice nmos(int gate, double w = 120.0) {
  NetworkDevice d;
  d.type = DeviceType::kNmos;
  d.gate_signal = gate;
  d.w_nm = w;
  return d;
}

NetworkDevice pmos(int gate, double w = 200.0) {
  NetworkDevice d;
  d.type = DeviceType::kPmos;
  d.gate_signal = gate;
  d.w_nm = w;
  return d;
}

struct Ctx {
  std::vector<double> volts;
  NetworkEvalContext ctx;
  explicit Ctx(std::vector<double> v) : volts(std::move(v)) {
    ctx.tech = &kTech;
    ctx.gate_voltage_v = volts;
    ctx.l_nm = 40.0;
  }
};

TEST(Network, SingleOffDeviceMatchesFormula) {
  const Network n = Network::device(nmos(0));
  Ctx c({0.0});
  const double i = network_current(n, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i, subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0),
              1e-9 * i);
}

TEST(Network, SingleOffPmosMatchesFormula) {
  const Network n = Network::device(pmos(0));
  Ctx c({1.0});  // PMOS gate at VDD -> off
  const double i = network_current(n, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i, subthreshold_current(kTech, DeviceType::kPmos, 200, 40, 0.0, 1.0, 0.0),
              1e-9 * i);
}

TEST(Network, ParallelSumsCurrents) {
  const Network a = Network::device(nmos(0));
  const Network b = Network::device(nmos(0, 240.0));
  const Network par = Network::parallel({a, b});
  Ctx c({0.0});
  const double ia = network_current(Network::device(nmos(0)), c.ctx, 0.0, 1.0);
  const double ip = network_current(par, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(ip, 3.0 * ia, 1e-9 * ip);
}

TEST(Network, StackEffectSuppressesLeakage) {
  // Two series OFF devices leak much less than one (stack factor ~5-10x).
  Ctx c({0.0});
  const double single = network_current(Network::device(nmos(0)), c.ctx, 0.0, 1.0);
  const Network stack2 = Network::series({Network::device(nmos(0)), Network::device(nmos(0))});
  const double dual = network_current(stack2, c.ctx, 0.0, 1.0);
  EXPECT_LT(dual, single / 2.5);
  EXPECT_GT(dual, single / 50.0);
}

TEST(Network, DeeperStacksLeakLess) {
  Ctx c({0.0});
  double prev = network_current(Network::device(nmos(0)), c.ctx, 0.0, 1.0);
  for (int depth = 2; depth <= 4; ++depth) {
    std::vector<Network> chain;
    for (int i = 0; i < depth; ++i) chain.push_back(Network::device(nmos(0)));
    const double i = network_current(Network::series(std::move(chain)), c.ctx, 0.0, 1.0);
    EXPECT_LT(i, prev) << "depth=" << depth;
    prev = i;
  }
}

TEST(Network, OnDeviceInSeriesIsTransparent) {
  // series(ON, OFF) ~ the OFF device alone with nearly full bias (slightly
  // larger than a 2-stack, close to single-device leakage).
  Ctx c({0.0, 1.0});
  const Network on_off = Network::series({Network::device(nmos(1)), Network::device(nmos(0))});
  const double i = network_current(on_off, c.ctx, 0.0, 1.0);
  const double single = network_current(Network::device(nmos(0)), c.ctx, 0.0, 1.0);
  EXPECT_GT(i, 0.5 * single);
  EXPECT_LT(i, 1.5 * single);
}

TEST(Network, MiddleOnDeviceThreeStack) {
  // OFF / ON / OFF: the pathological case for naive nodal iteration. The
  // result must be close to a 2-stack of the OFF devices.
  Ctx c({0.0, 1.0});
  const Network chain = Network::series({Network::device(nmos(0)), Network::device(nmos(1)),
                                         Network::device(nmos(0))});
  const Network two_stack =
      Network::series({Network::device(nmos(0)), Network::device(nmos(0))});
  const double i3 = network_current(chain, c.ctx, 0.0, 1.0);
  const double i2 = network_current(two_stack, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i3, i2, 0.2 * i2);
}

TEST(Network, SeriesOrderInvariantForIdenticalTerminals) {
  // OFF-NMOS over OFF-PMOS vs the reverse order: physically different
  // circuits, but both must solve and carry positive current.
  Ctx c({0.0, 1.0});  // nmos gate 0 (off), pmos gate 1 (off)
  const Network a = Network::series({Network::device(nmos(0)), Network::device(pmos(1))});
  const Network b = Network::series({Network::device(pmos(1)), Network::device(nmos(0))});
  const double ia = network_current(a, c.ctx, 0.0, 1.0);
  const double ib = network_current(b, c.ctx, 0.0, 1.0);
  EXPECT_GT(ia, 0.0);
  EXPECT_GT(ib, 0.0);
}

TEST(Network, SeriesOfParallelGroups) {
  // series(parallel(off, off), off): the parallel group doubles the width.
  Ctx c({0.0});
  const Network net = Network::series(
      {Network::parallel({Network::device(nmos(0)), Network::device(nmos(0))}),
       Network::device(nmos(0))});
  const Network wide_then_narrow =
      Network::series({Network::device(nmos(0, 240.0)), Network::device(nmos(0))});
  const double i1 = network_current(net, c.ctx, 0.0, 1.0);
  const double i2 = network_current(wide_then_narrow, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i1, i2, 1e-6 * i2);
}

TEST(Network, ParallelOfSeriesChains) {
  // XOR-style PDN: parallel(series(off,off), series(off,off)) = 2x one chain.
  Ctx c({0.0});
  const Network chain = Network::series({Network::device(nmos(0)), Network::device(nmos(0))});
  const Network par = Network::parallel({chain, chain});
  const double i1 = network_current(chain, c.ctx, 0.0, 1.0);
  const double i2 = network_current(par, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i2, 2.0 * i1, 1e-6 * i2);
}

TEST(Network, FlattensNestedSeries) {
  const Network nested = Network::series(
      {Network::device(nmos(0)),
       Network::series({Network::device(nmos(0)), Network::device(nmos(0))})});
  EXPECT_EQ(nested.children().size(), 3u);
  const Network nested_par = Network::parallel(
      {Network::device(nmos(0)),
       Network::parallel({Network::device(nmos(0)), Network::device(nmos(0))})});
  EXPECT_EQ(nested_par.children().size(), 3u);
}

TEST(Network, SingleChildCollapses) {
  const Network s = Network::series({Network::device(nmos(0))});
  EXPECT_EQ(s.kind(), Network::Kind::kDevice);
}

TEST(Network, DeviceCountAndCollect) {
  const Network net = Network::series(
      {Network::parallel({Network::device(nmos(0)), Network::device(nmos(1))}),
       Network::device(pmos(2))});
  EXPECT_EQ(net.device_count(), 3u);
  std::vector<const NetworkDevice*> devs;
  net.collect_devices(devs);
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_EQ(devs[2]->type, DeviceType::kPmos);
}

TEST(Network, PerDeviceVtShiftApplied) {
  NetworkDevice d = nmos(0);
  d.dvt_index = 0;
  const Network n = Network::device(d);
  Ctx c({0.0});
  std::vector<double> dvt = {0.05};
  c.ctx.dvt_v = dvt;
  const double i_shift = network_current(n, c.ctx, 0.0, 1.0);
  c.ctx.dvt_v = {};
  const double i_base = network_current(n, c.ctx, 0.0, 1.0);
  EXPECT_NEAR(i_shift / i_base,
              std::exp(-0.05 / (kTech.subthreshold_n * kTech.thermal_vt_v)), 1e-9);
}

TEST(Network, ZeroBiasZeroCurrent) {
  Ctx c({0.0});
  EXPECT_DOUBLE_EQ(network_current(Network::device(nmos(0)), c.ctx, 0.5, 0.5), 0.0);
}

TEST(Network, ContractChecks) {
  Ctx c({0.0});
  EXPECT_THROW(network_current(Network::device(nmos(0)), c.ctx, 1.0, 0.0), ContractViolation);
  EXPECT_THROW(Network::series({}), ContractViolation);
  EXPECT_THROW(Network::parallel({}), ContractViolation);
  // Gate signal out of range.
  EXPECT_THROW(network_current(Network::device(nmos(5)), c.ctx, 0.0, 1.0), ContractViolation);
  const Network n = Network::device(nmos(0));
  EXPECT_THROW(Network::series({n, n}).dev(), ContractViolation);
}

TEST(Network, CurrentContinuityInChain) {
  // The solved chain current must be bounded by the most- and least-leaky
  // single elements under full bias.
  Ctx c({0.0});
  const Network chain = Network::series({Network::device(nmos(0, 240.0)),
                                         Network::device(nmos(0, 120.0)),
                                         Network::device(nmos(0, 360.0))});
  const double i = network_current(chain, c.ctx, 0.0, 1.0);
  const double weakest = network_current(Network::device(nmos(0, 120.0)), c.ctx, 0.0, 1.0);
  EXPECT_GT(i, 0.0);
  EXPECT_LT(i, weakest);
}

}  // namespace
}  // namespace rgleak::device
