#include "device/subthreshold.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace rgleak::device {
namespace {

const TechnologyParams kTech{};

TEST(EffectiveVt, RollOffIncreasesLeakageAtShortChannel) {
  // Vt drops as L shrinks (short-channel effect).
  const double vt_short = effective_vt(kTech, DeviceType::kNmos, 30.0, 0.0, 0.0);
  const double vt_long = effective_vt(kTech, DeviceType::kNmos, 60.0, 0.0, 0.0);
  EXPECT_LT(vt_short, vt_long);
}

TEST(EffectiveVt, DiblLowersVtWithDrainBias) {
  const double vt0 = effective_vt(kTech, DeviceType::kNmos, 40.0, 0.0, 0.0);
  const double vt1 = effective_vt(kTech, DeviceType::kNmos, 40.0, 1.0, 0.0);
  EXPECT_NEAR(vt0 - vt1, kTech.dibl_eta, 1e-12);
}

TEST(EffectiveVt, RandomShiftAdds) {
  const double base = effective_vt(kTech, DeviceType::kNmos, 40.0, 0.5, 0.0);
  EXPECT_NEAR(effective_vt(kTech, DeviceType::kNmos, 40.0, 0.5, 0.03), base + 0.03, 1e-12);
}

TEST(EffectiveVt, RejectsNonPositiveLength) {
  EXPECT_THROW(effective_vt(kTech, DeviceType::kNmos, 0.0, 0.0, 0.0), ContractViolation);
}

TEST(SubthresholdCurrent, ZeroAtZeroVds) {
  EXPECT_DOUBLE_EQ(subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 0.0, 0.0), 0.0);
}

TEST(SubthresholdCurrent, RejectsNegativeVdsAndWidth) {
  EXPECT_THROW(subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, -0.1, 0.0),
               ContractViolation);
  EXPECT_THROW(subthreshold_current(kTech, DeviceType::kNmos, 0.0, 40, 0.0, 1.0, 0.0),
               ContractViolation);
}

TEST(SubthresholdCurrent, ExponentialInGateVoltage) {
  // One decade per ~ n vT ln(10) of Vgs.
  const double i1 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0);
  const double dv = kTech.subthreshold_n * kTech.thermal_vt_v * std::log(10.0);
  const double i2 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, dv, 1.0, 0.0);
  EXPECT_NEAR(i2 / i1, 10.0, 1e-6);
}

TEST(SubthresholdCurrent, DecreasesWithLength) {
  double prev = subthreshold_current(kTech, DeviceType::kNmos, 120, 30, 0.0, 1.0, 0.0);
  for (double l = 32.0; l <= 55.0; l += 2.0) {
    const double i = subthreshold_current(kTech, DeviceType::kNmos, 120, l, 0.0, 1.0, 0.0);
    EXPECT_LT(i, prev) << "l=" << l;
    prev = i;
  }
}

TEST(SubthresholdCurrent, LeakageDropsAboutTenXOverThreeSigmaLength) {
  // The substitution target: leakage-vs-L steep enough that +-3 sigma of
  // L (2.5 nm sigma) spans roughly an order of magnitude.
  const double lo = subthreshold_current(kTech, DeviceType::kNmos, 120, 40.0 - 7.5, 0.0, 1.0, 0.0);
  const double hi = subthreshold_current(kTech, DeviceType::kNmos, 120, 40.0 + 7.5, 0.0, 1.0, 0.0);
  EXPECT_GT(lo / hi, 4.0);
  EXPECT_LT(lo / hi, 100.0);
}

TEST(SubthresholdCurrent, ProportionalToWidth) {
  const double i1 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0);
  const double i2 = subthreshold_current(kTech, DeviceType::kNmos, 240, 40, 0.0, 1.0, 0.0);
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
}

TEST(SubthresholdCurrent, PmosWeakerByMobilityRatio) {
  const double in = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0);
  const double ip = subthreshold_current(kTech, DeviceType::kPmos, 120, 40, 0.0, 1.0, 0.0);
  EXPECT_NEAR(ip / in, kTech.pmos_mobility_ratio, 1e-9);
}

TEST(SubthresholdCurrent, RandomVtShiftSuppressesCurrent) {
  const double i0 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0);
  const double ip = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.05);
  const double expect_ratio =
      std::exp(-0.05 / (kTech.subthreshold_n * kTech.thermal_vt_v));
  EXPECT_NEAR(ip / i0, expect_ratio, 1e-9);
}

TEST(SubthresholdCurrent, VdsSaturatesAfterFewThermalVoltages) {
  const double i1 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 0.2, 0.0);
  const double i2 = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 0.3, 0.0);
  // DIBL still increases current slightly, but the (1 - e^{-Vds/vT}) factor
  // is saturated: growth should be modest (< 2x), not exponential.
  EXPECT_LT(i2 / i1, 2.0);
  EXPECT_GT(i2 / i1, 1.0);
}

TEST(SubthresholdCurrent, OnCurrentVastlyExceedsOffCurrent) {
  const double off = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, 1.0, 0.0);
  const double on = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, kTech.vdd_v, 1.0, 0.0);
  EXPECT_GT(on / off, 1e5);
}

TEST(SubthresholdCurrent, MonotoneInVds) {
  double prev = 0.0;
  for (double vds = 0.01; vds <= 1.0; vds += 0.01) {
    const double i = subthreshold_current(kTech, DeviceType::kNmos, 120, 40, 0.0, vds, 0.0);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

}  // namespace
}  // namespace rgleak::device
