// Black-box tests against the real `rgleak` binary (path injected by CMake
// as RGLEAK_CLI_PATH). Regression coverage for the NaN-flag bug: strtod
// happily parses "nan"/"inf", and NaN slides past every `x <= 0.0` range
// guard (all comparisons with NaN are false), so `--time-budget nan` used to
// arm a poisoned deadline instead of failing. Every numeric flag must now
// reject non-finite values with a usage error (exit 2).

#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// Runs the CLI with `args`, returns its exit code (-1 if it died abnormally).
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(RGLEAK_CLI_PATH) + " " + args + " >/dev/null 2>/dev/null";
  const int status = std::system(cmd.c_str());
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

// An empty manifest is a valid batch of zero jobs: the cheapest way to reach
// (or prove we never reached) the flag-validation layer.
class CliFlags : public ::testing::Test {
 protected:
  void SetUp() override {
    manifest_ = temp_path("rgleak_cli_empty_manifest.jsonl");
    std::ofstream(manifest_).close();
  }
  void TearDown() override { std::remove(manifest_.c_str()); }

  std::string batch(const std::string& extra) {
    return "batch --manifest " + manifest_ + " " + extra;
  }

  std::string manifest_;
};

TEST_F(CliFlags, EmptyBatchSucceeds) {
  EXPECT_EQ(run_cli(batch("")), 0);
}

TEST_F(CliFlags, NonFiniteNumericFlagsAreUsageErrors) {
  for (const char* bad : {"nan", "inf", "-inf", "NAN", "Infinity"}) {
    EXPECT_EQ(run_cli(batch("--backoff " + std::string(bad))), 2) << bad;
  }
  EXPECT_EQ(run_cli(batch("--job-deadline nan")), 2);
  EXPECT_EQ(run_cli(batch("--stall-timeout inf")), 2);
}

TEST_F(CliFlags, TimeBudgetNanIsAUsageErrorBeforeFileLoads) {
  // --lib/--netlist point nowhere: the non-finite budget must fail as a
  // usage error (2), not as a downstream io error (5) — flag validation
  // comes first.
  EXPECT_EQ(run_cli("mc --lib /nonexistent --netlist /nonexistent --time-budget nan"), 2);
  EXPECT_EQ(run_cli("mc --lib /nonexistent --netlist /nonexistent --time-budget inf"), 2);
  EXPECT_EQ(run_cli("mc --lib /nonexistent --netlist /nonexistent --time-budget -inf"), 2);
  EXPECT_EQ(run_cli("netlist --lib /nonexistent --netlist /nonexistent --time-budget nan"), 2);
  // Control: a finite budget gets past flag validation and fails on the
  // missing file instead (io, exit 5).
  EXPECT_EQ(run_cli("mc --lib /nonexistent --netlist /nonexistent --time-budget 5"), 5);
}

TEST_F(CliFlags, FiniteGarbageIsStillRejected) {
  EXPECT_EQ(run_cli(batch("--backoff abc")), 2);
  EXPECT_EQ(run_cli(batch("--backoff 1.5x")), 2);
}

TEST_F(CliFlags, MetricsJsonIsWrittenAtExit) {
  const std::string out = temp_path("rgleak_cli_metrics.json");
  std::remove(out.c_str());
  ASSERT_EQ(run_cli(batch("--metrics-json " + out)), 0);
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::string json;
  std::getline(in, json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"batch.jobs.started\":0"), std::string::npos);
  std::remove(out.c_str());
}

}  // namespace
