#pragma once
// Shared helpers for the rgleak test suite: relative-error assertions and
// cached expensive fixtures (characterized libraries).

#include <gtest/gtest.h>

#include <cmath>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "process/variation.h"

namespace rgleak::testing {

/// EXPECT that a is within rel_tol relative error of b (absolute for b == 0).
inline void expect_rel_near(double a, double b, double rel_tol, const char* what = "") {
  const double scale = std::abs(b) > 0.0 ? std::abs(b) : 1.0;
  EXPECT_NEAR(a, b, rel_tol * scale) << what << " (a=" << a << ", b=" << b << ")";
}

/// Process with a short correlation length so that grids of test-sized dies
/// see real correlation decay.
inline process::ProcessVariation test_process(double corr_length_nm = 2.0e4) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = 1.25;
  len.sigma_wid_nm = 1.25;
  process::VtVariation vt;
  vt.sigma_v = 0.02;
  return process::ProcessVariation(
      len, vt, std::make_shared<process::ExponentialCorrelation>(corr_length_nm));
}

/// Mini library characterized analytically, built once per process.
inline const cells::StdCellLibrary& mini_library() {
  static const cells::StdCellLibrary lib = cells::build_mini_library();
  return lib;
}

inline const charlib::CharacterizedLibrary& mini_chars_analytic() {
  static const charlib::CharacterizedLibrary chars =
      charlib::characterize_analytic(mini_library(), test_process());
  return chars;
}

inline const charlib::CharacterizedLibrary& mini_chars_mc() {
  static const charlib::CharacterizedLibrary chars = [] {
    charlib::McCharOptions opts;
    opts.samples = 40000;
    return charlib::characterize_monte_carlo(mini_library(), test_process(), opts);
  }();
  return chars;
}

/// Full 62-cell library characterized analytically (heavier; shared).
inline const cells::StdCellLibrary& full_library() {
  static const cells::StdCellLibrary lib = cells::build_virtual90_library();
  return lib;
}

inline const charlib::CharacterizedLibrary& full_chars_analytic() {
  static const charlib::CharacterizedLibrary chars =
      charlib::characterize_analytic(full_library(), test_process());
  return chars;
}

}  // namespace rgleak::testing
