#include "core/multi_block.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram usage_of(const char* a, double wa, const char* b = nullptr,
                                 double wb = 0.0) {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of(a)] = wa;
  if (b) u.alphas[mini_library().index_of(b)] = wb;
  return u;
}

placement::Floorplan grid(std::size_t rows, std::size_t cols, double pitch = 1500.0) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = fp.site_h_nm = pitch;
  return fp;
}

BlockSpec make_block(const std::string& name, netlist::UsageHistogram usage, std::size_t c0,
                     std::size_t r0, std::size_t cols, std::size_t rows) {
  BlockSpec b;
  b.name = name;
  b.usage = std::move(usage);
  b.col0 = c0;
  b.row0 = r0;
  b.cols = cols;
  b.rows = rows;
  return b;
}

TEST(MultiBlock, SingleFullBlockMatchesLinearEstimator) {
  const auto usage = usage_of("INV_X1", 0.6, "NAND2_X1", 0.4);
  const placement::Floorplan fp = grid(10, 10);
  const MultiBlockEstimator mb(mini_chars_analytic(), fp,
                               {make_block("all", usage, 0, 0, 10, 10)});
  const RandomGate rg(mini_chars_analytic(), usage, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate direct = estimate_linear(rg, fp);
  const LeakageEstimate block = mb.block_estimate(0);
  const LeakageEstimate chip = mb.chip_estimate();
  EXPECT_NEAR(block.sigma_na, direct.sigma_na, 1e-6 * direct.sigma_na);
  EXPECT_NEAR(chip.sigma_na, direct.sigma_na, 1e-6 * direct.sigma_na);
  EXPECT_NEAR(chip.mean_na, direct.mean_na, 1e-9 * direct.mean_na);
}

TEST(MultiBlock, HomogeneousSplitMatchesWholeGrid) {
  // Two blocks with identical usage tiling the grid must reproduce the
  // single-RG result exactly (cross model == within model for equal
  // mixtures).
  const auto usage = usage_of("INV_X1", 0.5, "NOR2_X1", 0.5);
  const placement::Floorplan fp = grid(8, 12);
  const MultiBlockEstimator mb(mini_chars_analytic(), fp,
                               {make_block("left", usage, 0, 0, 6, 8),
                                make_block("right", usage, 6, 0, 6, 8)});
  const RandomGate rg(mini_chars_analytic(), usage, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate direct = estimate_linear(rg, fp);
  const LeakageEstimate chip = mb.chip_estimate();
  EXPECT_NEAR(chip.sigma_na, direct.sigma_na, 2e-3 * direct.sigma_na);
  EXPECT_NEAR(chip.mean_na, direct.mean_na, 1e-9 * direct.mean_na);
}

TEST(MultiBlock, HeterogeneousBlocksKeepTheirOwnStatistics) {
  const auto hot = usage_of("AOI21_X1", 0.5, "NOR2_X1", 0.5);  // wide complex gates
  const auto cool = usage_of("NAND3_X1", 1.0);                 // deep-stacked
  const placement::Floorplan fp = grid(8, 8);
  const MultiBlockEstimator mb(mini_chars_analytic(), fp,
                               {make_block("hot", hot, 0, 0, 4, 8),
                                make_block("cool", cool, 4, 0, 4, 8)});
  const LeakageEstimate e_hot = mb.block_estimate(0);
  const LeakageEstimate e_cool = mb.block_estimate(1);
  EXPECT_GT(e_hot.mean_na, e_cool.mean_na);
  // Chip mean is the sum of block means.
  EXPECT_NEAR(mb.chip_estimate().mean_na, e_hot.mean_na + e_cool.mean_na, 1e-9);
}

TEST(MultiBlock, CrossBlockCorrelationPositiveAndBounded) {
  const placement::Floorplan fp = grid(8, 8);
  const MultiBlockEstimator mb(
      mini_chars_analytic(), fp,
      {make_block("a", usage_of("INV_X1", 1.0), 0, 0, 4, 8),
       make_block("b", usage_of("NAND2_X1", 1.0), 4, 0, 4, 8)});
  const double rho = mb.block_correlation(0, 1);
  EXPECT_GT(rho, 0.0);  // D2D + WID correlation couples the blocks
  EXPECT_LT(rho, 1.0);
  EXPECT_NEAR(mb.block_correlation(0, 0), 1.0, 1e-12);
  // Symmetry.
  EXPECT_NEAR(mb.block_covariance(0, 1), mb.block_covariance(1, 0), 1e-9);
}

TEST(MultiBlock, DistantBlocksLessCorrelated) {
  const auto usage = usage_of("INV_X1", 1.0);
  const placement::Floorplan fp = grid(4, 40, 5000.0);
  const MultiBlockEstimator mb(mini_chars_analytic(), fp,
                               {make_block("a", usage, 0, 0, 4, 4),
                                make_block("near", usage, 5, 0, 4, 4),
                                make_block("far", usage, 36, 0, 4, 4)});
  EXPECT_GT(mb.block_correlation(0, 1), mb.block_correlation(0, 2));
}

TEST(MultiBlock, VarianceDecompositionIsConsistent) {
  // chip variance = sum of all entries of the block covariance matrix.
  const placement::Floorplan fp = grid(6, 6);
  const MultiBlockEstimator mb(
      mini_chars_analytic(), fp,
      {make_block("a", usage_of("INV_X1", 1.0), 0, 0, 3, 6),
       make_block("b", usage_of("NOR2_X1", 1.0), 3, 0, 3, 6)});
  const math::Matrix cov = mb.covariance_matrix();
  double var = 0.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) var += cov(i, j);
  EXPECT_NEAR(mb.chip_estimate().sigma_na, std::sqrt(var), 1e-9 * std::sqrt(var));
  EXPECT_NEAR(cov(0, 0), mb.block_estimate(0).sigma_na * mb.block_estimate(0).sigma_na,
              1e-6 * cov(0, 0));
}

TEST(MultiBlock, WhitespaceReducesChipTotal) {
  // A block covering half the grid leaks half as much as full coverage.
  const auto usage = usage_of("INV_X1", 1.0);
  const placement::Floorplan fp = grid(8, 8);
  const MultiBlockEstimator half(mini_chars_analytic(), fp,
                                 {make_block("a", usage, 0, 0, 8, 4)});
  const MultiBlockEstimator full(mini_chars_analytic(), fp,
                                 {make_block("a", usage, 0, 0, 8, 8)});
  EXPECT_NEAR(half.chip_estimate().mean_na, 0.5 * full.chip_estimate().mean_na, 1e-9);
  EXPECT_LT(half.chip_estimate().sigma_na, full.chip_estimate().sigma_na);
}

TEST(MultiBlock, SimplifiedModeWorks) {
  const placement::Floorplan fp = grid(6, 6);
  const MultiBlockEstimator mb(
      rgleak::testing::mini_chars_mc(), fp,
      {make_block("a", usage_of("INV_X1", 1.0), 0, 0, 3, 6),
       make_block("b", usage_of("NAND2_X1", 1.0), 3, 0, 3, 6)},
      0.5, CorrelationMode::kSimplified);
  EXPECT_GT(mb.chip_estimate().sigma_na, 0.0);
  EXPECT_GT(mb.block_correlation(0, 1), 0.0);
}

TEST(MultiBlock, ContractChecks) {
  const auto usage = usage_of("INV_X1", 1.0);
  const placement::Floorplan fp = grid(8, 8);
  EXPECT_THROW(MultiBlockEstimator(mini_chars_analytic(), fp, {}), ContractViolation);
  // Out of bounds.
  EXPECT_THROW(MultiBlockEstimator(mini_chars_analytic(), fp,
                                   {make_block("a", usage, 5, 0, 4, 4)}),
               ContractViolation);
  // Overlap.
  EXPECT_THROW(MultiBlockEstimator(mini_chars_analytic(), fp,
                                   {make_block("a", usage, 0, 0, 4, 4),
                                    make_block("b", usage, 3, 3, 4, 4)}),
               ContractViolation);
  const MultiBlockEstimator mb(mini_chars_analytic(), fp,
                               {make_block("a", usage, 0, 0, 4, 4)});
  EXPECT_THROW(mb.block_estimate(1), ContractViolation);
  EXPECT_THROW(mb.block_covariance(0, 1), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
