#include "core/yield.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

LeakageEstimate est(double mean, double sigma) {
  LeakageEstimate e;
  e.mean_na = mean;
  e.sigma_na = sigma;
  return e;
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double q : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.999999}) {
    const double z = normal_quantile(q);
    EXPECT_NEAR(normal_cdf(z), q, 1e-9) << "q=" << q;
  }
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), ContractViolation);
  EXPECT_THROW(normal_quantile(1.0), ContractViolation);
  EXPECT_THROW(normal_quantile(-0.5), ContractViolation);
}

TEST(YieldModel, LognormalMatchesMoments) {
  // The moment-matched log-normal must reproduce the estimate's mean/sigma.
  const LeakageYieldModel model(est(1000.0, 300.0));
  math::Rng rng(5);
  // Sample from the model via quantile transform and check moments.
  double sum = 0.0, sum2 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u <= 0.0 || u >= 1.0) continue;
    const double x = model.quantile(u);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1000.0, 5.0);
  EXPECT_NEAR(std::sqrt(var), 300.0, 6.0);
}

TEST(YieldModel, CdfQuantileRoundTrip) {
  for (const auto shape : {LeakageDistribution::kLognormal, LeakageDistribution::kNormal}) {
    const LeakageYieldModel model(est(500.0, 120.0), shape);
    for (double q : {0.01, 0.2, 0.5, 0.8, 0.99}) {
      EXPECT_NEAR(model.cdf(model.quantile(q)), q, 1e-8);
    }
  }
}

TEST(YieldModel, MedianBelowMeanForLognormal) {
  const LeakageYieldModel ln(est(1000.0, 400.0), LeakageDistribution::kLognormal);
  const LeakageYieldModel no(est(1000.0, 400.0), LeakageDistribution::kNormal);
  EXPECT_LT(ln.quantile(0.5), 1000.0);       // right-skew
  EXPECT_NEAR(no.quantile(0.5), 1000.0, 1e-6);
  // The log-normal upper tail is heavier.
  EXPECT_GT(ln.quantile(0.999), no.quantile(0.999));
}

TEST(YieldModel, YieldMonotoneInBudget) {
  const LeakageYieldModel model(est(1000.0, 250.0));
  double prev = -1.0;
  for (double budget = 100.0; budget <= 3000.0; budget += 100.0) {
    const double y = model.yield(budget);
    EXPECT_GE(y, prev);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
    prev = y;
  }
  EXPECT_DOUBLE_EQ(model.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.cdf(-5.0), 0.0);
}

TEST(YieldModel, DegenerateZeroSigma) {
  const LeakageYieldModel model(est(100.0, 0.0));
  EXPECT_DOUBLE_EQ(model.cdf(99.0), 0.0);
  EXPECT_DOUBLE_EQ(model.cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(model.quantile(0.5), 100.0);
}

TEST(YieldModel, ContractChecks) {
  EXPECT_THROW(LeakageYieldModel(est(0.0, 1.0)), ContractViolation);
  EXPECT_THROW(LeakageYieldModel(est(10.0, -1.0)), ContractViolation);
  const LeakageYieldModel model(est(100.0, 10.0));
  EXPECT_THROW(model.quantile(0.0), ContractViolation);
  EXPECT_THROW(model.quantile(1.5), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
