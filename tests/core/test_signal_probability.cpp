#include "core/signal_probability.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram nand_only() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("NAND2_X1")] = 1.0;
  return u;
}

netlist::UsageHistogram mixed() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.4;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.3;
  u.alphas[mini_library().index_of("NOR2_X1")] = 0.3;
  return u;
}

TEST(SignalProbabilitySweep, CurveShapeAndEndpoints) {
  const auto curve = sweep_signal_probability(mini_chars_analytic(), mixed(), 11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().p, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().p, 1.0);
  for (const auto& pt : curve) {
    EXPECT_GT(pt.rg_mean_na, 0.0);
    EXPECT_GT(pt.rg_sigma_na, 0.0);
  }
}

TEST(SignalProbabilitySweep, EndpointsMatchPureStates) {
  // p = 0: every NAND2 is in state 00; the RG mean equals that state's mean.
  const auto& chars = mini_chars_analytic();
  const auto curve = sweep_signal_probability(chars, nand_only(), 3);
  const std::size_t nand = mini_library().index_of("NAND2_X1");
  EXPECT_NEAR(curve.front().rg_mean_na, chars.cell(nand).states[0].mean_na, 1e-9);
  EXPECT_NEAR(curve.back().rg_mean_na, chars.cell(nand).states[3].mean_na, 1e-9);
}

TEST(SignalProbabilitySweep, NandWorstCaseIsHighish) {
  // For a NAND2, state 00 (full off-stack) leaks least, so the max-mean
  // setting sits well away from p = 0. (It is not necessarily p = 1: the
  // mixed 01/10 states leak through a single wide off NMOS and can dominate
  // the both-high state's off-PMOS pair.)
  const double p = max_leakage_signal_probability(mini_chars_analytic(), nand_only());
  EXPECT_GT(p, 0.4);
  // And the chosen p beats both endpoints.
  const auto curve = sweep_signal_probability(mini_chars_analytic(), nand_only(), 41);
  double at_p = 0.0;
  for (const auto& pt : curve)
    if (std::abs(pt.p - p) < 1e-9) at_p = pt.rg_mean_na;
  EXPECT_GE(at_p, curve.front().rg_mean_na);
  EXPECT_GE(at_p, curve.back().rg_mean_na);
}

TEST(SignalProbabilitySweep, NorPrefersLowInputs) {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("NOR2_X1")] = 1.0;
  const double p = max_leakage_signal_probability(mini_chars_analytic(), u);
  EXPECT_LT(p, 0.1);
}

TEST(SignalProbabilitySweep, MixedDesignInteriorOrEndpointMax) {
  const double p = max_leakage_signal_probability(mini_chars_analytic(), mixed());
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // The max-mean must dominate a few probe points.
  const auto curve = sweep_signal_probability(mini_chars_analytic(), mixed(), 41);
  double best = 0.0;
  for (const auto& pt : curve) best = std::max(best, pt.rg_mean_na);
  // Recompute stats at the chosen p.
  const auto at_p = sweep_signal_probability(mini_chars_analytic(), mixed(), 41);
  double chosen = 0.0;
  for (const auto& pt : at_p)
    if (std::abs(pt.p - p) < 1e-9) chosen = pt.rg_mean_na;
  EXPECT_NEAR(chosen, best, 1e-9 * best);
}

TEST(SignalProbabilitySweep, FlatnessComparedToSingleGateSpread) {
  // Fig. 3: mixing many cell types flattens the p-dependence relative to the
  // per-state spread of any single gate.
  const auto& chars = mini_chars_analytic();
  const auto curve = sweep_signal_probability(chars, mixed(), 21);
  double lo = 1e300, hi = 0.0;
  for (const auto& pt : curve) {
    lo = std::min(lo, pt.rg_mean_na);
    hi = std::max(hi, pt.rg_mean_na);
  }
  // Per-state spread of NAND2 alone.
  const std::size_t nand = mini_library().index_of("NAND2_X1");
  double slo = 1e300, shi = 0.0;
  for (const auto& st : chars.cell(nand).states) {
    slo = std::min(slo, st.mean_na);
    shi = std::max(shi, st.mean_na);
  }
  EXPECT_LT(hi / lo, shi / slo);
}

TEST(SignalProbabilitySweep, ContractChecks) {
  EXPECT_THROW(sweep_signal_probability(mini_chars_analytic(), mixed(), 1),
               ContractViolation);
  netlist::UsageHistogram bad;
  bad.alphas.assign(mini_library().size() + 1, 0.0);
  EXPECT_THROW(sweep_signal_probability(mini_chars_analytic(), bad, 5), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
