#include "core/corner_analysis.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "cells/library.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_library;

netlist::UsageHistogram usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  return u;
}

CornerAnalysisOptions mini_opts() {
  CornerAnalysisOptions o;
  o.library_factory = [](const device::TechnologyParams& t) {
    return cells::build_mini_library(t);
  };
  return o;
}

TEST(StandardCorners, SixCornersWithExpectedShifts) {
  const auto corners = standard_corners(1.77);
  ASSERT_EQ(corners.size(), 6u);
  EXPECT_EQ(corners[0].name, "SS/25C");
  EXPECT_GT(corners[0].delta_l_nm, 0.0);   // slow = longer channel
  EXPECT_LT(corners[4].delta_l_nm, 0.0);   // FF = shorter
  EXPECT_THROW(standard_corners(-1.0), ContractViolation);
}

TEST(CornerAnalysis, LeakageOrdersAcrossCorners) {
  const auto results =
      analyze_corners(device::TechnologyParams{}, rgleak::testing::test_process(), usage(),
                      400, standard_corners(1.77), mini_opts());
  ASSERT_EQ(results.size(), 6u);
  auto mean_of = [&](const std::string& name) {
    for (const auto& r : results)
      if (r.corner.name == name) return r.estimate.mean_na;
    ADD_FAILURE() << "missing corner " << name;
    return 0.0;
  };
  // Fast beats typical beats slow, hot beats cold.
  EXPECT_GT(mean_of("FF/25C"), mean_of("TT/25C"));
  EXPECT_GT(mean_of("TT/25C"), mean_of("SS/25C"));
  EXPECT_GT(mean_of("TT/110C"), mean_of("TT/25C"));
  EXPECT_GT(mean_of("FF/110C"), mean_of("SS/25C") * 3.0);  // large dynamic range
}

TEST(CornerAnalysis, WorstCornerIsFastHot) {
  const auto results =
      analyze_corners(device::TechnologyParams{}, rgleak::testing::test_process(), usage(),
                      400, standard_corners(1.77), mini_opts());
  EXPECT_EQ(worst_corner(results).corner.name, "FF/110C");
}

TEST(CornerAnalysis, ContractChecks) {
  EXPECT_THROW(analyze_corners(device::TechnologyParams{}, rgleak::testing::test_process(),
                               usage(), 100, {}, mini_opts()),
               ContractViolation);
  ProcessCorner absurd;
  absurd.name = "absurd";
  absurd.delta_l_nm = -100.0;  // drives nominal L negative
  EXPECT_THROW(analyze_corners(device::TechnologyParams{}, rgleak::testing::test_process(),
                               usage(), 100, {absurd}, mini_opts()),
               ContractViolation);
  EXPECT_THROW(worst_corner({}), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
