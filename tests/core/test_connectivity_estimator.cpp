#include "core/connectivity_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

placement::Floorplan grid(std::size_t side) {
  placement::Floorplan fp;
  fp.rows = fp.cols = side;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return fp;
}

netlist::UsageHistogram usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  return u;
}

// A DAG whose gates all see exactly p = 0.5 on every input: wire every input
// to primary-input nets only, with p = 0.5.
netlist::ConnectedNetlist inputs_only_dag(std::size_t n, math::Rng& rng) {
  const netlist::Netlist types =
      netlist::generate_random_circuit(mini_library(), usage(), n, rng);
  std::vector<netlist::ConnectedGate> gates;
  const std::size_t npi = 8;
  for (std::size_t g = 0; g < n; ++g) {
    netlist::ConnectedGate cg;
    cg.cell_index = types.gate(g).cell_index;
    const int k = mini_library().cell(cg.cell_index).num_inputs();
    for (int i = 0; i < k; ++i) cg.input_nets.push_back(rng.uniform_index(npi));
    gates.push_back(std::move(cg));
  }
  return netlist::ConnectedNetlist("pi-only", &mini_library(), npi, gates);
}

TEST(ConnectivityEstimator, MatchesGlobalPWhenAllInputsAtHalf) {
  // When every gate input sits at p = 0.5, the per-gate distributions equal
  // the global-p ones, so the connectivity-aware estimate must match the
  // global ExactEstimator.
  math::Rng rng(31);
  const std::size_t side = 12;
  const netlist::ConnectedNetlist nl = inputs_only_dag(side * side, rng);
  const placement::Floorplan fp = grid(side);

  const ConnectivityAwareEstimator aware(mini_chars_analytic(), CorrelationMode::kAnalytic);
  const LeakageEstimate e_aware = aware.estimate(nl, fp, 0.5);

  const netlist::Netlist flat = nl.flatten();
  const placement::Placement pl(&flat, fp);
  const ExactEstimator global(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate e_global = global.estimate(pl);

  EXPECT_NEAR(e_aware.mean_na, e_global.mean_na, 1e-6 * e_global.mean_na);
  EXPECT_NEAR(e_aware.sigma_na, e_global.sigma_na, 1e-3 * e_global.sigma_na);
}

TEST(ConnectivityEstimator, PropagationShiftsTheEstimate) {
  // A deep random DAG drifts net probabilities away from 0.5, so the aware
  // estimate differs from the global-p one (that difference is the point).
  math::Rng rng(33);
  const std::size_t side = 12;
  const netlist::ConnectedNetlist nl =
      netlist::generate_random_dag(mini_library(), usage(), side * side, 8, rng);
  const placement::Floorplan fp = grid(side);

  const ConnectivityAwareEstimator aware(mini_chars_analytic(), CorrelationMode::kAnalytic);
  const LeakageEstimate e_aware = aware.estimate(nl, fp, 0.5);

  const netlist::Netlist flat = nl.flatten();
  const placement::Placement pl(&flat, fp);
  const ExactEstimator global(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate e_global = global.estimate(pl);

  EXPECT_GT(std::abs(e_aware.mean_na - e_global.mean_na), 1e-4 * e_global.mean_na);
  // Same ballpark nonetheless (the paper's point that p matters little).
  EXPECT_NEAR(e_aware.mean_na, e_global.mean_na, 0.25 * e_global.mean_na);
}

TEST(ConnectivityEstimator, SimplifiedModeTracksAnalytic) {
  math::Rng rng(35);
  const std::size_t side = 10;
  const netlist::ConnectedNetlist nl =
      netlist::generate_random_dag(mini_library(), usage(), side * side, 8, rng);
  const placement::Floorplan fp = grid(side);
  const ConnectivityAwareEstimator analytic(mini_chars_analytic(), CorrelationMode::kAnalytic);
  const ConnectivityAwareEstimator simplified(mini_chars_analytic(),
                                              CorrelationMode::kSimplified);
  const LeakageEstimate ea = analytic.estimate(nl, fp, 0.5);
  const LeakageEstimate es = simplified.estimate(nl, fp, 0.5);
  EXPECT_NEAR(es.mean_na, ea.mean_na, 1e-9 * ea.mean_na);
  EXPECT_NEAR(es.sigma_na, ea.sigma_na, 0.06 * ea.sigma_na);
}

TEST(ConnectivityEstimator, ExtremeInputProbabilitiesPruneStates) {
  // p = 0 or 1 collapses every gate to a deterministic state chain; the
  // estimate must still be finite and positive.
  math::Rng rng(37);
  const netlist::ConnectedNetlist nl =
      netlist::generate_random_dag(mini_library(), usage(), 64, 4, rng);
  const ConnectivityAwareEstimator aware(mini_chars_analytic(), CorrelationMode::kAnalytic);
  for (double p : {0.0, 1.0}) {
    const LeakageEstimate e = aware.estimate(nl, grid(8), p);
    EXPECT_GT(e.mean_na, 0.0);
    EXPECT_GT(e.sigma_na, 0.0);
  }
}

TEST(ConnectivityEstimator, ContractChecks) {
  math::Rng rng(39);
  const netlist::ConnectedNetlist nl =
      netlist::generate_random_dag(mini_library(), usage(), 64, 4, rng);
  const ConnectivityAwareEstimator aware(mini_chars_analytic(), CorrelationMode::kAnalytic);
  EXPECT_THROW(aware.estimate(nl, grid(4), 0.5), ContractViolation);  // 16 < 64 sites
  EXPECT_THROW(aware.estimate(nl, grid(8), 1.5), ContractViolation);
  EXPECT_THROW(
      ConnectivityAwareEstimator(rgleak::testing::mini_chars_mc(), CorrelationMode::kAnalytic),
      ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
