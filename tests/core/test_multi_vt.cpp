#include "core/multi_vt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "cells/library.h"
#include "core/estimators.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

// Multi-Vt mini library (3 flavors of each mini cell) shared across tests.
const cells::StdCellLibrary& mvt_library() {
  static const cells::StdCellLibrary lib = [] {
    const cells::StdCellLibrary base = cells::build_mini_library();
    std::vector<cells::Cell> cells;
    for (std::size_t i = 0; i < base.size(); ++i) {
      cells.push_back(base.cell(i));
      cells.push_back(base.cell(i).with_vt_flavor("_LVT", -0.06));
      cells.push_back(base.cell(i).with_vt_flavor("_HVT", +0.08));
    }
    return cells::StdCellLibrary(base.tech(), std::move(cells));
  }();
  return lib;
}

const charlib::CharacterizedLibrary& mvt_chars() {
  static const charlib::CharacterizedLibrary chars =
      charlib::characterize_analytic(mvt_library(), rgleak::testing::test_process());
  return chars;
}

TEST(MultiVtLibrary, FlavorLeakageOrdering) {
  const auto& lib = mvt_library();
  const double svt = lib.cell(lib.index_of("INV_X1")).leakage_na(0, 40.0, lib.tech());
  const double lvt = lib.cell(lib.index_of("INV_X1_LVT")).leakage_na(0, 40.0, lib.tech());
  const double hvt = lib.cell(lib.index_of("INV_X1_HVT")).leakage_na(0, 40.0, lib.tech());
  EXPECT_GT(lvt, svt);
  EXPECT_GT(svt, hvt);
  // Exponential sensitivity: shifts of -60/+80 mV at n*vT ~ 36 mV per e-fold.
  const double n_vt = lib.tech().subthreshold_n * lib.tech().thermal_vt_v;
  EXPECT_NEAR(lvt / svt, std::exp(0.06 / n_vt), 0.15 * lvt / svt);
  EXPECT_NEAR(svt / hvt, std::exp(0.08 / n_vt), 0.15 * svt / hvt);
}

TEST(MultiVtLibrary, FullMultiVtBuilderProduces186Cells) {
  const cells::StdCellLibrary lib = cells::build_virtual90_multivt_library();
  EXPECT_EQ(lib.size(), 186u);
  EXPECT_TRUE(lib.contains("SRAM6T_HVT"));
  EXPECT_TRUE(lib.contains("DFF_X1_LVT"));
  cells::MultiVtOffsets bad;
  bad.lvt_shift_v = 0.01;
  EXPECT_THROW(cells::build_virtual90_multivt_library({}, bad), ContractViolation);
}

TEST(MultiVtLibrary, FlavorStacksWithRandomDvt) {
  // The systematic flavor offset combines additively with per-device dvt.
  const auto& lib = mvt_library();
  const auto& hvt = lib.cell(lib.index_of("INV_X1_HVT"));
  const auto& svt = lib.cell(lib.index_of("INV_X1"));
  std::vector<double> dvt(svt.num_devices(), 0.08);
  EXPECT_NEAR(hvt.leakage_na(0, 40.0, lib.tech()),
              svt.leakage_na(0, 40.0, lib.tech(), dvt),
              1e-9 * hvt.leakage_na(0, 40.0, lib.tech()));
}

TEST(AlphaPowerDelay, RatioProperties) {
  const device::TechnologyParams tech;
  EXPECT_DOUBLE_EQ(alpha_power_delay_ratio(tech, 0.0, 1.3), 1.0);
  EXPECT_GT(alpha_power_delay_ratio(tech, 0.08, 1.3), 1.0);   // HVT slower
  EXPECT_LT(alpha_power_delay_ratio(tech, -0.06, 1.3), 1.0);  // LVT faster
  EXPECT_THROW(alpha_power_delay_ratio(tech, 1.0, 1.3), ContractViolation);
}

TEST(HvtTradeoff, MonotoneLeakageAndDelay) {
  netlist::UsageHistogram usage;
  usage.alphas.assign(mvt_library().size(), 0.0);
  usage.alphas[mvt_library().index_of("INV_X1")] = 0.5;
  usage.alphas[mvt_library().index_of("NAND2_X1")] = 0.5;
  placement::Floorplan fp;
  fp.rows = fp.cols = 20;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  const auto curve = hvt_tradeoff(mvt_chars(), usage, fp, 0.08);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().hvt_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().hvt_fraction, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].estimate.mean_na, curve[i - 1].estimate.mean_na);
    EXPECT_LT(curve[i].estimate.sigma_na, curve[i - 1].estimate.sigma_na);
    EXPECT_GT(curve[i].delay_penalty, curve[i - 1].delay_penalty);
  }
  // Full swap buys roughly the exponential factor.
  const double n_vt =
      mvt_library().tech().subthreshold_n * mvt_library().tech().thermal_vt_v;
  EXPECT_NEAR(curve.front().estimate.mean_na / curve.back().estimate.mean_na,
              std::exp(0.08 / n_vt), 0.2 * std::exp(0.08 / n_vt));
}

TEST(HvtTradeoff, EndpointMatchesPureHistograms) {
  netlist::UsageHistogram usage;
  usage.alphas.assign(mvt_library().size(), 0.0);
  usage.alphas[mvt_library().index_of("INV_X1")] = 1.0;
  placement::Floorplan fp;
  fp.rows = fp.cols = 10;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const auto curve = hvt_tradeoff(mvt_chars(), usage, fp, 0.08);

  netlist::UsageHistogram hvt_only;
  hvt_only.alphas.assign(mvt_library().size(), 0.0);
  hvt_only.alphas[mvt_library().index_of("INV_X1_HVT")] = 1.0;
  const RandomGate rg(mvt_chars(), hvt_only, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate pure = estimate_linear(rg, fp);
  EXPECT_NEAR(curve.back().estimate.mean_na, pure.mean_na, 1e-9 * pure.mean_na);
  EXPECT_NEAR(curve.back().estimate.sigma_na, pure.sigma_na, 1e-9 * pure.sigma_na);
}

TEST(HvtTradeoff, ContractChecks) {
  netlist::UsageHistogram usage;
  usage.alphas.assign(mvt_library().size(), 0.0);
  // Using an HVT cell as the "SVT" master: no _HVT_HVT sibling exists.
  usage.alphas[mvt_library().index_of("INV_X1_HVT")] = 1.0;
  placement::Floorplan fp;
  fp.rows = fp.cols = 4;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  EXPECT_THROW(hvt_tradeoff(mvt_chars(), usage, fp, 0.08), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
