// Property-style parameterized sweeps: invariants that must hold across
// correlation-model families, usage mixes, die shapes, and signal
// probabilities simultaneously.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "core/region_analysis.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_library;

struct SweepCase {
  std::string corr_family;
  double corr_scale_nm;
  double d2d_share;
  double signal_p;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string n = c.corr_family + "_s" + std::to_string(static_cast<int>(c.corr_scale_nm / 1000)) +
                  "k_d" + std::to_string(static_cast<int>(100 * c.d2d_share)) + "_p" +
                  std::to_string(static_cast<int>(100 * c.signal_p));
  return n;
}

class EstimatorPropertyTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static charlib::CharacterizedLibrary make_chars(const SweepCase& c) {
    process::LengthVariation len;
    len.mean_nm = 40.0;
    const double total_var = 2.5 * 2.5;
    len.sigma_d2d_nm = std::sqrt(total_var * c.d2d_share);
    len.sigma_wid_nm = std::sqrt(total_var * (1.0 - c.d2d_share));
    const process::ProcessVariation process(
        len, process::VtVariation{},
        process::make_correlation(c.corr_family, c.corr_scale_nm));
    return charlib::characterize_analytic(mini_library(), process);
  }

  static netlist::UsageHistogram usage() {
    netlist::UsageHistogram u;
    u.alphas.assign(mini_library().size(), 0.0);
    u.alphas[mini_library().index_of("INV_X1")] = 0.4;
    u.alphas[mini_library().index_of("NAND2_X1")] = 0.3;
    u.alphas[mini_library().index_of("AOI21_X1")] = 0.3;
    return u;
  }

  static placement::Floorplan grid(std::size_t side) {
    placement::Floorplan fp;
    fp.rows = fp.cols = side;
    fp.site_w_nm = fp.site_h_nm = 1500.0;
    return fp;
  }
};

TEST_P(EstimatorPropertyTest, VarianceBounds) {
  // For any process structure: n*sigma_RG^2 <= Var_total <= n^2*sigma_RG^2.
  const auto chars = make_chars(GetParam());
  const RandomGate rg(chars, usage(), GetParam().signal_p, CorrelationMode::kAnalytic);
  const std::size_t side = 12;
  const double n = static_cast<double>(side * side);
  const double var = estimate_linear(rg, grid(side)).variance_na2();
  EXPECT_GE(var, n * rg.variance_na2() * (1.0 - 1e-9));
  EXPECT_LE(var, n * n * rg.variance_na2() * (1.0 + 1e-9));
}

TEST_P(EstimatorPropertyTest, LinearMatchesBruteForce) {
  // Eq. (17) must be an exact transformation for every correlation family.
  const auto chars = make_chars(GetParam());
  const RandomGate rg(chars, usage(), GetParam().signal_p, CorrelationMode::kAnalytic);
  const placement::Floorplan fp = grid(6);
  double brute = 0.0;
  for (std::size_t a = 0; a < fp.num_sites(); ++a)
    for (std::size_t b = 0; b < fp.num_sites(); ++b) {
      const double dx = fp.site_x_nm(a % fp.cols) - fp.site_x_nm(b % fp.cols);
      const double dy = fp.site_y_nm(a / fp.cols) - fp.site_y_nm(b / fp.cols);
      brute += rg.covariance_at_distance(std::hypot(dx, dy));
    }
  EXPECT_NEAR(estimate_linear(rg, fp).variance_na2(), brute, 1e-9 * brute);
}

TEST_P(EstimatorPropertyTest, IntegralTracksLinear) {
  const auto chars = make_chars(GetParam());
  const RandomGate rg(chars, usage(), GetParam().signal_p, CorrelationMode::kAnalytic);
  const LeakageEstimate lin = estimate_linear(rg, grid(40));
  const LeakageEstimate rect = estimate_integral_rect(rg, grid(40));
  EXPECT_NEAR(rect.sigma_na, lin.sigma_na, 0.02 * lin.sigma_na);
}

TEST_P(EstimatorPropertyTest, TileDecompositionExact) {
  const auto chars = make_chars(GetParam());
  const RandomGate rg(chars, usage(), GetParam().signal_p, CorrelationMode::kAnalytic);
  const RegionAnalysis region(&rg, grid(12), 3, 4);
  const LeakageEstimate direct = estimate_linear(rg, grid(12));
  EXPECT_NEAR(region.chip_estimate().sigma_na, direct.sigma_na, 1e-9 * direct.sigma_na);
}

TEST_P(EstimatorPropertyTest, MoreD2dMeansMoreChipVariance) {
  // Holding total cell-level variance fixed, shifting variance from WID to
  // D2D cannot reduce chip-level variance (correlation only goes up).
  SweepCase c = GetParam();
  if (c.d2d_share > 0.5) GTEST_SKIP() << "needs headroom to raise the share";
  const auto chars_lo = make_chars(c);
  SweepCase hi = c;
  hi.d2d_share = c.d2d_share + 0.4;
  const auto chars_hi = make_chars(hi);
  const RandomGate rg_lo(chars_lo, usage(), c.signal_p, CorrelationMode::kAnalytic);
  const RandomGate rg_hi(chars_hi, usage(), c.signal_p, CorrelationMode::kAnalytic);
  const double v_lo = estimate_linear(rg_lo, grid(20)).variance_na2();
  const double v_hi = estimate_linear(rg_hi, grid(20)).variance_na2();
  EXPECT_GT(v_hi, v_lo * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorPropertyTest,
    ::testing::Values(SweepCase{"exponential", 2.0e4, 0.5, 0.5},
                      SweepCase{"exponential", 1.0e5, 0.0, 0.3},
                      SweepCase{"gaussian", 3.0e4, 0.5, 0.5},
                      SweepCase{"gaussian", 1.0e4, 0.25, 0.7},
                      SweepCase{"linear", 5.0e4, 0.5, 0.5},
                      SweepCase{"spherical", 5.0e4, 0.25, 0.5},
                      SweepCase{"matern32", 2.0e4, 0.5, 0.4},
                      SweepCase{"exponential", 2.0e4, 1.0, 0.5}),
    case_name);

}  // namespace
}  // namespace rgleak::core
