#include "core/random_gate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_chars_mc;
using rgleak::testing::mini_library;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.4;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.4;
  u.alphas[mini_library().index_of("NOR2_X1")] = 0.2;
  return u;
}

TEST(RandomGate, MeanIsUsageWeightedMixture) {
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  // Eq. (7) by hand.
  double mean = 0.0;
  const auto& chars = mini_chars_analytic();
  const auto usage = test_usage();
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    if (usage.alphas[ci] == 0.0) continue;
    const auto sp = chars.state_probabilities(ci, 0.5);
    mean += usage.alphas[ci] * chars.effective(ci, sp).mean_na;
  }
  EXPECT_NEAR(rg.mean_na(), mean, 1e-9 * mean);
}

TEST(RandomGate, VarianceExceedsMeanWeightedCellVariances) {
  // Eq. (8): gate-choice randomness adds variance beyond the average cell
  // variance.
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  const auto& chars = mini_chars_analytic();
  const auto usage = test_usage();
  double avg_cell_var = 0.0;
  for (std::size_t ci = 0; ci < chars.size(); ++ci) {
    if (usage.alphas[ci] == 0.0) continue;
    const auto sp = chars.state_probabilities(ci, 0.5);
    const auto eff = chars.effective(ci, sp);
    avg_cell_var += usage.alphas[ci] * eff.sigma_na * eff.sigma_na;
  }
  EXPECT_GT(rg.variance_na2(), avg_cell_var);
}

TEST(RandomGate, CovarianceAtZeroDistanceIsVariance) {
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  EXPECT_DOUBLE_EQ(rg.covariance_at_distance(0.0), rg.variance_na2());
  EXPECT_DOUBLE_EQ(rg.correlation_at_distance(0.0), 1.0);
}

TEST(RandomGate, CovarianceDecreasesWithDistance) {
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  double prev = rg.covariance_at_distance(1.0);
  for (double d = 100.0; d <= 1.0e5; d *= 2.0) {
    const double c = rg.covariance_at_distance(d);
    EXPECT_LE(c, prev + 1e-9);
    EXPECT_GT(c, 0.0);
    prev = c;
  }
}

TEST(RandomGate, CovarianceFloorsAtD2dLevel) {
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  // Beyond the WID range only the D2D part of the length correlation is left.
  const double far = rg.covariance_at_distance(1.0e9);
  EXPECT_NEAR(far, rg.covariance_floor_na2(), 1e-4 * rg.covariance_floor_na2());
  EXPECT_GT(rg.covariance_floor_na2(), 0.0);
  EXPECT_LT(rg.covariance_floor_na2(), rg.variance_na2());
}

TEST(RandomGate, SimplifiedModeWorksWithoutModels) {
  const RandomGate rg(mini_chars_mc(), test_usage(), 0.5, CorrelationMode::kSimplified);
  EXPECT_GT(rg.mean_na(), 0.0);
  EXPECT_GT(rg.variance_na2(), 0.0);
  EXPECT_GT(rg.covariance_at_distance(100.0), 0.0);
}

TEST(RandomGate, AnalyticModeRejectsMcLibrary) {
  EXPECT_THROW(RandomGate(mini_chars_mc(), test_usage(), 0.5, CorrelationMode::kAnalytic),
               ContractViolation);
}

TEST(RandomGate, SimplifiedCloseToAnalytic) {
  // Section 3.1.2: the simplification costs only a few percent.
  const RandomGate a(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  const RandomGate s(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kSimplified);
  EXPECT_NEAR(a.mean_na(), s.mean_na(), 1e-9 * a.mean_na());
  for (double d : {1e3, 1e4, 5e4}) {
    EXPECT_NEAR(s.covariance_at_distance(d), a.covariance_at_distance(d),
                0.1 * a.covariance_at_distance(d));
  }
}

TEST(RandomGate, SignalProbabilityShiftsStatistics) {
  const RandomGate lo(mini_chars_analytic(), test_usage(), 0.1, CorrelationMode::kAnalytic);
  const RandomGate hi(mini_chars_analytic(), test_usage(), 0.9, CorrelationMode::kAnalytic);
  EXPECT_NE(lo.mean_na(), hi.mean_na());
}

TEST(RandomGate, RejectsInvalidInputs) {
  netlist::UsageHistogram bad;
  bad.alphas.assign(mini_library().size(), 0.0);
  EXPECT_THROW(RandomGate(mini_chars_analytic(), bad, 0.5, CorrelationMode::kAnalytic),
               ContractViolation);
  const RandomGate rg(mini_chars_analytic(), test_usage(), 0.5, CorrelationMode::kAnalytic);
  EXPECT_THROW(rg.covariance_at_distance(-1.0), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
