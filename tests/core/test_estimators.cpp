#include "core/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "../test_util.h"
#include "math/stats.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.3;
  u.alphas[mini_library().index_of("NOR2_X1")] = 0.2;
  return u;
}

RandomGate test_rg(double p = 0.5) {
  return RandomGate(mini_chars_analytic(), test_usage(), p, CorrelationMode::kAnalytic);
}

placement::Floorplan grid(std::size_t rows, std::size_t cols, double pitch = 1500.0) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = pitch;
  fp.site_h_nm = pitch;
  return fp;
}

// Brute-force evaluation of eq. (15): the full pairwise double sum over sites.
double brute_force_variance(const RandomGate& rg, const placement::Floorplan& fp) {
  double var = 0.0;
  const std::size_t n = fp.num_sites();
  for (std::size_t a = 0; a < n; ++a) {
    const double xa = fp.site_x_nm(a % fp.cols), ya = fp.site_y_nm(a / fp.cols);
    for (std::size_t b = 0; b < n; ++b) {
      const double xb = fp.site_x_nm(b % fp.cols), yb = fp.site_y_nm(b / fp.cols);
      var += rg.covariance_at_distance(std::hypot(xa - xb, ya - yb));
    }
  }
  return var;
}

TEST(LinearEstimator, ExactlyMatchesBruteForcePairSum) {
  // Eq. (17) is an exact transformation of eq. (15); verify to rounding.
  const RandomGate rg = test_rg();
  for (const auto& fp : {grid(4, 4), grid(3, 7), grid(1, 9), grid(8, 2)}) {
    const LeakageEstimate e = estimate_linear(rg, fp);
    const double brute = brute_force_variance(rg, fp);
    EXPECT_NEAR(e.sigma_na * e.sigma_na, brute, 1e-9 * brute)
        << fp.rows << "x" << fp.cols;
    EXPECT_NEAR(e.mean_na, static_cast<double>(fp.num_sites()) * rg.mean_na(),
                1e-9 * e.mean_na);
  }
}

TEST(LinearEstimator, VarianceBetweenIndependentAndFullyCorrelatedLimits) {
  const RandomGate rg = test_rg();
  const placement::Floorplan fp = grid(10, 10);
  const double n = 100.0;
  const LeakageEstimate e = estimate_linear(rg, fp);
  const double var = e.sigma_na * e.sigma_na;
  EXPECT_GT(var, n * rg.variance_na2());        // more than independent sum
  EXPECT_LT(var, n * n * rg.variance_na2());    // less than perfectly correlated
}

TEST(LinearEstimator, WiderDieDecorrelates) {
  // Same gate count, bigger die -> smaller total sigma (correlation decays).
  const RandomGate rg = test_rg();
  const LeakageEstimate tight = estimate_linear(rg, grid(10, 10, 500.0));
  const LeakageEstimate wide = estimate_linear(rg, grid(10, 10, 20000.0));
  EXPECT_LT(wide.sigma_na, tight.sigma_na);
}

TEST(IntegralRect, ConvergesToLinearForLargeGrids) {
  // Fig. 7 behaviour: error < 1% already at ~10^3-10^4 gates, improving with n.
  const RandomGate rg = test_rg();
  const LeakageEstimate lin = estimate_linear(rg, grid(50, 50));
  const LeakageEstimate rect = estimate_integral_rect(rg, grid(50, 50));
  EXPECT_NEAR(rect.sigma_na, lin.sigma_na, 0.01 * lin.sigma_na);
  EXPECT_DOUBLE_EQ(rect.mean_na, lin.mean_na);
}

TEST(IntegralRect, SmallGridsShowGranularityError) {
  const RandomGate rg = test_rg();
  const LeakageEstimate lin = estimate_linear(rg, grid(5, 5));
  const LeakageEstimate rect = estimate_integral_rect(rg, grid(5, 5));
  const double err = std::abs(rect.sigma_na - lin.sigma_na) / lin.sigma_na;
  // Some visible error at 25 gates, but not absurd.
  EXPECT_LT(err, 0.2);
}

TEST(IntegralPolar, MatchesRectWhenValid) {
  // Make the die much larger than the WID range so the polar path engages.
  const RandomGate rg = test_rg();  // test process: 20 um correlation length
  const placement::Floorplan fp = grid(60, 60, 1.0e4);  // 600 um die
  bool used_polar = false;
  const LeakageEstimate polar = estimate_integral_polar(rg, fp, {}, &used_polar);
  EXPECT_TRUE(used_polar);
  const LeakageEstimate rect = estimate_integral_rect(rg, fp);
  EXPECT_NEAR(polar.sigma_na, rect.sigma_na, 0.01 * rect.sigma_na);
}

TEST(IntegralPolar, FallsBackWhenRangeExceedsDie) {
  const RandomGate rg = test_rg();
  const placement::Floorplan fp = grid(10, 10, 1000.0);  // 10 um die << range
  bool used_polar = true;
  const LeakageEstimate polar = estimate_integral_polar(rg, fp, {}, &used_polar);
  EXPECT_FALSE(used_polar);
  const LeakageEstimate rect = estimate_integral_rect(rg, fp);
  EXPECT_DOUBLE_EQ(polar.sigma_na, rect.sigma_na);
}

TEST(ExactEstimator, SingleTypeDesignMatchesLinearEstimator) {
  // A design of identical gates on the full grid == the RG array with a
  // single-cell histogram, so the exact O(n^2) sum and eq. (17) must agree.
  netlist::UsageHistogram usage;
  usage.alphas.assign(mini_library().size(), 0.0);
  usage.alphas[mini_library().index_of("INV_X1")] = 1.0;

  const std::size_t rows = 9, cols = 9;
  std::vector<netlist::GateInstance> gates(rows * cols,
                                           {mini_library().index_of("INV_X1")});
  const netlist::Netlist nl("uniform", &mini_library(), gates);
  const placement::Placement pl(&nl, grid(rows, cols));

  const ExactEstimator exact(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate e_exact = exact.estimate(pl);

  const RandomGate rg(mini_chars_analytic(), usage, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate e_lin = estimate_linear(rg, grid(rows, cols));

  EXPECT_NEAR(e_exact.mean_na, e_lin.mean_na, 1e-9 * e_lin.mean_na);
  EXPECT_NEAR(e_exact.sigma_na, e_lin.sigma_na, 5e-3 * e_lin.sigma_na);
}

TEST(ExactEstimator, TypeCovarianceEndpoints) {
  const ExactEstimator exact(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const std::size_t inv = mini_library().index_of("INV_X1");
  const std::size_t nand = mini_library().index_of("NAND2_X1");
  EXPECT_NEAR(exact.type_covariance(inv, nand, 0.0), 0.0,
              1e-3 * exact.type_covariance(inv, nand, 1.0));
  EXPECT_GT(exact.type_covariance(inv, nand, 1.0), 0.0);
  // Symmetry.
  EXPECT_NEAR(exact.type_covariance(inv, nand, 0.7), exact.type_covariance(nand, inv, 0.7),
              1e-9 * exact.type_covariance(inv, nand, 0.7));
  EXPECT_THROW(exact.type_covariance(inv, nand, 1.5), ContractViolation);
  EXPECT_THROW(exact.type_covariance(99, nand, 0.5), ContractViolation);
}

TEST(ExactEstimator, SimplifiedModeCovariance) {
  // rho_mn = rho_L applies to the process-variation component: the simplified
  // covariance uses the state-weighted process sigma, not the state-mixed
  // total sigma.
  const ExactEstimator exact(mini_chars_analytic(), 0.5, CorrelationMode::kSimplified);
  const std::size_t inv = mini_library().index_of("INV_X1");
  const auto sp = mini_chars_analytic().state_probabilities(inv, 0.5);
  double proc_sigma = 0.0;
  for (std::size_t s = 0; s < sp.size(); ++s)
    proc_sigma += sp[s] * mini_chars_analytic().cell(inv).states[s].sigma_na;
  EXPECT_NEAR(exact.type_covariance(inv, inv, 0.5), 0.5 * proc_sigma * proc_sigma,
              1e-9 * proc_sigma * proc_sigma);
}

TEST(ExactEstimator, SimplifiedModeTracksAnalyticOnPlacedDesign) {
  // With the process-sigma fix, the simplified map should stay within a few
  // percent of the exact f_{m,n} mapping (section 3.1.2's claim) even at the
  // level of a specific placed design.
  math::Rng rng(55);
  const std::size_t side = 16;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), side * side, rng);
  const placement::Placement pl(&nl, grid(side, side));
  const ExactEstimator analytic(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const ExactEstimator simplified(mini_chars_analytic(), 0.5, CorrelationMode::kSimplified);
  const LeakageEstimate ea = analytic.estimate(pl);
  const LeakageEstimate es = simplified.estimate(pl);
  EXPECT_NEAR(es.mean_na, ea.mean_na, 1e-9 * ea.mean_na);
  EXPECT_NEAR(es.sigma_na, ea.sigma_na, 0.05 * ea.sigma_na);
}

TEST(ExactEstimator, RandomDesignsConvergeToRgEstimate) {
  // The thesis of the paper (Fig. 6): designs sharing the high-level
  // characteristics have ~the same leakage statistics as the RG model.
  const netlist::UsageHistogram usage = test_usage();
  const std::size_t rows = 30, cols = 30;
  const RandomGate rg = test_rg();
  const LeakageEstimate model = estimate_linear(rg, grid(rows, cols));

  const ExactEstimator exact(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  math::Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    const netlist::Netlist nl =
        generate_random_circuit(mini_library(), usage, rows * cols, rng);
    const placement::Placement pl(&nl, grid(rows, cols));
    const LeakageEstimate e = exact.estimate(pl);
    EXPECT_NEAR(e.mean_na, model.mean_na, 0.02 * model.mean_na);
    EXPECT_NEAR(e.sigma_na, model.sigma_na, 0.03 * model.sigma_na);
  }
}

TEST(ExactEstimator, FftPathMatchesDirectPath) {
  // The FFT offset histogram is an exact transformation of the pairwise sum:
  // both paths must agree to rounding for mixed cell types in both
  // correlation modes, on square, oblong and degenerate (1-row) grids.
  math::Rng rng(77);
  for (const CorrelationMode mode :
       {CorrelationMode::kAnalytic, CorrelationMode::kSimplified}) {
    const ExactEstimator est(mini_chars_analytic(), 0.5, mode);
    for (const auto& fp : {grid(6, 6), grid(5, 9), grid(1, 17), grid(12, 7)}) {
      const netlist::Netlist nl = generate_random_circuit(
          mini_library(), test_usage(), fp.num_sites(), rng);
      const placement::Placement pl(&nl, fp);
      const LeakageEstimate direct = est.estimate(pl, {ExactMethod::kDirect, 1});
      const LeakageEstimate fft = est.estimate(pl, {ExactMethod::kFft, 1});
      EXPECT_NEAR(fft.sigma_na, direct.sigma_na, 1e-9 * direct.sigma_na)
          << fp.rows << "x" << fp.cols << " mode=" << static_cast<int>(mode);
      EXPECT_NEAR(fft.mean_na, direct.mean_na, 1e-12 * direct.mean_na);
    }
  }
}

TEST(ExactEstimator, DeterministicAcrossThreadCounts) {
  // Fixed tiling + fixed-order reduction: the thread count must not change a
  // single bit of the result, for either path.
  math::Rng rng(78);
  const std::size_t side = 12;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), side * side, rng);
  const placement::Placement pl(&nl, grid(side, side));
  const ExactEstimator est(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  for (const ExactMethod method : {ExactMethod::kDirect, ExactMethod::kFft}) {
    const LeakageEstimate one = est.estimate(pl, {method, 1});
    const LeakageEstimate eight = est.estimate(pl, {method, 8});
    EXPECT_DOUBLE_EQ(one.sigma_na, eight.sigma_na) << static_cast<int>(method);
    EXPECT_DOUBLE_EQ(one.mean_na, eight.mean_na);
  }
}

TEST(ExactEstimator, AutoSelectionMatchesExplicitMethods) {
  math::Rng rng(79);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 100, rng);
  const placement::Placement pl(&nl, grid(10, 10));
  const ExactEstimator est(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate autod = est.estimate(pl);
  const LeakageEstimate direct = est.estimate(pl, {ExactMethod::kDirect, 1});
  EXPECT_NEAR(autod.sigma_na, direct.sigma_na, 1e-9 * direct.sigma_na);
}

TEST(ExactEstimator, ConcurrentEstimatesAreSafe) {
  // Regression for the pair-grid lazy-init data race: a fresh analytic
  // estimator hammered by concurrent estimate() calls must agree with the
  // serial answer (run under TSan via RGLEAK_SANITIZE=thread).
  math::Rng rng(81);
  const std::size_t side = 8;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), side * side, rng);
  const placement::Placement pl(&nl, grid(side, side));
  const ExactEstimator warm(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate expected = warm.estimate(pl, {ExactMethod::kDirect, 1});

  const ExactEstimator cold(mini_chars_analytic(), 0.5, CorrelationMode::kAnalytic);
  std::vector<LeakageEstimate> results(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < results.size(); ++i)
    threads.emplace_back([&, i] {
      results[i] = cold.estimate(pl, {i % 2 == 0 ? ExactMethod::kDirect : ExactMethod::kFft, 2});
    });
  for (auto& t : threads) t.join();
  for (const LeakageEstimate& r : results)
    EXPECT_NEAR(r.sigma_na, expected.sigma_na, 1e-9 * expected.sigma_na);
}

TEST(VtMeanFactor, LognormalFormula) {
  process::VtVariation vt;
  vt.sigma_v = 0.03;
  device::TechnologyParams tech;
  const double z = 0.03 / (tech.subthreshold_n * tech.thermal_vt_v);
  EXPECT_NEAR(vt_mean_factor(vt, tech), std::exp(0.5 * z * z), 1e-12);
  // No Vt variation -> no correction.
  vt.sigma_v = 0.0;
  EXPECT_DOUBLE_EQ(vt_mean_factor(vt, tech), 1.0);
}

TEST(VtMeanFactor, MatchesMonteCarloCellLeakage) {
  // The multiplicative factor is the mean of exp(-dVt/(n vT)); validate
  // against sampling.
  process::VtVariation vt;
  vt.sigma_v = 0.025;
  device::TechnologyParams tech;
  math::Rng rng(3);
  math::RunningStats acc;
  const double nvt = tech.subthreshold_n * tech.thermal_vt_v;
  for (int i = 0; i < 500000; ++i) acc.add(std::exp(-rng.normal(0.0, vt.sigma_v) / nvt));
  EXPECT_NEAR(vt_mean_factor(vt, tech), acc.mean(), 0.005 * acc.mean());
}

}  // namespace
}  // namespace rgleak::core
