// Anisotropic-correlation support through the estimator chain: the linear,
// rectangular-integral, exact, region, and Monte-Carlo paths all honour the
// per-axis scaling; the polar path (which requires isotropy) must fall back.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "core/region_analysis.h"
#include "mc/full_chip_mc.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_library;

charlib::CharacterizedLibrary aniso_chars(double ax, double ay) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 1.25;
  process::CorrelationAnisotropy an;
  an.scale_x = ax;
  an.scale_y = ay;
  const process::ProcessVariation p(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(2.0e4),
      an);
  return charlib::characterize_analytic(mini_library(), p);
}

netlist::UsageHistogram usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  return u;
}

placement::Floorplan grid(std::size_t rows, std::size_t cols) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  return fp;
}

TEST(AnisotropicEstimation, LinearMatchesBruteForce) {
  const auto chars = aniso_chars(3.0, 1.0);
  const RandomGate rg(chars, usage(), 0.5, CorrelationMode::kAnalytic);
  const placement::Floorplan fp = grid(5, 7);
  double brute = 0.0;
  for (std::size_t a = 0; a < fp.num_sites(); ++a)
    for (std::size_t b = 0; b < fp.num_sites(); ++b) {
      const double dx = fp.site_x_nm(a % fp.cols) - fp.site_x_nm(b % fp.cols);
      const double dy = fp.site_y_nm(a / fp.cols) - fp.site_y_nm(b / fp.cols);
      brute += rg.covariance_at_offset(std::abs(dx), std::abs(dy));
    }
  EXPECT_NEAR(estimate_linear(rg, fp).variance_na2(), brute, 1e-9 * brute);
}

TEST(AnisotropicEstimation, OrientationMatters) {
  // A die elongated along the stretched (more correlated) axis keeps more
  // correlation than the same die rotated 90 degrees.
  const auto chars = aniso_chars(5.0, 1.0);
  const RandomGate rg(chars, usage(), 0.5, CorrelationMode::kAnalytic);
  const double var_along = estimate_linear(rg, grid(4, 64)).variance_na2();
  const double var_across = estimate_linear(rg, grid(64, 4)).variance_na2();
  EXPECT_GT(var_along, var_across * 1.05);
}

TEST(AnisotropicEstimation, PolarFallsBackRectStillWorks) {
  const auto chars = aniso_chars(3.0, 1.0);
  const RandomGate rg(chars, usage(), 0.5, CorrelationMode::kAnalytic);
  const placement::Floorplan fp = grid(50, 50);
  bool used_polar = true;
  const LeakageEstimate polar = estimate_integral_polar(rg, fp, {}, &used_polar);
  EXPECT_FALSE(used_polar);
  const LeakageEstimate lin = estimate_linear(rg, fp);
  EXPECT_NEAR(polar.sigma_na, lin.sigma_na, 0.02 * lin.sigma_na);
}

TEST(AnisotropicEstimation, IsotropicLimitRecovered) {
  // ax = ay = 1 must reproduce the isotropic result exactly.
  const auto chars_iso = aniso_chars(1.0, 1.0);
  const RandomGate rg(chars_iso, usage(), 0.5, CorrelationMode::kAnalytic);
  EXPECT_NEAR(rg.covariance_at_offset(300.0, 400.0), rg.covariance_at_distance(500.0),
              1e-12 * rg.variance_na2());
}

TEST(AnisotropicEstimation, ExactEstimatorAgreesWithRg) {
  const auto chars = aniso_chars(2.0, 1.0);
  const std::size_t rows = 20, cols = 20;
  const RandomGate rg(chars, usage(), 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate model = estimate_linear(rg, grid(rows, cols));

  math::Rng rng(3);
  const netlist::Netlist nl =
      netlist::generate_random_circuit(mini_library(), usage(), rows * cols, rng);
  const placement::Placement pl(&nl, grid(rows, cols));
  const ExactEstimator exact(chars, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate truth = exact.estimate(pl);
  EXPECT_NEAR(truth.sigma_na, model.sigma_na, 0.03 * model.sigma_na);
}

TEST(AnisotropicEstimation, MonteCarloConfirmsAnisotropicSigma) {
  const auto chars = aniso_chars(4.0, 1.0);
  const std::size_t rows = 10, cols = 10;
  math::Rng rng(5);
  const netlist::Netlist nl =
      netlist::generate_random_circuit(mini_library(), usage(), rows * cols, rng);
  const placement::Placement pl(&nl, grid(rows, cols));

  const ExactEstimator exact(chars, 0.5, CorrelationMode::kAnalytic);
  const LeakageEstimate analytic = exact.estimate(pl);

  mc::FullChipMcOptions opts;
  opts.trials = 3000;
  opts.resample_states_per_trial = true;
  const mc::FullChipMcResult r = mc::FullChipMonteCarlo(pl, chars, opts).run();
  EXPECT_NEAR(r.mean_na, analytic.mean_na, 0.05 * analytic.mean_na);
  EXPECT_NEAR(r.sigma_na, analytic.sigma_na, 0.12 * analytic.sigma_na);
}

TEST(AnisotropicEstimation, RegionAnalysisReassembles) {
  const auto chars = aniso_chars(3.0, 1.0);
  const RandomGate rg(chars, usage(), 0.5, CorrelationMode::kAnalytic);
  const placement::Floorplan fp = grid(12, 12);
  const RegionAnalysis region(&rg, fp, 3, 4);
  EXPECT_NEAR(region.chip_estimate().sigma_na, estimate_linear(rg, fp).sigma_na,
              1e-9 * estimate_linear(rg, fp).sigma_na);
  // Tiles offset along the stretched x axis are more correlated than tiles
  // offset along y by the same number of sites.
  EXPECT_GT(region.tile_correlation(0, 0, 1, 0), region.tile_correlation(0, 0, 0, 1));
}

}  // namespace
}  // namespace rgleak::core
