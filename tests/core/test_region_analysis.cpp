#include "core/region_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

RandomGate test_rg() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  return RandomGate(mini_chars_analytic(), u, 0.5, CorrelationMode::kAnalytic);
}

placement::Floorplan grid(std::size_t rows, std::size_t cols, double pitch = 1500.0) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = fp.site_h_nm = pitch;
  return fp;
}

TEST(RegionAnalysis, TileEstimateMatchesLinearEstimatorOnTile) {
  const RandomGate rg = test_rg();
  const RegionAnalysis region(&rg, grid(12, 12), 4, 3);
  // Each tile is a 3-col x 4-row subgrid; its stats equal eq. (17) on that
  // subgrid.
  const LeakageEstimate tile = region.tile_estimate();
  const LeakageEstimate direct = estimate_linear(rg, grid(4, 3));
  EXPECT_NEAR(tile.mean_na, direct.mean_na, 1e-9 * direct.mean_na);
  EXPECT_NEAR(tile.sigma_na, direct.sigma_na, 1e-9 * direct.sigma_na);
}

TEST(RegionAnalysis, ChipReassemblyMatchesDirectEstimate) {
  // Key consistency property: summing the tile covariance matrix reproduces
  // the full-chip variance of eq. (17) exactly.
  const RandomGate rg = test_rg();
  for (const auto& [tx, ty] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {2, 2}, {4, 4}, {3, 2}, {12, 12}}) {
    const RegionAnalysis region(&rg, grid(12, 12), tx, ty);
    const LeakageEstimate sum = region.chip_estimate();
    const LeakageEstimate direct = estimate_linear(rg, grid(12, 12));
    EXPECT_NEAR(sum.sigma_na, direct.sigma_na, 1e-9 * direct.sigma_na)
        << tx << "x" << ty << " tiles";
    EXPECT_NEAR(sum.mean_na, direct.mean_na, 1e-9 * direct.mean_na);
  }
}

TEST(RegionAnalysis, CovarianceSymmetricAndDiagonalDominant) {
  const RandomGate rg = test_rg();
  const RegionAnalysis region(&rg, grid(8, 8), 4, 4);
  const math::Matrix cov = region.covariance_matrix();
  ASSERT_EQ(cov.rows(), 16u);
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      EXPECT_NEAR(cov(a, b), cov(b, a), 1e-9 * std::abs(cov(a, b)));
      if (a != b) {
        EXPECT_LT(cov(a, b), cov(a, a));
      }
    }
  }
  // Positive semidefinite: Cholesky with jitter succeeds.
  math::Matrix jittered = cov;
  for (std::size_t i = 0; i < 16; ++i) jittered(i, i) += 1e-9 * cov(i, i);
  EXPECT_NO_THROW(math::cholesky(jittered));
}

TEST(RegionAnalysis, CorrelationDecaysWithTileDistance) {
  const RandomGate rg = test_rg();
  const RegionAnalysis region(&rg, grid(16, 16, 5000.0), 4, 4);
  const double near = region.tile_correlation(0, 0, 1, 0);
  const double far = region.tile_correlation(0, 0, 3, 0);
  const double diag = region.tile_correlation(0, 0, 3, 3);
  EXPECT_GT(near, far);
  EXPECT_GT(far, diag);
  EXPECT_GT(diag, 0.0);  // D2D keeps everything positively correlated
  EXPECT_NEAR(region.tile_correlation(2, 2, 2, 2), 1.0, 1e-12);
}

TEST(RegionAnalysis, TranslationInvariance) {
  const RandomGate rg = test_rg();
  const RegionAnalysis region(&rg, grid(12, 12), 4, 4);
  // Covariance depends only on the tile offset.
  EXPECT_NEAR(region.tile_covariance(0, 0, 1, 2), region.tile_covariance(2, 1, 3, 3),
              1e-9 * region.tile_covariance(0, 0, 1, 2));
  EXPECT_NEAR(region.tile_covariance(0, 0, 2, 0), region.tile_covariance(1, 3, 3, 3),
              1e-9 * region.tile_covariance(0, 0, 2, 0));
}

TEST(RegionAnalysis, ContractChecks) {
  const RandomGate rg = test_rg();
  EXPECT_THROW(RegionAnalysis(nullptr, grid(8, 8), 2, 2), ContractViolation);
  EXPECT_THROW(RegionAnalysis(&rg, grid(8, 8), 3, 2), ContractViolation);  // 8 % 3 != 0
  EXPECT_THROW(RegionAnalysis(&rg, grid(8, 8), 2, 0), ContractViolation);
  const RegionAnalysis region(&rg, grid(8, 8), 2, 2);
  EXPECT_THROW(region.tile_covariance(2, 0, 0, 0), ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
